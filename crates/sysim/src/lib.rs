//! Trace-driven full-system simulator: cores → caches → memory.
//!
//! Couples the workload generators (`pmck-workloads`), the SAM/OMV cache
//! hierarchy (`pmck-cachesim`) and the bank-timing memory controller
//! (`pmck-memsim`) into the evaluation platform of §VI:
//!
//! * 4 cores at 3 GHz replaying per-core traces (blocking loads, posted
//!   stores, `clwb`/`sfence` persistence);
//! * warmup phase (caches run functionally) followed by a timed
//!   measurement phase, mirroring the paper's gem5 warmup + timing run;
//! * the **baseline** scheme (per-block bit-error BCH: no OMV machinery,
//!   no write slowing, no VLEW traffic) versus the **proposal**
//!   (OMV-enabled LLC; iso-lifetime `tWR` scaling by `1 + (33/8)·C` plus
//!   20 ns; a 37-block force-fetch whenever the coupled functional
//!   chipkill stack (`pmck-core`'s [`pmck_core::Stack`]) actually decodes
//!   a demand read through its VLEW fallback — at the §V-C design point
//!   the emergent rate is the paper's ~0.02%; an extra PM read whenever a
//!   PM write misses its OMV).
//!
//! The C factor is measured from the EUR model during a profiling pass of
//! the same trace (Figure 15), exactly as the paper measures per-workload
//! C and then derives the slowed `tWR`.
//!
//! # Examples
//!
//! ```no_run
//! use pmck_sim::{NvramKind, Scheme, SimConfig, Simulator};
//! use pmck_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("btree").unwrap();
//! let cfg = SimConfig::paper(NvramKind::ReRam, Scheme::Baseline);
//! let result = Simulator::run_workload(spec, cfg, 42);
//! println!("{} ops in {} ps", result.ops_measured, result.measured_ps);
//! ```

mod config;
mod metrics;
mod runner;
mod system;

pub use config::{NvramKind, Scheme, SimConfig};
pub use metrics::SimResult;
pub use runner::{run_comparison, run_comparison_with, ComparisonResult};
pub use system::Simulator;
