//! Simulation configuration (paper Table I and §VI).

use pmck_memsim::NvramTiming;

/// The NVRAM technology of the persistent-memory rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvramKind {
    /// ReRAM: 120 ns read / 300 ns write (Figure 16's latency set).
    ReRam,
    /// PCM: 250 ns read / 600 ns write (Figure 17's latency set).
    Pcm,
}

impl NvramKind {
    /// The timing parameters for this technology.
    pub fn timing(self) -> NvramTiming {
        match self {
            NvramKind::ReRam => NvramTiming::reram(),
            NvramKind::Pcm => NvramTiming::pcm(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NvramKind::ReRam => "ReRAM",
            NvramKind::Pcm => "PCM",
        }
    }
}

/// Which protection scheme the simulated system implements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Bit-error correction only (per-block 14-bit-EC BCH): the §VII
    /// normalization baseline. No OMV, no write slowing, no VLEW traffic.
    Baseline,
    /// The proposal, configured with the workload's measured C factor.
    Proposal {
        /// VLEW code-bit writes per PM write (Figure 15), measured by a
        /// profiling pass.
        c_factor: f64,
    },
}

impl Scheme {
    /// Whether this is the proposal.
    pub fn is_proposal(&self) -> bool {
        matches!(self, Scheme::Proposal { .. })
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Cores (Table I: 4).
    pub cores: usize,
    /// Core clock period in picoseconds (3 GHz → 333 ps).
    pub core_period_ps: u64,
    /// NVRAM technology.
    pub nvram: NvramKind,
    /// Protection scheme.
    pub scheme: Scheme,
    /// Warmup operations per core (functional cache warmup).
    pub warmup_ops: u64,
    /// Measured operations per core (timed phase).
    pub measure_ops: u64,
    /// Blocks force-fetched per fallback (§VI: 37).
    pub fallback_blocks: usize,
    /// Blocks in the functional chipkill rank the proposal's timing loop
    /// drives (PM addresses fold onto it modulo this size).
    pub engine_blocks: u64,
    /// RBER injected into the functional rank once per
    /// [`SimConfig::engine_interval`]. At the §V-C design point (2·10⁻⁴,
    /// patrol-scrubbed each interval) the engine's emergent VLEW-fallback
    /// rate sits at the paper's ~0.02%.
    pub engine_rber: f64,
    /// Engine accesses per error-injection interval; the patrol layer is
    /// paced to complete one full pass over the rank per interval.
    pub engine_interval: u64,
    /// Dirty-PM occupancy sampling interval, in per-core ops.
    pub sample_interval: u64,
    /// Ablation: run the proposal *without* OMV caching — every PM write
    /// must fetch its old value from memory (the §V-D motivation).
    pub force_omv_off: bool,
}

impl SimConfig {
    /// The paper's configuration for a given technology and scheme.
    pub fn paper(nvram: NvramKind, scheme: Scheme) -> Self {
        SimConfig {
            cores: 4,
            core_period_ps: 333,
            nvram,
            scheme,
            warmup_ops: 220_000,
            measure_ops: 150_000,
            fallback_blocks: 37,
            engine_blocks: 512,
            engine_rber: 2e-4,
            engine_interval: 2_048,
            sample_interval: 2_000,
            force_omv_off: false,
        }
    }

    /// A faster configuration for tests.
    pub fn quick(nvram: NvramKind, scheme: Scheme) -> Self {
        SimConfig {
            warmup_ops: 80_000,
            measure_ops: 40_000,
            ..Self::paper(nvram, scheme)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_paper_latencies() {
        assert_eq!(NvramKind::ReRam.timing().read_ps, 120_000);
        assert_eq!(NvramKind::Pcm.timing().write_ps, 600_000);
    }

    #[test]
    fn paper_config() {
        let c = SimConfig::paper(NvramKind::ReRam, Scheme::Baseline);
        assert_eq!(c.cores, 4);
        assert_eq!(c.core_period_ps, 333);
        assert!(!c.scheme.is_proposal());
        assert!(Scheme::Proposal { c_factor: 0.3 }.is_proposal());
    }
}
