//! The event-driven full-system simulation loop.

use std::collections::HashSet;

use pmck_cachesim::{Hierarchy, HierarchyConfig, MemActions};
use pmck_memsim::{MemConfig, MemRequest, MemoryController, RankKind, ReqId};
use pmck_rt::rng::Rng;
use pmck_rt::rng::SmallRng;
use pmck_workloads::{MemRef, Op, TraceGenerator, WorkloadClass, WorkloadSpec};

use crate::config::{Scheme, SimConfig};
use crate::metrics::SimResult;

/// Cache-address bit marking the persistent-memory region (keeps PM and
/// DRAM blocks from aliasing in the cache hierarchy).
const PM_BASE: u64 = 1 << 40;

struct Core {
    gen: TraceGenerator,
    ready_ps: u64,
    ops_done: u64,
    waiting_read: Option<ReqId>,
    waiting_fence: bool,
    persists: HashSet<ReqId>,
    replay_op: Option<Op>,
}

/// The trace-driven simulator (see crate docs).
#[derive(Debug)]
pub struct Simulator;

impl Simulator {
    /// Runs `spec` under `cfg`, seeding the trace generators and the
    /// fallback-injection RNG from `seed`. Warmup runs the caches
    /// functionally; the returned result covers only the timed phase.
    pub fn run_workload(spec: WorkloadSpec, cfg: SimConfig, seed: u64) -> SimResult {
        let omv = cfg.scheme.is_proposal() && !cfg.force_omv_off;
        let mut hierarchy = Hierarchy::new(HierarchyConfig {
            cores: cfg.cores,
            omv_enabled: omv,
            ..HierarchyConfig::paper(omv)
        });

        // Per-core generators; WHISPER-style workloads run as separate
        // processes (disjoint address spaces), SPLASH-style threads share
        // the heap.
        let shared = spec.class == WorkloadClass::Scientific;
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|c| Core {
                gen: TraceGenerator::new(spec, seed.wrapping_add(c as u64 * 7919)),
                ready_ps: 0,
                ops_done: 0,
                waiting_read: None,
                waiting_fence: false,
                persists: HashSet::new(),
                replay_op: None,
            })
            .collect();

        let addr_of = |core: usize, r: MemRef| -> (u64, u64) {
            // (cache address, rank-local block address)
            let (foot, off) = if r.pm {
                (spec.pm_blocks, if shared { 0 } else { core as u64 })
            } else {
                (spec.dram_blocks, if shared { 0 } else { core as u64 })
            };
            let local = off * foot + r.addr;
            let cache = if r.pm { PM_BASE | local } else { local };
            (cache, local)
        };

        // ---- Warmup: functional cache exercise, no timing. ----
        for c in 0..cfg.cores {
            for _ in 0..cfg.warmup_ops {
                let op = cores[c].gen.next_op();
                match op {
                    Op::Load(r) => {
                        let (ca, _) = addr_of(c, r);
                        let _ = hierarchy.load(c, ca, r.pm);
                    }
                    Op::Store(r) => {
                        let (ca, _) = addr_of(c, r);
                        let _ = hierarchy.store(c, ca, r.pm);
                    }
                    Op::Clwb(r) => {
                        let (ca, _) = addr_of(c, r);
                        let _ = hierarchy.clwb(c, ca, r.pm);
                    }
                    _ => {}
                }
            }
        }
        hierarchy.reset_stats();

        // ---- Timed phase. ----
        let mut mem_cfg = MemConfig::paper_hybrid(cfg.nvram.timing());
        if let Scheme::Proposal { c_factor } = cfg.scheme {
            mem_cfg = mem_cfg.with_proposal_write_slowing(c_factor);
        }
        let mut mc = MemoryController::new(mem_cfg);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00_DEAD_BEEF);
        let mut next_id: ReqId = 1;
        let mut read_waiters: Vec<(ReqId, usize)> = Vec::new();

        let mut demand = [0u64; 4]; // pm_r, pm_w, dram_r, dram_w
        let mut fallbacks_injected = 0u64;
        let mut dirty_samples: Vec<f64> = Vec::new();
        let mut ops_since_sample = 0u64;

        let total_target = cfg.measure_ops * cfg.cores as u64;
        let mut total_done = 0u64;

        'outer: loop {
            // Deliver completions.
            for comp in mc.drain_completions() {
                if let Some(pos) = read_waiters.iter().position(|&(id, _)| id == comp.id) {
                    let (_, core) = read_waiters.swap_remove(pos);
                    let c = &mut cores[core];
                    if c.waiting_read == Some(comp.id) {
                        c.waiting_read = None;
                        c.ready_ps = c.ready_ps.max(comp.finish_ps);
                    }
                }
                for c in cores.iter_mut() {
                    if c.persists.remove(&comp.id) && c.waiting_fence && c.persists.is_empty() {
                        c.waiting_fence = false;
                        c.ready_ps = c.ready_ps.max(comp.finish_ps);
                    }
                }
            }

            if total_done >= total_target {
                break 'outer;
            }

            // Pick the earliest runnable core.
            let runnable = cores
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.waiting_read.is_none() && !c.waiting_fence && c.ops_done < cfg.measure_ops
                })
                .min_by_key(|(_, c)| c.ready_ps)
                .map(|(i, _)| i);

            let Some(ci) = runnable else {
                // Everybody is blocked: advance the memory controller to
                // its next schedulable event.
                match mc.next_issue_time() {
                    Some(t) => {
                        mc.advance_to(t.max(mc.now_ps()) + 1);
                        continue;
                    }
                    None => {
                        // Blocked with an empty controller: only possible
                        // if every unfinished core hit its quota while a
                        // peer still runs; re-check the exit condition.
                        if cores.iter().all(|c| c.ops_done >= cfg.measure_ops) {
                            break 'outer;
                        }
                        unreachable!("deadlock: cores blocked, controller empty");
                    }
                }
            };

            let now = cores[ci].ready_ps;
            mc.advance_to(now);

            // Back-pressure: leave room for the op's worst-case traffic.
            let need_reads = if cfg.scheme.is_proposal() {
                cfg.fallback_blocks + 2
            } else {
                2
            };
            if !mc.can_accept_write() || mc.pending() > 240 - need_reads {
                cores[ci].ready_ps = now + 20_000; // retry in 20 ns
                continue;
            }

            let op = cores[ci]
                .replay_op
                .take()
                .unwrap_or_else(|| cores[ci].gen.next_op());
            cores[ci].ops_done += 1;
            total_done += 1;
            ops_since_sample += 1;
            if ops_since_sample >= cfg.sample_interval {
                ops_since_sample = 0;
                dirty_samples.push(hierarchy.dirty_pm_fraction());
            }

            match op {
                Op::Compute(n) => {
                    cores[ci].ready_ps += n as u64 * cfg.core_period_ps;
                }
                Op::Load(r) => {
                    let (ca, la) = addr_of(ci, r);
                    let acts = hierarchy.load(ci, ca, r.pm);
                    let lat = Self::hit_latency(&acts, &cfg);
                    cores[ci].ready_ps += lat;
                    Self::emit_actions(
                        &acts,
                        ci,
                        la,
                        r.pm,
                        &mut mc,
                        &mut next_id,
                        &mut read_waiters,
                        &mut cores,
                        &mut demand,
                        true,
                        &cfg,
                    );
                    // Proposal: occasional VLEW-fallback force-fetch on PM
                    // demand reads (§VI).
                    if cfg.scheme.is_proposal()
                        && r.pm
                        && acts.llc_hit == Some(false)
                        && rng.gen_bool(cfg.fallback_prob)
                    {
                        fallbacks_injected += 1;
                        let stripe_base = la & !31;
                        for k in 0..cfg.fallback_blocks as u64 - 1 {
                            if mc.can_accept_read() {
                                let id = next_id;
                                next_id += 1;
                                let _ = mc.enqueue(MemRequest::read(
                                    id,
                                    stripe_base + k,
                                    RankKind::Nvram,
                                ));
                            }
                        }
                    }
                }
                Op::Store(r) => {
                    let (ca, la) = addr_of(ci, r);
                    let acts = hierarchy.store(ci, ca, r.pm);
                    cores[ci].ready_ps += cfg.core_period_ps; // store buffer
                    Self::emit_actions(
                        &acts,
                        ci,
                        la,
                        r.pm,
                        &mut mc,
                        &mut next_id,
                        &mut read_waiters,
                        &mut cores,
                        &mut demand,
                        false,
                        &cfg,
                    );
                }
                Op::Clwb(r) => {
                    let (ca, la) = addr_of(ci, r);
                    let acts = hierarchy.clwb(ci, ca, r.pm);
                    cores[ci].ready_ps += 3 * cfg.core_period_ps;
                    Self::emit_persist_writes(
                        &acts,
                        ci,
                        la,
                        &mut mc,
                        &mut next_id,
                        &mut cores,
                        &mut demand,
                        &cfg,
                    );
                }
                Op::Fence => {
                    if !cores[ci].persists.is_empty() {
                        cores[ci].waiting_fence = true;
                    }
                }
            }
        }

        // Close out: measure elapsed time as the point the last op retired.
        let end_ps = cores
            .iter()
            .map(|c| c.ready_ps)
            .max()
            .unwrap_or(0)
            .max(mc.now_ps());
        mc.finalize_eur();
        let stats = mc.stats().clone();
        let llc = hierarchy.llc_stats();
        let dirty_pm_avg = if dirty_samples.is_empty() {
            hierarchy.dirty_pm_fraction()
        } else {
            dirty_samples.iter().sum::<f64>() / dirty_samples.len() as f64
        };

        SimResult {
            workload: spec.name.to_string(),
            ops_measured: total_done,
            measured_ps: end_ps,
            pm_reads: demand[0],
            pm_writes: demand[1],
            dram_reads: demand[2],
            dram_writes: demand[3],
            c_factor: mc.eur().c_factor(),
            omv_hit_rate: llc.omv_hit_rate(),
            omv_misses: llc.omv_misses,
            dirty_pm_avg,
            fallbacks_injected,
            llc_hit_rate: llc.hit_rate(),
            row_hit_rate: stats.row_hit_rate(),
            write_row_hit_rate: if stats.write_issues == 0 {
                0.0
            } else {
                stats.write_row_hits as f64 / stats.write_issues as f64
            },
        }
    }

    fn hit_latency(acts: &MemActions, cfg: &SimConfig) -> u64 {
        if acts.l1_hit {
            cfg.core_period_ps
        } else {
            // L1 miss pays the LLC lookup; a miss beyond that blocks on
            // the demand read completion instead.
            14 * cfg.core_period_ps
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_actions(
        acts: &MemActions,
        core: usize,
        rank_local_addr: u64,
        is_pm: bool,
        mc: &mut MemoryController,
        next_id: &mut ReqId,
        read_waiters: &mut Vec<(ReqId, usize)>,
        cores: &mut [Core],
        demand: &mut [u64; 4],
        blocking: bool,
        cfg: &SimConfig,
    ) {
        for &(_, pm) in &acts.mem_reads {
            let rank = if pm { RankKind::Nvram } else { RankKind::Dram };
            let id = *next_id;
            *next_id += 1;
            demand[if pm { 0 } else { 2 }] += 1;
            if mc
                .enqueue(MemRequest::read(id, rank_local_addr, rank))
                .is_ok()
                && blocking
            {
                cores[core].waiting_read = Some(id);
                read_waiters.push((id, core));
            }
        }
        let _ = is_pm;
        Self::emit_eviction_writes(acts, mc, next_id, demand, cfg);
    }

    fn emit_eviction_writes(
        acts: &MemActions,
        mc: &mut MemoryController,
        next_id: &mut ReqId,
        demand: &mut [u64; 4],
        cfg: &SimConfig,
    ) {
        for w in &acts.mem_writes {
            let rank = if w.is_pm {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            // An OMV miss costs an extra PM read of the old value before
            // the write can carry old ⊕ new.
            let omv_miss = cfg.scheme.is_proposal()
                && (w.omv_served == Some(false) || (cfg.force_omv_off && w.is_pm));
            if omv_miss && mc.can_accept_read() {
                let id = *next_id;
                *next_id += 1;
                let _ = mc.enqueue(MemRequest::read(id, w.addr & 0xFFFF_FFFF, rank));
            }
            demand[if w.is_pm { 1 } else { 3 }] += 1;
            let id = *next_id;
            *next_id += 1;
            let _ = mc.enqueue(MemRequest::write(id, w.addr & 0xFFFF_FFFF, rank));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_persist_writes(
        acts: &MemActions,
        core: usize,
        rank_local_addr: u64,
        mc: &mut MemoryController,
        next_id: &mut ReqId,
        cores: &mut [Core],
        demand: &mut [u64; 4],
        cfg: &SimConfig,
    ) {
        for w in &acts.mem_writes {
            let rank = if w.is_pm {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            let omv_miss = w.omv_served == Some(false) || (cfg.force_omv_off && w.is_pm);
            if cfg.scheme.is_proposal() && omv_miss && mc.can_accept_read() {
                let id = *next_id;
                *next_id += 1;
                let _ = mc.enqueue(MemRequest::read(id, rank_local_addr, rank));
            }
            demand[if w.is_pm { 1 } else { 3 }] += 1;
            let id = *next_id;
            *next_id += 1;
            // ADR persistence domain: a write accepted by the memory
            // controller is durable, so the fence does not wait on it
            // (the WHISPER-era assumption the paper's workloads rely on).
            let _ = mc.enqueue(MemRequest::write(id, rank_local_addr, rank));
            let _ = core;
            let _ = &cores;
        }
    }
}
