//! The event-driven full-system simulation loop.

use std::collections::HashSet;

use pmck_cachesim::{Hierarchy, HierarchyConfig, MemActions};
use pmck_core::{ChipkillConfig, CoreStats, LayerStats, ReadPath, Stack, StackBuilder};
use pmck_memsim::{MemConfig, MemRequest, MemoryController, RankKind, ReqId};
use pmck_workloads::{MemRef, Op, TraceGenerator, WorkloadClass, WorkloadSpec};

use crate::config::{Scheme, SimConfig};
use crate::metrics::SimResult;

/// Cache-address bit marking the persistent-memory region (keeps PM and
/// DRAM blocks from aliasing in the cache hierarchy).
const PM_BASE: u64 = 1 << 40;

struct Core {
    gen: TraceGenerator,
    ready_ps: u64,
    ops_done: u64,
    waiting_read: Option<ReqId>,
    waiting_fence: bool,
    persists: HashSet<ReqId>,
    replay_op: Option<Op>,
}

/// A deterministic engine-write payload: the first 8 bytes carry the
/// address/version tag (so each rewrite perturbs only one data chip plus
/// the RS check bytes), the rest stays an address-derived constant.
fn block_pattern(addr: u64, version: u32) -> [u8; 64] {
    let mut b = [0u8; 64];
    let tag = (addr as u32).wrapping_mul(0x9E37_79B9) ^ version.wrapping_mul(0x85EB_CA6B);
    b[..4].copy_from_slice(&tag.to_le_bytes());
    b[4..8].copy_from_slice(&version.to_le_bytes());
    for (i, x) in b.iter_mut().enumerate().skip(8) {
        *x = (addr as u8).wrapping_mul(37).wrapping_add(i as u8);
    }
    b
}

/// The coupling between the timing loop and the functional chipkill
/// stack: every PM demand read and write the timing loop schedules also
/// executes against a composed `chipkill + patrol` [`Stack`], and the
/// decode path of each read decides whether the timing loop charges a
/// VLEW-fallback force-fetch (§VI). Bit errors arrive at
/// [`SimConfig::engine_rber`] once per [`SimConfig::engine_interval`]
/// accesses, with the patrol layer paced to one full pass per interval —
/// the §V-C steady state whose emergent fallback rate is the paper's
/// ~0.02%, replacing the RNG draw this module previously used.
struct EngineCoupling {
    stack: Stack,
    versions: Vec<u32>,
    accesses: u64,
    interval: u64,
    rber: f64,
}

impl EngineCoupling {
    fn new(cfg: &SimConfig, seed: u64) -> Self {
        let blocks = cfg.engine_blocks.max(32);
        // One full patrol pass (blocks/32 steps of 32 blocks) per
        // injection interval.
        let steps_per_pass = (blocks / 32).max(1);
        let every = (cfg.engine_interval / steps_per_pass).max(1);
        let stack = StackBuilder::proposal(blocks, ChipkillConfig::default())
            .patrolled(32, every)
            .seed(seed ^ 0x5EED_FACE_CAFE_F00D)
            .build();
        let blocks = stack.num_blocks();
        EngineCoupling {
            stack,
            versions: vec![0u32; blocks as usize],
            accesses: 0,
            interval: cfg.engine_interval.max(1),
            rber: cfg.engine_rber,
        }
    }

    fn tick(&mut self) {
        self.accesses += 1;
        if self.accesses.is_multiple_of(self.interval) && self.rber > 0.0 {
            let _ = self.stack.inject_bit_errors(self.rber);
        }
    }

    /// Executes one demand read against the functional stack; the
    /// returned path is the real decode outcome for this access (`None`
    /// for a detected-uncorrectable read).
    fn on_read(&mut self, la: u64) -> Option<ReadPath> {
        self.tick();
        let addr = la % self.stack.num_blocks();
        // Only the decode path matters here; read_into skips the
        // outcome copy the timing loop would throw away anyway.
        let mut buf = [0u8; 64];
        self.stack.read_into(addr, &mut buf).ok()
    }

    /// Executes one demand write against the functional stack.
    fn on_write(&mut self, la: u64) {
        self.tick();
        let addr = la % self.stack.num_blocks();
        let v = self.versions[addr as usize].wrapping_add(1);
        self.versions[addr as usize] = v;
        let _ = self.stack.write(addr, &block_pattern(addr, v));
    }

    fn core_stats(&self) -> Option<CoreStats> {
        self.stack.core_stats()
    }

    /// Blended ECC storage cost of the coupled stack: tiered stacks
    /// report the live region-weighted mix, single-tier stacks their
    /// layout's fixed cost.
    fn storage_cost(&self) -> f64 {
        self.stack
            .tier_report()
            .map(|r| r.blended_cost())
            .unwrap_or_else(|| ChipkillConfig::default().total_storage_cost())
    }

    fn layers(&self) -> Vec<(String, LayerStats)> {
        self.stack
            .layers()
            .iter()
            .map(|(label, stats)| (label.to_string(), *stats))
            .collect()
    }
}

/// Owns the memory-controller side of the loop: request IDs, demand
/// counters, and — for proposal runs — the [`EngineCoupling`] that turns
/// PM traffic into functional-stack accesses.
struct Emitter {
    mc: MemoryController,
    next_id: ReqId,
    demand: [u64; 4], // pm_r, pm_w, dram_r, dram_w
    coupling: Option<EngineCoupling>,
    fallback_blocks: usize,
    proposal: bool,
    force_omv_off: bool,
    fallback_events: u64,
}

impl Emitter {
    /// Drives one PM demand read through the functional stack; returns
    /// whether the timing loop must charge a fallback force-fetch.
    fn pm_read_needs_force_fetch(&mut self, la: u64) -> bool {
        let Some(coupling) = &mut self.coupling else {
            return false;
        };
        match coupling.on_read(la) {
            Some(ReadPath::VlewFallback { .. }) | Some(ReadPath::VlewListDecoded { .. }) => {
                self.fallback_events += 1;
                true
            }
            // A failed-chip read stripe-fetches for erasure decode too,
            // and an uncorrectable read pays the long path without
            // counting as a VLEW fallback.
            Some(ReadPath::ChipkillErasure { .. }) | None => true,
            Some(_) => false,
        }
    }

    /// Enqueues the §VI force-fetch: the rest of the 32-block stripe
    /// plus adjacent blocks (37 total including the demand read).
    fn force_fetch(&mut self, la: u64) {
        let stripe_base = la & !31;
        for k in 0..self.fallback_blocks as u64 - 1 {
            if self.mc.can_accept_read() {
                let id = self.next_id;
                self.next_id += 1;
                let _ = self
                    .mc
                    .enqueue(MemRequest::read(id, stripe_base + k, RankKind::Nvram));
            }
        }
    }

    fn emit_actions(
        &mut self,
        acts: &MemActions,
        core: usize,
        rank_local_addr: u64,
        read_waiters: &mut Vec<(ReqId, usize)>,
        cores: &mut [Core],
        blocking: bool,
    ) {
        for &(_, pm) in &acts.mem_reads {
            let rank = if pm { RankKind::Nvram } else { RankKind::Dram };
            let id = self.next_id;
            self.next_id += 1;
            self.demand[if pm { 0 } else { 2 }] += 1;
            if self
                .mc
                .enqueue(MemRequest::read(id, rank_local_addr, rank))
                .is_ok()
                && blocking
            {
                cores[core].waiting_read = Some(id);
                read_waiters.push((id, core));
            }
            // Proposal: the functional stack decodes this PM read; a
            // VLEW fallback (or erasure decode) forces the stripe fetch.
            if pm && self.pm_read_needs_force_fetch(rank_local_addr) {
                self.force_fetch(rank_local_addr);
            }
        }
        self.emit_eviction_writes(acts);
    }

    fn emit_eviction_writes(&mut self, acts: &MemActions) {
        for w in &acts.mem_writes {
            let rank = if w.is_pm {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            let addr = w.addr & 0xFFFF_FFFF;
            // An OMV miss costs an extra PM read of the old value before
            // the write can carry old ⊕ new.
            let omv_miss =
                self.proposal && (w.omv_served == Some(false) || (self.force_omv_off && w.is_pm));
            if omv_miss && self.mc.can_accept_read() {
                let id = self.next_id;
                self.next_id += 1;
                let _ = self.mc.enqueue(MemRequest::read(id, addr, rank));
            }
            self.demand[if w.is_pm { 1 } else { 3 }] += 1;
            if w.is_pm {
                if let Some(coupling) = &mut self.coupling {
                    coupling.on_write(addr);
                }
            }
            let id = self.next_id;
            self.next_id += 1;
            let _ = self.mc.enqueue(MemRequest::write(id, addr, rank));
        }
    }

    fn emit_persist_writes(&mut self, acts: &MemActions, rank_local_addr: u64) {
        for w in &acts.mem_writes {
            let rank = if w.is_pm {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            let omv_miss = w.omv_served == Some(false) || (self.force_omv_off && w.is_pm);
            if self.proposal && omv_miss && self.mc.can_accept_read() {
                let id = self.next_id;
                self.next_id += 1;
                let _ = self.mc.enqueue(MemRequest::read(id, rank_local_addr, rank));
            }
            self.demand[if w.is_pm { 1 } else { 3 }] += 1;
            if w.is_pm {
                if let Some(coupling) = &mut self.coupling {
                    coupling.on_write(rank_local_addr);
                }
            }
            let id = self.next_id;
            self.next_id += 1;
            // ADR persistence domain: a write accepted by the memory
            // controller is durable, so the fence does not wait on it
            // (the WHISPER-era assumption the paper's workloads rely on).
            let _ = self
                .mc
                .enqueue(MemRequest::write(id, rank_local_addr, rank));
        }
    }
}

/// The trace-driven simulator (see crate docs).
#[derive(Debug)]
pub struct Simulator;

impl Simulator {
    /// Runs `spec` under `cfg`, seeding the trace generators and the
    /// functional stack's fault-injection RNG from `seed`. Warmup runs
    /// the caches functionally; the returned result covers only the
    /// timed phase, during which every PM access of a proposal run also
    /// executes against the composed chipkill stack (VLEW-fallback
    /// latency events come from real decode outcomes).
    pub fn run_workload(spec: WorkloadSpec, cfg: SimConfig, seed: u64) -> SimResult {
        let omv = cfg.scheme.is_proposal() && !cfg.force_omv_off;
        let mut hierarchy = Hierarchy::new(HierarchyConfig {
            cores: cfg.cores,
            omv_enabled: omv,
            ..HierarchyConfig::paper(omv)
        });

        // Per-core generators; WHISPER-style workloads run as separate
        // processes (disjoint address spaces), SPLASH-style threads share
        // the heap.
        let shared = spec.class == WorkloadClass::Scientific;
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|c| Core {
                gen: TraceGenerator::new(spec, seed.wrapping_add(c as u64 * 7919)),
                ready_ps: 0,
                ops_done: 0,
                waiting_read: None,
                waiting_fence: false,
                persists: HashSet::new(),
                replay_op: None,
            })
            .collect();

        let addr_of = |core: usize, r: MemRef| -> (u64, u64) {
            // (cache address, rank-local block address)
            let (foot, off) = if r.pm {
                (spec.pm_blocks, if shared { 0 } else { core as u64 })
            } else {
                (spec.dram_blocks, if shared { 0 } else { core as u64 })
            };
            let local = off * foot + r.addr;
            let cache = if r.pm { PM_BASE | local } else { local };
            (cache, local)
        };

        // ---- Warmup: functional cache exercise, no timing. ----
        for c in 0..cfg.cores {
            for _ in 0..cfg.warmup_ops {
                let op = cores[c].gen.next_op();
                match op {
                    Op::Load(r) => {
                        let (ca, _) = addr_of(c, r);
                        let _ = hierarchy.load(c, ca, r.pm);
                    }
                    Op::Store(r) => {
                        let (ca, _) = addr_of(c, r);
                        let _ = hierarchy.store(c, ca, r.pm);
                    }
                    Op::Clwb(r) => {
                        let (ca, _) = addr_of(c, r);
                        let _ = hierarchy.clwb(c, ca, r.pm);
                    }
                    _ => {}
                }
            }
        }
        hierarchy.reset_stats();

        // ---- Timed phase. ----
        let mut mem_cfg = MemConfig::paper_hybrid(cfg.nvram.timing());
        if let Scheme::Proposal { c_factor } = cfg.scheme {
            mem_cfg = mem_cfg.with_proposal_write_slowing(c_factor);
        }
        let mut emitter = Emitter {
            mc: MemoryController::new(mem_cfg),
            next_id: 1,
            demand: [0u64; 4],
            coupling: cfg
                .scheme
                .is_proposal()
                .then(|| EngineCoupling::new(&cfg, seed)),
            fallback_blocks: cfg.fallback_blocks,
            proposal: cfg.scheme.is_proposal(),
            force_omv_off: cfg.force_omv_off,
            fallback_events: 0,
        };
        let mut read_waiters: Vec<(ReqId, usize)> = Vec::new();

        let mut dirty_samples: Vec<f64> = Vec::new();
        let mut ops_since_sample = 0u64;

        let total_target = cfg.measure_ops * cfg.cores as u64;
        let mut total_done = 0u64;

        'outer: loop {
            // Deliver completions.
            for comp in emitter.mc.drain_completions() {
                if let Some(pos) = read_waiters.iter().position(|&(id, _)| id == comp.id) {
                    let (_, core) = read_waiters.swap_remove(pos);
                    let c = &mut cores[core];
                    if c.waiting_read == Some(comp.id) {
                        c.waiting_read = None;
                        c.ready_ps = c.ready_ps.max(comp.finish_ps);
                    }
                }
                for c in cores.iter_mut() {
                    if c.persists.remove(&comp.id) && c.waiting_fence && c.persists.is_empty() {
                        c.waiting_fence = false;
                        c.ready_ps = c.ready_ps.max(comp.finish_ps);
                    }
                }
            }

            if total_done >= total_target {
                break 'outer;
            }

            // Pick the earliest runnable core.
            let runnable = cores
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.waiting_read.is_none() && !c.waiting_fence && c.ops_done < cfg.measure_ops
                })
                .min_by_key(|(_, c)| c.ready_ps)
                .map(|(i, _)| i);

            let Some(ci) = runnable else {
                // Everybody is blocked: advance the memory controller to
                // its next schedulable event.
                match emitter.mc.next_issue_time() {
                    Some(t) => {
                        let now = emitter.mc.now_ps();
                        emitter.mc.advance_to(t.max(now) + 1);
                        continue;
                    }
                    None => {
                        // Blocked with an empty controller: only possible
                        // if every unfinished core hit its quota while a
                        // peer still runs; re-check the exit condition.
                        if cores.iter().all(|c| c.ops_done >= cfg.measure_ops) {
                            break 'outer;
                        }
                        unreachable!("deadlock: cores blocked, controller empty");
                    }
                }
            };

            let now = cores[ci].ready_ps;
            emitter.mc.advance_to(now);

            // Back-pressure: leave room for the op's worst-case traffic.
            let need_reads = if cfg.scheme.is_proposal() {
                cfg.fallback_blocks + 2
            } else {
                2
            };
            if !emitter.mc.can_accept_write() || emitter.mc.pending() > 240 - need_reads {
                cores[ci].ready_ps = now + 20_000; // retry in 20 ns
                continue;
            }

            let op = cores[ci]
                .replay_op
                .take()
                .unwrap_or_else(|| cores[ci].gen.next_op());
            cores[ci].ops_done += 1;
            total_done += 1;
            ops_since_sample += 1;
            if ops_since_sample >= cfg.sample_interval {
                ops_since_sample = 0;
                dirty_samples.push(hierarchy.dirty_pm_fraction());
            }

            match op {
                Op::Compute(n) => {
                    cores[ci].ready_ps += n as u64 * cfg.core_period_ps;
                }
                Op::Load(r) => {
                    let (ca, la) = addr_of(ci, r);
                    let acts = hierarchy.load(ci, ca, r.pm);
                    let lat = Self::hit_latency(&acts, &cfg);
                    cores[ci].ready_ps += lat;
                    emitter.emit_actions(&acts, ci, la, &mut read_waiters, &mut cores, true);
                }
                Op::Store(r) => {
                    let (ca, la) = addr_of(ci, r);
                    let acts = hierarchy.store(ci, ca, r.pm);
                    cores[ci].ready_ps += cfg.core_period_ps; // store buffer
                    emitter.emit_actions(&acts, ci, la, &mut read_waiters, &mut cores, false);
                }
                Op::Clwb(r) => {
                    let (ca, la) = addr_of(ci, r);
                    let acts = hierarchy.clwb(ci, ca, r.pm);
                    cores[ci].ready_ps += 3 * cfg.core_period_ps;
                    emitter.emit_persist_writes(&acts, la);
                }
                Op::Fence => {
                    if !cores[ci].persists.is_empty() {
                        cores[ci].waiting_fence = true;
                    }
                }
            }
        }

        // Close out: measure elapsed time as the point the last op retired.
        let end_ps = cores
            .iter()
            .map(|c| c.ready_ps)
            .max()
            .unwrap_or(0)
            .max(emitter.mc.now_ps());
        emitter.mc.finalize_eur();
        let stats = emitter.mc.stats().clone();
        let llc = hierarchy.llc_stats();
        let dirty_pm_avg = if dirty_samples.is_empty() {
            hierarchy.dirty_pm_fraction()
        } else {
            dirty_samples.iter().sum::<f64>() / dirty_samples.len() as f64
        };
        let engine = emitter.coupling.as_ref().and_then(|c| c.core_stats());
        let storage_cost = emitter.coupling.as_ref().map(|c| c.storage_cost());
        let layers = emitter
            .coupling
            .as_ref()
            .map(|c| c.layers())
            .unwrap_or_default();

        SimResult {
            workload: spec.name.to_string(),
            ops_measured: total_done,
            measured_ps: end_ps,
            pm_reads: emitter.demand[0],
            pm_writes: emitter.demand[1],
            dram_reads: emitter.demand[2],
            dram_writes: emitter.demand[3],
            c_factor: emitter.mc.eur().c_factor(),
            omv_hit_rate: llc.omv_hit_rate(),
            omv_misses: llc.omv_misses,
            dirty_pm_avg,
            vlew_fallbacks: emitter.fallback_events,
            engine,
            storage_cost,
            layers,
            llc_hit_rate: llc.hit_rate(),
            row_hit_rate: stats.row_hit_rate(),
            write_row_hit_rate: if stats.write_issues == 0 {
                0.0
            } else {
                stats.write_row_hits as f64 / stats.write_issues as f64
            },
        }
    }

    fn hit_latency(acts: &MemActions, cfg: &SimConfig) -> u64 {
        if acts.l1_hit {
            cfg.core_period_ps
        } else {
            // L1 miss pays the LLC lookup; a miss beyond that blocks on
            // the demand read completion instead.
            14 * cfg.core_period_ps
        }
    }
}
