//! Command-line front end for the full-system simulator.
//!
//! ```text
//! pmck-sim [--workload NAME | --all] [--nvram reram|pcm] [--quick] [--seed N] [--json]
//!          [--metrics]
//! ```
//!
//! Runs the baseline and the proposal over the same trace and prints the
//! normalized performance (Figures 16/17) plus the per-workload
//! characterization metrics (Figures 10, 14, 15, 18).

use std::process::ExitCode;

use pmck_rt::json::{Json, ToJson};
use pmck_sim::{run_comparison_with, NvramKind, SimConfig};
use pmck_workloads::WorkloadSpec;

struct Args {
    workloads: Vec<WorkloadSpec>,
    nvram: NvramKind,
    quick: bool,
    seed: u64,
    json: bool,
    metrics: bool,
    measure_ops: Option<u64>,
    warmup_ops: Option<u64>,
    engine_rber: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut workloads = Vec::new();
    let mut nvram = NvramKind::ReRam;
    let mut quick = false;
    let mut seed = 42;
    let mut json = false;
    let mut metrics = false;
    let mut all = false;
    let mut measure_ops = None;
    let mut warmup_ops = None;
    let mut engine_rber = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--workload" | "-w" => {
                i += 1;
                let name = argv.get(i).ok_or("--workload needs a name")?;
                workloads.push(
                    WorkloadSpec::by_name(name)
                        .ok_or_else(|| format!("unknown workload {name}"))?,
                );
            }
            "--all" => all = true,
            "--nvram" => {
                i += 1;
                nvram = match argv.get(i).map(String::as_str) {
                    Some("reram") => NvramKind::ReRam,
                    Some("pcm") => NvramKind::Pcm,
                    other => return Err(format!("unknown nvram {other:?}")),
                };
            }
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--measure-ops" => {
                i += 1;
                measure_ops = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--measure-ops needs an integer")?,
                );
            }
            "--warmup-ops" => {
                i += 1;
                warmup_ops = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--warmup-ops needs an integer")?,
                );
            }
            "--engine-rber" => {
                i += 1;
                engine_rber = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--engine-rber needs a float")?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pmck-sim [--workload NAME]... [--all] [--nvram reram|pcm] \
                            [--quick] [--seed N] [--json] [--metrics] [--measure-ops N] \
                            [--warmup-ops N] [--engine-rber P]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    if all || workloads.is_empty() {
        workloads = WorkloadSpec::all();
    }
    Ok(Args {
        workloads,
        nvram,
        quick,
        seed,
        json,
        metrics,
        measure_ops,
        warmup_ops,
        engine_rber,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.json {
        println!(
            "{:<10} {:>9} {:>7} {:>8} {:>9} {:>9} {:>8} {:>6}",
            "workload", "norm.perf", "C", "OMV-hit", "dirtyPM%", "PMwr%", "LLChit%", "fallb"
        );
    }
    let mut results = Vec::new();
    for spec in &args.workloads {
        let cmp = run_comparison_with(*spec, args.seed, |scheme| {
            let mut cfg = if args.quick {
                SimConfig::quick(args.nvram, scheme)
            } else {
                SimConfig::paper(args.nvram, scheme)
            };
            if let Some(m) = args.measure_ops {
                cfg.measure_ops = m;
            }
            if let Some(w) = args.warmup_ops {
                cfg.warmup_ops = w;
            }
            if let Some(r) = args.engine_rber {
                cfg.engine_rber = r;
            }
            cfg
        });
        if args.json {
            results.push(cmp);
            continue;
        }
        let (_, pm_w, _, _) = cmp.proposal.access_breakdown();
        println!(
            "{:<10} {:>9.4} {:>7.3} {:>8.4} {:>9.4} {:>9.4} {:>8.4} {:>6}",
            cmp.baseline.workload,
            cmp.normalized_performance(),
            cmp.c_factor,
            cmp.proposal.omv_hit_rate,
            cmp.proposal.dirty_pm_avg * 100.0,
            pm_w * 100.0,
            cmp.proposal.llc_hit_rate,
            cmp.proposal.vlew_fallbacks
        );
        results.push(cmp);
    }
    if args.metrics {
        // Uniform observability: every run's counters and gauges in the
        // registry's JSON layout, keyed by workload and scheme.
        let reg = pmck_rt::metrics::MetricsRegistry::new();
        for cmp in &results {
            let wl = &cmp.baseline.workload;
            cmp.baseline
                .publish_metrics(&reg, &format!("{wl}.baseline"));
            cmp.proposal
                .publish_metrics(&reg, &format!("{wl}.proposal"));
        }
        eprintln!("{}", reg.to_json().pretty());
    }
    if args.json {
        let out = Json::Arr(results.iter().map(ToJson::to_json).collect());
        println!("{}", out.pretty());
    } else {
        let avg: f64 = results
            .iter()
            .map(|c| c.normalized_performance())
            .sum::<f64>()
            / results.len().max(1) as f64;
        println!(
            "---\naverage normalized performance: {avg:.4} ({} workloads, {})",
            results.len(),
            args.nvram.name()
        );
    }
    ExitCode::SUCCESS
}
