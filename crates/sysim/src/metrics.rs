//! Simulation results.

use pmck_core::{CoreStats, LayerStats};
use pmck_rt::json::{Json, ToJson};
use pmck_rt::metrics::MetricsRegistry;

/// The outcome of one timed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Total trace operations executed in the measured phase (all cores).
    pub ops_measured: u64,
    /// Simulated duration of the measured phase, picoseconds.
    pub measured_ps: u64,
    /// Off-chip reads to the PM rank.
    pub pm_reads: u64,
    /// Off-chip writes to the PM rank.
    pub pm_writes: u64,
    /// Off-chip reads to the DRAM rank.
    pub dram_reads: u64,
    /// Off-chip writes to the DRAM rank.
    pub dram_writes: u64,
    /// Measured C factor (VLEW code-bit writes per PM write).
    pub c_factor: f64,
    /// OMV service rate (Figure 18); 0 for the baseline.
    pub omv_hit_rate: f64,
    /// PM writes that missed their OMV and paid an extra read.
    pub omv_misses: u64,
    /// Average fraction of cache lines holding dirty PM blocks
    /// (Figure 10).
    pub dirty_pm_avg: f64,
    /// VLEW-fallback force-fetch events the timing loop charged. These
    /// come from real decode outcomes of the coupled functional stack —
    /// one per demand read the engine served via
    /// [`pmck_core::ReadPath::VlewFallback`] — and equal the engine's
    /// [`CoreStats::fallbacks`] for the run.
    pub vlew_fallbacks: u64,
    /// The coupled chipkill engine's counters (proposal runs only).
    pub engine: Option<CoreStats>,
    /// Total ECC storage cost of the coupled stack as a fraction of the
    /// data capacity (proposal runs only). Single-tier stacks report
    /// their layout's fixed cost (the paper's ~27%); tiered stacks
    /// report the region-weighted blended cost.
    pub storage_cost: Option<f64>,
    /// Per-layer breakdown from the functional stack's
    /// [`pmck_core::AccessContext`], bottom-up order as first accessed.
    pub layers: Vec<(String, LayerStats)>,
    /// LLC demand hit rate.
    pub llc_hit_rate: f64,
    /// Memory-controller row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Row-buffer hit rate among writes only (batching diagnostic).
    pub write_row_hit_rate: f64,
}

impl SimResult {
    /// Performance proxy: operations per nanosecond.
    pub fn ops_per_ns(&self) -> f64 {
        if self.measured_ps == 0 {
            0.0
        } else {
            self.ops_measured as f64 * 1000.0 / self.measured_ps as f64
        }
    }

    /// The off-chip access breakdown as fractions `(pm_read, pm_write,
    /// dram_read, dram_write)` of all off-chip accesses (Figure 14).
    pub fn access_breakdown(&self) -> (f64, f64, f64, f64) {
        let total = (self.pm_reads + self.pm_writes + self.dram_reads + self.dram_writes) as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.pm_reads as f64 / total,
            self.pm_writes as f64 / total,
            self.dram_reads as f64 / total,
            self.dram_writes as f64 / total,
        )
    }
}

impl ToJson for SimResult {
    fn to_json(&self) -> Json {
        let mut layers = Json::object();
        for (label, stats) in &self.layers {
            layers = layers.with(label.as_str(), stats.to_json());
        }
        let mut out = Json::object()
            .with("workload", self.workload.as_str())
            .with("ops_measured", self.ops_measured)
            .with("measured_ps", self.measured_ps)
            .with("pm_reads", self.pm_reads)
            .with("pm_writes", self.pm_writes)
            .with("dram_reads", self.dram_reads)
            .with("dram_writes", self.dram_writes)
            .with("c_factor", self.c_factor)
            .with("omv_hit_rate", self.omv_hit_rate)
            .with("omv_misses", self.omv_misses)
            .with("dirty_pm_avg", self.dirty_pm_avg)
            .with("vlew_fallbacks", self.vlew_fallbacks)
            .with("layers", layers)
            .with("llc_hit_rate", self.llc_hit_rate)
            .with("row_hit_rate", self.row_hit_rate)
            .with("write_row_hit_rate", self.write_row_hit_rate);
        if let Some(engine) = &self.engine {
            out = out.with("engine", engine.to_json());
        }
        if let Some(cost) = self.storage_cost {
            out = out.with("total_storage_cost", cost);
        }
        out
    }
}

impl SimResult {
    /// Publishes the run's counters and rates into `reg` under
    /// `prefix.*`, the uniform observability surface shared with the
    /// memory controller, LLC, and chipkill engine. Engine counters land
    /// under `prefix.engine.*` and per-layer stats under
    /// `prefix.layer.<label>.*`.
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.ops_measured"), self.ops_measured);
        reg.set_counter(&format!("{prefix}.measured_ps"), self.measured_ps);
        reg.set_counter(&format!("{prefix}.pm_reads"), self.pm_reads);
        reg.set_counter(&format!("{prefix}.pm_writes"), self.pm_writes);
        reg.set_counter(&format!("{prefix}.dram_reads"), self.dram_reads);
        reg.set_counter(&format!("{prefix}.dram_writes"), self.dram_writes);
        reg.set_counter(&format!("{prefix}.omv_misses"), self.omv_misses);
        reg.set_counter(&format!("{prefix}.vlew_fallbacks"), self.vlew_fallbacks);
        reg.set_gauge(&format!("{prefix}.c_factor"), self.c_factor);
        reg.set_gauge(&format!("{prefix}.omv_hit_rate"), self.omv_hit_rate);
        reg.set_gauge(&format!("{prefix}.dirty_pm_avg"), self.dirty_pm_avg);
        reg.set_gauge(&format!("{prefix}.llc_hit_rate"), self.llc_hit_rate);
        reg.set_gauge(&format!("{prefix}.row_hit_rate"), self.row_hit_rate);
        reg.set_gauge(
            &format!("{prefix}.write_row_hit_rate"),
            self.write_row_hit_rate,
        );
        reg.set_gauge(&format!("{prefix}.ops_per_ns"), self.ops_per_ns());
        if let Some(engine) = &self.engine {
            engine.publish_metrics(reg, &format!("{prefix}.engine"));
        }
        if let Some(cost) = self.storage_cost {
            reg.set_gauge(&format!("{prefix}.total_storage_cost"), cost);
        }
        for (label, stats) in &self.layers {
            stats.publish_metrics(reg, &format!("{prefix}.layer.{label}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero() -> SimResult {
        SimResult {
            workload: "x".into(),
            ops_measured: 0,
            measured_ps: 0,
            pm_reads: 0,
            pm_writes: 0,
            dram_reads: 0,
            dram_writes: 0,
            c_factor: 0.0,
            omv_hit_rate: 0.0,
            omv_misses: 0,
            dirty_pm_avg: 0.0,
            vlew_fallbacks: 0,
            engine: None,
            storage_cost: None,
            layers: Vec::new(),
            llc_hit_rate: 0.0,
            row_hit_rate: 0.0,
            write_row_hit_rate: 0.0,
        }
    }

    #[test]
    fn ops_per_ns() {
        let mut r = zero();
        assert_eq!(r.ops_per_ns(), 0.0);
        r.ops_measured = 1000;
        r.measured_ps = 500_000; // 500 ns
        assert!((r.ops_per_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let mut r = zero();
        r.pm_reads = 10;
        r.pm_writes = 30;
        r.dram_reads = 50;
        r.dram_writes = 10;
        let (a, b, c, d) = r.access_breakdown();
        assert!((a + b + c + d - 1.0).abs() < 1e-12);
        assert!((b - 0.3).abs() < 1e-12);
    }

    #[test]
    fn json_includes_engine_and_layers_when_present() {
        let mut r = zero();
        r.engine = Some(CoreStats {
            fallbacks: 3,
            ..CoreStats::default()
        });
        r.layers = vec![(
            "chipkill".to_string(),
            LayerStats {
                reads: 7,
                ..LayerStats::default()
            },
        )];
        r.vlew_fallbacks = 3;
        r.storage_cost = Some(0.27);
        let dumped = r.to_json().dump();
        assert!(dumped.contains("\"vlew_fallbacks\":3"), "{dumped}");
        assert!(dumped.contains("\"engine\""), "{dumped}");
        assert!(dumped.contains("\"chipkill\""), "{dumped}");
        assert!(dumped.contains("\"total_storage_cost\""), "{dumped}");

        let reg = MetricsRegistry::new();
        r.publish_metrics(&reg, "sim");
        assert_eq!(reg.counter("sim.engine.fallbacks"), 3);
        assert_eq!(reg.counter("sim.layer.chipkill.reads"), 7);
        assert_eq!(reg.gauge("sim.total_storage_cost"), Some(0.27));
    }
}
