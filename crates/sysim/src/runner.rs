//! Baseline-vs-proposal orchestration: measure C, then compare.

use pmck_rt::json::{Json, ToJson};
use pmck_workloads::WorkloadSpec;

use crate::config::{NvramKind, Scheme, SimConfig};
use crate::metrics::SimResult;
use crate::system::Simulator;

/// A matched baseline/proposal pair over the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// The bit-error-correction baseline run.
    pub baseline: SimResult,
    /// The proposal run (OMV + write slowing + fallback traffic).
    pub proposal: SimResult,
    /// The C factor measured in the baseline run and applied to the
    /// proposal's `tWR` (Figure 15).
    pub c_factor: f64,
}

impl ToJson for ComparisonResult {
    fn to_json(&self) -> Json {
        Json::object()
            .with("baseline", self.baseline.to_json())
            .with("proposal", self.proposal.to_json())
            .with("c_factor", self.c_factor)
            .with("normalized_performance", self.normalized_performance())
    }
}

impl ComparisonResult {
    /// The proposal's performance normalized to the baseline
    /// (Figures 16/17): 1.0 = no overhead, 0.9 = 10% slower.
    pub fn normalized_performance(&self) -> f64 {
        let b = self.baseline.ops_per_ns();
        let p = self.proposal.ops_per_ns();
        if b == 0.0 {
            0.0
        } else {
            p / b
        }
    }
}

/// Runs a workload under the baseline, measures its C factor, then runs
/// the proposal with the iso-lifetime write slowing derived from that C —
/// the exact procedure of §VI.
pub fn run_comparison(
    spec: WorkloadSpec,
    nvram: NvramKind,
    seed: u64,
    quick: bool,
) -> ComparisonResult {
    run_comparison_with(spec, seed, |scheme| {
        if quick {
            SimConfig::quick(nvram, scheme)
        } else {
            SimConfig::paper(nvram, scheme)
        }
    })
}

/// As [`run_comparison`], but the caller supplies the configuration for
/// each scheme (custom op counts, ablation flags, …). The same C-factor
/// measurement protocol applies: the baseline run's measured C is fed to
/// the proposal's `Scheme::Proposal`.
pub fn run_comparison_with(
    spec: WorkloadSpec,
    seed: u64,
    mut make: impl FnMut(Scheme) -> SimConfig,
) -> ComparisonResult {
    let baseline = Simulator::run_workload(spec, make(Scheme::Baseline), seed);
    let c_factor = baseline.c_factor;
    let proposal = Simulator::run_workload(spec, make(Scheme::Proposal { c_factor }), seed);
    ComparisonResult {
        baseline,
        proposal,
        c_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_proposal_complete() {
        let spec = WorkloadSpec::by_name("btree").unwrap();
        let cmp = run_comparison(spec, NvramKind::ReRam, 1, true);
        assert!(cmp.baseline.ops_measured > 0);
        assert!(cmp.proposal.ops_measured > 0);
        assert_eq!(cmp.baseline.ops_measured, cmp.proposal.ops_measured);
        let np = cmp.normalized_performance();
        assert!(np > 0.5 && np < 1.2, "normalized perf {np}");
    }

    #[test]
    fn c_factor_is_measured_and_bounded() {
        let spec = WorkloadSpec::by_name("echo").unwrap();
        let cmp = run_comparison(spec, NvramKind::ReRam, 2, true);
        assert!(
            cmp.c_factor > 0.0 && cmp.c_factor <= 1.0,
            "C={}",
            cmp.c_factor
        );
    }

    #[test]
    fn proposal_reports_omv_rate_baseline_does_not() {
        let spec = WorkloadSpec::by_name("redis").unwrap();
        let cmp = run_comparison(spec, NvramKind::Pcm, 3, true);
        assert_eq!(cmp.baseline.omv_hit_rate, 0.0);
        assert!(
            cmp.proposal.omv_hit_rate > 0.5,
            "{}",
            cmp.proposal.omv_hit_rate
        );
    }
}
