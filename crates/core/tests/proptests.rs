//! Randomized tests for the chipkill engine's key invariants, driven by
//! seeded `pmck-rt` streams.

use pmck_core::{ChipkillConfig, ChipkillMemory, ReadPath};
use pmck_rt::rng::{Rng, StdRng};

fn filled(seed: u64, blocks: u64) -> (ChipkillMemory, Vec<[u8; 64]>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
    let data: Vec<[u8; 64]> = (0..mem.num_blocks())
        .map(|a| {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            mem.write_block(a, &b).unwrap();
            b
        })
        .collect();
    (mem, data, rng)
}

#[test]
fn reads_always_return_written_data_under_runtime_rber() {
    let mut meta = StdRng::seed_from_u64(0xC03E_0001);
    for _ in 0..16 {
        // At runtime RBER (2e-4) every read must return exactly what was
        // written — through whichever path.
        let (mut mem, data, mut rng) = filled(meta.gen(), 32);
        mem.inject_bit_errors(2e-4, &mut rng);
        for (a, b) in data.iter().enumerate() {
            let out = mem.read_block(a as u64).unwrap();
            assert_eq!(&out.data, b);
        }
    }
}

#[test]
fn boot_scrub_is_idempotent_and_complete() {
    let mut meta = StdRng::seed_from_u64(0xC03E_0002);
    for _ in 0..16 {
        let (mut mem, data, mut rng) = filled(meta.gen(), 32);
        mem.inject_bit_errors(1e-3, &mut rng);
        mem.boot_scrub().unwrap();
        assert!(mem.verify_consistent());
        // A second scrub finds nothing to fix.
        let second = mem.boot_scrub().unwrap();
        assert_eq!(second.bits_corrected, 0);
        for (a, b) in data.iter().enumerate() {
            assert_eq!(&mem.read_block(a as u64).unwrap().data, b);
        }
    }
}

#[test]
fn sum_write_equivalence() {
    let mut meta = StdRng::seed_from_u64(0xC03E_0003);
    for _ in 0..16 {
        let n_writes = meta.gen_range(1usize..40);
        let (mem0, _, mut rng) = filled(meta.gen(), 32);
        let mut a_mem = mem0.clone();
        let mut b_mem = mem0.clone();
        for _ in 0..n_writes {
            let addr = rng.gen_range(0..mem0.num_blocks());
            let mut new = [0u8; 64];
            rng.fill_bytes(&mut new[..]);
            let old = a_mem.read_block(addr).unwrap().data;
            a_mem.write_block(addr, &new).unwrap();
            let mut sum = [0u8; 64];
            for i in 0..64 {
                sum[i] = old[i] ^ new[i];
            }
            b_mem.write_block_sum(addr, &sum).unwrap();
        }
        for addr in 0..mem0.num_blocks() {
            assert_eq!(
                a_mem.read_block(addr).unwrap().data,
                b_mem.read_block(addr).unwrap().data
            );
        }
        assert!(a_mem.verify_consistent());
        assert!(b_mem.verify_consistent());
    }
}

#[test]
fn threshold_respected_on_every_path() {
    let mut meta = StdRng::seed_from_u64(0xC03E_0004);
    for _ in 0..16 {
        let thr = meta.gen_range(0usize..=4);
        let mut rng = StdRng::seed_from_u64(meta.gen());
        let mut mem = ChipkillMemory::new(32, ChipkillConfig::with_threshold(thr));
        let mut data = Vec::new();
        for a in 0..mem.num_blocks() {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            mem.write_block(a, &b).unwrap();
            data.push(b);
        }
        mem.inject_bit_errors(5e-4, &mut rng);
        for (a, b) in data.iter().enumerate() {
            let out = mem.read_block(a as u64).unwrap();
            assert_eq!(&out.data, b);
            if let ReadPath::RsCorrected { corrections } = out.path {
                assert!(corrections <= thr);
            }
        }
    }
}

#[test]
fn any_single_chip_failure_is_recoverable() {
    let mut meta = StdRng::seed_from_u64(0xC03E_0005);
    for case in 0..16 {
        let chip = meta.gen_range(0usize..9);
        let (mut mem, data, mut rng) = filled(meta.gen(), 32);
        let kind = pmck_core::ChipFailureKind::ALL[case % 4];
        mem.fail_chip(chip, kind, &mut rng);
        // SilentControl leaves data readable; all kinds must round-trip.
        mem.boot_scrub().unwrap();
        for (a, b) in data.iter().enumerate() {
            assert_eq!(&mem.read_block(a as u64).unwrap().data, b);
        }
        assert!(mem.verify_consistent());
    }
}
