//! Proves the steady-state flushed-write path performs zero heap
//! allocations after warm-up, using a counting `#[global_allocator]`.
//!
//! "Steady state" is the persistence domain's common case: the
//! application rewrites data that is already durable, then flushes. The
//! engine's EUR drain finds nothing to apply, the compare-skip staging
//! copies nothing, and the fence is empty — so the whole
//! write-flush-fence round trip must stay off the heap.
//!
//! This file intentionally holds a single `#[test]`: the allocation
//! counter is process-global, so a second test running in a parallel
//! thread would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pmck_core::{ChipkillConfig, PmemConfig, StackBuilder};

/// Pass-through allocator that counts allocation calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn flushed_write_steady_state_is_allocation_free_after_warmup() {
    let blocks = 64u64;
    let mut stack = StackBuilder::proposal(blocks, ChipkillConfig::default())
        .persistent(PmemConfig::default())
        .seed(7)
        .build();
    for a in 0..blocks {
        stack.write(a, &[a as u8; 64]).unwrap();
    }
    stack.flush().unwrap();

    // Warm-up rounds: the EUR and the intent-log scratch buffer reach
    // their final capacities here.
    for _ in 0..2 {
        for a in 0..blocks {
            stack.write(a, &[a as u8; 64]).unwrap();
        }
        stack.flush().unwrap();
    }

    let rounds = 4u64;
    let allocs = count_allocs(|| {
        for _ in 0..rounds {
            for a in 0..blocks {
                stack.write(a, &[a as u8; 64]).unwrap();
            }
            let lines = stack.flush().unwrap();
            // Identical data: the compare-skip staging fences nothing.
            assert_eq!(lines, 0, "re-staging an unchanged image must be empty");
        }
    });
    assert_eq!(
        allocs, 0,
        "the steady-state write+flush round trip must not allocate after \
         warm-up (counted {allocs} allocations over {} write+flush rounds)",
        rounds
    );
}
