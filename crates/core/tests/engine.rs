//! Engine-level tests: the runtime read path (Figure 9), both write
//! paths, boot scrub, chip failures, and block disabling.

use pmck_core::{ChipFailureKind, ChipkillConfig, ChipkillMemory, CoreError, ReadPath};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

fn pattern_block(a: u64) -> [u8; 64] {
    let mut b = [0u8; 64];
    for (i, x) in b.iter_mut().enumerate() {
        *x = (a as u8)
            .wrapping_mul(97)
            .wrapping_add((i as u8).wrapping_mul(13));
    }
    b
}

fn seeded(num_blocks: u64) -> (ChipkillMemory, Vec<[u8; 64]>) {
    let mut mem = ChipkillMemory::new(num_blocks, ChipkillConfig::default());
    let blocks: Vec<[u8; 64]> = (0..mem.num_blocks())
        .map(|a| {
            let b = pattern_block(a);
            mem.write_block(a, &b).unwrap();
            b
        })
        .collect();
    (mem, blocks)
}

#[test]
fn fresh_rank_reads_clean() {
    let (mut mem, blocks) = seeded(64);
    for (a, b) in blocks.iter().enumerate() {
        let out = mem.read_block(a as u64).unwrap();
        assert_eq!(&out.data, b);
        assert_eq!(out.path, ReadPath::Clean);
    }
    assert!(mem.verify_consistent());
}

#[test]
fn one_or_two_byte_errors_use_rs_path() {
    let (mem, blocks) = seeded(32);
    // Inject exactly two bit errors in different bytes of block 5 by
    // writing through the raw injection API at a tiny region: flip via
    // sum-write of a crafted block is not an error; instead use the
    // bit-injection API repeatedly until block 5 is hit.
    // Simpler: craft the corruption through inject at high rate on a
    // 1-block-only rank is imprecise; here we corrupt via direct reads:
    let mut rng = StdRng::seed_from_u64(3);
    loop {
        let mut trial = mem.clone();
        trial.inject_bit_errors(2e-4, &mut rng);
        let out = trial.read_block(5).unwrap();
        assert_eq!(out.data, blocks[5]);
        match out.path {
            ReadPath::Clean => continue,
            ReadPath::RsCorrected { corrections } => {
                assert!((1..=2).contains(&corrections));
                break;
            }
            other => panic!("unexpected path {other:?}"),
        }
    }
}

#[test]
fn heavy_errors_fall_back_to_vlew() {
    let (mut mem, blocks) = seeded(32);
    let mut rng = StdRng::seed_from_u64(11);
    // Boot-level RBER: some blocks will carry 3+ byte errors and reject.
    mem.inject_bit_errors(2e-3, &mut rng);
    let mut fallbacks = 0;
    for (a, b) in blocks.iter().enumerate() {
        let out = mem.read_block(a as u64).unwrap();
        assert_eq!(&out.data, b, "block {a}");
        if matches!(out.path, ReadPath::VlewFallback { .. }) {
            fallbacks += 1;
        }
    }
    assert!(
        fallbacks > 0,
        "2e-3 across 32 blocks should trigger fallback"
    );
    assert_eq!(mem.stats().fallbacks, fallbacks as u64);
}

#[test]
fn bitwise_sum_write_equals_conventional_write() {
    let (mem0, _) = seeded(32);
    let mut conventional = mem0.clone();
    let mut sum_path = mem0.clone();
    let mut rng = StdRng::seed_from_u64(17);
    for round in 0..100u64 {
        let addr = rng.gen_range(0..mem0.num_blocks());
        let new = pattern_block(addr ^ round.wrapping_mul(0x9E3779B9));
        // Conventional write of `new`.
        let old = conventional.read_block(addr).unwrap().data;
        conventional.write_block(addr, &new).unwrap();
        // Bitwise-sum write of the same change.
        let mut sum = [0u8; 64];
        for i in 0..64 {
            sum[i] = old[i] ^ new[i];
        }
        sum_path.write_block_sum(addr, &sum).unwrap();
    }
    conventional.flush_eur();
    sum_path.flush_eur();
    for a in 0..mem0.num_blocks() {
        assert_eq!(
            conventional.read_block(a).unwrap().data,
            sum_path.read_block(a).unwrap().data,
            "block {a}"
        );
    }
    assert!(conventional.verify_consistent());
    assert!(sum_path.verify_consistent());
}

#[test]
fn sum_writes_preserve_existing_errors_one_to_one() {
    // A cell error present before a sum-write must remain exactly
    // correctable afterwards (errors propagate without spreading, §V-D).
    let (mut mem, blocks) = seeded(32);
    let mut rng = StdRng::seed_from_u64(23);
    mem.inject_bit_errors(1e-3, &mut rng);
    // Sum-write every block with a delta, without correcting first.
    for a in 0..mem.num_blocks() {
        let delta = [0x0Fu8; 64];
        mem.write_block_sum(a, &delta).unwrap();
    }
    mem.flush_eur();
    for (a, b) in blocks.iter().enumerate() {
        let mut expect = *b;
        for x in expect.iter_mut() {
            *x ^= 0x0F;
        }
        let out = mem.read_block(a as u64).unwrap();
        assert_eq!(out.data, expect, "block {a}");
    }
}

#[test]
fn boot_scrub_recovers_after_long_outage() {
    let (mut mem, blocks) = seeded(128);
    let mut rng = StdRng::seed_from_u64(31);
    let injected = mem.inject_bit_errors(1e-3, &mut rng);
    assert!(injected > 0);
    let report = mem.boot_scrub().unwrap();
    assert!(report.bits_corrected > 0);
    assert_eq!(report.chip_rebuilt, None);
    assert!(mem.verify_consistent(), "scrub restores full consistency");
    for (a, b) in blocks.iter().enumerate() {
        let out = mem.read_block(a as u64).unwrap();
        assert_eq!(&out.data, b);
        assert_eq!(out.path, ReadPath::Clean, "post-scrub reads are clean");
    }
}

#[test]
fn boot_scrub_rebuilds_failed_data_chip() {
    let (mut mem, blocks) = seeded(64);
    let mut rng = StdRng::seed_from_u64(37);
    mem.inject_bit_errors(1e-3, &mut rng);
    mem.fail_chip(4, ChipFailureKind::RandomGarbage, &mut rng);
    let report = mem.boot_scrub().unwrap();
    assert_eq!(report.chip_rebuilt, Some(4));
    assert!(mem.verify_consistent());
    for (a, b) in blocks.iter().enumerate() {
        assert_eq!(&mem.read_block(a as u64).unwrap().data, b, "block {a}");
    }
}

#[test]
fn boot_scrub_rebuilds_failed_parity_chip() {
    let (mut mem, blocks) = seeded(64);
    let mut rng = StdRng::seed_from_u64(41);
    mem.fail_chip(8, ChipFailureKind::StuckOne, &mut rng);
    let report = mem.boot_scrub().unwrap();
    assert_eq!(report.chip_rebuilt, Some(8));
    assert!(mem.verify_consistent());
    for (a, b) in blocks.iter().enumerate() {
        assert_eq!(&mem.read_block(a as u64).unwrap().data, b, "block {a}");
    }
}

#[test]
fn runtime_chip_failure_detected_and_erasure_corrected() {
    let (mut mem, blocks) = seeded(64);
    let mut rng = StdRng::seed_from_u64(43);
    mem.fail_chip(2, ChipFailureKind::RandomGarbage, &mut rng);
    // First read of an affected block: RS rejects (8 garbage bytes),
    // VLEW reveals the failed chip, erasure correction recovers.
    let out = mem.read_block(10).unwrap();
    assert_eq!(out.data, blocks[10]);
    assert_eq!(out.path, ReadPath::ChipkillErasure { chip: 2 });
    assert_eq!(mem.detected_failed_chip(), Some(2));
    assert_eq!(mem.stats().chip_failures_detected, 1);
    // Subsequent reads go straight to the erasure path.
    let out2 = mem.read_block(11).unwrap();
    assert_eq!(out2.data, blocks[11]);
    assert_eq!(out2.path, ReadPath::ChipkillErasure { chip: 2 });
}

#[test]
fn repair_chip_restores_normal_operation() {
    let (mut mem, blocks) = seeded(64);
    let mut rng = StdRng::seed_from_u64(47);
    mem.fail_chip(6, ChipFailureKind::StuckZero, &mut rng);
    let _ = mem.read_block(0).unwrap(); // detect
    assert_eq!(mem.detected_failed_chip(), Some(6));
    mem.repair_chip(6).unwrap();
    assert_eq!(mem.detected_failed_chip(), None);
    assert!(mem.verify_consistent());
    for (a, b) in blocks.iter().enumerate() {
        let out = mem.read_block(a as u64).unwrap();
        assert_eq!(&out.data, b);
        assert_eq!(out.path, ReadPath::Clean);
    }
}

#[test]
fn two_chip_failures_are_detected_not_silent() {
    let (mut mem, _) = seeded(32);
    let mut rng = StdRng::seed_from_u64(53);
    mem.fail_chip(1, ChipFailureKind::RandomGarbage, &mut rng);
    mem.fail_chip(5, ChipFailureKind::RandomGarbage, &mut rng);
    match mem.read_block(0) {
        Err(CoreError::MultiChipFailure) => {}
        Err(CoreError::Uncorrectable) => {}
        other => panic!("double chip failure must not be silently read: {other:?}"),
    }
}

#[test]
fn disabled_block_rejects_access_and_keeps_vlew_consistent() {
    let (mut mem, blocks) = seeded(64);
    mem.disable_block(9).unwrap();
    assert!(mem.is_disabled(9));
    assert!(matches!(mem.read_block(9), Err(CoreError::Disabled(9))));
    assert!(matches!(
        mem.write_block(9, &[0; 64]),
        Err(CoreError::Disabled(9))
    ));
    mem.flush_eur();
    assert!(mem.verify_consistent());
    // Neighbors in the same stripe are unaffected.
    let out = mem.read_block(8).unwrap();
    assert_eq!(out.data, blocks[8]);
    // Errors elsewhere in the stripe still correct fine.
    let mut rng = StdRng::seed_from_u64(59);
    mem.inject_bit_errors(1e-3, &mut rng);
    mem.boot_scrub().unwrap();
    assert_eq!(mem.read_block(10).unwrap().data, blocks[10]);
}

#[test]
fn scrub_block_clears_cell_errors() {
    let (mut mem, blocks) = seeded(32);
    let mut rng = StdRng::seed_from_u64(61);
    mem.inject_bit_errors(2e-3, &mut rng);
    for a in 0..mem.num_blocks() {
        mem.scrub_block(a).unwrap();
    }
    for (a, b) in blocks.iter().enumerate() {
        let out = mem.read_block(a as u64).unwrap();
        assert_eq!(&out.data, b);
        // Data and check cells are clean now (code-region errors may
        // remain, but they do not affect the per-block RS word).
        assert_eq!(out.path, ReadPath::Clean, "block {a}");
    }
}

#[test]
fn eur_coalescing_reduces_c_factor() {
    let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
    // 32 sequential writes within one stripe.
    for a in 0..32u64 {
        mem.write_block(a, &pattern_block(a)).unwrap();
    }
    mem.flush_eur();
    let c_seq = mem.c_factor();
    assert!(
        c_seq <= 9.0 / 32.0 + 1e-9,
        "sequential writes coalesce: C = {c_seq}"
    );

    // Compare with EUR disabled: every write pays full code updates.
    let mut mem2 = ChipkillMemory::new(
        64,
        ChipkillConfig {
            eur_enabled: false,
            ..ChipkillConfig::default()
        },
    );
    for a in 0..32u64 {
        mem2.write_block(a, &pattern_block(a)).unwrap();
    }
    assert!(mem2.c_factor() > c_seq, "no coalescing → higher C");
}

#[test]
fn out_of_range_rejected() {
    let mut mem = ChipkillMemory::new(32, ChipkillConfig::default());
    assert!(matches!(mem.read_block(32), Err(CoreError::OutOfRange(32))));
    assert!(matches!(
        mem.write_block(1000, &[0; 64]),
        Err(CoreError::OutOfRange(1000))
    ));
}

#[test]
fn capacity_rounds_to_stripes() {
    let mem = ChipkillMemory::new(33, ChipkillConfig::default());
    assert_eq!(mem.num_blocks(), 64);
    assert_eq!(mem.stripes(), 2);
}

#[test]
fn threshold_zero_always_falls_back_on_any_error() {
    let mut mem = ChipkillMemory::new(32, ChipkillConfig::with_threshold(0));
    for a in 0..32u64 {
        mem.write_block(a, &pattern_block(a)).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(67);
    // Inject until some block is dirty, then every erroneous read must be
    // a fallback (threshold 0 accepts no RS corrections).
    mem.inject_bit_errors(1e-3, &mut rng);
    for a in 0..32u64 {
        let out = mem.read_block(a).unwrap();
        assert_eq!(out.data, pattern_block(a));
        assert!(
            matches!(out.path, ReadPath::Clean | ReadPath::VlewFallback { .. }),
            "path {:?}",
            out.path
        );
    }
}

#[test]
fn beyond_bound_policy_rescues_t_plus_one_errors_at_runtime() {
    use pmck_core::DecodePolicy;
    let t = 22; // VLEW designed correction capability
    for policy in [DecodePolicy::Bounded, DecodePolicy::BeyondBound] {
        let cfg = ChipkillConfig {
            decode_policy: policy,
            ..ChipkillConfig::default()
        };
        let mut mem = ChipkillMemory::new(32, cfg);
        let blocks: Vec<[u8; 64]> = (0..mem.num_blocks())
            .map(|a| {
                let b = pattern_block(a);
                mem.write_block(a, &b).unwrap();
                b
            })
            .collect();
        // t + 1 single-bit errors in chip 0's VLEW (one per block), plus
        // one bit each in chips 1 and 2 of block 0 so block 0's RS word
        // carries three bad bytes and rejects past the threshold.
        for i in 0..=t {
            mem.corrupt_chip_byte(0, i as u64, 0, 1);
        }
        mem.corrupt_chip_byte(1, 0, 0, 1);
        mem.corrupt_chip_byte(2, 0, 0, 1);
        let out = mem.read_block(0).unwrap();
        assert_eq!(out.data, blocks[0], "data recovered under {policy:?}");
        match policy {
            DecodePolicy::Bounded => {
                // Bounded decoding rejects the overweight chip word and
                // the rank degrades to erasure reads.
                assert_eq!(out.path, ReadPath::ChipkillErasure { chip: 0 });
                assert_eq!(mem.stats().list_rescues, 0);
                assert_eq!(mem.detected_failed_chip(), Some(0));
            }
            DecodePolicy::BeyondBound => {
                // The unraveling list decoder rescues the word; no chip
                // is declared failed.
                assert_eq!(
                    out.path,
                    ReadPath::VlewListDecoded {
                        bits_corrected: t + 3
                    }
                );
                assert_eq!(mem.stats().list_rescues, 1);
                assert_eq!(mem.detected_failed_chip(), None);
            }
        }
    }
}

#[test]
fn boot_scrub_counts_list_rescues_under_beyond_bound_policy() {
    use pmck_core::DecodePolicy;
    let t = 22;
    for policy in [DecodePolicy::Bounded, DecodePolicy::BeyondBound] {
        let cfg = ChipkillConfig {
            decode_policy: policy,
            ..ChipkillConfig::default()
        };
        let mut mem = ChipkillMemory::new(32, cfg);
        let blocks: Vec<[u8; 64]> = (0..mem.num_blocks())
            .map(|a| {
                let b = pattern_block(a);
                mem.write_block(a, &b).unwrap();
                b
            })
            .collect();
        for i in 0..=t {
            mem.corrupt_chip_byte(0, i as u64, 0, 1);
        }
        let report = mem.boot_scrub().unwrap();
        assert_eq!(report.stripes_scrubbed, 1);
        match policy {
            DecodePolicy::Bounded => {
                // The overweight chip word is uncorrectable: the scrub
                // treats chip 0 as failed and rebuilds it by erasure.
                assert_eq!(report.chip_rebuilt, Some(0));
                assert_eq!(report.list_rescues, 0);
            }
            DecodePolicy::BeyondBound => {
                assert_eq!(report.chip_rebuilt, None);
                assert_eq!(report.list_rescues, 1);
                assert_eq!(report.words_with_errors, 1);
                assert_eq!(report.bits_corrected, t + 1);
                assert_eq!(mem.stats().list_rescues, 1);
            }
        }
        assert!(mem.verify_consistent(), "scrub restores consistency");
        for (a, b) in blocks.iter().enumerate() {
            assert_eq!(&mem.read_block(a as u64).unwrap().data, b, "block {a}");
        }
    }
}
