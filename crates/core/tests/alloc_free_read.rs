//! Proves the clean read path performs zero heap allocations after
//! warm-up, using a counting `#[global_allocator]`.
//!
//! This file intentionally holds a single `#[test]`: the allocation
//! counter is process-global, so a second test running in a parallel
//! thread would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pmck_bch::{BchCode, BchScratch};
use pmck_core::{ChipkillConfig, ChipkillMemory, ReadPath, StackBuilder};

/// Pass-through allocator that counts allocation calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn clean_read_path_is_allocation_free_after_warmup() {
    // --- Engine-direct: ChipkillMemory::read_block on clean blocks. ---
    let blocks = 64u64;
    let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
    for a in 0..blocks {
        mem.write_block(a, &[a as u8; 64]).unwrap();
    }
    // Warm-up pass (first reads may fault in lazily-built state).
    for a in 0..blocks {
        assert!(matches!(mem.read_block(a).unwrap().path, ReadPath::Clean));
    }
    let engine_allocs = count_allocs(|| {
        for _ in 0..4 {
            for a in 0..blocks {
                let out = mem.read_block(a).unwrap();
                assert!(matches!(out.path, ReadPath::Clean));
                assert_eq!(out.data, [a as u8; 64]);
            }
        }
    });
    assert_eq!(
        engine_allocs,
        0,
        "clean ChipkillMemory::read_block must not allocate after warm-up \
         (counted {engine_allocs} allocations over {} reads)",
        4 * blocks
    );

    // --- Full pipeline: wear-levelling + patrol scrub over the engine.
    // The composed BlockDevice stack must preserve the property (patrol
    // scrubs of clean blocks are allocation-free too). ---
    let mut stack = StackBuilder::proposal(blocks, ChipkillConfig::default())
        .wear_levelled(1 << 20) // remap interval beyond this test's writes
        .patrolled(4, 16)
        .seed(7)
        .build();
    for a in 0..stack.num_blocks() {
        stack.write(a, &[a as u8; 64]).unwrap();
    }
    // Warm-up: enough reads to run the patrol scheduler through several
    // full cycles and fill every lazily-grown context buffer.
    for round in 0..4u64 {
        for a in 0..stack.num_blocks() {
            let _ = (round, stack.read(a).unwrap());
        }
    }
    let n = stack.num_blocks();
    let stack_allocs = count_allocs(|| {
        for _ in 0..4 {
            for a in 0..n {
                let out = stack.read(a).unwrap();
                assert!(matches!(out.path, ReadPath::Clean));
            }
        }
    });
    assert_eq!(
        stack_allocs,
        0,
        "clean reads through the full wear-levelled + patrolled stack must \
         not allocate after warm-up (counted {stack_allocs} allocations over \
         {} reads)",
        4 * n
    );

    // --- Copy-free variant: Stack::read_into decodes straight into the
    // caller's buffer and must be just as allocation-free. ---
    let mut buf = [0u8; 64];
    let read_into_allocs = count_allocs(|| {
        for _ in 0..4 {
            for a in 0..n {
                let path = stack.read_into(a, &mut buf).unwrap();
                assert!(matches!(path, ReadPath::Clean));
            }
        }
    });
    assert_eq!(
        read_into_allocs,
        0,
        "clean Stack::read_into must not allocate after warm-up \
         (counted {read_into_allocs} allocations over {} reads)",
        4 * n
    );

    // --- Errorful BCH decode: the scratch-based decoder (syndromes_into,
    // bit-sliced Chien search, in-place correction) must be
    // allocation-free per word once the scratch exists. This pins the
    // whole errorful path, not just the clean syndrome check. ---
    let code = BchCode::vlew();
    let mut scratch = BchScratch::new(&code);
    let clean = code.encode_bytes(&[0x5A; 256]);
    let mut word = clean.clone();
    // Warm-up: one decode at each weight exercised below.
    for w in 1..=5usize {
        word.copy_from(&clean);
        for j in 0..w {
            word.flip(j * 97);
        }
        code.decode_scratch(&mut word, &mut scratch).unwrap();
    }
    let decode_allocs = count_allocs(|| {
        for round in 0..32usize {
            word.copy_from(&clean);
            let w = 1 + round % 5;
            for j in 0..w {
                word.flip((round * 53 + j * 97) % code.len());
            }
            let view = code.decode_scratch(&mut word, &mut scratch).unwrap();
            assert_eq!(view.num_corrected(), w);
            assert_eq!(word, clean);
        }
    });
    assert_eq!(
        decode_allocs, 0,
        "errorful BchCode::decode_scratch must not allocate per word \
         (counted {decode_allocs} allocations over 32 decodes)"
    );
}
