//! The client-facing request vocabulary.
//!
//! [`Request`]/[`Response`] are the one public surface clients program
//! against: [`crate::Stack::submit`] executes a single request against a
//! composed stack, and `pmck-service`'s `ShardedService::submit_batch`
//! executes batches of them across shards. The `Stack` convenience
//! methods (`read`, `write`, `scrub`, …) are thin wrappers over
//! `submit`; [`crate::Access`]/[`crate::AccessOutcome`] remain the
//! *internal* vocabulary layers use to talk to each other.
//!
//! A request either targets one block ([`Request::addr`] returns
//! `Some`) or the whole device (`None`); a sharded front end routes the
//! former to the owning shard and broadcasts the latter to every shard.

use pmck_nvram::FaultEvent;

use crate::device::{Access, AccessOutcome};
use crate::engine::ReadOutcome;
use crate::patrol::PatrolReport;
use crate::scrub::ScrubReport;

/// One client request against a protection stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Demand read of one 64 B block.
    Read(u64),
    /// Conventional write of one 64 B block.
    Write {
        /// Block address.
        addr: u64,
        /// New block contents.
        data: [u8; 64],
    },
    /// Bitwise-sum write (§V-D): `data` carries `old ⊕ new`.
    WriteSum {
        /// Block address.
        addr: u64,
        /// The bitwise sum delivered to the chips.
        data: [u8; 64],
    },
    /// Correct one block and rewrite it in place.
    Scrub(u64),
    /// Advance the patrol scrubber by one increment.
    PatrolStep,
    /// Fault-injection hook: i.i.d. bit flips at the given RBER.
    InjectRber(f64),
    /// Fault-injection hook: one scheduled campaign event.
    Fault(FaultEvent),
    /// Full boot-time scrub.
    BootScrub,
    /// Check stored code bits against stored data.
    Verify,
    /// Rebuild the detected failed chip, if any.
    Repair,
    /// Reconfigure into the §V-E re-striped layout.
    Restripe,
    /// Flush and fence every dirty line into the persistence domain.
    Flush,
    /// Simulate a power cut: volatile state (CPU cache + WPQ) is lost.
    PowerCut,
    /// Replay the intent log and rebuild runtime state from media.
    Recover,
    /// Run one tier-policy pass: re-evaluate every region's measured
    /// RBER and migrate regions whose protection tier changed.
    TierStep,
}

impl Request {
    /// Short, stable name of the request kind.
    pub fn kind(&self) -> &'static str {
        Access::from(*self).kind()
    }

    /// The block address the request targets, if it has one. Requests
    /// without an address apply to the whole device (and are broadcast
    /// to every shard by a sharded front end).
    pub fn addr(&self) -> Option<u64> {
        match self {
            Request::Read(a) | Request::Scrub(a) => Some(*a),
            Request::Write { addr, .. } | Request::WriteSum { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// The same request retargeted at `addr`. Returns the request
    /// unchanged when it carries no address.
    pub fn with_addr(self, addr: u64) -> Request {
        match self {
            Request::Read(_) => Request::Read(addr),
            Request::Scrub(_) => Request::Scrub(addr),
            Request::Write { data, .. } => Request::Write { addr, data },
            Request::WriteSum { data, .. } => Request::WriteSum { addr, data },
            other => other,
        }
    }
}

impl From<Request> for Access {
    fn from(req: Request) -> Access {
        match req {
            Request::Read(a) => Access::Read(a),
            Request::Write { addr, data } => Access::Write { addr, data },
            Request::WriteSum { addr, data } => Access::WriteSum { addr, data },
            Request::Scrub(a) => Access::Scrub(a),
            Request::PatrolStep => Access::PatrolStep,
            Request::InjectRber(rber) => Access::InjectRber(rber),
            Request::Fault(ev) => Access::Fault(ev),
            Request::BootScrub => Access::BootScrub,
            Request::Verify => Access::Verify,
            Request::Repair => Access::Repair,
            Request::Restripe => Access::Restripe,
            Request::Flush => Access::Flush,
            Request::PowerCut => Access::PowerCut,
            Request::Recover => Access::Recover,
            Request::TierStep => Access::TierStep,
        }
    }
}

/// The successful result of a [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Data plus the decode path that produced it.
    Read(ReadOutcome),
    /// The write (conventional or sum) committed.
    Written,
    /// The block was corrected and rewritten.
    Scrubbed,
    /// One patrol increment ran.
    Patrolled(PatrolReport),
    /// Fault injection disturbed `bits` stored bits.
    Injected {
        /// Bits (or cells) disturbed.
        bits: usize,
    },
    /// The boot scrub completed.
    BootScrubbed(ScrubReport),
    /// Result of the consistency check.
    Verified(bool),
    /// The failed chip (if any) was rebuilt.
    Repaired {
        /// The chip that was rebuilt, or `None` if none was detected.
        chip: Option<usize>,
    },
    /// The device reconfigured into the re-striped layout.
    Restriped,
    /// The flush/fence drained into the persistence domain.
    Flushed {
        /// Dirty lines made durable by the fence.
        lines: u64,
    },
    /// The power cut discarded the listed volatile lines.
    PowerLost {
        /// Dirty lines that were lost with the power.
        lost_lines: u64,
    },
    /// Recovery replayed the intent log and rebuilt runtime state.
    Recovered(crate::device::RecoveryReport),
    /// One tier-policy pass ran over the regions.
    Tiered(crate::tier::TierReport),
}

impl Response {
    /// The read outcome, when this answers a [`Request::Read`].
    pub fn read(self) -> Option<ReadOutcome> {
        match self {
            Response::Read(out) => Some(out),
            _ => None,
        }
    }

    /// The patrol report, when this answers a [`Request::PatrolStep`].
    pub fn patrolled(self) -> Option<PatrolReport> {
        match self {
            Response::Patrolled(r) => Some(r),
            _ => None,
        }
    }

    /// Disturbed bits, when this answers a fault-injection request.
    pub fn injected_bits(self) -> Option<usize> {
        match self {
            Response::Injected { bits } => Some(bits),
            _ => None,
        }
    }

    /// The scrub report, when this answers a [`Request::BootScrub`].
    pub fn boot_scrubbed(self) -> Option<ScrubReport> {
        match self {
            Response::BootScrubbed(r) => Some(r),
            _ => None,
        }
    }

    /// The verdict, when this answers a [`Request::Verify`].
    pub fn verified(self) -> Option<bool> {
        match self {
            Response::Verified(ok) => Some(ok),
            _ => None,
        }
    }

    /// Lines made durable, when this answers a [`Request::Flush`].
    pub fn flushed_lines(self) -> Option<u64> {
        match self {
            Response::Flushed { lines } => Some(lines),
            _ => None,
        }
    }

    /// The recovery report, when this answers a [`Request::Recover`].
    pub fn recovered(self) -> Option<crate::device::RecoveryReport> {
        match self {
            Response::Recovered(r) => Some(r),
            _ => None,
        }
    }

    /// The tier report, when this answers a [`Request::TierStep`].
    pub fn tiered(self) -> Option<crate::tier::TierReport> {
        match self {
            Response::Tiered(r) => Some(r),
            _ => None,
        }
    }
}

/// Folds one more device's answer to a broadcast (whole-device) request
/// into the accumulated response. **Callers must fold in device index
/// order** — several rules are order-sensitive (first error wins, first
/// rebuilt chip wins, the tier census rounds per fold); `pmck-service`'s
/// streaming client guarantees this by buffering per-shard parts and
/// merging once all arrived, and `pmck-cluster` folds its nodes in node
/// index order.
pub fn merge_broadcast(
    acc: &mut Result<Response, crate::engine::CoreError>,
    next: Result<Response, crate::engine::CoreError>,
) {
    match (&mut *acc, next) {
        // The first error (in device order) wins and sticks.
        (Err(_), _) => {}
        (Ok(_), Err(e)) => *acc = Err(e),
        (Ok(have), Ok(got)) => match (have, got) {
            (Response::Patrolled(a), Response::Patrolled(b)) => {
                a.blocks_scrubbed += b.blocks_scrubbed;
                a.blocks_skipped += b.blocks_skipped;
                // The merged pass completes when every device's
                // scrubber wrapped.
                a.completed_pass &= b.completed_pass;
            }
            (Response::Injected { bits: a }, Response::Injected { bits: b }) => *a += b,
            (Response::BootScrubbed(a), Response::BootScrubbed(b)) => {
                a.stripes_scrubbed += b.stripes_scrubbed;
                a.bits_corrected += b.bits_corrected;
                a.words_with_errors += b.words_with_errors;
                a.list_rescues += b.list_rescues;
                if a.chip_rebuilt.is_none() {
                    a.chip_rebuilt = b.chip_rebuilt;
                }
            }
            (Response::Verified(a), Response::Verified(b)) => *a &= b,
            (Response::Repaired { chip: a }, Response::Repaired { chip: b }) if a.is_none() => {
                *a = b;
            }
            (Response::Flushed { lines: a }, Response::Flushed { lines: b }) => *a += b,
            (Response::PowerLost { lost_lines: a }, Response::PowerLost { lost_lines: b }) => {
                *a += b;
            }
            (Response::Recovered(a), Response::Recovered(b)) => a.merge(&b),
            (Response::Tiered(a), Response::Tiered(b)) => a.merge(&b),
            // Identical unit responses (Written/Scrubbed/Restriped):
            // the first one already says it all.
            _ => {}
        },
    }
}

impl From<AccessOutcome> for Response {
    fn from(out: AccessOutcome) -> Response {
        match out {
            AccessOutcome::Read(o) => Response::Read(o),
            AccessOutcome::Written => Response::Written,
            AccessOutcome::Scrubbed => Response::Scrubbed,
            AccessOutcome::Patrolled(r) => Response::Patrolled(r),
            AccessOutcome::Injected { bits } => Response::Injected { bits },
            AccessOutcome::BootScrubbed(r) => Response::BootScrubbed(r),
            AccessOutcome::Verified(ok) => Response::Verified(ok),
            AccessOutcome::Repaired { chip } => Response::Repaired { chip },
            AccessOutcome::Restriped => Response::Restriped,
            AccessOutcome::Flushed { lines } => Response::Flushed { lines },
            AccessOutcome::PowerLost { lost_lines } => Response::PowerLost { lost_lines },
            AccessOutcome::Recovered(r) => Response::Recovered(r),
            AccessOutcome::Tiered(r) => Response::Tiered(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_and_retarget_round_trip() {
        let w = Request::Write {
            addr: 5,
            data: [1; 64],
        };
        assert_eq!(w.addr(), Some(5));
        assert_eq!(w.with_addr(9).addr(), Some(9));
        assert_eq!(Request::Read(3).with_addr(0), Request::Read(0));
        assert_eq!(Request::Verify.addr(), None);
        assert_eq!(Request::Verify.with_addr(7), Request::Verify);
    }

    #[test]
    fn request_kind_matches_access_kind() {
        for (req, kind) in [
            (Request::Read(0), "read"),
            (Request::Scrub(0), "scrub"),
            (Request::PatrolStep, "patrol_step"),
            (Request::Restripe, "restripe"),
        ] {
            assert_eq!(req.kind(), kind);
        }
    }
}
