//! The transport-generic submission surface.
//!
//! The workspace grew three client entry points — [`crate::Stack`]'s
//! synchronous `submit`, `pmck-service`'s streaming ticket plane, and
//! the legacy batched `BatchService` — with the same [`Request`] /
//! [`Response`] vocabulary but three different call shapes. [`Submitter`]
//! unifies them: one trait with a synchronous `submit` and a
//! `try_submit`/`poll` ticket surface, implemented by every transport
//! (`Stack`, `ShardedService`, `ServiceClient`, `BatchService`, and
//! `pmck-cluster`'s `Cluster` nodes), so layered code — the cluster tier
//! above all — is written once against the trait instead of once per
//! transport.
//!
//! Transports fall in two camps:
//!
//! * **Streaming** (`ServiceClient`, and `ShardedService` through its
//!   primary lane): `try_submit` enqueues onto a shard ring and may
//!   report retryable [`crate::ServiceFailure::Backpressure`]; `poll`
//!   claims the response once the worker finished it.
//! * **Eager** (`Stack`, `BatchService`, `Cluster`): the request executes
//!   inside `try_submit` and the ticket is immediately redeemable. The
//!   shared [`EagerTickets`] helper provides the bookkeeping, so eager
//!   transports get the full ticket surface for free and generic callers
//!   never need to know which camp they are talking to.

use std::collections::VecDeque;

use crate::engine::CoreError;
use crate::request::{Request, Response};

/// A claim on one in-flight request's response, transport-generic.
///
/// The payload is an opaque `(tag, seq)` pair whose meaning belongs to
/// the issuing transport (the streaming client maps `tag` to a window
/// slot; eager transports use a completion-queue sequence number). A
/// ticket is only meaningful on the transport that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTicket {
    tag: u32,
    seq: u64,
}

impl SubmitTicket {
    /// Builds a ticket from its transport-internal parts.
    pub fn from_parts(tag: u32, seq: u64) -> Self {
        SubmitTicket { tag, seq }
    }

    /// The transport-internal tag (window slot, queue id, …).
    pub fn tag(self) -> u32 {
        self.tag
    }

    /// The transport-internal sequence number.
    pub fn seq(self) -> u64 {
        self.seq
    }
}

/// One vocabulary for submitting [`Request`]s to any transport.
///
/// See the module docs for the streaming-vs-eager split. Every
/// implementation preserves the shared error surface: admission-control
/// pushback is always retryable
/// [`crate::ServiceFailure::Backpressure`], fatal transport loss is
/// [`CoreError::Service`], and replica/quorum failures from the cluster
/// tier are [`CoreError::Cluster`] — each with `source()` chains
/// reaching the layer that actually failed.
pub trait Submitter {
    /// Total capacity in blocks across the transport's address space.
    fn num_blocks(&self) -> u64;

    /// Executes one request synchronously and returns its response.
    ///
    /// # Errors
    ///
    /// As the underlying device, plus the transport's own failure
    /// vocabulary ([`CoreError::Service`] / [`CoreError::Cluster`]).
    fn submit(&mut self, req: &Request) -> Result<Response, CoreError>;

    /// Submits one request for later redemption. Streaming transports
    /// may refuse with retryable
    /// [`crate::ServiceFailure::Backpressure`]; eager transports execute
    /// the request on the spot and the ticket is immediately ready.
    ///
    /// # Errors
    ///
    /// Backpressure (retry after redeeming tickets) or the transport's
    /// fatal failures. Device-level errors surface when the ticket is
    /// redeemed, not here.
    fn try_submit(&mut self, req: &Request) -> Result<SubmitTicket, CoreError>;

    /// Claims `ticket`'s response if it is ready, without blocking.
    /// Returns `None` while the request is still in flight or if the
    /// ticket was already redeemed.
    fn poll(&mut self, ticket: SubmitTicket) -> Option<Result<Response, CoreError>>;

    /// Claims `ticket`'s response, blocking until it is ready. The
    /// default implementation spins with [`std::thread::yield_now`];
    /// streaming transports override it with their parked wait.
    fn wait(&mut self, ticket: SubmitTicket) -> Result<Response, CoreError> {
        loop {
            if let Some(res) = self.poll(ticket) {
                return res;
            }
            std::thread::yield_now();
        }
    }
}

/// Ticket bookkeeping for eager [`Submitter`]s: the request already
/// executed inside `try_submit`, so issuing a ticket is pushing the
/// finished result onto a completion queue and redeeming is popping it
/// by sequence number. The queue reuses its allocation, so the steady
/// state is allocation-free once the outstanding-ticket high-water mark
/// is reached.
#[derive(Debug, Default)]
pub struct EagerTickets {
    next_seq: u64,
    done: VecDeque<(u64, Result<Response, CoreError>)>,
}

impl EagerTickets {
    /// Empty bookkeeping (no tickets outstanding).
    pub fn new() -> Self {
        EagerTickets::default()
    }

    /// Issues a ticket for an already-computed result.
    pub fn issue(&mut self, res: Result<Response, CoreError>) -> SubmitTicket {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.done.push_back((seq, res));
        SubmitTicket::from_parts(0, seq)
    }

    /// Redeems `ticket`, returning `None` for unknown (stale or
    /// double-redeemed) tickets.
    pub fn claim(&mut self, ticket: SubmitTicket) -> Option<Result<Response, CoreError>> {
        let at = self.done.iter().position(|(seq, _)| *seq == ticket.seq())?;
        self.done.remove(at).map(|(_, res)| res)
    }

    /// Tickets issued but not yet redeemed.
    pub fn in_flight(&self) -> usize {
        self.done.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_tickets_redeem_in_any_order_and_only_once() {
        let mut t = EagerTickets::new();
        let a = t.issue(Ok(Response::Written));
        let b = t.issue(Err(CoreError::OutOfRange(9)));
        assert_eq!(t.in_flight(), 2);
        assert_eq!(t.claim(b), Some(Err(CoreError::OutOfRange(9))));
        assert_eq!(t.claim(b), None, "double redemption");
        assert_eq!(t.claim(a), Some(Ok(Response::Written)));
        assert_eq!(t.in_flight(), 0);
        let stale = SubmitTicket::from_parts(0, 99);
        assert_eq!(t.claim(stale), None);
    }

    #[test]
    fn ticket_parts_round_trip() {
        let t = SubmitTicket::from_parts(7, 41);
        assert_eq!(t.tag(), 7);
        assert_eq!(t.seq(), 41);
    }
}
