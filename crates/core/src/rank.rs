//! Functional storage for the nine-chip rank: per-chip data and VLEW code
//! areas, plus the EUR model for coalesced code updates.

use std::collections::HashMap;

use pmck_bch::{BchCode, BitPoly};

use crate::layout::ChipkillLayout;

/// One chip's storage: a flat data area (256 B per stripe) and a VLEW code
/// area (33 B per stripe), mirroring Figure 6's in-row placement.
#[derive(Debug, Clone)]
pub(crate) struct ChipStore {
    pub data: Vec<u8>,
    pub code: Vec<u8>,
}

impl ChipStore {
    pub fn new(stripes: usize, layout: &ChipkillLayout) -> Self {
        ChipStore {
            data: vec![0; stripes * layout.vlew_data_bytes],
            code: vec![0; stripes * layout.vlew_code_bytes],
        }
    }

    /// The chip's 8 B contribution to `block` (stripe-local addressing is
    /// the caller's job).
    pub fn block_slice(&self, stripe: usize, offset: usize, layout: &ChipkillLayout) -> &[u8] {
        let base = stripe * layout.vlew_data_bytes + offset * layout.chip_bytes;
        &self.data[base..base + layout.chip_bytes]
    }

    pub fn block_slice_mut(
        &mut self,
        stripe: usize,
        offset: usize,
        layout: &ChipkillLayout,
    ) -> &mut [u8] {
        let base = stripe * layout.vlew_data_bytes + offset * layout.chip_bytes;
        &mut self.data[base..base + layout.chip_bytes]
    }

    /// The 256 B VLEW data region of a stripe.
    pub fn vlew_data(&self, stripe: usize, layout: &ChipkillLayout) -> &[u8] {
        let base = stripe * layout.vlew_data_bytes;
        &self.data[base..base + layout.vlew_data_bytes]
    }

    pub fn vlew_data_mut(&mut self, stripe: usize, layout: &ChipkillLayout) -> &mut [u8] {
        let base = stripe * layout.vlew_data_bytes;
        &mut self.data[base..base + layout.vlew_data_bytes]
    }

    /// The 33 B VLEW code region of a stripe.
    pub fn vlew_code(&self, stripe: usize, layout: &ChipkillLayout) -> &[u8] {
        let base = stripe * layout.vlew_code_bytes;
        &self.code[base..base + layout.vlew_code_bytes]
    }

    pub fn vlew_code_mut(&mut self, stripe: usize, layout: &ChipkillLayout) -> &mut [u8] {
        let base = stripe * layout.vlew_code_bytes;
        &mut self.code[base..base + layout.vlew_code_bytes]
    }
}

/// The per-chip ECC Update Registerfile: coalesces VLEW code-bit updates
/// for open rows, applied when the "row" (stripe) closes (§V-D).
///
/// Functionally the engine applies updates eagerly or lazily with
/// identical results; this model tracks pending deltas per
/// `(chip, stripe)` plus the drain statistics that define the C factor.
#[derive(Debug, Clone, Default)]
pub(crate) struct EurModel {
    pending: HashMap<(usize, usize), BitPoly>,
    pub writes_seen: u64,
    pub drains: u64,
}

impl EurModel {
    /// Accumulates a code delta for `(chip, stripe)`.
    pub fn accumulate(&mut self, chip: usize, stripe: usize, delta: &BitPoly) {
        match self.pending.entry((chip, stripe)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().xor_assign(delta);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(delta.clone());
            }
        }
    }

    /// Drains the register for `(chip, stripe)` into the stored code
    /// bytes, if dirty.
    pub fn drain_into(
        &mut self,
        chip: usize,
        stripe: usize,
        code_bytes: &mut [u8],
        code: &BchCode,
    ) {
        if let Some(delta) = self.pending.remove(&(chip, stripe)) {
            apply_code_delta(code_bytes, &delta, code);
            self.drains += 1;
        }
    }

    /// Whether any register for `stripe` on any chip is dirty.
    pub fn stripe_dirty(&self, stripe: usize) -> bool {
        self.pending.keys().any(|&(_, s)| s == stripe)
    }

    /// Dirty register count.
    pub fn occupancy(&self) -> usize {
        self.pending.len()
    }

    /// The `(chip, stripe)` keys currently dirty.
    pub fn pending_keys(&self) -> Vec<(usize, usize)> {
        self.pending.keys().copied().collect()
    }

    /// Functional C factor: drains per write request (after a full flush).
    pub fn c_factor(&self) -> f64 {
        if self.writes_seen == 0 {
            0.0
        } else {
            self.drains as f64 / self.writes_seen as f64
        }
    }
}

/// XORs a parity-bit delta into stored code bytes.
pub(crate) fn apply_code_delta(code_bytes: &mut [u8], delta: &BitPoly, code: &BchCode) {
    debug_assert!(delta.len() <= code.parity_bits());
    let bytes = delta.to_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i < code_bytes.len() {
            code_bytes[i] ^= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ChipkillLayout {
        ChipkillLayout::default()
    }

    #[test]
    fn chip_store_addressing() {
        let l = layout();
        let mut c = ChipStore::new(2, &l);
        c.block_slice_mut(1, 3, &l).copy_from_slice(&[7u8; 8]);
        assert_eq!(c.block_slice(1, 3, &l), &[7u8; 8]);
        assert_eq!(c.block_slice(0, 3, &l), &[0u8; 8]);
        // Stripe 1's VLEW data contains the bytes at offset 3.
        assert_eq!(c.vlew_data(1, &l)[3 * 8..3 * 8 + 8], [7u8; 8]);
    }

    #[test]
    fn code_region_separate_per_stripe() {
        let l = layout();
        let mut c = ChipStore::new(3, &l);
        c.vlew_code_mut(1, &l).fill(0xAA);
        assert!(c.vlew_code(0, &l).iter().all(|&b| b == 0));
        assert!(c.vlew_code(1, &l).iter().all(|&b| b == 0xAA));
        assert!(c.vlew_code(2, &l).iter().all(|&b| b == 0));
    }

    #[test]
    fn eur_coalesces() {
        let code = BchCode::vlew();
        let mut eur = EurModel::default();
        let mut d1 = BitPoly::zero(code.parity_bits());
        d1.set(0, true);
        let mut d2 = BitPoly::zero(code.parity_bits());
        d2.set(0, true);
        d2.set(5, true);
        eur.accumulate(0, 0, &d1);
        eur.accumulate(0, 0, &d2);
        eur.writes_seen = 2;
        assert_eq!(eur.occupancy(), 1);
        let mut bytes = vec![0u8; 33];
        eur.drain_into(0, 0, &mut bytes, &code);
        // d1 ^ d2 = bit 5 only.
        assert_eq!(bytes[0], 0b0010_0000);
        assert_eq!(eur.drains, 1);
        assert_eq!(eur.c_factor(), 0.5);
    }

    #[test]
    fn eur_stripe_dirty_tracking() {
        let code = BchCode::vlew();
        let mut eur = EurModel::default();
        let mut d = BitPoly::zero(code.parity_bits());
        d.set(1, true);
        eur.accumulate(2, 7, &d);
        assert!(eur.stripe_dirty(7));
        assert!(!eur.stripe_dirty(8));
        let mut bytes = vec![0u8; 33];
        eur.drain_into(2, 7, &mut bytes, &code);
        assert!(!eur.stripe_dirty(7));
    }
}
