//! The chipkill-correct engine: runtime read/write paths over the
//! nine-chip functional rank.

use std::collections::HashSet;
use std::fmt;

use pmck_bch::{BatchOutcome, BchCode, BchScratch, BitPoly, DecodePolicy};
use pmck_nvram::{BitErrorInjector, ChipFailureKind, FailedChip, FaultEvent, FaultKind};
use pmck_rs::{RsCode, RsScratch, ThresholdOutcome};
use pmck_rt::rng::Rng;

use crate::config::ChipkillConfig;
use crate::layout::ChipkillLayout;
use crate::rank::{apply_code_delta, ChipStore, EurModel};
use crate::stats::CoreStats;

/// Errors surfaced by the engine.
///
/// Display strings of the device-level variants are stable — the
/// fault-campaign corpus records them verbatim — and service failures
/// keep their cause reachable through [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Block address beyond the configured capacity.
    OutOfRange(u64),
    /// The block was disabled (worn out) and must not be accessed.
    Disabled(u64),
    /// The error pattern exceeds the scheme's combined correction
    /// capability (a detected uncorrectable error — a crash, not SDC).
    Uncorrectable,
    /// More than one chip appears failed; the rank is lost.
    MultiChipFailure,
    /// No layer in the composed stack handles this access kind. The
    /// payload is the access kind name (`"restripe"`, `"patrol_step"`,
    /// ...). A routing miss, not a device fault.
    Unsupported(&'static str),
    /// A Write-CRC protected transfer exhausted its retry budget.
    LinkFailed,
    /// The request never reached the memory pipeline: a service-layer
    /// queue or worker failure. The wrapped [`ServiceError`] is also
    /// reachable through [`std::error::Error::source`].
    Service(ServiceError),
    /// Crash recovery could not reconstruct the durable image (corrupt
    /// intent log or metadata). The wrapped [`RecoveryError`] is also
    /// reachable through [`std::error::Error::source`].
    Recovery(RecoveryError),
    /// A replicated-tier failure: the cluster could not assemble a
    /// quorum or ran out of replicas. The wrapped [`ClusterError`] is
    /// also reachable through [`std::error::Error::source`], and its own
    /// source (when present) is the per-node [`CoreError`] that sank the
    /// last replica — so the chain reaches the transport layer.
    Cluster(ClusterError),
}

impl CoreError {
    /// A service-layer failure with no underlying cause.
    pub fn service(kind: ServiceFailure) -> Self {
        CoreError::Service(ServiceError::new(kind))
    }

    /// A recovery failure with no underlying cause.
    pub fn recovery(kind: RecoveryFailure) -> Self {
        CoreError::Recovery(RecoveryError::new(kind))
    }

    /// A cluster-tier failure with no underlying cause.
    pub fn cluster(kind: ClusterFailure) -> Self {
        CoreError::Cluster(ClusterError::new(kind))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutOfRange(a) => write!(f, "block address {a} out of range"),
            CoreError::Disabled(a) => write!(f, "block {a} is disabled"),
            CoreError::Uncorrectable => write!(f, "uncorrectable error"),
            CoreError::MultiChipFailure => write!(f, "multiple chip failures in one rank"),
            CoreError::Unsupported(kind) => {
                write!(f, "no layer in the stack handles `{kind}` accesses")
            }
            CoreError::LinkFailed => write!(f, "write link exhausted its retry budget"),
            CoreError::Service(e) => write!(f, "{e}"),
            CoreError::Recovery(e) => write!(f, "{e}"),
            CoreError::Cluster(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Service(e) => Some(e),
            CoreError::Recovery(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

/// How a service-layer request was lost (see [`CoreError::Service`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFailure {
    /// The shard's request queue is closed (service shut down).
    QueueClosed,
    /// A shard worker terminated abnormally (panicked or died).
    WorkerLost,
    /// The shard's bounded submission queue is full right now; the
    /// request was not enqueued and can be retried after draining
    /// completions (streaming admission control, never fatal).
    Backpressure,
}

impl fmt::Display for ServiceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceFailure::QueueClosed => write!(f, "shard request queue is closed"),
            ServiceFailure::WorkerLost => write!(f, "shard worker terminated abnormally"),
            ServiceFailure::Backpressure => write!(f, "shard submission queue is full"),
        }
    }
}

/// A service-layer failure: the request was dropped before any device
/// saw it. Wraps the transport-level cause (when one exists) so the
/// full chain is inspectable via [`std::error::Error::source`].
#[derive(Debug, Clone)]
pub struct ServiceError {
    kind: ServiceFailure,
    source: Option<std::sync::Arc<dyn std::error::Error + Send + Sync + 'static>>,
}

impl ServiceError {
    /// A failure with no underlying cause.
    pub fn new(kind: ServiceFailure) -> Self {
        ServiceError { kind, source: None }
    }

    /// A failure wrapping its transport-level cause.
    pub fn with_source(
        kind: ServiceFailure,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        ServiceError {
            kind,
            source: Some(std::sync::Arc::new(source)),
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> ServiceFailure {
        self.kind
    }
}

// Equality ignores the attached cause: two queue-closed errors are the
// same failure for retry/assertion purposes regardless of provenance.
impl PartialEq for ServiceError {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for ServiceError {}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory service unavailable: {}", self.kind)
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// How crash recovery failed (see [`CoreError::Recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFailure {
    /// An intent-log record claims content no seal could cover.
    UnsealedRecord,
    /// Durable metadata failed its CRC check.
    CrcMismatch,
    /// A sealed log entry targets a block outside the durable image —
    /// the torn state cannot be redone.
    TornBlock,
}

impl fmt::Display for RecoveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryFailure::UnsealedRecord => write!(f, "unsealed intent-log record"),
            RecoveryFailure::CrcMismatch => write!(f, "metadata CRC mismatch"),
            RecoveryFailure::TornBlock => write!(f, "unrecoverable torn block"),
        }
    }
}

/// A crash-recovery failure: the durable image cannot be reconstructed
/// into a decodable state. Wraps the media-level cause (when one
/// exists) so the full chain is inspectable via
/// [`std::error::Error::source`].
#[derive(Debug, Clone)]
pub struct RecoveryError {
    kind: RecoveryFailure,
    source: Option<std::sync::Arc<dyn std::error::Error + Send + Sync + 'static>>,
}

impl RecoveryError {
    /// A failure with no underlying cause.
    pub fn new(kind: RecoveryFailure) -> Self {
        RecoveryError { kind, source: None }
    }

    /// A failure wrapping its media-level cause.
    pub fn with_source(
        kind: RecoveryFailure,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        RecoveryError {
            kind,
            source: Some(std::sync::Arc::new(source)),
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> RecoveryFailure {
        self.kind
    }
}

// Equality ignores the attached cause, matching the ServiceError
// convention: two CRC mismatches are the same failure for assertion
// purposes regardless of provenance.
impl PartialEq for RecoveryError {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for RecoveryError {}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recovery failed: {}", self.kind)
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// How a replicated-tier request failed (see [`CoreError::Cluster`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFailure {
    /// The addressed node is administratively down.
    NodeDown(usize),
    /// Too few replicas acknowledged a write.
    QuorumLost {
        /// Acknowledgements the quorum required.
        needed: usize,
        /// Acknowledgements actually collected.
        got: usize,
    },
    /// Every replica placement failed to serve the block (down,
    /// stale, or erroring).
    ReplicasExhausted,
}

impl fmt::Display for ClusterFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterFailure::NodeDown(n) => write!(f, "cluster node {n} is down"),
            ClusterFailure::QuorumLost { needed, got } => {
                write!(f, "quorum not reached ({got} of {needed} replicas)")
            }
            ClusterFailure::ReplicasExhausted => {
                write!(f, "every replica failed to serve the block")
            }
        }
    }
}

/// A replicated-tier failure: the cluster exhausted its placement or
/// quorum options. Wraps the per-node cause (when one exists) — itself
/// usually a [`CoreError::Service`] whose chain continues into the
/// transport — so the full path from cluster verdict to shard-pool
/// fault is inspectable via [`std::error::Error::source`].
#[derive(Debug, Clone)]
pub struct ClusterError {
    kind: ClusterFailure,
    source: Option<std::sync::Arc<dyn std::error::Error + Send + Sync + 'static>>,
}

impl ClusterError {
    /// A failure with no underlying cause.
    pub fn new(kind: ClusterFailure) -> Self {
        ClusterError { kind, source: None }
    }

    /// A failure wrapping its per-node cause.
    pub fn with_source(
        kind: ClusterFailure,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        ClusterError {
            kind,
            source: Some(std::sync::Arc::new(source)),
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> ClusterFailure {
        self.kind
    }
}

// Equality ignores the attached cause, matching the ServiceError
// convention: two exhausted-replica verdicts are the same failure for
// assertion purposes regardless of which node sank last.
impl PartialEq for ClusterError {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for ClusterError {}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster request failed: {}", self.kind)
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// How a read was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// The per-block RS word was already a valid codeword.
    Clean,
    /// The RS tier corrected `corrections` symbols (≤ threshold).
    RsCorrected {
        /// Symbols corrected.
        corrections: usize,
    },
    /// The RS result was distrusted; VLEW decoding corrected the stripe.
    VlewFallback {
        /// Bit errors corrected across the stripe's VLEWs.
        bits_corrected: usize,
    },
    /// A failed chip was reconstructed through RS erasure correction.
    ChipkillErasure {
        /// The failed chip index (0..8; 8 is the parity chip).
        chip: usize,
    },
    /// A single-tier BCH device (baseline or re-striped layout)
    /// corrected scattered bit errors in place.
    BitCorrected {
        /// Bit errors corrected while serving the read.
        bits_corrected: usize,
    },
    /// The VLEW fallback needed the unraveling list decoder for at least
    /// one chip word: some VLEW carried `t + 1` errors and was rescued
    /// beyond the Berlekamp–Massey bound
    /// ([`pmck_bch::DecodePolicy::BeyondBound`]).
    VlewListDecoded {
        /// Bit errors corrected across the stripe's VLEWs.
        bits_corrected: usize,
    },
}

/// A successful block read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The 64 B block contents.
    pub data: [u8; 64],
    /// The path that produced them.
    pub path: ReadPath,
}

/// The proposal's persistent-memory rank: eight data chips plus one parity
/// chip, VLEW-protected per chip and RS-protected per block.
///
/// See the crate-level docs for the scheme; see [`ChipkillMemory::new`]
/// for construction.
#[derive(Debug, Clone)]
pub struct ChipkillMemory {
    cfg: ChipkillConfig,
    layout: ChipkillLayout,
    num_blocks: u64,
    stripes: usize,
    /// Whether the configured tier runs the VLEW boot tier (cached from
    /// the tier's [`crate::Layout`]).
    vlew_enabled: bool,
    /// Bonus blocks per stripe reclaimed from the code area (RS-only
    /// tier; 0 otherwise).
    bonus_per_stripe: usize,
    pub(crate) chips: Vec<ChipStore>,
    pub(crate) vlew: BchCode,
    pub(crate) rs: RsCode,
    /// Reusable RS decoder working memory: the runtime read path decodes
    /// into this instead of allocating per access.
    rs_scratch: RsScratch,
    /// Reusable BCH decoder working memory shared by every VLEW decode
    /// (runtime fallback, scrubs, repair) — one syndrome/BM/Chien scratch
    /// per rank instead of per decode.
    bch_scratch: BchScratch,
    /// Reusable VLEW codeword buffer for single-word decodes.
    vlew_cw: BitPoly,
    /// Reusable per-stripe batch of VLEW codewords (one per chip) for the
    /// batched boot-scrub decode path. Lazily sized on first use.
    vlew_batch: Vec<BitPoly>,
    pub(crate) eur: EurModel,
    /// Ground-truth injected failure (set by [`ChipkillMemory::fail_chip`]).
    failed_chip: Option<FailedChip>,
    /// Failure detected by decode logic (drives erasure reads).
    pub(crate) known_failed: Option<usize>,
    disabled: HashSet<u64>,
    stats: CoreStats,
    /// Persistence domain, when the rank backs a persistent stack.
    /// `None` keeps the whole flush vocabulary a no-op.
    pub(crate) domain: Option<crate::pmem::PmemDomain>,
}

impl ChipkillMemory {
    /// Creates a zero-initialized rank holding `num_blocks` 64 B blocks.
    /// `num_blocks` is rounded up to a whole number of 32-block stripes.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0`.
    pub fn new(num_blocks: u64, cfg: ChipkillConfig) -> Self {
        assert!(num_blocks > 0, "capacity must be nonzero");
        let layout = cfg.layout;
        let bpv = layout.blocks_per_vlew() as u64;
        let stripes = num_blocks.div_ceil(bpv) as usize;
        let num_blocks = stripes as u64 * bpv;
        assert_eq!(
            layout.rs_codeword_bytes(),
            72,
            "engine read/write scratch buffers assume the RS(72, 64) layout"
        );
        let chips = (0..layout.total_chips())
            .map(|_| ChipStore::new(stripes, &layout))
            .collect();
        let rs = RsCode::per_block();
        let rs_scratch = RsScratch::new(&rs);
        // The VLEW geometry comes from the layout: the BCH generator
        // depends only on (m, t), so every tier shares the 33 B code
        // region while protecting a tier-specific data span.
        let vlew = BchCode::new(12, 22, layout.vlew_data_bytes * 8)
            .expect("validated layouts yield constructible VLEW parameters");
        debug_assert_eq!(vlew.parity_bits() / 8, layout.vlew_code_bytes);
        let bch_scratch = BchScratch::new(&vlew);
        let vlew_cw = BitPoly::zero(vlew.len());
        ChipkillMemory {
            vlew_enabled: cfg.vlew_enabled(),
            bonus_per_stripe: cfg.bonus_blocks_per_stripe(),
            cfg,
            layout,
            num_blocks,
            stripes,
            chips,
            vlew,
            rs,
            rs_scratch,
            bch_scratch,
            vlew_cw,
            vlew_batch: Vec::new(),
            eur: EurModel::default(),
            failed_chip: None,
            known_failed: None,
            disabled: HashSet::new(),
            stats: CoreStats::default(),
            domain: None,
        }
    }

    /// The configuration the rank was built with.
    pub fn config(&self) -> &ChipkillConfig {
        &self.cfg
    }

    /// Installs a persistence domain. The caller is responsible for
    /// issuing the initial [`crate::Access::Flush`] that seals the
    /// first durable epoch.
    pub fn set_domain(&mut self, domain: crate::pmem::PmemDomain) {
        self.domain = Some(domain);
    }

    /// Removes and returns the persistence domain, if any.
    pub fn take_domain(&mut self) -> Option<crate::pmem::PmemDomain> {
        self.domain.take()
    }

    /// Capacity in blocks (rounded up to whole stripes).
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Number of 32-block stripes (VLEW groups).
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Engine statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The configured layout.
    pub fn layout(&self) -> &ChipkillLayout {
        &self.layout
    }

    /// The protection tier the rank runs at.
    pub fn tier(&self) -> crate::layout::ProtectionTier {
        self.cfg.tier
    }

    /// Total storage cost of the configured tier (check bits per user
    /// bit).
    pub fn storage_cost(&self) -> f64 {
        self.cfg.total_storage_cost()
    }

    /// Bonus blocks reclaimed from the VLEW code area (RS-only tier;
    /// 0 for VLEW-bearing tiers). Addressed separately from the primary
    /// space via [`ChipkillMemory::read_bonus_block`] /
    /// [`ChipkillMemory::write_bonus_block`].
    pub fn bonus_blocks(&self) -> u64 {
        (self.stripes * self.bonus_per_stripe) as u64
    }

    /// The chip failure detected so far, if any.
    pub fn detected_failed_chip(&self) -> Option<usize> {
        self.known_failed
    }

    /// The functional C factor measured by the EUR model (drains per
    /// write); call [`ChipkillMemory::flush_eur`] first for an exact
    /// value.
    pub fn c_factor(&self) -> f64 {
        self.eur.c_factor()
    }

    /// Number of dirty EUR registers (pending coalesced code updates).
    pub fn eur_occupancy(&self) -> usize {
        self.eur.occupancy()
    }

    fn check_addr(&self, addr: u64) -> Result<(), CoreError> {
        if addr >= self.num_blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        if self.disabled.contains(&addr) {
            return Err(CoreError::Disabled(addr));
        }
        Ok(())
    }

    /// Gathers the physical 72-byte RS word of a block into the
    /// caller-provided buffer: check bytes from the parity chip at
    /// positions `0..8`, then each data chip's 8 bytes. Allocation-free.
    pub(crate) fn gather_block_into(&self, addr: u64, word: &mut [u8; 72]) {
        let stripe = self.layout.stripe_of(addr);
        let off = self.layout.offset_in_stripe(addr);
        let parity_idx = self.layout.data_chips;
        word[..self.layout.rs_check_bytes].copy_from_slice(self.chips[parity_idx].block_slice(
            stripe,
            off,
            &self.layout,
        ));
        for c in 0..self.layout.data_chips {
            let (s, e) = self.layout.rs_positions_of_data_chip(c);
            word[s..e].copy_from_slice(self.chips[c].block_slice(stripe, off, &self.layout));
        }
    }

    fn scatter_block(&mut self, addr: u64, word: &[u8]) {
        let stripe = self.layout.stripe_of(addr);
        let off = self.layout.offset_in_stripe(addr);
        let parity_idx = self.layout.data_chips;
        self.chips[parity_idx]
            .block_slice_mut(stripe, off, &self.layout)
            .copy_from_slice(&word[..self.layout.rs_check_bytes]);
        for c in 0..self.layout.data_chips {
            let (s, e) = self.layout.rs_positions_of_data_chip(c);
            self.chips[c]
                .block_slice_mut(stripe, off, &self.layout)
                .copy_from_slice(&word[s..e]);
        }
    }

    /// Builds the VLEW delta (parity-bit update) for an 8-byte change of
    /// one chip at stripe offset `off`.
    fn vlew_delta_for(&self, off: usize, delta8: &[u8]) -> BitPoly {
        let mut data = BitPoly::zero(self.vlew.data_bits());
        let base = off * self.layout.chip_bytes * 8;
        for (i, &b) in delta8.iter().enumerate() {
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    data.set(base + i * 8 + bit, true);
                }
            }
        }
        self.vlew.parity(&data)
    }

    fn apply_chip_code_update(&mut self, chip: usize, stripe: usize, delta: &BitPoly) {
        if self.cfg.eur_enabled {
            self.eur.accumulate(chip, stripe, delta);
        } else {
            let layout = self.layout;
            apply_code_delta(
                self.chips[chip].vlew_code_mut(stripe, &layout),
                delta,
                &self.vlew,
            );
            self.eur.drains += 1;
        }
    }

    /// Drains every pending EUR register into the code arrays (a full
    /// "row close"; also required before scrubbing or measuring C).
    pub fn flush_eur(&mut self) {
        if self.eur.occupancy() == 0 {
            return;
        }
        let layout = self.layout;
        let code = self.vlew.clone();
        for (c, s) in self.eur.pending_keys() {
            let chip = &mut self.chips[c];
            self.eur
                .drain_into(c, s, chip.vlew_code_mut(s, &layout), &code);
        }
    }

    /// Drains pending EUR registers touching `stripe` (a row close of
    /// that row).
    pub fn close_stripe(&mut self, stripe: usize) {
        if !self.eur.stripe_dirty(stripe) {
            return;
        }
        let layout = self.layout;
        for c in 0..self.layout.total_chips() {
            let code = self.vlew.clone();
            let chip = &mut self.chips[c];
            self.eur
                .drain_into(c, stripe, chip.vlew_code_mut(stripe, &layout), &code);
        }
    }

    /// Writes a block conventionally (raw data sent to the chips): the
    /// stored old value is first corrected so the VLEW code update is
    /// computed from a trusted `x'` (§IV-B/§V-E). Used at initialization
    /// and after VLEW-corrected writebacks.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`] / [`CoreError::Disabled`]; correction
    /// failures of the old value surface as [`CoreError::Uncorrectable`].
    pub fn write_block(&mut self, addr: u64, new: &[u8; 64]) -> Result<(), CoreError> {
        self.check_addr(addr)?;
        let mut old72 = [0u8; 72];
        self.corrected_word_into(addr, &mut old72)?;
        let mut new72 = [0u8; 72];
        new72[8..].copy_from_slice(new);
        self.rs.parity_into(new, &mut new72[..8]);
        self.commit_write(addr, &old72, &new72);
        self.eur.writes_seen += 1;
        self.stats.writes += 1;
        Ok(())
    }

    /// Writes a block through the proposal's bitwise-sum path (§V-D):
    /// `sum = new ⊕ old_corrected` arrives at the chips, each of which
    /// derives its new data by XORing the sum into its *stored* bytes and
    /// derives its VLEW code update as `f(sum)`. Pre-existing cell errors
    /// propagate one-to-one (they remain correctable); they are not
    /// amplified.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`] / [`CoreError::Disabled`].
    pub fn write_block_sum(&mut self, addr: u64, sum: &[u8; 64]) -> Result<(), CoreError> {
        self.check_addr(addr)?;
        let stripe = self.layout.stripe_of(addr);
        let off = self.layout.offset_in_stripe(addr);
        // The controller computes the check-byte sum once; each chip then
        // updates independently.
        let mut check_sum = [0u8; 8];
        self.rs.parity_into(sum, &mut check_sum);
        let parity_idx = self.layout.data_chips;
        for c in 0..self.layout.data_chips {
            let mut delta8 = [0u8; 8];
            delta8.copy_from_slice(&sum[c * 8..(c + 1) * 8]);
            let layout = self.layout;
            {
                let slice = self.chips[c].block_slice_mut(stripe, off, &layout);
                for (b, d) in slice.iter_mut().zip(&delta8) {
                    *b ^= d;
                }
            }
            if self.vlew_enabled && delta8.iter().any(|&d| d != 0) {
                let delta = self.vlew_delta_for(off, &delta8);
                self.apply_chip_code_update(c, stripe, &delta);
            }
        }
        {
            let layout = self.layout;
            let slice = self.chips[parity_idx].block_slice_mut(stripe, off, &layout);
            for (b, d) in slice.iter_mut().zip(&check_sum) {
                *b ^= d;
            }
        }
        if self.vlew_enabled && check_sum.iter().any(|&d| d != 0) {
            let delta = self.vlew_delta_for(off, &check_sum);
            self.apply_chip_code_update(parity_idx, stripe, &delta);
        }
        self.eur.writes_seen += 1;
        self.stats.writes += 1;
        Ok(())
    }

    fn commit_write(&mut self, addr: u64, old72: &[u8], new72: &[u8]) {
        let stripe = self.layout.stripe_of(addr);
        let off = self.layout.offset_in_stripe(addr);
        let parity_idx = self.layout.data_chips;
        // VLEW code updates from the corrected delta (VLEW-bearing tiers
        // only; the RS-only tier keeps no code to maintain).
        if self.vlew_enabled {
            let mut delta8 = [0u8; 8];
            for c in 0..self.layout.data_chips {
                let (s, e) = self.layout.rs_positions_of_data_chip(c);
                for (d, i) in delta8.iter_mut().zip(s..e) {
                    *d = old72[i] ^ new72[i];
                }
                if delta8.iter().any(|&d| d != 0) {
                    let delta = self.vlew_delta_for(off, &delta8);
                    self.apply_chip_code_update(c, stripe, &delta);
                }
            }
            for (d, i) in delta8.iter_mut().zip(0..8) {
                *d = old72[i] ^ new72[i];
            }
            if delta8.iter().any(|&d| d != 0) {
                let delta = self.vlew_delta_for(off, &delta8);
                self.apply_chip_code_update(parity_idx, stripe, &delta);
            }
        }
        self.scatter_block(addr, new72);
    }

    /// Reads a block through the runtime path (§V-C, Figure 9): RS with
    /// the acceptance threshold, VLEW fallback, chip-failure erasure
    /// correction.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`], [`CoreError::Disabled`],
    /// [`CoreError::Uncorrectable`], [`CoreError::MultiChipFailure`].
    pub fn read_block(&mut self, addr: u64) -> Result<ReadOutcome, CoreError> {
        let mut data = [0u8; 64];
        let path = self.read_block_into(addr, &mut data)?;
        Ok(ReadOutcome { data, path })
    }

    /// [`ChipkillMemory::read_block`] decoding directly into the
    /// caller's buffer: the hot-path form, skipping the outcome copy.
    /// On error the buffer contents are unspecified.
    ///
    /// # Errors
    ///
    /// As [`ChipkillMemory::read_block`].
    pub fn read_block_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
    ) -> Result<ReadPath, CoreError> {
        self.check_addr(addr)?;
        self.stats.reads += 1;

        // With a known-failed chip, go straight to erasure correction.
        if let Some(chip) = self.known_failed {
            *data = self.read_via_erasure(addr, chip)?;
            self.stats.erasure_reads += 1;
            return Ok(ReadPath::ChipkillErasure { chip });
        }

        let mut word = [0u8; 72];
        self.gather_block_into(addr, &mut word);
        match self
            .rs
            .decode_with_threshold_scratch(&mut word, self.cfg.threshold, &mut self.rs_scratch)
            .expect("word length is correct")
        {
            ThresholdOutcome::Clean => {
                self.stats.clean_reads += 1;
                data.copy_from_slice(&word[8..]);
                Ok(ReadPath::Clean)
            }
            ThresholdOutcome::Accepted { corrections } => {
                self.stats.rs_accepted += 1;
                self.stats.rs_corrections += corrections as u64;
                data.copy_from_slice(&word[8..]);
                Ok(ReadPath::RsCorrected { corrections })
            }
            ThresholdOutcome::Rejected(_) => {
                if !self.vlew_enabled {
                    // RS-only tier: the full RS radius was already spent
                    // (threshold = rs_check_bytes / 2); there is no
                    // deeper tier to fall back to.
                    self.stats.due_events += 1;
                    return Err(CoreError::Uncorrectable);
                }
                self.stats.fallbacks += 1;
                let out = self.vlew_fallback_read(addr)?;
                *data = out.data;
                Ok(out.path)
            }
        }
    }

    /// The VLEW fallback: decode every chip's VLEW for the stripe; if one
    /// chip is uncorrectable, treat it as failed and erasure-correct.
    fn vlew_fallback_read(&mut self, addr: u64) -> Result<ReadOutcome, CoreError> {
        let stripe = self.layout.stripe_of(addr);
        self.close_stripe(stripe);
        let mut corrected: Vec<Option<Vec<u8>>> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        let mut bits = 0usize;
        let mut rescued_any = false;
        for c in 0..self.layout.total_chips() {
            match self.decode_vlew(c, stripe) {
                Ok((data, _code, n, rescued)) => {
                    bits += n;
                    rescued_any |= rescued;
                    corrected.push(Some(data));
                }
                Err(()) => {
                    failed.push(c);
                    corrected.push(None);
                }
            }
        }
        match failed.len() {
            0 => {
                self.stats.vlew_bits_corrected += bits as u64;
                let off = self.layout.offset_in_stripe(addr);
                let mut data = [0u8; 64];
                for c in 0..self.layout.data_chips {
                    let region = corrected[c].as_ref().expect("no failure");
                    data[c * 8..(c + 1) * 8].copy_from_slice(&region[off * 8..(off + 1) * 8]);
                }
                let path = if rescued_any {
                    ReadPath::VlewListDecoded {
                        bits_corrected: bits,
                    }
                } else {
                    ReadPath::VlewFallback {
                        bits_corrected: bits,
                    }
                };
                Ok(ReadOutcome { data, path })
            }
            1 => {
                let chip = failed[0];
                self.known_failed = Some(chip);
                self.stats.chip_failures_detected += 1;
                let data = self.read_via_erasure_with(addr, chip, &corrected)?;
                Ok(ReadOutcome {
                    data,
                    path: ReadPath::ChipkillErasure { chip },
                })
            }
            _ => {
                self.stats.due_events += 1;
                Err(CoreError::MultiChipFailure)
            }
        }
    }

    /// Erasure-corrects a block given a known-failed chip, decoding the
    /// surviving chips' VLEWs first so the RS erasure input is clean.
    /// The RS-only tier has no VLEWs to pre-correct with and erasure-
    /// decodes the raw gathered word instead.
    fn read_via_erasure(&mut self, addr: u64, chip: usize) -> Result<[u8; 64], CoreError> {
        if !self.vlew_enabled {
            self.stats.erasure_reads += 1;
            let mut word = [0u8; 72];
            self.gather_block_into(addr, &mut word);
            return self.erasure_decode_word(&mut word, chip);
        }
        let stripe = self.layout.stripe_of(addr);
        self.close_stripe(stripe);
        let mut corrected: Vec<Option<Vec<u8>>> = Vec::new();
        for c in 0..self.layout.total_chips() {
            if c == chip {
                corrected.push(None);
                continue;
            }
            match self.decode_vlew(c, stripe) {
                Ok((data, _, _, _)) => corrected.push(Some(data)),
                Err(()) => {
                    self.stats.due_events += 1;
                    return Err(CoreError::MultiChipFailure);
                }
            }
        }
        self.read_via_erasure_with(addr, chip, &corrected)
    }

    fn read_via_erasure_with(
        &mut self,
        addr: u64,
        chip: usize,
        corrected: &[Option<Vec<u8>>],
    ) -> Result<[u8; 64], CoreError> {
        self.stats.erasure_reads += 1;
        let off = self.layout.offset_in_stripe(addr);
        let parity_idx = self.layout.data_chips;
        if chip == parity_idx {
            // Parity chip failed: the data chips alone carry the block.
            let mut data = [0u8; 64];
            for (c, region) in corrected.iter().take(self.layout.data_chips).enumerate() {
                let region = region.as_ref().expect("data chips survived");
                data[c * 8..(c + 1) * 8].copy_from_slice(&region[off * 8..(off + 1) * 8]);
            }
            return Ok(data);
        }
        // Build the 72-byte word from corrected survivors; the failed
        // chip's positions are erasures.
        let mut word = [0u8; 72];
        let parity_region = corrected[parity_idx].as_ref().expect("parity survived");
        word[..8].copy_from_slice(&parity_region[off * 8..(off + 1) * 8]);
        for (c, region) in corrected.iter().take(self.layout.data_chips).enumerate() {
            if c == chip {
                continue;
            }
            let (s, e) = self.layout.rs_positions_of_data_chip(c);
            let region = region.as_ref().expect("survivor");
            word[s..e].copy_from_slice(&region[off * 8..(off + 1) * 8]);
        }
        let (es, ee) = self.layout.rs_positions_of_data_chip(chip);
        let mut erasures = [0usize; 8];
        for (slot, p) in erasures.iter_mut().zip(es..ee) {
            *slot = p;
        }
        self.rs
            .decode_with_erasures_scratch(&mut word, &erasures, &mut self.rs_scratch)
            .map_err(|_| CoreError::Uncorrectable)?;
        Ok(word[8..].try_into().expect("64 data bytes"))
    }

    /// Erasure-decodes a gathered 72-byte word in place with `chip`'s
    /// positions as erasures, returning the 64 data bytes. With the
    /// parity chip failed the data chips alone carry the block.
    fn erasure_decode_word(
        &mut self,
        word: &mut [u8; 72],
        chip: usize,
    ) -> Result<[u8; 64], CoreError> {
        let parity_idx = self.layout.data_chips;
        if chip == parity_idx {
            return Ok(word[8..].try_into().expect("64 data bytes"));
        }
        let (es, ee) = self.layout.rs_positions_of_data_chip(chip);
        let mut erasures = [0usize; 8];
        for (slot, p) in erasures.iter_mut().zip(es..ee) {
            *slot = p;
        }
        self.rs
            .decode_with_erasures_scratch(word, &erasures, &mut self.rs_scratch)
            .map_err(|_| CoreError::Uncorrectable)?;
        Ok(word[8..].try_into().expect("64 data bytes"))
    }

    /// RS-scrubs one primary block (RS-only tier's boot scrub unit):
    /// threshold-decodes the word and rewrites it if corrections were
    /// made. Returns the number of symbols corrected.
    pub(crate) fn rs_scrub_block(&mut self, addr: u64) -> Result<usize, CoreError> {
        let mut word = [0u8; 72];
        self.gather_block_into(addr, &mut word);
        match self
            .rs
            .decode_with_threshold_scratch(&mut word, self.cfg.threshold, &mut self.rs_scratch)
            .expect("word length is correct")
        {
            ThresholdOutcome::Clean => Ok(0),
            ThresholdOutcome::Accepted { corrections } => {
                self.scatter_block(addr, &word);
                Ok(corrections)
            }
            ThresholdOutcome::Rejected(_) => Err(CoreError::Uncorrectable),
        }
    }

    /// [`ChipkillMemory::rs_scrub_block`] for a bonus block.
    pub(crate) fn rs_scrub_bonus(&mut self, idx: u64) -> Result<usize, CoreError> {
        let mut word = [0u8; 72];
        self.gather_bonus_into(idx, &mut word);
        match self
            .rs
            .decode_with_threshold_scratch(&mut word, self.cfg.threshold, &mut self.rs_scratch)
            .expect("word length is correct")
        {
            ThresholdOutcome::Clean => Ok(0),
            ThresholdOutcome::Accepted { corrections } => {
                self.scatter_bonus(idx, &word);
                Ok(corrections)
            }
            ThresholdOutcome::Rejected(_) => Err(CoreError::Uncorrectable),
        }
    }

    /// Gathers bonus block `idx`'s 72-byte RS word from the chips' code
    /// regions: check bytes from the parity chip's slice, then each data
    /// chip's 8 bytes, mirroring [`ChipkillMemory::gather_block_into`].
    pub(crate) fn gather_bonus_into(&self, idx: u64, word: &mut [u8; 72]) {
        let stripe = idx as usize / self.bonus_per_stripe;
        let base = (idx as usize % self.bonus_per_stripe) * self.layout.chip_bytes;
        let cb = self.layout.chip_bytes;
        let parity_idx = self.layout.data_chips;
        word[..self.layout.rs_check_bytes].copy_from_slice(
            &self.chips[parity_idx].vlew_code(stripe, &self.layout)[base..base + cb],
        );
        for c in 0..self.layout.data_chips {
            let (s, e) = self.layout.rs_positions_of_data_chip(c);
            word[s..e]
                .copy_from_slice(&self.chips[c].vlew_code(stripe, &self.layout)[base..base + cb]);
        }
    }

    fn scatter_bonus(&mut self, idx: u64, word: &[u8; 72]) {
        let stripe = idx as usize / self.bonus_per_stripe;
        let base = (idx as usize % self.bonus_per_stripe) * self.layout.chip_bytes;
        let cb = self.layout.chip_bytes;
        let parity_idx = self.layout.data_chips;
        let layout = self.layout;
        self.chips[parity_idx].vlew_code_mut(stripe, &layout)[base..base + cb]
            .copy_from_slice(&word[..layout.rs_check_bytes]);
        for c in 0..layout.data_chips {
            let (s, e) = layout.rs_positions_of_data_chip(c);
            self.chips[c].vlew_code_mut(stripe, &layout)[base..base + cb]
                .copy_from_slice(&word[s..e]);
        }
    }

    /// Reads a bonus block (RS-only tier): RS threshold decode over the
    /// reclaimed code-area word, erasure correction with a known-failed
    /// chip. There is no VLEW behind these blocks, so a rejected word is
    /// a detected uncorrectable error.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] on VLEW-bearing tiers (no reclaimed
    /// capacity), [`CoreError::OutOfRange`], [`CoreError::Uncorrectable`].
    pub fn read_bonus_block(&mut self, idx: u64) -> Result<ReadOutcome, CoreError> {
        if self.bonus_per_stripe == 0 {
            return Err(CoreError::Unsupported("bonus_read"));
        }
        if idx >= self.bonus_blocks() {
            return Err(CoreError::OutOfRange(idx));
        }
        self.stats.reads += 1;
        let mut word = [0u8; 72];
        self.gather_bonus_into(idx, &mut word);
        if let Some(chip) = self.known_failed {
            let data = self.erasure_decode_word(&mut word, chip)?;
            self.stats.erasure_reads += 1;
            return Ok(ReadOutcome {
                data,
                path: ReadPath::ChipkillErasure { chip },
            });
        }
        match self
            .rs
            .decode_with_threshold_scratch(&mut word, self.cfg.threshold, &mut self.rs_scratch)
            .expect("word length is correct")
        {
            ThresholdOutcome::Clean => {
                self.stats.clean_reads += 1;
                Ok(ReadOutcome {
                    data: word[8..].try_into().expect("64 data bytes"),
                    path: ReadPath::Clean,
                })
            }
            ThresholdOutcome::Accepted { corrections } => {
                self.stats.rs_accepted += 1;
                self.stats.rs_corrections += corrections as u64;
                Ok(ReadOutcome {
                    data: word[8..].try_into().expect("64 data bytes"),
                    path: ReadPath::RsCorrected { corrections },
                })
            }
            ThresholdOutcome::Rejected(_) => {
                self.stats.due_events += 1;
                Err(CoreError::Uncorrectable)
            }
        }
    }

    /// Writes a bonus block (RS-only tier). Bonus blocks carry no VLEW,
    /// so the write is a plain encode-and-scatter — no old value needed.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] on VLEW-bearing tiers,
    /// [`CoreError::OutOfRange`].
    pub fn write_bonus_block(&mut self, idx: u64, new: &[u8; 64]) -> Result<(), CoreError> {
        if self.bonus_per_stripe == 0 {
            return Err(CoreError::Unsupported("bonus_write"));
        }
        if idx >= self.bonus_blocks() {
            return Err(CoreError::OutOfRange(idx));
        }
        let mut word = [0u8; 72];
        word[8..].copy_from_slice(new);
        self.rs.parity_into(new, &mut word[..8]);
        self.scatter_bonus(idx, &word);
        self.stats.writes += 1;
        Ok(())
    }

    /// Assembles chip `chip`'s VLEW codeword for `stripe` into `dst`
    /// without allocating. The VLEW parity region (264 bits = 33 B) is
    /// byte-aligned, so both regions drop in via byte splices.
    fn load_vlew_word(
        chips: &[ChipStore],
        layout: &ChipkillLayout,
        vlew: &BchCode,
        chip: usize,
        stripe: usize,
        dst: &mut BitPoly,
    ) {
        debug_assert_eq!(vlew.parity_bits() % 8, 0, "VLEW parity is byte-aligned");
        dst.splice_bytes(
            0,
            &chips[chip].vlew_code(stripe, layout)[..vlew.parity_bits() / 8],
        );
        dst.splice_bytes(vlew.parity_bits(), chips[chip].vlew_data(stripe, layout));
    }

    /// Decodes one chip's VLEW for `stripe` through the shared scratch,
    /// returning the corrected 256 B data region, 33 B code region, the
    /// number of bit errors corrected, and whether the unraveling list
    /// decoder (not plain bounded-distance decoding) produced the result.
    /// The stored arrays are *not* modified.
    ///
    /// The reach is set by [`ChipkillConfig::decode_policy`]; list-decoder
    /// rescues are counted in [`CoreStats::list_rescues`].
    pub(crate) fn decode_vlew(
        &mut self,
        chip: usize,
        stripe: usize,
    ) -> Result<(Vec<u8>, Vec<u8>, usize, bool), ()> {
        Self::load_vlew_word(
            &self.chips,
            &self.layout,
            &self.vlew,
            chip,
            stripe,
            &mut self.vlew_cw,
        );
        let res = match self.cfg.decode_policy {
            DecodePolicy::Bounded => self
                .vlew
                .decode_scratch(&mut self.vlew_cw, &mut self.bch_scratch),
            DecodePolicy::BeyondBound => self
                .vlew
                .decode_beyond_bound_scratch(&mut self.vlew_cw, &mut self.bch_scratch),
        };
        match res {
            Ok(view) => {
                let n = view.num_corrected();
                let rescued = view.beyond_bound();
                if rescued {
                    self.stats.list_rescues += 1;
                }
                let mut data = vec![0u8; self.vlew.data_bits() / 8];
                let mut code = vec![0u8; self.vlew.parity_bits() / 8];
                self.vlew_cw
                    .extract_bytes(self.vlew.parity_bits(), &mut data);
                self.vlew_cw.extract_bytes(0, &mut code);
                Ok((data, code, n, rescued))
            }
            Err(_) => Err(()),
        }
    }

    /// Boot-scrub support: decodes every chip's VLEW of `stripe` as one
    /// batch through the shared scratch, leaving per-chip outcomes in
    /// `outcomes` (cleared first). Corrected words stay in the internal
    /// batch buffer for write-back via
    /// [`ChipkillMemory::write_back_vlew`]; storage is untouched here.
    /// List-decoder rescues are counted in [`CoreStats::list_rescues`].
    pub(crate) fn decode_vlew_stripe_into(
        &mut self,
        stripe: usize,
        outcomes: &mut Vec<BatchOutcome>,
    ) {
        let chips = self.layout.total_chips();
        if self.vlew_batch.len() != chips {
            self.vlew_batch = (0..chips).map(|_| BitPoly::zero(self.vlew.len())).collect();
        }
        for (chip, w) in self.vlew_batch.iter_mut().enumerate() {
            Self::load_vlew_word(&self.chips, &self.layout, &self.vlew, chip, stripe, w);
        }
        let res = self.vlew.decode_batch_policy(
            &mut self.vlew_batch,
            self.cfg.decode_policy,
            &mut self.bch_scratch,
        );
        outcomes.clear();
        outcomes.extend_from_slice(res);
        for o in outcomes.iter() {
            if let BatchOutcome::Corrected {
                beyond_bound: true, ..
            } = o
            {
                self.stats.list_rescues += 1;
            }
        }
    }

    /// Writes the batch-corrected word for `chip` (left in the batch
    /// buffer by [`ChipkillMemory::decode_vlew_stripe_into`]) back into
    /// that chip's stored data and code regions.
    pub(crate) fn write_back_vlew(&mut self, chip: usize, stripe: usize) {
        let layout = self.layout;
        let r = self.vlew.parity_bits();
        let w = &self.vlew_batch[chip];
        let chips = &mut self.chips;
        w.extract_bytes(0, &mut chips[chip].vlew_code_mut(stripe, &layout)[..r / 8]);
        w.extract_bytes(r, chips[chip].vlew_data_mut(stripe, &layout));
    }

    /// Corrects the full 72-byte word of a block into `word` (RS first,
    /// VLEW fallback), without mutating stored state. Allocation-free on
    /// the RS-trusted path.
    pub(crate) fn corrected_word_into(
        &mut self,
        addr: u64,
        word: &mut [u8; 72],
    ) -> Result<(), CoreError> {
        self.gather_block_into(addr, word);
        match self
            .rs
            .decode_with_threshold_scratch(word, self.cfg.threshold, &mut self.rs_scratch)
            .expect("length correct")
        {
            ThresholdOutcome::Clean | ThresholdOutcome::Accepted { .. } => Ok(()),
            ThresholdOutcome::Rejected(_) => {
                if !self.vlew_enabled {
                    return Err(CoreError::Uncorrectable);
                }
                let stripe = self.layout.stripe_of(addr);
                self.close_stripe(stripe);
                let off = self.layout.offset_in_stripe(addr);
                let parity_idx = self.layout.data_chips;
                let (pd, _, _, _) = self
                    .decode_vlew(parity_idx, stripe)
                    .map_err(|_| CoreError::Uncorrectable)?;
                word[..8].copy_from_slice(&pd[off * 8..(off + 1) * 8]);
                for c in 0..self.layout.data_chips {
                    let (cd, _, _, _) = self
                        .decode_vlew(c, stripe)
                        .map_err(|_| CoreError::Uncorrectable)?;
                    let (s, e) = self.layout.rs_positions_of_data_chip(c);
                    word[s..e].copy_from_slice(&cd[off * 8..(off + 1) * 8]);
                }
                Ok(())
            }
        }
    }

    /// Scrubs one block: corrects it (RS or VLEW) and physically rewrites
    /// the corrected bytes, clearing accumulated cell errors in the
    /// block's data and check bytes. The VLEW code needs no update — it
    /// was already consistent with the corrected value (the errors lived
    /// in the cells, not the code's reference point).
    ///
    /// # Errors
    ///
    /// As [`ChipkillMemory::read_block`].
    pub fn scrub_block(&mut self, addr: u64) -> Result<(), CoreError> {
        self.check_addr(addr)?;
        let mut word = [0u8; 72];
        self.corrected_word_into(addr, &mut word)?;
        self.scatter_block(addr, &word);
        Ok(())
    }

    /// Injects i.i.d. random bit flips at `rber` across every stored cell
    /// (data, VLEW code, and check bytes alike). Returns the number of
    /// flipped bits.
    pub fn inject_bit_errors<R: Rng + ?Sized>(&mut self, rber: f64, rng: &mut R) -> usize {
        let inj = BitErrorInjector::new(rber);
        let mut n = 0;
        for chip in &mut self.chips {
            n += inj.corrupt(&mut chip.data, rng).len();
            n += inj.corrupt(&mut chip.code, rng).len();
        }
        n
    }

    /// Injects i.i.d. bit flips at `rber` into one chip's slice of one
    /// stripe (data and VLEW code cells alike) — a spatially-correlated
    /// row fault. Returns the number of flipped bits.
    ///
    /// # Panics
    ///
    /// Panics if `chip` or `stripe` is out of range.
    pub fn inject_row_fault<R: Rng + ?Sized>(
        &mut self,
        chip: usize,
        stripe: usize,
        rber: f64,
        rng: &mut R,
    ) -> usize {
        assert!(chip < self.layout.total_chips(), "chip {chip} out of range");
        assert!(stripe < self.stripes, "stripe {stripe} out of range");
        let inj = BitErrorInjector::new(rber);
        let layout = self.layout;
        let store = &mut self.chips[chip];
        inj.corrupt(store.vlew_data_mut(stripe, &layout), rng).len()
            + inj.corrupt(store.vlew_code_mut(stripe, &layout), rng).len()
    }

    /// Flips `bits` random bits confined to a window of `width_bits`
    /// consecutive stored data bits of `chip` — a burst error. Returns
    /// the flipped global bit positions within the chip's data array.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn inject_burst<R: Rng + ?Sized>(
        &mut self,
        chip: usize,
        bits: u32,
        width_bits: u32,
        rng: &mut R,
    ) -> Vec<usize> {
        assert!(chip < self.layout.total_chips(), "chip {chip} out of range");
        let store = &mut self.chips[chip];
        let total_bits = store.data.len() * 8;
        let width = (width_bits.max(1) as usize).min(total_bits);
        let start = rng.gen_range(0..=(total_bits - width));
        let mut flipped = Vec::new();
        for _ in 0..bits {
            let p = start + rng.gen_range(0..width);
            store.data[p / 8] ^= 1 << (p % 8);
            flipped.push(p);
        }
        flipped.sort_unstable();
        flipped
    }

    /// XORs `mask` into one stored byte of `chip`'s 8 B contribution to
    /// block `addr` (`byte` indexes within that contribution). A
    /// deterministic single-symbol fault hook for crafted corpus cases:
    /// unlike [`ChipkillMemory::inject_burst`] it consumes no RNG, so
    /// the disturbed symbol is exactly where the case says it is.
    ///
    /// # Panics
    ///
    /// Panics if `chip` or `byte` is out of range.
    pub fn corrupt_chip_byte(&mut self, chip: usize, addr: u64, byte: usize, mask: u8) {
        assert!(chip < self.layout.total_chips(), "chip {chip} out of range");
        assert!(byte < self.layout.chip_bytes, "byte {byte} out of range");
        let stripe = self.layout.stripe_of(addr);
        let off = self.layout.offset_in_stripe(addr);
        let layout = self.layout;
        self.chips[chip].block_slice_mut(stripe, off, &layout)[byte] ^= mask;
    }

    /// Applies one scheduled [`FaultEvent`] from a fault campaign to the
    /// stored arrays. Background-rate events ([`FaultKind::Rber`],
    /// [`FaultKind::RberRamp`]) carry no instantaneous action — the
    /// campaign driver samples [`FaultSchedule::rber_at`] and calls
    /// [`ChipkillMemory::inject_bit_errors`] itself — so they return 0.
    /// Returns the number of bits (or cells) disturbed.
    ///
    /// [`FaultSchedule::rber_at`]: pmck_nvram::FaultSchedule::rber_at
    pub fn apply_fault_event<R: Rng + ?Sized>(&mut self, event: &FaultEvent, rng: &mut R) -> usize {
        match event.kind {
            FaultKind::Rber { .. } | FaultKind::RberRamp { .. } => 0,
            FaultKind::Burst {
                bits,
                width_bits,
                chip,
            } => {
                let chip = chip.unwrap_or_else(|| rng.gen_range(0..self.layout.total_chips()));
                self.inject_burst(chip % self.layout.total_chips(), bits, width_bits, rng)
                    .len()
            }
            FaultKind::RowFault { chip, stripe, rber } => self.inject_row_fault(
                chip % self.layout.total_chips(),
                stripe % self.stripes,
                rber,
                rng,
            ),
            FaultKind::ChipKill { chip, kind } => {
                let chip = chip % self.layout.total_chips();
                self.fail_chip(chip, kind, rng);
                self.chips[chip].data.len() * 8
            }
        }
    }

    /// Fails a chip: corrupts its stored arrays per `kind` and records the
    /// ground truth. Detection still happens through the decode paths.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn fail_chip<R: Rng + ?Sized>(&mut self, chip: usize, kind: ChipFailureKind, rng: &mut R) {
        assert!(chip < self.layout.total_chips(), "chip {chip} out of range");
        let failure = FailedChip::new(chip, kind);
        {
            let store = &mut self.chips[chip];
            failure.corrupt_output(&mut store.data, rng);
            failure.corrupt_output(&mut store.code, rng);
        }
        self.failed_chip = Some(failure);
    }

    /// The injected ground-truth failure, if any.
    pub fn injected_failure(&self) -> Option<FailedChip> {
        self.failed_chip
    }

    /// Rebuilds a failed chip in place (erasure-correct every block, then
    /// re-encode the chip's VLEWs) and clears the failure marks. The §V-E
    /// "correct the faulty chip, then retire/migrate" flow uses this
    /// before retirement.
    ///
    /// # Errors
    ///
    /// [`CoreError::Uncorrectable`] if some block cannot be rebuilt.
    pub fn repair_chip(&mut self, chip: usize) -> Result<(), CoreError> {
        if !self.vlew_enabled {
            return self.repair_chip_rs_only(chip);
        }
        let parity_idx = self.layout.data_chips;
        self.flush_eur();
        for stripe in 0..self.stripes {
            // Correct the survivors once per stripe.
            let mut corrected: Vec<Option<Vec<u8>>> = Vec::new();
            for c in 0..self.layout.total_chips() {
                if c == chip {
                    corrected.push(None);
                } else {
                    let (d, code, _, _) = self
                        .decode_vlew(c, stripe)
                        .map_err(|_| CoreError::Uncorrectable)?;
                    // Write back the corrected survivor regions.
                    let layout = self.layout;
                    self.chips[c]
                        .vlew_data_mut(stripe, &layout)
                        .copy_from_slice(&d);
                    self.chips[c]
                        .vlew_code_mut(stripe, &layout)
                        .copy_from_slice(&code);
                    corrected.push(Some(d));
                }
            }
            let bpv = self.layout.blocks_per_vlew();
            for off in 0..bpv {
                let addr = (stripe * bpv + off) as u64;
                if chip == parity_idx {
                    // Recompute check bytes from the data chips.
                    let mut data = [0u8; 64];
                    for c in 0..self.layout.data_chips {
                        let region = corrected[c].as_ref().expect("survivor");
                        data[c * 8..(c + 1) * 8].copy_from_slice(&region[off * 8..(off + 1) * 8]);
                    }
                    let mut check = [0u8; 8];
                    self.rs.parity_into(&data, &mut check);
                    let layout = self.layout;
                    self.chips[parity_idx]
                        .block_slice_mut(stripe, off, &layout)
                        .copy_from_slice(&check);
                } else {
                    let data = self.read_via_erasure_with(addr, chip, &corrected)?;
                    let layout = self.layout;
                    self.chips[chip]
                        .block_slice_mut(stripe, off, &layout)
                        .copy_from_slice(&data[chip * 8..(chip + 1) * 8]);
                }
            }
            // Re-encode the rebuilt chip's VLEW code for this stripe.
            let layout = self.layout;
            let data_bits = BitPoly::from_bytes(self.chips[chip].vlew_data(stripe, &layout));
            let parity = self.vlew.parity(&data_bits);
            let mut code_bytes = parity.to_bytes();
            code_bytes.resize(layout.vlew_code_bytes, 0);
            self.chips[chip]
                .vlew_code_mut(stripe, &layout)
                .copy_from_slice(&code_bytes);
        }
        self.failed_chip = None;
        self.known_failed = None;
        Ok(())
    }

    /// RS-only repair: every primary and bonus word is erasure-rebuilt
    /// (or, for the parity chip, its check bytes recomputed from the
    /// stored data). Without VLEWs the survivors cannot be pre-corrected,
    /// so residual random bit errors on them survive the rebuild — the
    /// tier's documented trade-off.
    fn repair_chip_rs_only(&mut self, chip: usize) -> Result<(), CoreError> {
        let parity_idx = self.layout.data_chips;
        for addr in 0..self.num_blocks {
            let stripe = self.layout.stripe_of(addr);
            let off = self.layout.offset_in_stripe(addr);
            let mut word = [0u8; 72];
            self.gather_block_into(addr, &mut word);
            let layout = self.layout;
            if chip == parity_idx {
                let data: [u8; 64] = word[8..].try_into().expect("64 data bytes");
                let mut check = [0u8; 8];
                self.rs.parity_into(&data, &mut check);
                self.chips[parity_idx]
                    .block_slice_mut(stripe, off, &layout)
                    .copy_from_slice(&check);
            } else {
                let data = self.erasure_decode_word(&mut word, chip)?;
                self.chips[chip]
                    .block_slice_mut(stripe, off, &layout)
                    .copy_from_slice(&data[chip * 8..(chip + 1) * 8]);
            }
        }
        for idx in 0..self.bonus_blocks() {
            let mut word = [0u8; 72];
            self.gather_bonus_into(idx, &mut word);
            if chip == parity_idx {
                let data: [u8; 64] = word[8..].try_into().expect("64 data bytes");
                let mut check = [0u8; 8];
                self.rs.parity_into(&data, &mut check);
                word[..8].copy_from_slice(&check);
            } else {
                self.erasure_decode_word(&mut word, chip)?;
            }
            self.scatter_bonus(idx, &word);
        }
        self.failed_chip = None;
        self.known_failed = None;
        Ok(())
    }

    /// Disables a worn-out block (§V-E): the VLEW code is updated as if
    /// the block's physical bits were zero, the bits are zeroed, and
    /// further accesses fail with [`CoreError::Disabled`].
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`]; disabling twice is a no-op.
    pub fn disable_block(&mut self, addr: u64) -> Result<(), CoreError> {
        if addr >= self.num_blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        // The code update must be computed from the *corrected* old value
        // so the VLEW ends up consistent with zeros at the block's
        // positions; a worn block that defeats correction falls back to
        // the raw bits (its residual errors stay within the VLEW budget).
        let mut old = [0u8; 72];
        if self.corrected_word_into(addr, &mut old).is_err() {
            self.gather_block_into(addr, &mut old);
        }
        if !self.disabled.insert(addr) {
            return Ok(());
        }
        let zero72 = [0u8; 72];
        self.commit_write(addr, &old, &zero72);
        Ok(())
    }

    /// Whether `addr` has been disabled.
    pub fn is_disabled(&self, addr: u64) -> bool {
        self.disabled.contains(&addr)
    }
}
