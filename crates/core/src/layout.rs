//! Rank-level data and ECC layout (paper §V-A, Figure 6).

/// Geometry of the proposed layout. The defaults are the paper's:
/// 64 B blocks over 8 data chips + 1 parity chip; per chip, each 256 B of
/// row data forms a VLEW with 33 B of code bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipkillLayout {
    /// Bytes per memory block (64).
    pub block_bytes: usize,
    /// Data chips per rank (8).
    pub data_chips: usize,
    /// Bytes each chip contributes per block (8).
    pub chip_bytes: usize,
    /// VLEW data bytes per chip (256).
    pub vlew_data_bytes: usize,
    /// VLEW code bytes per chip (33 = 264 bits of 22-bit-EC BCH).
    pub vlew_code_bytes: usize,
    /// RS check bytes per block, stored in the parity chip (8).
    pub rs_check_bytes: usize,
}

impl Default for ChipkillLayout {
    fn default() -> Self {
        ChipkillLayout {
            block_bytes: 64,
            data_chips: 8,
            chip_bytes: 8,
            vlew_data_bytes: 256,
            vlew_code_bytes: 33,
            rs_check_bytes: 8,
        }
    }
}

impl ChipkillLayout {
    /// Total chips including the parity chip (9).
    pub fn total_chips(&self) -> usize {
        self.data_chips + 1
    }

    /// Blocks covered by one VLEW (256 / 8 = 32).
    pub fn blocks_per_vlew(&self) -> usize {
        self.vlew_data_bytes / self.chip_bytes
    }

    /// The stripe (VLEW group) index of a block.
    pub fn stripe_of(&self, block_addr: u64) -> usize {
        (block_addr as usize) / self.blocks_per_vlew()
    }

    /// The block's offset within its stripe.
    pub fn offset_in_stripe(&self, block_addr: u64) -> usize {
        (block_addr as usize) % self.blocks_per_vlew()
    }

    /// Extra blocks fetched when falling back to VLEW correction for one
    /// block: the 32 data blocks plus ~4 blocks of code bits, minus the
    /// already-fetched block (paper: 35).
    pub fn vlew_fallback_extra_blocks(&self) -> usize {
        self.blocks_per_vlew() + self.vlew_code_bytes.div_ceil(self.chip_bytes) - 2
    }

    /// VLEW storage overhead per chip: 33/256.
    pub fn vlew_overhead(&self) -> f64 {
        self.vlew_code_bytes as f64 / self.vlew_data_bytes as f64
    }

    /// Total storage cost of the scheme (§V-A):
    /// `33/256 + 1/8 · (1 + 33/256) ≈ 27%`.
    pub fn total_storage_cost(&self) -> f64 {
        let v = self.vlew_overhead();
        v + (1.0 / self.data_chips as f64) * (1.0 + v)
    }

    /// RS codeword length for a block: 64 data + 8 check = 72.
    pub fn rs_codeword_bytes(&self) -> usize {
        self.block_bytes + self.rs_check_bytes
    }

    /// RS codeword positions `(first, last_exclusive)` of data chip
    /// `chip`'s bytes within a block codeword (check bytes occupy
    /// positions `0..rs_check_bytes`).
    ///
    /// # Panics
    ///
    /// Panics if `chip >= data_chips`.
    pub fn rs_positions_of_data_chip(&self, chip: usize) -> (usize, usize) {
        assert!(chip < self.data_chips, "chip {chip} out of range");
        let start = self.rs_check_bytes + chip * self.chip_bytes;
        (start, start + self.chip_bytes)
    }

    /// RS codeword positions of the parity chip's bytes (`0..8`).
    pub fn rs_positions_of_parity_chip(&self) -> (usize, usize) {
        (0, self.rs_check_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let l = ChipkillLayout::default();
        assert_eq!(l.total_chips(), 9);
        assert_eq!(l.blocks_per_vlew(), 32);
        assert_eq!(l.rs_codeword_bytes(), 72);
        assert_eq!(l.vlew_fallback_extra_blocks(), 35);
    }

    #[test]
    fn storage_cost_is_27_percent() {
        let l = ChipkillLayout::default();
        let cost = l.total_storage_cost();
        assert!((cost - 0.2699).abs() < 0.001, "cost {cost}");
    }

    #[test]
    fn stripe_math() {
        let l = ChipkillLayout::default();
        assert_eq!(l.stripe_of(0), 0);
        assert_eq!(l.stripe_of(31), 0);
        assert_eq!(l.stripe_of(32), 1);
        assert_eq!(l.offset_in_stripe(33), 1);
    }

    #[test]
    fn rs_position_map_covers_codeword_exactly() {
        let l = ChipkillLayout::default();
        let mut covered = vec![false; l.rs_codeword_bytes()];
        let (ps, pe) = l.rs_positions_of_parity_chip();
        covered[ps..pe].fill(true);
        for c in 0..l.data_chips {
            let (s, e) = l.rs_positions_of_data_chip(c);
            for (p, slot) in covered.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "overlap at {p}");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_chip_panics() {
        let _ = ChipkillLayout::default().rs_positions_of_data_chip(8);
    }
}
