//! Rank-level data and ECC layout (paper §V-A, Figure 6), plus the
//! pluggable protection tiers layered on top of it.
//!
//! The paper fixes one design point — RS(72, 64) per block plus a
//! t = 22 BCH VLEW per 256 B of chip data, 27% storage cost everywhere.
//! [`Layout`] generalizes that into a trait with three implementations
//! selected by [`ProtectionTier`]:
//!
//! | tier | VLEW | RS threshold | storage cost | intended for |
//! |---|---|---|---|---|
//! | [`RsOnlyLayout`] | off (code area → bonus blocks) | 4 (full radius) | ≈ 12.9% | healthy regions |
//! | [`PaperLayout`] | 256 B / chip, t = 22 | 2 | ≈ 27% | the paper's fixed point |
//! | [`DenseLayout`] | 128 B / chip, t = 22 | 2 | ≈ 41.5% | worn regions |
//!
//! All three share the RS(72, 64) block codeword and the 9-chip rank, so
//! the engine's gather/scatter kernels are reused unchanged; only the
//! per-chip VLEW striping and the decode policy differ.

/// Geometry of the proposed layout. The defaults are the paper's:
/// 64 B blocks over 8 data chips + 1 parity chip; per chip, each 256 B of
/// row data forms a VLEW with 33 B of code bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipkillLayout {
    /// Bytes per memory block (64).
    pub block_bytes: usize,
    /// Data chips per rank (8).
    pub data_chips: usize,
    /// Bytes each chip contributes per block (8).
    pub chip_bytes: usize,
    /// VLEW data bytes per chip (256).
    pub vlew_data_bytes: usize,
    /// VLEW code bytes per chip (33 = 264 bits of 22-bit-EC BCH).
    pub vlew_code_bytes: usize,
    /// RS check bytes per block, stored in the parity chip (8).
    pub rs_check_bytes: usize,
}

impl Default for ChipkillLayout {
    fn default() -> Self {
        ChipkillLayout {
            block_bytes: 64,
            data_chips: 8,
            chip_bytes: 8,
            vlew_data_bytes: 256,
            vlew_code_bytes: 33,
            rs_check_bytes: 8,
        }
    }
}

impl ChipkillLayout {
    /// Total chips including the parity chip (9).
    pub fn total_chips(&self) -> usize {
        self.data_chips + 1
    }

    /// Blocks covered by one VLEW (256 / 8 = 32).
    pub fn blocks_per_vlew(&self) -> usize {
        self.vlew_data_bytes / self.chip_bytes
    }

    /// The stripe (VLEW group) index of a block.
    pub fn stripe_of(&self, block_addr: u64) -> usize {
        (block_addr as usize) / self.blocks_per_vlew()
    }

    /// The block's offset within its stripe.
    pub fn offset_in_stripe(&self, block_addr: u64) -> usize {
        (block_addr as usize) % self.blocks_per_vlew()
    }

    /// Extra blocks fetched when falling back to VLEW correction for one
    /// block: the 32 data blocks plus ~4 blocks of code bits, minus the
    /// already-fetched block (paper: 35).
    pub fn vlew_fallback_extra_blocks(&self) -> usize {
        self.blocks_per_vlew() + self.vlew_code_bytes.div_ceil(self.chip_bytes) - 2
    }

    /// VLEW storage overhead per chip: 33/256.
    pub fn vlew_overhead(&self) -> f64 {
        self.vlew_code_bytes as f64 / self.vlew_data_bytes as f64
    }

    /// Total storage cost of the scheme (§V-A):
    /// `33/256 + 1/8 · (1 + 33/256) ≈ 27%`.
    pub fn total_storage_cost(&self) -> f64 {
        let v = self.vlew_overhead();
        v + (1.0 / self.data_chips as f64) * (1.0 + v)
    }

    /// RS codeword length for a block: 64 data + 8 check = 72.
    pub fn rs_codeword_bytes(&self) -> usize {
        self.block_bytes + self.rs_check_bytes
    }

    /// RS codeword positions `(first, last_exclusive)` of data chip
    /// `chip`'s bytes within a block codeword (check bytes occupy
    /// positions `0..rs_check_bytes`).
    ///
    /// # Panics
    ///
    /// Panics if `chip >= data_chips`.
    pub fn rs_positions_of_data_chip(&self, chip: usize) -> (usize, usize) {
        assert!(chip < self.data_chips, "chip {chip} out of range");
        let start = self.rs_check_bytes + chip * self.chip_bytes;
        (start, start + self.chip_bytes)
    }

    /// RS codeword positions of the parity chip's bytes (`0..8`).
    pub fn rs_positions_of_parity_chip(&self) -> (usize, usize) {
        (0, self.rs_check_bytes)
    }

    /// The dense (Chip-Guard-style) geometry: the same 9-chip rank and
    /// RS(72, 64) block codeword, but each VLEW covers only 128 B of
    /// chip data with the same 33 B of t = 22 BCH code — twice the
    /// code density of the paper's point.
    pub fn dense() -> Self {
        ChipkillLayout {
            vlew_data_bytes: 128,
            ..ChipkillLayout::default()
        }
    }

    /// Checks the geometry invariants every derived quantity assumes.
    ///
    /// An invalid geometry would otherwise *silently* miscompute
    /// `stripe_of`/`offset_in_stripe` (non-divisible VLEW striping) or
    /// `vlew_fallback_extra_blocks` (zero code bytes), so builders call
    /// this before constructing an engine.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_bytes == 0 || self.data_chips == 0 || self.chip_bytes == 0 {
            return Err("block_bytes, data_chips, and chip_bytes must be nonzero".into());
        }
        if self.block_bytes != self.data_chips * self.chip_bytes {
            return Err(format!(
                "block_bytes ({}) must equal data_chips ({}) x chip_bytes ({})",
                self.block_bytes, self.data_chips, self.chip_bytes
            ));
        }
        if self.vlew_data_bytes == 0 || !self.vlew_data_bytes.is_multiple_of(self.chip_bytes) {
            return Err(format!(
                "vlew_data_bytes ({}) must be a nonzero multiple of chip_bytes ({})",
                self.vlew_data_bytes, self.chip_bytes
            ));
        }
        if self.vlew_code_bytes == 0 {
            return Err("vlew_code_bytes must be nonzero".into());
        }
        if self.rs_check_bytes == 0 {
            return Err("rs_check_bytes must be nonzero".into());
        }
        Ok(())
    }
}

/// The protection tier a region (or a whole rank) runs at. Selects one
/// of the three [`Layout`] implementations; [`TierPolicy`] assigns a
/// tier to each region from its measured RBER.
///
/// [`TierPolicy`]: crate::tier::TierPolicy
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtectionTier {
    /// RS(72, 64) only; the VLEW code area is reclaimed as bonus blocks.
    RsOnly,
    /// The paper's fixed RS + VLEW design point (§V-A).
    Paper,
    /// Dense VLEW striping (128 B/chip at t = 22) for worn regions.
    Dense,
}

impl ProtectionTier {
    /// Every tier, in ascending protection order.
    pub const ALL: [ProtectionTier; 3] = [
        ProtectionTier::RsOnly,
        ProtectionTier::Paper,
        ProtectionTier::Dense,
    ];

    /// Stable lowercase name (metrics keys, JSON, corpus entries).
    pub fn as_str(self) -> &'static str {
        match self {
            ProtectionTier::RsOnly => "rs_only",
            ProtectionTier::Paper => "paper",
            ProtectionTier::Dense => "dense",
        }
    }

    /// The durable meta-line tag. `Paper` encodes as 0 so pre-tier meta
    /// lines (whose word 6 was reserved-zero) decode as the paper tier.
    pub fn tag(self) -> u64 {
        match self {
            ProtectionTier::Paper => 0,
            ProtectionTier::RsOnly => 1,
            ProtectionTier::Dense => 2,
        }
    }

    /// Decodes a durable meta-line tag back into a tier.
    pub fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(ProtectionTier::Paper),
            1 => Some(ProtectionTier::RsOnly),
            2 => Some(ProtectionTier::Dense),
            _ => None,
        }
    }

    /// The tier's [`Layout`] implementation.
    pub fn layout(self) -> &'static dyn Layout {
        match self {
            ProtectionTier::RsOnly => &RsOnlyLayout,
            ProtectionTier::Paper => &PaperLayout,
            ProtectionTier::Dense => &DenseLayout,
        }
    }
}

impl std::fmt::Display for ProtectionTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ProtectionTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ProtectionTier::ALL
            .into_iter()
            .find(|t| t.as_str() == s)
            .ok_or_else(|| format!("unknown protection tier: {s}"))
    }
}

/// A pluggable rank protection layout: the geometry plus the decode
/// policy knobs that distinguish the three tiers. Implementations are
/// stateless unit structs reachable through [`ProtectionTier::layout`],
/// so configs stay `Copy` and carry only the tier tag.
pub trait Layout {
    /// The tier this layout implements.
    fn tier(&self) -> ProtectionTier;

    /// Human-readable name.
    fn name(&self) -> &'static str {
        self.tier().as_str()
    }

    /// The rank geometry the engine should use.
    fn geometry(&self) -> ChipkillLayout;

    /// Whether the per-chip VLEW boot tier is active. When `false` the
    /// code area holds bonus blocks instead of BCH code bits.
    fn vlew_enabled(&self) -> bool {
        true
    }

    /// The RS acceptance threshold (max corrections accepted without
    /// escalating). The paper point uses 2 to bound SDC; an RS-only
    /// layout has no fallback tier and spends the full radius.
    fn rs_threshold(&self) -> usize;

    /// Bonus 64 B blocks reclaimed from each stripe's code area (0 for
    /// VLEW-bearing layouts).
    fn bonus_blocks_per_stripe(&self) -> usize {
        0
    }

    /// Total storage cost: check bytes per user-data byte.
    fn total_storage_cost(&self) -> f64;

    /// Validates the layout's geometry invariants.
    fn validate(&self) -> Result<(), String> {
        self.geometry().validate()
    }
}

/// The paper's fixed design point: RS(72, 64) at threshold 2 with the
/// 256 B / 33 B t = 22 VLEW boot tier — ≈ 27% total storage cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperLayout;

impl Layout for PaperLayout {
    fn tier(&self) -> ProtectionTier {
        ProtectionTier::Paper
    }

    fn geometry(&self) -> ChipkillLayout {
        ChipkillLayout::default()
    }

    fn rs_threshold(&self) -> usize {
        2
    }

    fn total_storage_cost(&self) -> f64 {
        self.geometry().total_storage_cost()
    }
}

/// The healthy-region layout: RS(72, 64) alone, spending the full
/// correction radius. The per-chip VLEW code area is reclaimed as bonus
/// blocks — four extra RS-protected 64 B blocks per stripe, striped
/// 8 B/chip across the code region exactly like primary blocks — so the
/// storage cost drops to ≈ 12.9%.
#[derive(Debug, Clone, Copy, Default)]
pub struct RsOnlyLayout;

impl Layout for RsOnlyLayout {
    fn tier(&self) -> ProtectionTier {
        ProtectionTier::RsOnly
    }

    fn geometry(&self) -> ChipkillLayout {
        ChipkillLayout::default()
    }

    fn vlew_enabled(&self) -> bool {
        false
    }

    fn rs_threshold(&self) -> usize {
        // No VLEW fallback behind the block code: spend the full
        // radius, floor(rs_check_bytes / 2) = 4 symbol corrections.
        self.geometry().rs_check_bytes / 2
    }

    fn bonus_blocks_per_stripe(&self) -> usize {
        let g = self.geometry();
        g.vlew_code_bytes / g.chip_bytes
    }

    fn total_storage_cost(&self) -> f64 {
        let g = self.geometry();
        // Per stripe: 9 chips x (256 + 33) physical bytes serve
        // 8 x 256 primary data bytes plus the reclaimed bonus blocks.
        let physical = g.total_chips() * (g.vlew_data_bytes + g.vlew_code_bytes);
        let user =
            g.data_chips * g.vlew_data_bytes + self.bonus_blocks_per_stripe() * g.block_bytes;
        (physical - user) as f64 / user as f64
    }
}

/// The worn-region layout: the same t = 22 BCH code over half the data
/// (128 B per VLEW), doubling the code density per stored bit in the
/// style of Chip Guard's strengthened per-chip ECC — ≈ 41.5% storage
/// cost, bought only where the measured RBER demands it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseLayout;

impl Layout for DenseLayout {
    fn tier(&self) -> ProtectionTier {
        ProtectionTier::Dense
    }

    fn geometry(&self) -> ChipkillLayout {
        ChipkillLayout::dense()
    }

    fn rs_threshold(&self) -> usize {
        2
    }

    fn total_storage_cost(&self) -> f64 {
        self.geometry().total_storage_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let l = ChipkillLayout::default();
        assert_eq!(l.total_chips(), 9);
        assert_eq!(l.blocks_per_vlew(), 32);
        assert_eq!(l.rs_codeword_bytes(), 72);
        assert_eq!(l.vlew_fallback_extra_blocks(), 35);
    }

    #[test]
    fn storage_cost_is_27_percent() {
        let l = ChipkillLayout::default();
        let cost = l.total_storage_cost();
        assert!((cost - 0.2699).abs() < 0.001, "cost {cost}");
    }

    #[test]
    fn stripe_math() {
        let l = ChipkillLayout::default();
        assert_eq!(l.stripe_of(0), 0);
        assert_eq!(l.stripe_of(31), 0);
        assert_eq!(l.stripe_of(32), 1);
        assert_eq!(l.offset_in_stripe(33), 1);
    }

    #[test]
    fn rs_position_map_covers_codeword_exactly() {
        let l = ChipkillLayout::default();
        let mut covered = vec![false; l.rs_codeword_bytes()];
        let (ps, pe) = l.rs_positions_of_parity_chip();
        covered[ps..pe].fill(true);
        for c in 0..l.data_chips {
            let (s, e) = l.rs_positions_of_data_chip(c);
            for (p, slot) in covered.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "overlap at {p}");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_chip_panics() {
        let _ = ChipkillLayout::default().rs_positions_of_data_chip(8);
    }

    #[test]
    fn validate_accepts_the_shipped_geometries() {
        ChipkillLayout::default().validate().unwrap();
        ChipkillLayout::dense().validate().unwrap();
        for tier in ProtectionTier::ALL {
            tier.layout().validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_each_broken_invariant() {
        let good = ChipkillLayout::default();
        let cases = [
            ChipkillLayout {
                chip_bytes: 0,
                ..good
            },
            // block no longer data_chips x chip_bytes
            ChipkillLayout {
                block_bytes: 60,
                ..good
            },
            // VLEW striping not block-aligned
            ChipkillLayout {
                vlew_data_bytes: 260,
                ..good
            },
            ChipkillLayout {
                vlew_data_bytes: 0,
                ..good
            },
            ChipkillLayout {
                vlew_code_bytes: 0,
                ..good
            },
            ChipkillLayout {
                rs_check_bytes: 0,
                ..good
            },
        ];
        for bad in cases {
            assert!(bad.validate().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tier_table() {
        use std::str::FromStr;
        for tier in ProtectionTier::ALL {
            let l = tier.layout();
            assert_eq!(l.tier(), tier);
            assert_eq!(l.name(), tier.as_str());
            assert_eq!(ProtectionTier::from_str(tier.as_str()), Ok(tier));
            assert_eq!(ProtectionTier::from_tag(tier.tag()), Some(tier));
            // Every tier keeps the RS(72, 64) block codeword the engine
            // scratch buffers assume.
            assert_eq!(l.geometry().rs_codeword_bytes(), 72);
        }
        // Word 6 of pre-tier meta lines was reserved-zero: it must keep
        // decoding as the paper tier.
        assert_eq!(ProtectionTier::Paper.tag(), 0);
        assert_eq!(ProtectionTier::from_tag(7), None);
        assert!(ProtectionTier::from_str("warp-core").is_err());
    }

    #[test]
    fn tier_costs_bracket_the_paper_point() {
        let rs_only = ProtectionTier::RsOnly.layout().total_storage_cost();
        let paper = ProtectionTier::Paper.layout().total_storage_cost();
        let dense = ProtectionTier::Dense.layout().total_storage_cost();
        assert!((paper - 0.2699).abs() < 0.001, "paper {paper}");
        assert!(
            (rs_only - 297.0 / 2304.0).abs() < 1e-12,
            "rs_only {rs_only}"
        );
        assert!((dense - 0.4150).abs() < 0.001, "dense {dense}");
        assert!(rs_only < paper && paper < dense);
    }

    #[test]
    fn rs_only_reclaims_four_bonus_blocks_per_stripe() {
        let l = RsOnlyLayout;
        assert_eq!(l.bonus_blocks_per_stripe(), 4);
        assert!(!l.vlew_enabled());
        assert_eq!(l.rs_threshold(), 4);
        // The bonus blocks' per-chip slices (4 x 8 = 32 B) fit inside
        // each chip's 33 B code region.
        let g = l.geometry();
        assert!(l.bonus_blocks_per_stripe() * g.chip_bytes <= g.vlew_code_bytes);
    }

    #[test]
    fn dense_geometry_doubles_code_density() {
        let d = ChipkillLayout::dense();
        assert_eq!(d.blocks_per_vlew(), 16);
        assert_eq!(d.vlew_code_bytes, 33);
        assert_eq!(d.vlew_fallback_extra_blocks(), 19);
        assert!(d.vlew_overhead() > 2.0 * ChipkillLayout::default().vlew_overhead() - 1e-9);
    }
}
