//! Start-Gap wear leveling over the chipkill rank (§V-E).
//!
//! The paper notes the proposal is compatible with wear leveling that
//! dynamically remaps blocks (Qureshi et al.'s Start-Gap \[87\]): after
//! remapping a block, the memory controller updates the VLEW code bits
//! as if the physical bits that previously held the block now contain
//! zeros — the same arithmetic as block disabling.
//!
//! Start-Gap keeps one spare ("gap") physical block and a rotation
//! counter (`start`). Every `gap_move_interval` writes, the gap moves by
//! one: the block just above it is copied into the gap, freeing its old
//! location as the new gap. Over `capacity + 1` moves every logical block
//! has occupied every physical slot, spreading hot writes.
//!
//! [`WearLevelledMemory`] wraps [`ChipkillMemory`] with that remap layer,
//! performing gap moves through the engine's conventional write path (so
//! every VLEW stays consistent) and zeroing vacated slots exactly as
//! §V-E prescribes.

use crate::config::ChipkillConfig;
use crate::engine::{ChipkillMemory, CoreError, ReadOutcome};

/// Start-Gap wear-levelled view of a chipkill rank.
///
/// Logical addresses `0..logical_blocks` map onto `logical_blocks + 1`
/// physical blocks (one gap). Reads and writes are forwarded through the
/// current mapping; every `gap_move_interval` demand writes the gap
/// advances one slot.
///
/// # Examples
///
/// ```
/// use pmck_core::{ChipkillConfig, WearLevelledMemory};
///
/// let mut mem = WearLevelledMemory::new(63, ChipkillConfig::default(), 4);
/// mem.write(5, &[0xAA; 64]).unwrap();
/// for i in 0..200 {
///     mem.write(i % 63, &[i as u8; 64]).unwrap(); // triggers gap moves
/// }
/// assert!(mem.gap_moves() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct WearLevelledMemory {
    inner: ChipkillMemory,
    logical_blocks: u64,
    /// Physical index of the current gap block.
    gap: u64,
    /// Rotation offset: logical 0 currently lives at physical `start`.
    start: u64,
    /// Demand writes between gap moves.
    gap_move_interval: u64,
    writes_since_move: u64,
    gap_moves: u64,
}

impl WearLevelledMemory {
    /// Creates a wear-levelled rank with `logical_blocks` usable blocks
    /// (one extra physical block becomes the roving gap) and a gap move
    /// every `gap_move_interval` writes (Start-Gap uses 100 in \[87\]).
    ///
    /// # Panics
    ///
    /// Panics if `logical_blocks == 0` or `gap_move_interval == 0`.
    pub fn new(logical_blocks: u64, cfg: ChipkillConfig, gap_move_interval: u64) -> Self {
        assert!(logical_blocks > 0, "need at least one logical block");
        assert!(gap_move_interval > 0, "interval must be positive");
        let inner = ChipkillMemory::new(logical_blocks + 1, cfg);
        WearLevelledMemory {
            gap: logical_blocks, // start with the gap at the top
            start: 0,
            inner,
            logical_blocks,
            gap_move_interval,
            writes_since_move: 0,
            gap_moves: 0,
        }
    }

    /// Usable (logical) capacity in blocks.
    pub fn logical_blocks(&self) -> u64 {
        self.logical_blocks
    }

    /// Completed gap movements.
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// The underlying physical rank (for scrubbing, injection, stats).
    pub fn inner(&self) -> &ChipkillMemory {
        &self.inner
    }

    /// Mutable access to the underlying rank (error injection in tests;
    /// scrubbing).
    pub fn inner_mut(&mut self) -> &mut ChipkillMemory {
        &mut self.inner
    }

    /// The physical block currently backing `logical` (Start-Gap's
    /// address translation).
    ///
    /// With ring size `n = logical_blocks + 1`, `start` the physical slot
    /// of logical 0 and `gap` the physical slot of the hole, a logical
    /// address walks `logical` slots forward from `start`, skipping the
    /// hole if it lies within that span.
    pub fn physical_of(&self, logical: u64) -> u64 {
        let n = self.logical_blocks + 1;
        let gap_offset = (self.gap + n - self.start) % n;
        let offset = if logical >= gap_offset {
            logical + 1
        } else {
            logical
        };
        (self.start + offset) % n
    }

    fn check(&self, logical: u64) -> Result<(), CoreError> {
        if logical >= self.logical_blocks {
            return Err(CoreError::OutOfRange(logical));
        }
        Ok(())
    }

    /// Reads the logical block.
    ///
    /// # Errors
    ///
    /// As [`ChipkillMemory::read_block`], with logical range checking.
    pub fn read(&mut self, logical: u64) -> Result<ReadOutcome, CoreError> {
        self.check(logical)?;
        let phys = self.physical_of(logical);
        self.inner.read_block(phys)
    }

    /// Writes the logical block (conventional path), advancing the gap
    /// when the interval elapses.
    ///
    /// # Errors
    ///
    /// As [`ChipkillMemory::write_block`].
    pub fn write(&mut self, logical: u64, data: &[u8; 64]) -> Result<(), CoreError> {
        self.check(logical)?;
        let phys = self.physical_of(logical);
        self.inner.write_block(phys, data)?;
        self.writes_since_move += 1;
        if self.writes_since_move >= self.gap_move_interval {
            self.writes_since_move = 0;
            self.move_gap()?;
        }
        Ok(())
    }

    /// Advances the gap one slot backwards around the ring: the block
    /// physically just below the gap moves into the gap, and its old slot
    /// — now vacated — is zeroed with the §V-E VLEW update (as if its
    /// physical bits are zeros). When the victim is the anchor slot, the
    /// whole rotation advances.
    fn move_gap(&mut self) -> Result<(), CoreError> {
        let n = self.logical_blocks + 1;
        let victim = (self.gap + n - 1) % n;
        // Copy victim → gap through the trusted write path.
        let data = self.inner.read_block(victim)?.data;
        self.inner.write_block(self.gap, &data)?;
        // Vacate the old slot: zero it so its VLEW contribution is the
        // all-zero pattern (keeps the stripe consistent, §V-E).
        self.inner.write_block(victim, &[0u8; 64])?;
        if victim == self.start {
            self.start = (self.start + 1) % n;
        }
        self.gap = victim;
        self.gap_moves += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::Rng;
    use pmck_rt::rng::StdRng;

    fn filled(blocks: u64, interval: u64) -> (WearLevelledMemory, Vec<[u8; 64]>) {
        let mut mem = WearLevelledMemory::new(blocks, ChipkillConfig::default(), interval);
        let data: Vec<[u8; 64]> = (0..blocks)
            .map(|a| {
                let mut b = [0u8; 64];
                for (i, x) in b.iter_mut().enumerate() {
                    *x = (a as u8).wrapping_mul(17) ^ (i as u8);
                }
                mem.write(a, &b).unwrap();
                b
            })
            .collect();
        (mem, data)
    }

    #[test]
    fn mapping_is_a_bijection_at_every_step() {
        let mut mem = WearLevelledMemory::new(31, ChipkillConfig::default(), 1);
        for step in 0..200 {
            let mut seen = std::collections::HashSet::new();
            for l in 0..31 {
                let p = mem.physical_of(l);
                assert!(p < 32, "physical in range");
                assert_ne!(p, mem.gap, "logical never maps to the gap");
                assert!(seen.insert(p), "step {step}: collision at {p}");
            }
            mem.write(step % 31, &[step as u8; 64]).unwrap();
        }
    }

    #[test]
    fn data_survives_many_rotations() {
        let (mut mem, data) = filled(31, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth = data;
        // Enough writes for several full rotations.
        for _ in 0..1500 {
            let l = rng.gen_range(0..31);
            let mut v = [0u8; 64];
            rng.fill_bytes(&mut v[..]);
            mem.write(l, &v).unwrap();
            truth[l as usize] = v;
        }
        assert!(mem.gap_moves() > 700);
        for (l, v) in truth.iter().enumerate() {
            assert_eq!(&mem.read(l as u64).unwrap().data, v, "logical {l}");
        }
    }

    #[test]
    fn vlew_consistency_maintained_through_remaps() {
        let (mut mem, _) = filled(63, 1);
        for i in 0..300u64 {
            mem.write(i % 63, &[i as u8; 64]).unwrap();
        }
        assert!(mem.inner_mut().verify_consistent());
    }

    #[test]
    fn scrub_works_on_levelled_rank() {
        let (mut mem, _) = filled(31, 4);
        let mut truth: Vec<[u8; 64]> = (0..31).map(|l| mem.read(l).unwrap().data).collect();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let l = rng.gen_range(0..31);
            let mut v = [0u8; 64];
            rng.fill_bytes(&mut v[..]);
            mem.write(l, &v).unwrap();
            truth[l as usize] = v;
        }
        mem.inner_mut().inject_bit_errors(1e-3, &mut rng);
        mem.inner_mut().boot_scrub().unwrap();
        for (l, v) in truth.iter().enumerate() {
            assert_eq!(&mem.read(l as u64).unwrap().data, v);
        }
    }

    #[test]
    fn writes_spread_across_physical_blocks() {
        // Hammering one logical block must touch many physical slots.
        let mut mem = WearLevelledMemory::new(15, ChipkillConfig::default(), 1);
        let mut touched = std::collections::HashSet::new();
        for i in 0..200u64 {
            touched.insert(mem.physical_of(3));
            mem.write(3, &[i as u8; 64]).unwrap();
        }
        assert!(
            touched.len() >= 8,
            "start-gap must rotate the hot block, got {}",
            touched.len()
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mem = WearLevelledMemory::new(8, ChipkillConfig::default(), 4);
        assert!(matches!(mem.read(8), Err(CoreError::OutOfRange(8))));
        assert!(matches!(
            mem.write(100, &[0; 64]),
            Err(CoreError::OutOfRange(100))
        ));
    }
}
