//! Start-Gap wear leveling over the chipkill rank (§V-E).
//!
//! The paper notes the proposal is compatible with wear leveling that
//! dynamically remaps blocks (Qureshi et al.'s Start-Gap \[87\]): after
//! remapping a block, the memory controller updates the VLEW code bits
//! as if the physical bits that previously held the block now contain
//! zeros — the same arithmetic as block disabling.
//!
//! Start-Gap keeps one spare ("gap") physical block and a rotation
//! counter (`start`). Every `gap_move_interval` writes, the gap moves by
//! one: the block just above it is copied into the gap, freeing its old
//! location as the new gap. Over `capacity + 1` moves every logical block
//! has occupied every physical slot, spreading hot writes.
//!
//! [`WearLevelled`] is middleware over any [`BlockDevice`]: it remaps
//! demand reads/writes/scrubs through the current Start-Gap mapping and
//! performs gap moves through the inner device's own access path (so
//! every VLEW stays consistent), zeroing vacated slots exactly as §V-E
//! prescribes. [`WearLevelledMemory`] is the classic concrete form over
//! a bare [`ChipkillMemory`].

use crate::config::ChipkillConfig;
use crate::device::{
    record_access, record_read_into, Access, AccessContext, AccessOutcome, BlockDevice, LayerId,
};
use crate::engine::{ChipkillMemory, CoreError, ReadOutcome, ReadPath};
use crate::stats::CoreStats;

/// Start-Gap wear-levelled view of an inner block device.
///
/// Logical addresses `0..logical_blocks` map onto a ring of
/// `logical_blocks + 1` physical blocks (one gap) at the bottom of the
/// inner device. Reads and writes are forwarded through the current
/// mapping; every `gap_move_interval` demand writes the gap advances one
/// slot.
#[derive(Debug, Clone)]
pub struct WearLevelled<D> {
    inner: D,
    logical_blocks: u64,
    /// Physical index of the current gap block.
    gap: u64,
    /// Rotation offset: logical 0 currently lives at physical `start`.
    start: u64,
    /// Demand writes between gap moves.
    gap_move_interval: u64,
    writes_since_move: u64,
    gap_moves: u64,
}

/// The classic concrete form: Start-Gap directly over a chipkill rank.
///
/// # Examples
///
/// ```
/// use pmck_core::{ChipkillConfig, WearLevelledMemory};
///
/// let mut mem = WearLevelledMemory::new(63, ChipkillConfig::default(), 4);
/// mem.write_block(5, &[0xAA; 64]).unwrap();
/// for i in 0..200 {
///     mem.write_block(i % 63, &[i as u8; 64]).unwrap(); // triggers gap moves
/// }
/// assert!(mem.gap_moves() > 0);
/// ```
pub type WearLevelledMemory = WearLevelled<ChipkillMemory>;

impl<D> WearLevelled<D> {
    /// Usable (logical) capacity in blocks.
    pub fn logical_blocks(&self) -> u64 {
        self.logical_blocks
    }

    /// Completed gap movements.
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// The wrapped device (for scrubbing, injection, stats).
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device (error injection in tests;
    /// scrubbing).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// The physical block currently backing `logical` (Start-Gap's
    /// address translation).
    ///
    /// With ring size `n = logical_blocks + 1`, `start` the physical slot
    /// of logical 0 and `gap` the physical slot of the hole, a logical
    /// address walks `logical` slots forward from `start`, skipping the
    /// hole if it lies within that span.
    pub fn physical_of(&self, logical: u64) -> u64 {
        let n = self.logical_blocks + 1;
        let gap_offset = (self.gap + n - self.start) % n;
        let offset = if logical >= gap_offset {
            logical + 1
        } else {
            logical
        };
        (self.start + offset) % n
    }

    fn check(&self, logical: u64) -> Result<(), CoreError> {
        if logical >= self.logical_blocks {
            return Err(CoreError::OutOfRange(logical));
        }
        Ok(())
    }

    /// Advances the ring bookkeeping for a completed gap move, returning
    /// the (victim, old_gap) physical pair the caller just swapped.
    fn advance_gap(&mut self) -> (u64, u64) {
        let n = self.logical_blocks + 1;
        let victim = (self.gap + n - 1) % n;
        let old_gap = self.gap;
        if victim == self.start {
            self.start = (self.start + 1) % n;
        }
        self.gap = victim;
        self.gap_moves += 1;
        (victim, old_gap)
    }
}

impl<D: BlockDevice> WearLevelled<D> {
    /// Wraps `inner` with Start-Gap leveling over its bottom
    /// `logical_blocks + 1` physical blocks, moving the gap every
    /// `gap_move_interval` demand writes.
    ///
    /// # Panics
    ///
    /// Panics if `logical_blocks == 0`, `gap_move_interval == 0`, or
    /// `inner` has fewer than `logical_blocks + 1` blocks.
    pub fn over(inner: D, logical_blocks: u64, gap_move_interval: u64) -> Self {
        assert!(logical_blocks > 0, "need at least one logical block");
        assert!(gap_move_interval > 0, "interval must be positive");
        assert!(
            inner.num_blocks() > logical_blocks,
            "inner device must spare one gap block ({} <= {logical_blocks})",
            inner.num_blocks()
        );
        WearLevelled {
            gap: logical_blocks, // start with the gap at the top
            start: 0,
            inner,
            logical_blocks,
            gap_move_interval,
            writes_since_move: 0,
            gap_moves: 0,
        }
    }

    /// One Start-Gap move through the inner device's access path: the
    /// block physically just below the gap moves into the gap, and its
    /// old slot — now vacated — is zeroed with the §V-E VLEW update (as
    /// if its physical bits are zeros).
    fn move_gap_ctx(&mut self, ctx: &mut AccessContext) -> Result<(), CoreError> {
        let n = self.logical_blocks + 1;
        let victim = (self.gap + n - 1) % n;
        let data = match self.inner.access(Access::Read(victim), ctx)? {
            AccessOutcome::Read(out) => out.data,
            other => unreachable!("read returned {other:?}"),
        };
        self.inner.access(
            Access::Write {
                addr: self.gap,
                data,
            },
            ctx,
        )?;
        self.inner.access(
            Access::Write {
                addr: victim,
                data: [0u8; 64],
            },
            ctx,
        )?;
        self.advance_gap();
        ctx.layer_mut(LayerId::Wearlevel).gap_moves += 1;
        Ok(())
    }
}

impl WearLevelled<ChipkillMemory> {
    /// Creates a wear-levelled rank with `logical_blocks` usable blocks
    /// (one extra physical block becomes the roving gap) and a gap move
    /// every `gap_move_interval` writes (Start-Gap uses 100 in \[87\]).
    ///
    /// # Panics
    ///
    /// Panics if `logical_blocks == 0` or `gap_move_interval == 0`.
    pub fn new(logical_blocks: u64, cfg: ChipkillConfig, gap_move_interval: u64) -> Self {
        assert!(logical_blocks > 0, "need at least one logical block");
        let inner = ChipkillMemory::new(logical_blocks + 1, cfg);
        Self::over(inner, logical_blocks, gap_move_interval)
    }

    /// Reads the logical block.
    ///
    /// # Errors
    ///
    /// As [`ChipkillMemory::read_block`], with logical range checking.
    pub fn read_block(&mut self, logical: u64) -> Result<ReadOutcome, CoreError> {
        self.check(logical)?;
        let phys = self.physical_of(logical);
        self.inner.read_block(phys)
    }

    /// Writes the logical block (conventional path), advancing the gap
    /// when the interval elapses.
    ///
    /// # Errors
    ///
    /// As [`ChipkillMemory::write_block`].
    pub fn write_block(&mut self, logical: u64, data: &[u8; 64]) -> Result<(), CoreError> {
        self.check(logical)?;
        let phys = self.physical_of(logical);
        self.inner.write_block(phys, data)?;
        self.writes_since_move += 1;
        if self.writes_since_move >= self.gap_move_interval {
            self.writes_since_move = 0;
            self.move_gap()?;
        }
        Ok(())
    }

    /// Direct-path gap move (outside any [`AccessContext`]).
    fn move_gap(&mut self) -> Result<(), CoreError> {
        let n = self.logical_blocks + 1;
        let victim = (self.gap + n - 1) % n;
        // Copy victim → gap through the trusted write path.
        let data = self.inner.read_block(victim)?.data;
        self.inner.write_block(self.gap, &data)?;
        // Vacate the old slot: zero it so its VLEW contribution is the
        // all-zero pattern (keeps the stripe consistent, §V-E).
        self.inner.write_block(victim, &[0u8; 64])?;
        self.advance_gap();
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for WearLevelled<D> {
    fn id(&self) -> LayerId {
        LayerId::Wearlevel
    }

    /// Capacity as seen above the layer: logical blocks only.
    fn num_blocks(&self) -> u64 {
        self.logical_blocks
    }

    fn detected_failed_chip(&self) -> Option<usize> {
        self.inner.detected_failed_chip()
    }

    fn core_stats(&self) -> Option<CoreStats> {
        self.inner.core_stats()
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        let result = match access {
            Access::Read(logical) => self.check(logical).and_then(|()| {
                let phys = self.physical_of(logical);
                self.inner.access(Access::Read(phys), ctx)
            }),
            Access::Write { addr, data } => self.check(addr).and_then(|()| {
                let phys = self.physical_of(addr);
                let out = self.inner.access(Access::Write { addr: phys, data }, ctx)?;
                self.writes_since_move += 1;
                if self.writes_since_move >= self.gap_move_interval {
                    self.writes_since_move = 0;
                    self.move_gap_ctx(ctx)?;
                }
                Ok(out)
            }),
            Access::WriteSum { addr, data } => self.check(addr).and_then(|()| {
                let phys = self.physical_of(addr);
                let out = self
                    .inner
                    .access(Access::WriteSum { addr: phys, data }, ctx)?;
                self.writes_since_move += 1;
                if self.writes_since_move >= self.gap_move_interval {
                    self.writes_since_move = 0;
                    self.move_gap_ctx(ctx)?;
                }
                Ok(out)
            }),
            Access::Scrub(logical) => self.check(logical).and_then(|()| {
                let phys = self.physical_of(logical);
                self.inner.access(Access::Scrub(phys), ctx)
            }),
            // Whole-device operations are not address-translated, but
            // ones that fence durable state must carry the current
            // Start-Gap position down into the domain's metadata first —
            // and recovery restores the mapping the metadata recorded.
            other => {
                if matches!(other, Access::Flush | Access::Restripe) {
                    if let Some(d) = self.inner.pmem_domain() {
                        d.set_wear(self.gap, self.start);
                    }
                }
                let out = self.inner.access(other, ctx);
                if matches!(other, Access::Recover) && out.is_ok() {
                    if let Some(d) = self.inner.pmem_domain() {
                        let (gap, start) = d.wear();
                        self.gap = gap;
                        self.start = start;
                        self.writes_since_move = 0;
                    }
                }
                out
            }
        };
        record_access(ctx, LayerId::Wearlevel, &access, &result);
        result
    }

    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.inner.pmem_domain()
    }

    fn tier_report(&self) -> Option<crate::tier::TierReport> {
        self.inner.tier_report()
    }

    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        let result = self.check(addr).and_then(|()| {
            let phys = self.physical_of(addr);
            self.inner.read_into(phys, data, ctx)
        });
        record_read_into(ctx, LayerId::Wearlevel, addr, &result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::Rng;
    use pmck_rt::rng::StdRng;

    fn filled(blocks: u64, interval: u64) -> (WearLevelledMemory, Vec<[u8; 64]>) {
        let mut mem = WearLevelledMemory::new(blocks, ChipkillConfig::default(), interval);
        let data: Vec<[u8; 64]> = (0..blocks)
            .map(|a| {
                let mut b = [0u8; 64];
                for (i, x) in b.iter_mut().enumerate() {
                    *x = (a as u8).wrapping_mul(17) ^ (i as u8);
                }
                mem.write_block(a, &b).unwrap();
                b
            })
            .collect();
        (mem, data)
    }

    #[test]
    fn mapping_is_a_bijection_at_every_step() {
        let mut mem = WearLevelledMemory::new(31, ChipkillConfig::default(), 1);
        for step in 0..200 {
            let mut seen = std::collections::HashSet::new();
            for l in 0..31 {
                let p = mem.physical_of(l);
                assert!(p < 32, "physical in range");
                assert_ne!(p, mem.gap, "logical never maps to the gap");
                assert!(seen.insert(p), "step {step}: collision at {p}");
            }
            mem.write_block(step % 31, &[step as u8; 64]).unwrap();
        }
    }

    #[test]
    fn data_survives_many_rotations() {
        let (mut mem, data) = filled(31, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth = data;
        // Enough writes for several full rotations.
        for _ in 0..1500 {
            let l = rng.gen_range(0..31);
            let mut v = [0u8; 64];
            rng.fill_bytes(&mut v[..]);
            mem.write_block(l, &v).unwrap();
            truth[l as usize] = v;
        }
        assert!(mem.gap_moves() > 700);
        for (l, v) in truth.iter().enumerate() {
            assert_eq!(&mem.read_block(l as u64).unwrap().data, v, "logical {l}");
        }
    }

    #[test]
    fn vlew_consistency_maintained_through_remaps() {
        let (mut mem, _) = filled(63, 1);
        for i in 0..300u64 {
            mem.write_block(i % 63, &[i as u8; 64]).unwrap();
        }
        assert!(mem.inner_mut().verify_consistent());
    }

    #[test]
    fn scrub_works_on_levelled_rank() {
        let (mut mem, _) = filled(31, 4);
        let mut truth: Vec<[u8; 64]> = (0..31).map(|l| mem.read_block(l).unwrap().data).collect();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let l = rng.gen_range(0..31);
            let mut v = [0u8; 64];
            rng.fill_bytes(&mut v[..]);
            mem.write_block(l, &v).unwrap();
            truth[l as usize] = v;
        }
        mem.inner_mut().inject_bit_errors(1e-3, &mut rng);
        mem.inner_mut().boot_scrub().unwrap();
        for (l, v) in truth.iter().enumerate() {
            assert_eq!(&mem.read_block(l as u64).unwrap().data, v);
        }
    }

    #[test]
    fn writes_spread_across_physical_blocks() {
        // Hammering one logical block must touch many physical slots.
        let mut mem = WearLevelledMemory::new(15, ChipkillConfig::default(), 1);
        let mut touched = std::collections::HashSet::new();
        for i in 0..200u64 {
            touched.insert(mem.physical_of(3));
            mem.write_block(3, &[i as u8; 64]).unwrap();
        }
        assert!(
            touched.len() >= 8,
            "start-gap must rotate the hot block, got {}",
            touched.len()
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mem = WearLevelledMemory::new(8, ChipkillConfig::default(), 4);
        assert!(matches!(mem.read_block(8), Err(CoreError::OutOfRange(8))));
        assert!(matches!(
            mem.write_block(100, &[0; 64]),
            Err(CoreError::OutOfRange(100))
        ));
    }

    #[test]
    fn trait_access_matches_direct_calls() {
        let mut direct = WearLevelledMemory::new(31, ChipkillConfig::default(), 2);
        let mut stacked =
            WearLevelled::over(ChipkillMemory::new(32, ChipkillConfig::default()), 31, 2);
        let mut ctx = AccessContext::scratch();
        for i in 0..200u64 {
            let l = i % 31;
            let data = [i as u8; 64];
            direct.write_block(l, &data).unwrap();
            stacked
                .access(Access::Write { addr: l, data }, &mut ctx)
                .unwrap();
        }
        assert_eq!(direct.gap_moves(), stacked.gap_moves());
        for l in 0..31u64 {
            let want = direct.read_block(l).unwrap().data;
            match stacked.access(Access::Read(l), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => assert_eq!(out.data, want, "logical {l}"),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(
            ctx.layer(LayerId::Wearlevel).unwrap().gap_moves,
            stacked.gap_moves()
        );
    }
}
