//! Patrol scrubbing: the runtime refresh that keeps RBER at the paper's
//! runtime design points.
//!
//! The analytic model (§III) assumes errors accumulate between refreshes
//! and that a refresh corrects them; the runtime RBER targets (7·10⁻⁵
//! ReRAM, 2·10⁻⁴ hourly-refresh PCM) are *defined* by how often memory is
//! scrubbed. [`PatrolScrubber`] walks any [`BlockDevice`] in fixed-size
//! increments (as real memory controllers do) so each full pass bounds
//! every block's time-since-correction. [`Patrolled`] packages the
//! scrubber as middleware: it answers [`Access::PatrolStep`] and can
//! interleave increments automatically with demand traffic.

use crate::device::{Access, AccessContext, AccessOutcome, BlockDevice, LayerId};
use crate::engine::{CoreError, ReadPath};
use crate::stats::CoreStats;

/// Progress report from one patrol increment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatrolReport {
    /// Blocks scrubbed in this increment.
    pub blocks_scrubbed: u64,
    /// Blocks skipped because they are disabled.
    pub blocks_skipped: u64,
    /// Whether this increment wrapped past the end (completed a pass).
    pub completed_pass: bool,
}

/// A round-robin patrol scrubber over one block device.
///
/// # Examples
///
/// ```
/// use pmck_core::{ChipkillConfig, ChipkillMemory, PatrolScrubber};
///
/// let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
/// let mut patrol = PatrolScrubber::new(16);
/// let report = patrol.step(&mut mem).unwrap();
/// assert_eq!(report.blocks_scrubbed, 16);
/// ```
#[derive(Debug, Clone)]
pub struct PatrolScrubber {
    cursor: u64,
    blocks_per_step: u64,
    passes: u64,
}

impl PatrolScrubber {
    /// A scrubber that visits `blocks_per_step` blocks per increment.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_step == 0`.
    pub fn new(blocks_per_step: u64) -> Self {
        assert!(blocks_per_step > 0, "step must be positive");
        PatrolScrubber {
            cursor: 0,
            blocks_per_step,
            passes: 0,
        }
    }

    /// Completed full passes over the device.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// The next block the patrol will visit.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Scrubs the next increment of `dev`.
    ///
    /// # Errors
    ///
    /// Propagates the first uncorrectable error encountered; the cursor
    /// stays on the failing block so the caller can inspect it.
    pub fn step<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
    ) -> Result<PatrolReport, CoreError> {
        let mut ctx = AccessContext::scratch();
        self.step_ctx(dev, &mut ctx)
    }

    /// [`PatrolScrubber::step`] with the caller's [`AccessContext`]
    /// (stats and trace land in the composed stack's context).
    ///
    /// # Errors
    ///
    /// As [`PatrolScrubber::step`].
    pub fn step_ctx<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        ctx: &mut AccessContext,
    ) -> Result<PatrolReport, CoreError> {
        let mut report = PatrolReport::default();
        for _ in 0..self.blocks_per_step {
            let addr = self.cursor;
            match dev.access(Access::Scrub(addr), ctx) {
                Ok(_) => report.blocks_scrubbed += 1,
                Err(CoreError::Disabled(_)) => report.blocks_skipped += 1,
                Err(e) => return Err(e),
            }
            self.cursor += 1;
            if self.cursor >= dev.num_blocks() {
                self.cursor = 0;
                self.passes += 1;
                report.completed_pass = true;
            }
        }
        Ok(report)
    }

    /// Runs increments until one full pass completes.
    ///
    /// # Errors
    ///
    /// As [`PatrolScrubber::step`].
    pub fn full_pass<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
    ) -> Result<PatrolReport, CoreError> {
        let mut total = PatrolReport::default();
        loop {
            let r = self.step(dev)?;
            total.blocks_scrubbed += r.blocks_scrubbed;
            total.blocks_skipped += r.blocks_skipped;
            if r.completed_pass {
                total.completed_pass = true;
                return Ok(total);
            }
        }
    }
}

/// Patrol-scrub middleware: carries a [`PatrolScrubber`] over its inner
/// device, answering [`Access::PatrolStep`] and (optionally) running one
/// increment automatically every `every` demand accesses — the
/// background-scrub cadence a memory controller would schedule.
#[derive(Debug, Clone)]
pub struct Patrolled<D> {
    inner: D,
    scrubber: PatrolScrubber,
    /// Demand accesses between automatic increments; 0 = manual only.
    every: u64,
    since_step: u64,
}

impl<D: BlockDevice> Patrolled<D> {
    /// Wraps `inner` with a patrol scrubber visiting `blocks_per_step`
    /// blocks per increment. `every > 0` schedules an automatic
    /// increment after that many demand reads/writes; `every == 0`
    /// leaves stepping entirely to [`Access::PatrolStep`].
    pub fn over(inner: D, blocks_per_step: u64, every: u64) -> Self {
        Patrolled {
            inner,
            scrubber: PatrolScrubber::new(blocks_per_step),
            every,
            since_step: 0,
        }
    }

    /// The patrol scrubber's state (cursor, completed passes).
    pub fn scrubber(&self) -> &PatrolScrubber {
        &self.scrubber
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    fn run_step(&mut self, ctx: &mut AccessContext) -> Result<PatrolReport, CoreError> {
        let report = self.scrubber.step_ctx(&mut self.inner, ctx)?;
        let st = ctx.layer_mut(LayerId::Patrol);
        st.patrol_steps += 1;
        if report.completed_pass {
            st.patrol_passes += 1;
        }
        Ok(report)
    }
}

impl<D: BlockDevice> BlockDevice for Patrolled<D> {
    fn id(&self) -> LayerId {
        LayerId::Patrol
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn detected_failed_chip(&self) -> Option<usize> {
        self.inner.detected_failed_chip()
    }

    fn core_stats(&self) -> Option<CoreStats> {
        self.inner.core_stats()
    }

    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.inner.pmem_domain()
    }

    fn tier_report(&self) -> Option<crate::tier::TierReport> {
        self.inner.tier_report()
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        match access {
            Access::PatrolStep => self.run_step(ctx).map(AccessOutcome::Patrolled),
            other => {
                let demand = matches!(
                    other,
                    Access::Read(_) | Access::Write { .. } | Access::WriteSum { .. }
                );
                let out = self.inner.access(other, ctx)?;
                if demand && self.every > 0 {
                    self.since_step += 1;
                    if self.since_step >= self.every {
                        self.since_step = 0;
                        // A background increment tripping over damage
                        // must not fail the demand access that scheduled
                        // it; the error is visible in the layer stats.
                        if self.run_step(ctx).is_err() {
                            ctx.layer_mut(LayerId::Patrol).errors += 1;
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        let path = self.inner.read_into(addr, data, ctx)?;
        if self.every > 0 {
            self.since_step += 1;
            if self.since_step >= self.every {
                self.since_step = 0;
                // Same contract as `access`: a background increment
                // tripping over damage must not fail the demand read.
                if self.run_step(ctx).is_err() {
                    ctx.layer_mut(LayerId::Patrol).errors += 1;
                }
            }
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipkillConfig;
    use crate::engine::ChipkillMemory;
    use pmck_rt::rng::Rng;
    use pmck_rt::rng::StdRng;

    fn filled(blocks: u64, seed: u64) -> (ChipkillMemory, Vec<[u8; 64]>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
        let data = (0..mem.num_blocks())
            .map(|a| {
                let mut b = [0u8; 64];
                rng.fill_bytes(&mut b[..]);
                mem.write_block(a, &b).unwrap();
                b
            })
            .collect();
        (mem, data, rng)
    }

    #[test]
    fn patrol_covers_everything_and_wraps() {
        let (mut mem, _, _) = filled(64, 1);
        let mut p = PatrolScrubber::new(10);
        let mut seen = 0;
        let mut wrapped = false;
        for _ in 0..7 {
            let r = p.step(&mut mem).unwrap();
            seen += r.blocks_scrubbed;
            wrapped |= r.completed_pass;
        }
        assert_eq!(seen, 70);
        assert!(wrapped);
        assert_eq!(p.passes(), 1);
    }

    #[test]
    fn patrol_removes_accumulated_errors() {
        let (mut mem, data, mut rng) = filled(128, 2);
        mem.inject_bit_errors(2e-4, &mut rng);
        let mut p = PatrolScrubber::new(32);
        p.full_pass(&mut mem).unwrap();
        // After the pass, demand reads are clean again (data + check
        // cells rewritten; code-region errors don't affect the RS word).
        for (a, b) in data.iter().enumerate() {
            let out = mem.read_block(a as u64).unwrap();
            assert_eq!(&out.data, b);
            assert_eq!(out.path, crate::engine::ReadPath::Clean, "block {a}");
        }
    }

    #[test]
    fn patrol_skips_disabled_blocks() {
        let (mut mem, _, _) = filled(64, 3);
        mem.disable_block(5).unwrap();
        mem.disable_block(6).unwrap();
        let mut p = PatrolScrubber::new(64);
        let r = p.step(&mut mem).unwrap();
        assert_eq!(r.blocks_skipped, 2);
        assert_eq!(r.blocks_scrubbed, 62);
    }

    #[test]
    fn periodic_patrol_keeps_fallback_rate_at_single_interval_level() {
        // Without patrol, errors accumulate across intervals and the
        // fallback rate climbs; with patrol each interval starts clean.
        let (mem0, _, mut rng) = filled(256, 4);
        let intervals = 12;

        let mut with_patrol = mem0.clone();
        let mut patrol = PatrolScrubber::new(256);
        let mut without = mem0.clone();

        for _ in 0..intervals {
            with_patrol.inject_bit_errors(2e-4, &mut rng);
            without.inject_bit_errors(2e-4, &mut rng);
            for a in 0..with_patrol.num_blocks() {
                let _ = with_patrol.read_block(a).unwrap();
                let _ = without.read_block(a).unwrap();
            }
            patrol.full_pass(&mut with_patrol).unwrap();
        }
        let fb_patrol = with_patrol.stats().fallbacks;
        let fb_without = without.stats().fallbacks;
        assert!(
            fb_without > fb_patrol,
            "accumulation must hurt: {fb_without} vs {fb_patrol}"
        );
    }

    #[test]
    fn patrolled_layer_steps_automatically_with_demand_traffic() {
        let (mem, data, mut rng) = filled(64, 5);
        let mut dev = Patrolled::over(mem, 8, 4);
        let mut ctx = AccessContext::new(6);
        dev.access(Access::InjectRber(1e-4), &mut ctx).unwrap();
        for round in 0..64u64 {
            let a = rng.gen_range(0..64);
            match dev.access(Access::Read(a), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => {
                    assert_eq!(out.data, data[a as usize], "round {round}")
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let st = ctx.layer(LayerId::Patrol).unwrap();
        assert_eq!(st.patrol_steps, 64 / 4);
        assert!(dev.scrubber().passes() >= 1);
        assert_eq!(st.patrol_passes, dev.scrubber().passes());
    }

    #[test]
    fn manual_patrol_step_through_the_trait() {
        let (mem, _, _) = filled(64, 7);
        let mut dev = Patrolled::over(mem, 16, 0);
        let mut ctx = AccessContext::scratch();
        match dev.access(Access::PatrolStep, &mut ctx).unwrap() {
            AccessOutcome::Patrolled(r) => assert_eq!(r.blocks_scrubbed, 16),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(ctx.layer(LayerId::Patrol).unwrap().patrol_steps, 1);
        assert_eq!(ctx.layer(LayerId::Chipkill).unwrap().scrubs, 16);
    }
}
