//! Boot-time scrubbing (§V-B): VLEW-decode everything, rebuild failed
//! chips, and report what happened.

use pmck_bch::{BatchOutcome, BitPoly};

use crate::engine::{ChipkillMemory, CoreError};

/// The result of a completed boot scrub.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes processed (each spans 32 blocks × 9 chips).
    pub stripes_scrubbed: usize,
    /// Total bit errors corrected by VLEW decoding.
    pub bits_corrected: usize,
    /// VLEW words that needed at least one correction.
    pub words_with_errors: usize,
    /// Words recovered by the unraveling list decoder beyond the designed
    /// radius `t` (only nonzero under
    /// [`pmck_bch::DecodePolicy::BeyondBound`]).
    pub list_rescues: usize,
    /// Chip rebuilt through erasure correction, if a failure was found.
    pub chip_rebuilt: Option<usize>,
}

impl ChipkillMemory {
    /// Scrubs the whole rank at boot: every chip's every VLEW is decoded
    /// and corrected in place. A chip with an uncorrectable VLEW is
    /// treated as failed and rebuilt via RS erasure correction (or, for
    /// the parity chip, recomputed from the data chips).
    ///
    /// # Errors
    ///
    /// [`CoreError::MultiChipFailure`] if two or more chips have
    /// uncorrectable VLEWs; [`CoreError::Uncorrectable`] if the rebuild
    /// itself fails. In both cases data may be partially scrubbed but no
    /// wrong data is silently accepted.
    pub fn boot_scrub(&mut self) -> Result<ScrubReport, CoreError> {
        self.flush_eur();
        let mut report = ScrubReport::default();
        let mut failed_chips: Vec<usize> = Vec::new();
        // One batched decode per stripe: all nine chip words walk the
        // shared scratch together, amortizing syndrome-table and Chien
        // plan traffic across the sweep.
        let mut outcomes: Vec<BatchOutcome> = Vec::new();
        for stripe in 0..self.stripes() {
            self.decode_vlew_stripe_into(stripe, &mut outcomes);
            for (chip, outcome) in outcomes.iter().enumerate() {
                match *outcome {
                    BatchOutcome::Clean => {}
                    BatchOutcome::Corrected { bits, beyond_bound } => {
                        report.bits_corrected += bits;
                        report.words_with_errors += 1;
                        if beyond_bound {
                            report.list_rescues += 1;
                        }
                        self.write_back_vlew(chip, stripe);
                    }
                    BatchOutcome::Uncorrectable => {
                        if !failed_chips.contains(&chip) {
                            failed_chips.push(chip);
                        }
                    }
                }
            }
            report.stripes_scrubbed += 1;
        }
        match failed_chips.len() {
            0 => Ok(report),
            1 => {
                let chip = failed_chips[0];
                self.repair_chip(chip)?;
                report.chip_rebuilt = Some(chip);
                Ok(report)
            }
            _ => Err(CoreError::MultiChipFailure),
        }
    }

    /// Verifies rank-wide ECC consistency: every chip's VLEW must be a
    /// valid codeword and every block's RS word must be clean. Pending
    /// EUR registers are drained first (their updates are part of the
    /// consistent state). Intended for tests and post-scrub assertions;
    /// cost is linear in capacity.
    pub fn verify_consistent(&mut self) -> bool {
        self.flush_eur();
        for stripe in 0..self.stripes() {
            for chip in 0..self.layout().total_chips() {
                let layout = *self.layout();
                let mut cw = BitPoly::zero(self.vlew.len());
                let code_bits = BitPoly::from_bytes(self.chips[chip].vlew_code(stripe, &layout));
                cw.splice(0, &code_bits.slice(0, self.vlew.parity_bits()));
                let data_bits = BitPoly::from_bytes(self.chips[chip].vlew_data(stripe, &layout));
                cw.splice(self.vlew.parity_bits(), &data_bits);
                if !self.vlew.is_codeword(&cw) {
                    return false;
                }
            }
        }
        for addr in 0..self.num_blocks() {
            if self.is_disabled(addr) {
                continue;
            }
            let mut word = [0u8; 72];
            self.gather_block_into(addr, &mut word);
            if !self.rs.is_codeword(&word) {
                return false;
            }
        }
        true
    }
}
