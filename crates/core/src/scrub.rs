//! Boot-time scrubbing (§V-B): VLEW-decode everything, rebuild failed
//! chips, and report what happened.

use pmck_bch::{BatchOutcome, BitPoly};

use crate::engine::{ChipkillMemory, CoreError};

/// The result of a completed boot scrub.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes processed (each spans 32 blocks × 9 chips).
    pub stripes_scrubbed: usize,
    /// Total bit errors corrected by VLEW decoding.
    pub bits_corrected: usize,
    /// VLEW words that needed at least one correction.
    pub words_with_errors: usize,
    /// Words recovered by the unraveling list decoder beyond the designed
    /// radius `t` (only nonzero under
    /// [`pmck_bch::DecodePolicy::BeyondBound`]).
    pub list_rescues: usize,
    /// Chip rebuilt through erasure correction, if a failure was found.
    pub chip_rebuilt: Option<usize>,
}

impl ChipkillMemory {
    /// Scrubs the whole rank at boot: every chip's every VLEW is decoded
    /// and corrected in place. A chip with an uncorrectable VLEW is
    /// treated as failed and rebuilt via RS erasure correction (or, for
    /// the parity chip, recomputed from the data chips).
    ///
    /// # Errors
    ///
    /// [`CoreError::MultiChipFailure`] if two or more chips have
    /// uncorrectable VLEWs; [`CoreError::Uncorrectable`] if the rebuild
    /// itself fails. In both cases data may be partially scrubbed but no
    /// wrong data is silently accepted.
    pub fn boot_scrub(&mut self) -> Result<ScrubReport, CoreError> {
        if !self.config().vlew_enabled() {
            return self.boot_scrub_rs_only();
        }
        self.flush_eur();
        let mut report = ScrubReport::default();
        let mut failed_chips: Vec<usize> = Vec::new();
        // One batched decode per stripe: all nine chip words walk the
        // shared scratch together, amortizing syndrome-table and Chien
        // plan traffic across the sweep.
        let mut outcomes: Vec<BatchOutcome> = Vec::new();
        for stripe in 0..self.stripes() {
            self.decode_vlew_stripe_into(stripe, &mut outcomes);
            for (chip, outcome) in outcomes.iter().enumerate() {
                match *outcome {
                    BatchOutcome::Clean => {}
                    BatchOutcome::Corrected { bits, beyond_bound } => {
                        report.bits_corrected += bits;
                        report.words_with_errors += 1;
                        if beyond_bound {
                            report.list_rescues += 1;
                        }
                        self.write_back_vlew(chip, stripe);
                    }
                    BatchOutcome::Uncorrectable => {
                        if !failed_chips.contains(&chip) {
                            failed_chips.push(chip);
                        }
                    }
                }
            }
            report.stripes_scrubbed += 1;
        }
        match failed_chips.len() {
            0 => Ok(report),
            1 => {
                let chip = failed_chips[0];
                self.repair_chip(chip)?;
                report.chip_rebuilt = Some(chip);
                Ok(report)
            }
            _ => Err(CoreError::MultiChipFailure),
        }
    }

    /// The RS-only tier's boot scrub: no VLEWs exist, so every primary
    /// and bonus word is RS-threshold-scrubbed instead. `bits_corrected`
    /// counts corrected RS *symbols* on this tier (the finest unit the
    /// code sees); a rejected word is a detected uncorrectable error.
    fn boot_scrub_rs_only(&mut self) -> Result<ScrubReport, CoreError> {
        let mut report = ScrubReport::default();
        for addr in 0..self.num_blocks() {
            if self.is_disabled(addr) {
                continue;
            }
            let n = self.rs_scrub_block(addr)?;
            if n > 0 {
                report.words_with_errors += 1;
                report.bits_corrected += n;
            }
        }
        for idx in 0..self.bonus_blocks() {
            let n = self.rs_scrub_bonus(idx)?;
            if n > 0 {
                report.words_with_errors += 1;
                report.bits_corrected += n;
            }
        }
        report.stripes_scrubbed = self.stripes();
        Ok(report)
    }

    /// Verifies rank-wide ECC consistency: every chip's VLEW must be a
    /// valid codeword (VLEW-bearing tiers) and every block's RS word —
    /// bonus blocks included — must be clean. Pending EUR registers are
    /// drained first (their updates are part of the consistent state).
    /// Intended for tests and post-scrub assertions; cost is linear in
    /// capacity.
    pub fn verify_consistent(&mut self) -> bool {
        self.flush_eur();
        if !self.config().vlew_enabled() {
            return self.verify_consistent_rs_only();
        }
        for stripe in 0..self.stripes() {
            for chip in 0..self.layout().total_chips() {
                let layout = *self.layout();
                let mut cw = BitPoly::zero(self.vlew.len());
                let code_bits = BitPoly::from_bytes(self.chips[chip].vlew_code(stripe, &layout));
                cw.splice(0, &code_bits.slice(0, self.vlew.parity_bits()));
                let data_bits = BitPoly::from_bytes(self.chips[chip].vlew_data(stripe, &layout));
                cw.splice(self.vlew.parity_bits(), &data_bits);
                if !self.vlew.is_codeword(&cw) {
                    return false;
                }
            }
        }
        for addr in 0..self.num_blocks() {
            if self.is_disabled(addr) {
                continue;
            }
            let mut word = [0u8; 72];
            self.gather_block_into(addr, &mut word);
            if !self.rs.is_codeword(&word) {
                return false;
            }
        }
        true
    }

    fn verify_consistent_rs_only(&mut self) -> bool {
        for addr in 0..self.num_blocks() {
            if self.is_disabled(addr) {
                continue;
            }
            let mut word = [0u8; 72];
            self.gather_block_into(addr, &mut word);
            if !self.rs.is_codeword(&word) {
                return false;
            }
        }
        for idx in 0..self.bonus_blocks() {
            let mut word = [0u8; 72];
            self.gather_bonus_into(idx, &mut word);
            if !self.rs.is_codeword(&word) {
                return false;
            }
        }
        true
    }
}
