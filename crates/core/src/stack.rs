//! Stack composition: building any protection configuration of the
//! paper — baseline, proposal, proposal+restripe, +wear-level, +patrol,
//! +Write-CRC — from the same middleware layers.
//!
//! [`StackBuilder`] assembles the layers bottom-up (`chipkill` or
//! `baseline`, optionally [`crate::Restripeable`], then
//! [`crate::Patrolled`] walking physical addresses, then
//! [`crate::WearLevelled`] translating logical ones, then
//! [`crate::LinkProtected`] on top) and [`Stack`] bundles the boxed
//! device with its [`AccessContext`], exposing typed convenience
//! wrappers over [`BlockDevice::access`].

use pmck_bch::DecodePolicy;
use pmck_nvram::FaultEvent;
use pmck_rt::metrics::MetricsRegistry;

use crate::baseline::BaselineMemory;
use crate::config::ChipkillConfig;
use crate::device::{
    Access, AccessContext, AccessOutcome, BlockDevice, LayerId, LayerStats, TraceEvent,
};
use crate::engine::{ChipkillMemory, CoreError, ReadOutcome, ReadPath};
use crate::iocrc::{BusFault, LinkProtected};
use crate::layout::ProtectionTier;
use crate::patrol::{PatrolReport, Patrolled};
use crate::request::{Request, Response};
use crate::restripe::Restripeable;
use crate::scrub::ScrubReport;
use crate::stats::CoreStats;
use crate::submit::{EagerTickets, SubmitTicket, Submitter};
use crate::tier::{TierPolicy, TierReport, TieredMemory};
use crate::wearlevel::WearLevelled;

/// A composed protection stack: a boxed [`BlockDevice`] pipeline plus
/// the [`AccessContext`] threaded through every access.
pub struct Stack {
    dev: Box<dyn BlockDevice>,
    ctx: AccessContext,
    /// Ticket bookkeeping for the eager [`Submitter`] surface.
    tickets: EagerTickets,
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field("top", &self.dev.label())
            .field("num_blocks", &self.dev.num_blocks())
            .finish()
    }
}

impl Stack {
    /// Bundles an already-composed device with a context.
    pub fn from_parts(dev: Box<dyn BlockDevice>, ctx: AccessContext) -> Self {
        Stack {
            dev,
            ctx,
            tickets: EagerTickets::new(),
        }
    }

    /// Runs one raw access through the pipeline — the device-level
    /// escape hatch below the [`Request`] surface.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn access(&mut self, access: Access) -> Result<AccessOutcome, CoreError> {
        self.dev.access(access, &mut self.ctx)
    }

    /// Executes one client [`Request`]. This is the primary entry point;
    /// every typed convenience method below is a thin wrapper over it,
    /// and `pmck-service` batches it across shards.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        self.dev
            .access(Access::from(*req), &mut self.ctx)
            .map(Response::from)
    }

    /// Capacity (in blocks) as seen at the top of the stack.
    pub fn num_blocks(&self) -> u64 {
        self.dev.num_blocks()
    }

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn read(&mut self, addr: u64) -> Result<ReadOutcome, CoreError> {
        match self.submit(&Request::Read(addr))? {
            Response::Read(out) => Ok(out),
            other => unreachable!("read returned {other:?}"),
        }
    }

    /// Reads one block directly into `data`, returning only the decode
    /// path — the hot-path form of [`Stack::read`], skipping the
    /// outcome copy. Stats and tracing are identical to `read`. On
    /// error the buffer contents are unspecified.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn read_into(&mut self, addr: u64, data: &mut [u8; 64]) -> Result<ReadPath, CoreError> {
        self.dev.read_into(addr, data, &mut self.ctx)
    }

    /// Writes one block (conventional path).
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn write(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), CoreError> {
        self.submit(&Request::Write { addr, data: *data })
            .map(|_| ())
    }

    /// Writes one block via the bitwise-sum path (`data` = old ⊕ new).
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn write_sum(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), CoreError> {
        self.submit(&Request::WriteSum { addr, data: *data })
            .map(|_| ())
    }

    /// Scrubs one block in place.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn scrub(&mut self, addr: u64) -> Result<(), CoreError> {
        self.submit(&Request::Scrub(addr)).map(|_| ())
    }

    /// Runs one patrol increment (requires a patrol layer).
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] without a patrol layer.
    pub fn patrol_step(&mut self) -> Result<PatrolReport, CoreError> {
        match self.submit(&Request::PatrolStep)? {
            Response::Patrolled(r) => Ok(r),
            other => unreachable!("patrol_step returned {other:?}"),
        }
    }

    /// Injects i.i.d. bit errors at `rber`; returns flipped bits.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn inject_bit_errors(&mut self, rber: f64) -> Result<usize, CoreError> {
        match self.submit(&Request::InjectRber(rber))? {
            Response::Injected { bits } => Ok(bits),
            other => unreachable!("inject returned {other:?}"),
        }
    }

    /// Applies one fault-campaign event; returns disturbed bits/cells.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn apply_fault(&mut self, event: &FaultEvent) -> Result<usize, CoreError> {
        match self.submit(&Request::Fault(*event))? {
            Response::Injected { bits } => Ok(bits),
            other => unreachable!("fault returned {other:?}"),
        }
    }

    /// Full boot-time scrub.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn boot_scrub(&mut self) -> Result<ScrubReport, CoreError> {
        match self.submit(&Request::BootScrub)? {
            Response::BootScrubbed(r) => Ok(r),
            other => unreachable!("boot_scrub returned {other:?}"),
        }
    }

    /// Whether stored code bits are consistent with stored data.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn verify_consistent(&mut self) -> Result<bool, CoreError> {
        match self.submit(&Request::Verify)? {
            Response::Verified(ok) => Ok(ok),
            other => unreachable!("verify returned {other:?}"),
        }
    }

    /// Rebuilds the detected failed chip, if any; returns which.
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn repair_detected(&mut self) -> Result<Option<usize>, CoreError> {
        match self.submit(&Request::Repair)? {
            Response::Repaired { chip } => Ok(chip),
            other => unreachable!("repair returned {other:?}"),
        }
    }

    /// Reconfigures into the §V-E re-striped layout in place (requires a
    /// [`crate::Restripeable`] base).
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] without a restripeable base.
    pub fn restripe(&mut self) -> Result<(), CoreError> {
        self.submit(&Request::Restripe).map(|_| ())
    }

    /// Flushes and fences every dirty line into the persistence domain;
    /// returns the lines made durable (0 on a volatile stack).
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn flush(&mut self) -> Result<u64, CoreError> {
        match self.submit(&Request::Flush)? {
            Response::Flushed { lines } => Ok(lines),
            other => unreachable!("flush returned {other:?}"),
        }
    }

    /// Simulates a power cut; returns the volatile lines lost with the
    /// power (0 on a volatile stack).
    ///
    /// # Errors
    ///
    /// As [`BlockDevice::access`].
    pub fn power_cut(&mut self) -> Result<u64, CoreError> {
        match self.submit(&Request::PowerCut)? {
            Response::PowerLost { lost_lines } => Ok(lost_lines),
            other => unreachable!("power_cut returned {other:?}"),
        }
    }

    /// Replays the intent log and rebuilds runtime state from the
    /// durable image (a no-op report on a volatile stack).
    ///
    /// # Errors
    ///
    /// [`CoreError::Recovery`] when the durable state is unrecoverable.
    pub fn recover(&mut self) -> Result<crate::device::RecoveryReport, CoreError> {
        match self.submit(&Request::Recover)? {
            Response::Recovered(r) => Ok(r),
            other => unreachable!("recover returned {other:?}"),
        }
    }

    /// Runs one tier-policy pass over the regions (requires a
    /// [`crate::TieredMemory`] base); returns the post-pass census.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] without a tiered base.
    pub fn tier_step(&mut self) -> Result<TierReport, CoreError> {
        match self.submit(&Request::TierStep)? {
            Response::Tiered(r) => Ok(r),
            other => unreachable!("tier_step returned {other:?}"),
        }
    }

    /// The current tier census, when a tiered base anchors the stack.
    pub fn tier_report(&self) -> Option<TierReport> {
        self.dev.tier_report()
    }

    /// The persistence domain, when the stack was built with one.
    pub fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.dev.pmem_domain()
    }

    /// Arms the power-cut fuse `steps` durable chunk writes into the
    /// future; returns whether the stack has a domain to arm.
    pub fn arm_fuse(&mut self, steps: u64) -> bool {
        match self.dev.pmem_domain() {
            Some(d) => {
                d.arm_fuse(steps);
                true
            }
            None => false,
        }
    }

    /// Durable chunk writes attempted so far, when persistent.
    pub fn pmem_steps(&mut self) -> Option<u64> {
        self.dev.pmem_domain().map(|d| d.steps_taken())
    }

    /// The chip failure detected by decode logic, if any.
    pub fn detected_failed_chip(&self) -> Option<usize> {
        self.dev.detected_failed_chip()
    }

    /// The chipkill engine's counters, when one anchors the stack.
    pub fn core_stats(&self) -> Option<CoreStats> {
        self.dev.core_stats()
    }

    /// Stats recorded under `id`, if that layer has seen traffic.
    pub fn layer(&self, id: LayerId) -> Option<LayerStats> {
        self.ctx.layer(id)
    }

    /// All per-layer stats in first-access order.
    pub fn layers(&self) -> &[(LayerId, LayerStats)] {
        self.ctx.layers()
    }

    /// The shared context.
    pub fn context(&self) -> &AccessContext {
        &self.ctx
    }

    /// Mutable access to the shared context.
    pub fn context_mut(&mut self) -> &mut AccessContext {
        &mut self.ctx
    }

    /// The composed device.
    pub fn device(&self) -> &dyn BlockDevice {
        &*self.dev
    }

    /// Mutable access to the composed device.
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        &mut *self.dev
    }

    /// Drains the trace (empty unless built with tracing).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.ctx.take_trace()
    }

    /// Publishes per-layer counters (`<prefix>.layer.<label>.*`), the
    /// engine stats (`<prefix>.engine.*`) if present, and — on a tiered
    /// base — the storage-cost gauges: each tier's constant cost under
    /// `<prefix>.tier_cost.<tier>` and the region-weighted blend under
    /// `<prefix>.total_storage_cost`.
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        for (label, stats) in self.ctx.layers() {
            stats.publish_metrics(reg, &format!("{prefix}.layer.{label}"));
        }
        if let Some(core) = self.core_stats() {
            core.publish_metrics(reg, &format!("{prefix}.engine"));
        }
        if let Some(report) = self.dev.tier_report() {
            for tier in ProtectionTier::ALL {
                reg.set_gauge(
                    &format!("{prefix}.tier_cost.{tier}"),
                    tier.layout().total_storage_cost(),
                );
            }
            reg.set_gauge(
                &format!("{prefix}.total_storage_cost"),
                report.blended_cost(),
            );
        }
    }
}

/// The eager side of the unified submission surface: `try_submit`
/// executes the request on the spot, so tickets are immediately
/// redeemable and backpressure never occurs. Existing call sites keep
/// resolving to the inherent methods of the same names.
impl Submitter for Stack {
    fn num_blocks(&self) -> u64 {
        Stack::num_blocks(self)
    }

    fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        Stack::submit(self, req)
    }

    fn try_submit(&mut self, req: &Request) -> Result<SubmitTicket, CoreError> {
        let res = Stack::submit(self, req);
        Ok(self.tickets.issue(res))
    }

    fn poll(&mut self, ticket: SubmitTicket) -> Option<Result<Response, CoreError>> {
        self.tickets.claim(ticket)
    }
}

enum BaseKind {
    Proposal {
        cfg: ChipkillConfig,
    },
    Baseline,
    Tiered {
        cfg: ChipkillConfig,
        regions: usize,
        policy: TierPolicy,
    },
}

/// Builder assembling any permutation of the paper's protection layers.
///
/// # Examples
///
/// ```
/// use pmck_core::StackBuilder;
///
/// let mut stack = StackBuilder::proposal(96, Default::default())
///     .wear_levelled(8)
///     .patrolled(4, 0)
///     .seed(7)
///     .build();
/// stack.write(5, &[0xAB; 64]).unwrap();
/// assert_eq!(stack.read(5).unwrap().data, [0xAB; 64]);
/// assert!(stack.layer(pmck_core::LayerId::Chipkill).is_some());
/// ```
pub struct StackBuilder {
    blocks: u64,
    base: BaseKind,
    restripeable: bool,
    wear_level: Option<u64>,
    patrol: Option<(u64, u64)>,
    link: Option<(BusFault, u32)>,
    persistent: Option<pmck_pmem::PmemConfig>,
    seed: u64,
    trace: bool,
}

impl StackBuilder {
    /// A proposal (chipkill) stack with `blocks` usable blocks.
    pub fn proposal(blocks: u64, cfg: ChipkillConfig) -> Self {
        StackBuilder {
            blocks,
            base: BaseKind::Proposal { cfg },
            restripeable: false,
            wear_level: None,
            patrol: None,
            link: None,
            persistent: None,
            seed: 0,
            trace: false,
        }
    }

    /// A §III-A baseline stack with `blocks` usable blocks.
    pub fn baseline(blocks: u64) -> Self {
        StackBuilder {
            blocks,
            base: BaseKind::Baseline,
            restripeable: false,
            wear_level: None,
            patrol: None,
            link: None,
            persistent: None,
            seed: 0,
            trace: false,
        }
    }

    /// Allows the §V-E in-place re-stripe transition ([`Stack::restripe`]).
    ///
    /// # Panics
    ///
    /// [`StackBuilder::build`] panics if combined with a baseline base.
    pub fn restripeable(mut self) -> Self {
        self.restripeable = true;
        self
    }

    /// Switches a proposal base to adaptive per-region tiering
    /// ([`crate::TieredMemory`]): the rank splits into `regions` regions,
    /// each starting at the configured tier, with `policy` migrating
    /// them as their measured RBER moves ([`Stack::tier_step`]).
    ///
    /// # Panics
    ///
    /// [`StackBuilder::build`] panics if combined with a baseline base
    /// or with [`StackBuilder::restripeable`].
    pub fn tiered(mut self, regions: usize, policy: TierPolicy) -> Self {
        self.base = match self.base {
            BaseKind::Proposal { cfg } | BaseKind::Tiered { cfg, .. } => BaseKind::Tiered {
                cfg,
                regions,
                policy,
            },
            BaseKind::Baseline => panic!("tiering is a proposal-only mechanism"),
        };
        self
    }

    /// Selects how far VLEW decoding reaches on a proposal base:
    /// [`DecodePolicy::Bounded`] (the default) stops at the designed
    /// radius `t`; [`DecodePolicy::BeyondBound`] also tries the
    /// unraveling list decoder at radius `t + 1` before declaring a word
    /// uncorrectable. Rescues show up in
    /// [`crate::CoreStats::list_rescues`] and as
    /// [`crate::ReadPath::VlewListDecoded`]. No-op on a baseline base.
    pub fn decode_policy(mut self, policy: DecodePolicy) -> Self {
        if let BaseKind::Proposal { cfg } = &mut self.base {
            cfg.decode_policy = policy;
        }
        self
    }

    /// Adds Start-Gap wear leveling with a gap move every `interval`
    /// demand writes.
    pub fn wear_levelled(mut self, interval: u64) -> Self {
        self.wear_level = Some(interval);
        self
    }

    /// Adds patrol scrubbing: `blocks_per_step` blocks per increment,
    /// automatically every `every` demand accesses (0 = only on
    /// [`Stack::patrol_step`]).
    pub fn patrolled(mut self, blocks_per_step: u64, every: u64) -> Self {
        self.patrol = Some((blocks_per_step, every));
        self
    }

    /// Adds Write-CRC link protection on top of the stack.
    pub fn link_protected(mut self, fault: BusFault, max_retries: u32) -> Self {
        self.link = Some((fault, max_retries));
        self
    }

    /// Gives the stack a persistence domain: writes become durable only
    /// at [`Stack::flush`], a [`Stack::power_cut`] discards everything
    /// since the last flush, and [`Stack::recover`] replays the intent
    /// log. The build itself issues one initial flush so the first
    /// recovery has a sealed epoch to return to.
    ///
    /// # Panics
    ///
    /// [`StackBuilder::build`] panics if combined with a baseline base.
    pub fn persistent(mut self, cfg: pmck_pmem::PmemConfig) -> Self {
        self.persistent = Some(cfg);
        self
    }

    /// Seeds the context's fault-injection RNG (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the trace sink.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builds the composed stack, bottom-up.
    ///
    /// # Panics
    ///
    /// Panics if `restripeable` was requested on a baseline base, or on
    /// the layers' own invalid-parameter conditions.
    pub fn build(self) -> Stack {
        // Wear leveling needs one spare physical block for the gap.
        let physical = if self.wear_level.is_some() {
            self.blocks + 1
        } else {
            self.blocks
        };
        let mut dev: Box<dyn BlockDevice> = match self.base {
            BaseKind::Proposal { cfg } => {
                cfg.layout
                    .validate()
                    .expect("chipkill layout violates a geometry invariant");
                let mut rank = ChipkillMemory::new(physical, cfg);
                if let Some(pcfg) = self.persistent {
                    rank.set_domain(crate::pmem::PmemDomain::for_rank(
                        rank.layout(),
                        rank.stripes(),
                        rank.num_blocks(),
                        pcfg,
                    ));
                }
                if self.restripeable {
                    Box::new(Restripeable::new(rank))
                } else {
                    Box::new(rank)
                }
            }
            BaseKind::Tiered {
                cfg,
                regions,
                policy,
            } => {
                assert!(
                    !self.restripeable,
                    "re-striping and tiering both own the base layout; pick one"
                );
                cfg.layout
                    .validate()
                    .expect("chipkill layout violates a geometry invariant");
                let mut mem = TieredMemory::new(physical, regions, cfg, policy);
                if let Some(pcfg) = self.persistent {
                    mem.set_persistent(pcfg);
                }
                Box::new(mem)
            }
            BaseKind::Baseline => {
                assert!(
                    !self.restripeable,
                    "re-striping is a proposal-only mechanism"
                );
                assert!(
                    self.persistent.is_none(),
                    "persistence is a proposal-only mechanism"
                );
                Box::new(BaselineMemory::new(physical))
            }
        };
        // Patrol sits below wear leveling: it walks physical addresses,
        // oblivious to the logical remap above it.
        if let Some((per_step, every)) = self.patrol {
            dev = Box::new(Patrolled::over(dev, per_step, every));
        }
        if let Some(interval) = self.wear_level {
            dev = Box::new(WearLevelled::over(dev, self.blocks, interval));
        }
        if let Some((fault, max_retries)) = self.link {
            dev = Box::new(LinkProtected::over(dev, fault, max_retries));
        }
        let mut ctx = AccessContext::new(self.seed);
        if self.trace {
            ctx = ctx.with_trace();
        }
        let mut stack = Stack::from_parts(dev, ctx);
        if self.persistent.is_some() {
            // Seal the initial (all-zero) image so the first recovery
            // has a durable epoch to return to.
            stack.flush().expect("initial flush cannot fail");
        }
        stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_nvram::{ChipFailureKind, FaultKind};

    fn fill(stack: &mut Stack) -> Vec<[u8; 64]> {
        (0..stack.num_blocks())
            .map(|a| {
                let mut b = [0u8; 64];
                for (i, x) in b.iter_mut().enumerate() {
                    *x = (a as u8).wrapping_mul(29) ^ (i as u8);
                }
                stack.write(a, &b).unwrap();
                b
            })
            .collect()
    }

    #[test]
    fn full_proposal_stack_round_trips() {
        let mut stack = StackBuilder::proposal(96, ChipkillConfig::default())
            .restripeable()
            .wear_levelled(8)
            .patrolled(4, 16)
            .link_protected(BusFault { ber: 1e-4 }, 8)
            .seed(21)
            .build();
        assert_eq!(stack.num_blocks(), 96);
        let truth = fill(&mut stack);
        stack.inject_bit_errors(1e-5).unwrap();
        for (a, b) in truth.iter().enumerate() {
            assert_eq!(&stack.read(a as u64).unwrap().data, b, "block {a}");
        }
        // Every configured layer saw traffic.
        for id in [
            LayerId::Link,
            LayerId::Wearlevel,
            LayerId::Patrol,
            LayerId::Chipkill,
        ] {
            assert!(stack.layer(id).is_some(), "layer {id} silent");
        }
        assert!(stack.core_stats().unwrap().reads > 0);
    }

    #[test]
    fn restripe_transitions_in_place_and_preserves_data() {
        let mut stack = StackBuilder::proposal(64, ChipkillConfig::default())
            .restripeable()
            .seed(22)
            .build();
        let truth = fill(&mut stack);
        stack
            .apply_fault(&FaultEvent {
                at_cycle: 0,
                kind: FaultKind::ChipKill {
                    chip: 2,
                    kind: ChipFailureKind::RandomGarbage,
                },
            })
            .unwrap();
        // A demand read detects the failure via erasure decode.
        let _ = stack.read(0).unwrap();
        let demand_reads = stack.core_stats().unwrap().reads;
        stack.restripe().unwrap();
        // The snapshot excludes the rebuild's own reads.
        assert_eq!(stack.core_stats().unwrap().reads, demand_reads);
        for (a, b) in truth.iter().enumerate() {
            assert_eq!(&stack.read(a as u64).unwrap().data, b, "block {a}");
        }
        assert!(stack.verify_consistent().unwrap());
        // A second restripe is a routing miss.
        assert_eq!(stack.restripe(), Err(CoreError::Unsupported("restripe")));
    }

    #[test]
    fn baseline_stack_supports_wearlevel_but_not_restripe() {
        let mut stack = StackBuilder::baseline(48).wear_levelled(4).seed(23).build();
        let truth = fill(&mut stack);
        for (a, b) in truth.iter().enumerate() {
            assert_eq!(&stack.read(a as u64).unwrap().data, b);
        }
        assert!(stack.layer(LayerId::Wearlevel).unwrap().gap_moves > 0);
        assert_eq!(stack.restripe(), Err(CoreError::Unsupported("restripe")));
        assert_eq!(stack.core_stats(), None);
    }

    #[test]
    #[should_panic(expected = "proposal-only")]
    fn baseline_cannot_be_restripeable() {
        let _ = StackBuilder::baseline(32).restripeable().build();
    }

    #[test]
    fn metrics_publish_layers_and_engine() {
        let mut stack = StackBuilder::proposal(32, ChipkillConfig::default())
            .patrolled(8, 0)
            .build();
        stack.write(1, &[9; 64]).unwrap();
        stack.read(1).unwrap();
        stack.patrol_step().unwrap();
        let reg = MetricsRegistry::new();
        stack.publish_metrics(&reg, "stack");
        assert_eq!(reg.counter("stack.layer.chipkill.reads"), 1);
        assert_eq!(reg.counter("stack.layer.patrol.patrol_steps"), 1);
        assert_eq!(reg.counter("stack.engine.writes"), 1);
    }
}
