//! Engine statistics.

/// Counters accumulated by [`crate::ChipkillMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Demand block reads.
    pub reads: u64,
    /// Demand block writes (both write paths).
    pub writes: u64,
    /// Reads whose RS word was already clean.
    pub clean_reads: u64,
    /// Reads corrected by the RS tier within the threshold.
    pub rs_accepted: u64,
    /// Total symbols corrected by accepted RS decodes.
    pub rs_corrections: u64,
    /// Reads that fell back to VLEW decoding (§V-C expects ~0.02% at
    /// RBER 2·10⁻⁴).
    pub fallbacks: u64,
    /// Bit errors corrected by fallback VLEW decodes.
    pub vlew_bits_corrected: u64,
    /// VLEW words recovered by the unraveling list decoder beyond the
    /// designed radius `t` (only under
    /// [`pmck_bch::DecodePolicy::BeyondBound`]).
    pub list_rescues: u64,
    /// Reads served through chip-failure erasure correction.
    pub erasure_reads: u64,
    /// Chip failures detected by the decode paths.
    pub chip_failures_detected: u64,
    /// Detected uncorrectable events (rank loss).
    pub due_events: u64,
    /// Completed tier migrations (regions re-encoded at a different
    /// protection tier by [`crate::TieredMemory`]).
    pub tier_migrations: u64,
}

impl CoreStats {
    /// Adds `other`'s counters into `self` — the aggregation a sharded
    /// service uses to sum per-shard engine stats.
    pub fn merge(&mut self, other: &CoreStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.clean_reads += other.clean_reads;
        self.rs_accepted += other.rs_accepted;
        self.rs_corrections += other.rs_corrections;
        self.fallbacks += other.fallbacks;
        self.vlew_bits_corrected += other.vlew_bits_corrected;
        self.list_rescues += other.list_rescues;
        self.erasure_reads += other.erasure_reads;
        self.chip_failures_detected += other.chip_failures_detected;
        self.due_events += other.due_events;
        self.tier_migrations += other.tier_migrations;
    }

    /// Fraction of reads that needed the VLEW fallback.
    pub fn fallback_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.fallbacks as f64 / self.reads as f64
        }
    }

    /// Publishes every counter (and the derived fallback fraction as a
    /// gauge) into `reg` under `<prefix>.<name>`.
    pub fn publish_metrics(&self, reg: &pmck_rt::metrics::MetricsRegistry, prefix: &str) {
        let c = |name: &str, v: u64| reg.set_counter(&format!("{prefix}.{name}"), v);
        c("reads", self.reads);
        c("writes", self.writes);
        c("clean_reads", self.clean_reads);
        c("rs_accepted", self.rs_accepted);
        c("rs_corrections", self.rs_corrections);
        c("fallbacks", self.fallbacks);
        c("vlew_bits_corrected", self.vlew_bits_corrected);
        c("list_rescues", self.list_rescues);
        c("erasure_reads", self.erasure_reads);
        c("chip_failures_detected", self.chip_failures_detected);
        c("due_events", self.due_events);
        c("tier_migrations", self.tier_migrations);
        reg.set_gauge(
            &format!("{prefix}.fallback_fraction"),
            self.fallback_fraction(),
        );
    }

    /// The counters as a JSON object (stable key order).
    pub fn to_json(&self) -> pmck_rt::Json {
        pmck_rt::Json::object()
            .with("reads", self.reads)
            .with("writes", self.writes)
            .with("clean_reads", self.clean_reads)
            .with("rs_accepted", self.rs_accepted)
            .with("rs_corrections", self.rs_corrections)
            .with("fallbacks", self.fallbacks)
            .with("vlew_bits_corrected", self.vlew_bits_corrected)
            .with("list_rescues", self.list_rescues)
            .with("erasure_reads", self.erasure_reads)
            .with("chip_failures_detected", self.chip_failures_detected)
            .with("due_events", self.due_events)
            .with("tier_migrations", self.tier_migrations)
            .with("fallback_fraction", self.fallback_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_fraction() {
        let mut s = CoreStats::default();
        assert_eq!(s.fallback_fraction(), 0.0);
        s.reads = 1000;
        s.fallbacks = 2;
        assert!((s.fallback_fraction() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn publishes_metrics() {
        let s = CoreStats {
            reads: 1000,
            fallbacks: 2,
            ..Default::default()
        };
        let reg = pmck_rt::metrics::MetricsRegistry::new();
        s.publish_metrics(&reg, "engine");
        assert_eq!(reg.counter("engine.reads"), 1000);
        assert_eq!(reg.counter("engine.fallbacks"), 2);
        assert_eq!(reg.gauge("engine.fallback_fraction"), Some(0.002));
    }
}
