//! Engine statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::ChipkillMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Demand block reads.
    pub reads: u64,
    /// Demand block writes (both write paths).
    pub writes: u64,
    /// Reads whose RS word was already clean.
    pub clean_reads: u64,
    /// Reads corrected by the RS tier within the threshold.
    pub rs_accepted: u64,
    /// Total symbols corrected by accepted RS decodes.
    pub rs_corrections: u64,
    /// Reads that fell back to VLEW decoding (§V-C expects ~0.02% at
    /// RBER 2·10⁻⁴).
    pub fallbacks: u64,
    /// Bit errors corrected by fallback VLEW decodes.
    pub vlew_bits_corrected: u64,
    /// Reads served through chip-failure erasure correction.
    pub erasure_reads: u64,
    /// Chip failures detected by the decode paths.
    pub chip_failures_detected: u64,
    /// Detected uncorrectable events (rank loss).
    pub due_events: u64,
}

impl CoreStats {
    /// Fraction of reads that needed the VLEW fallback.
    pub fn fallback_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.fallbacks as f64 / self.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_fraction() {
        let mut s = CoreStats::default();
        assert_eq!(s.fallback_fraction(), 0.0);
        s.reads = 1000;
        s.fallbacks = 2;
        assert!((s.fallback_fraction() - 0.002).abs() < 1e-12);
    }
}
