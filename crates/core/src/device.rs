//! The composable block-device pipeline (the functional stack's spine).
//!
//! Every functional layer of the reproduction — the chipkill rank, the
//! §III-A baseline, the re-striped post-failure layout, Start-Gap wear
//! leveling, patrol scrubbing, and the Write-CRC link — speaks one
//! uniform interface: [`BlockDevice`]. An access is a value of
//! [`Access`], the result a value of [`AccessOutcome`], and every call
//! threads an [`AccessContext`] that carries the fault-injection RNG,
//! per-layer [`LayerStats`], and an optional trace sink.
//!
//! Middleware layers ([`crate::WearLevelled`], [`crate::Patrolled`],
//! [`crate::LinkProtected`], [`crate::Restripeable`]) wrap any inner
//! `BlockDevice`, so a full protection stack is built by composition —
//! see [`crate::StackBuilder`] — instead of bespoke wrapper plumbing.
//! Layers that do not implement an access kind return
//! [`CoreError::Unsupported`] rather than silently no-opping.

use pmck_nvram::{FaultEvent, FaultKind};
use pmck_rt::json::Json;
use pmck_rt::metrics::MetricsRegistry;
use pmck_rt::rng::StdRng;

use crate::baseline::BaselineMemory;
use crate::engine::{ChipkillMemory, CoreError, ReadOutcome, ReadPath};
use crate::restripe::{RestripedMemory, BLOCKS_PER_GROUP};
use crate::scrub::ScrubReport;
use crate::stats::CoreStats;

/// One request against a [`BlockDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// Demand read of one 64 B block.
    Read(u64),
    /// Conventional write of one 64 B block.
    Write {
        /// Block address.
        addr: u64,
        /// New block contents.
        data: [u8; 64],
    },
    /// Bitwise-sum write (§V-D): `data` carries `old ⊕ new`.
    WriteSum {
        /// Block address.
        addr: u64,
        /// The bitwise sum delivered to the chips.
        data: [u8; 64],
    },
    /// Correct one block and rewrite it in place.
    Scrub(u64),
    /// Fault-injection hook: i.i.d. bit flips at the given RBER across
    /// every stored cell.
    InjectRber(f64),
    /// Fault-injection hook: one scheduled campaign event.
    Fault(FaultEvent),
    /// Advance the patrol scrubber by one increment (handled by a
    /// [`crate::Patrolled`] layer).
    PatrolStep,
    /// Full boot-time scrub of the device.
    BootScrub,
    /// Check that stored code bits are consistent with stored data.
    Verify,
    /// Rebuild the detected failed chip in place, if any.
    Repair,
    /// Reconfigure into the §V-E re-striped layout (handled by a
    /// [`crate::Restripeable`] layer).
    Restripe,
    /// Commit every dirty line of the persistence domain durably
    /// (flush-all + fence; a no-op without a domain).
    Flush,
    /// Simulate power loss: everything not flushed *and* fenced is
    /// discarded from the persistence domain's volatile staging.
    PowerCut,
    /// Rebuild the device from the durable image after a power cut:
    /// replay the intent log, reload layout/wear metadata, reconstruct
    /// the volatile arrays.
    Recover,
    /// Re-evaluate the tier policy over every region and migrate the
    /// regions whose measured RBER crossed a threshold (handled by a
    /// [`crate::TieredMemory`] base).
    TierStep,
}

impl Access {
    /// Short, stable name of the access kind (used in errors and traces).
    pub fn kind(&self) -> &'static str {
        match self {
            Access::Read(_) => "read",
            Access::Write { .. } => "write",
            Access::WriteSum { .. } => "write_sum",
            Access::Scrub(_) => "scrub",
            Access::InjectRber(_) => "inject_rber",
            Access::Fault(_) => "fault",
            Access::PatrolStep => "patrol_step",
            Access::BootScrub => "boot_scrub",
            Access::Verify => "verify",
            Access::Repair => "repair",
            Access::Restripe => "restripe",
            Access::Flush => "flush",
            Access::PowerCut => "power_cut",
            Access::Recover => "recover",
            Access::TierStep => "tier_step",
        }
    }

    /// The block address the access targets, if it has one.
    pub fn addr(&self) -> Option<u64> {
        match self {
            Access::Read(a) | Access::Scrub(a) => Some(*a),
            Access::Write { addr, .. } | Access::WriteSum { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

/// The successful result of an [`Access`].
#[derive(Debug, Clone, PartialEq)]
pub enum AccessOutcome {
    /// Data plus the decode path that produced it.
    Read(ReadOutcome),
    /// The write (conventional or sum) committed.
    Written,
    /// The block was corrected and rewritten.
    Scrubbed,
    /// Fault injection disturbed `bits` stored bits.
    Injected {
        /// Bits (or cells) disturbed.
        bits: usize,
    },
    /// One patrol increment ran.
    Patrolled(crate::patrol::PatrolReport),
    /// The boot scrub completed.
    BootScrubbed(ScrubReport),
    /// Result of the consistency check.
    Verified(bool),
    /// The failed chip (if any) was rebuilt.
    Repaired {
        /// The chip that was rebuilt, or `None` if none was detected.
        chip: Option<usize>,
    },
    /// The device reconfigured into the re-striped layout.
    Restriped,
    /// The persistence domain committed its dirty lines.
    Flushed {
        /// Lines made durable (0 when nothing was dirty, or when the
        /// stack has no persistence domain).
        lines: u64,
    },
    /// Power was cut; unflushed volatile state is gone.
    PowerLost {
        /// Volatile lines discarded by the cut.
        lost_lines: u64,
    },
    /// The device rebuilt itself from the durable image.
    Recovered(RecoveryReport),
    /// One tier-policy pass ran over the regions.
    Tiered(crate::tier::TierReport),
}

/// What a [`Access::Recover`] pass did (summed across shards by the
/// service's broadcast merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sealed intent-log records replayed (0 or 1 per domain).
    pub records_replayed: u64,
    /// Lines rewritten from the log onto the durable image.
    pub lines_redone: u64,
    /// Whether the durable metadata selected the re-striped layout.
    pub restriped: bool,
}

impl RecoveryReport {
    /// Folds another shard's report into this one.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.records_replayed += other.records_replayed;
        self.lines_redone += other.lines_redone;
        self.restriped |= other.restriped;
    }
}

/// Identifies one layer of a composed stack.
///
/// Stats lookups and layer addressing use this enum; the string form
/// (via [`std::fmt::Display`] / [`std::str::FromStr`]) is kept for JSON
/// reports and metric names, which embed the same labels as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerId {
    /// The chipkill rank ([`ChipkillMemory`]).
    Chipkill,
    /// The §III-A baseline rank ([`BaselineMemory`]).
    Baseline,
    /// The §V-E re-striped layout ([`RestripedMemory`]).
    Restriped,
    /// The in-place re-stripe switch ([`crate::Restripeable`]).
    Restripeable,
    /// Start-Gap wear leveling ([`crate::WearLevelled`]).
    Wearlevel,
    /// Patrol scrubbing ([`crate::Patrolled`]).
    Patrol,
    /// Write-CRC link protection ([`crate::LinkProtected`]).
    Link,
    /// The persistence domain (flush/fence epochs and the intent log).
    Pmem,
    /// The adaptive per-region tiering base ([`crate::TieredMemory`]).
    Tiered,
}

impl LayerId {
    /// Every layer, in stack order (base layouts first).
    pub const ALL: [LayerId; 9] = [
        LayerId::Chipkill,
        LayerId::Baseline,
        LayerId::Restriped,
        LayerId::Tiered,
        LayerId::Restripeable,
        LayerId::Wearlevel,
        LayerId::Patrol,
        LayerId::Link,
        LayerId::Pmem,
    ];

    /// The stable string form used in JSON reports and metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            LayerId::Chipkill => "chipkill",
            LayerId::Baseline => "baseline",
            LayerId::Restriped => "restriped",
            LayerId::Restripeable => "restripeable",
            LayerId::Wearlevel => "wearlevel",
            LayerId::Patrol => "patrol",
            LayerId::Link => "link",
            LayerId::Pmem => "pmem",
            LayerId::Tiered => "tiered",
        }
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a [`LayerId`] string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayerIdError(String);

impl std::fmt::Display for ParseLayerIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown layer `{}`", self.0)
    }
}

impl std::error::Error for ParseLayerIdError {}

impl std::str::FromStr for LayerId {
    type Err = ParseLayerIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LayerId::ALL
            .into_iter()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| ParseLayerIdError(s.to_string()))
    }
}

/// One entry in the optional access trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The layer that recorded the event.
    pub layer: LayerId,
    /// Human-readable summary (`"read 5 -> clean"`).
    pub event: String,
}

/// Per-layer access counters, keyed by [`BlockDevice::id`] inside an
/// [`AccessContext`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerStats {
    /// Demand reads routed through the layer.
    pub reads: u64,
    /// Demand writes (conventional and sum) routed through the layer.
    pub writes: u64,
    /// Scrub accesses routed through the layer.
    pub scrubs: u64,
    /// Accesses that returned an error (excluding `Unsupported`).
    pub errors: u64,
    /// Reads whose RS word was already clean.
    pub clean_reads: u64,
    /// Reads corrected by the RS tier.
    pub rs_corrected: u64,
    /// Reads that fell back to VLEW decoding.
    pub vlew_fallbacks: u64,
    /// VLEW-fallback reads that needed the unraveling list decoder for
    /// at least one chip word (beyond-bound rescues).
    pub list_decoded_reads: u64,
    /// Reads served through chip-failure erasure correction.
    pub erasure_reads: u64,
    /// Reads corrected by a single-tier BCH (baseline / re-striped).
    pub bit_corrected_reads: u64,
    /// Bit errors corrected across all read paths.
    pub bits_corrected: u64,
    /// Bits disturbed by fault injection at this layer.
    pub injected_bits: u64,
    /// Start-Gap remaps performed.
    pub gap_moves: u64,
    /// Patrol increments executed.
    pub patrol_steps: u64,
    /// Full patrol passes completed.
    pub patrol_passes: u64,
    /// Write-CRC retransmissions performed.
    pub retransmissions: u64,
    /// Writes whose link retry budget was exhausted.
    pub link_failures: u64,
    /// Persistence-domain flush commands executed.
    pub flushes: u64,
    /// Persistence-domain fences executed.
    pub fences: u64,
    /// Dirty lines made durable by flushes.
    pub lines_flushed: u64,
    /// Intent-log records written.
    pub log_records: u64,
    /// Intent-log bytes written.
    pub log_bytes: u64,
    /// Lines left partially persisted by a power cut.
    pub torn_lines: u64,
    /// Recovery passes completed.
    pub recoveries: u64,
    /// Lines redone from the intent log during recovery.
    pub lines_redone: u64,
    /// Regions currently at the RS-only tier (absolute count, refreshed
    /// on every tier step so shard merges sum to fleet totals).
    pub rs_only_regions: u64,
    /// Regions currently at the paper's RS+VLEW tier (absolute count).
    pub paper_regions: u64,
    /// Regions currently at the dense high-protection tier (absolute
    /// count).
    pub dense_regions: u64,
    /// Tier migrations completed (monotonic counter).
    pub tier_migrations: u64,
}

impl LayerStats {
    /// Folds `other` into `self` (cross-shard aggregation).
    pub fn merge(&mut self, other: &LayerStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.scrubs += other.scrubs;
        self.errors += other.errors;
        self.clean_reads += other.clean_reads;
        self.rs_corrected += other.rs_corrected;
        self.vlew_fallbacks += other.vlew_fallbacks;
        self.list_decoded_reads += other.list_decoded_reads;
        self.erasure_reads += other.erasure_reads;
        self.bit_corrected_reads += other.bit_corrected_reads;
        self.bits_corrected += other.bits_corrected;
        self.injected_bits += other.injected_bits;
        self.gap_moves += other.gap_moves;
        self.patrol_steps += other.patrol_steps;
        self.patrol_passes += other.patrol_passes;
        self.retransmissions += other.retransmissions;
        self.link_failures += other.link_failures;
        self.flushes += other.flushes;
        self.fences += other.fences;
        self.lines_flushed += other.lines_flushed;
        self.log_records += other.log_records;
        self.log_bytes += other.log_bytes;
        self.torn_lines += other.torn_lines;
        self.recoveries += other.recoveries;
        self.lines_redone += other.lines_redone;
        self.rs_only_regions += other.rs_only_regions;
        self.paper_regions += other.paper_regions;
        self.dense_regions += other.dense_regions;
        self.tier_migrations += other.tier_migrations;
    }

    /// Publishes every counter into `reg` under `<prefix>.<name>`.
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        let c = |name: &str, v: u64| reg.set_counter(&format!("{prefix}.{name}"), v);
        c("reads", self.reads);
        c("writes", self.writes);
        c("scrubs", self.scrubs);
        c("errors", self.errors);
        c("clean_reads", self.clean_reads);
        c("rs_corrected", self.rs_corrected);
        c("vlew_fallbacks", self.vlew_fallbacks);
        c("list_decoded_reads", self.list_decoded_reads);
        c("erasure_reads", self.erasure_reads);
        c("bit_corrected_reads", self.bit_corrected_reads);
        c("bits_corrected", self.bits_corrected);
        c("injected_bits", self.injected_bits);
        c("gap_moves", self.gap_moves);
        c("patrol_steps", self.patrol_steps);
        c("patrol_passes", self.patrol_passes);
        c("retransmissions", self.retransmissions);
        c("link_failures", self.link_failures);
        c("flushes", self.flushes);
        c("fences", self.fences);
        c("lines_flushed", self.lines_flushed);
        c("log_records", self.log_records);
        c("log_bytes", self.log_bytes);
        c("torn_lines", self.torn_lines);
        c("recoveries", self.recoveries);
        c("lines_redone", self.lines_redone);
        c("rs_only_regions", self.rs_only_regions);
        c("paper_regions", self.paper_regions);
        c("dense_regions", self.dense_regions);
        c("tier_migrations", self.tier_migrations);
    }

    /// The counters as a JSON object (stable key order).
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("reads", self.reads)
            .with("writes", self.writes)
            .with("scrubs", self.scrubs)
            .with("errors", self.errors)
            .with("clean_reads", self.clean_reads)
            .with("rs_corrected", self.rs_corrected)
            .with("vlew_fallbacks", self.vlew_fallbacks)
            .with("list_decoded_reads", self.list_decoded_reads)
            .with("erasure_reads", self.erasure_reads)
            .with("bit_corrected_reads", self.bit_corrected_reads)
            .with("bits_corrected", self.bits_corrected)
            .with("injected_bits", self.injected_bits)
            .with("gap_moves", self.gap_moves)
            .with("patrol_steps", self.patrol_steps)
            .with("patrol_passes", self.patrol_passes)
            .with("retransmissions", self.retransmissions)
            .with("link_failures", self.link_failures)
            .with("flushes", self.flushes)
            .with("fences", self.fences)
            .with("lines_flushed", self.lines_flushed)
            .with("log_records", self.log_records)
            .with("log_bytes", self.log_bytes)
            .with("torn_lines", self.torn_lines)
            .with("recoveries", self.recoveries)
            .with("lines_redone", self.lines_redone)
            .with("rs_only_regions", self.rs_only_regions)
            .with("paper_regions", self.paper_regions)
            .with("dense_regions", self.dense_regions)
            .with("tier_migrations", self.tier_migrations)
    }
}

/// Shared state threaded through every access of a composed stack: the
/// fault-injection RNG, per-layer statistics, and an optional trace.
#[derive(Debug, Clone)]
pub struct AccessContext {
    rng: StdRng,
    layers: Vec<(LayerId, LayerStats)>,
    trace: Option<Vec<TraceEvent>>,
}

impl AccessContext {
    /// A context with a deterministic fault-injection RNG.
    pub fn new(seed: u64) -> Self {
        AccessContext {
            rng: StdRng::seed_from_u64(seed),
            layers: Vec::new(),
            trace: None,
        }
    }

    /// A throwaway context for convenience call paths that do not need
    /// stats or tracing.
    pub fn scratch() -> Self {
        Self::new(0)
    }

    /// Enables the trace sink.
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// The fault-injection RNG (consumed by `InjectRber` / `Fault`
    /// accesses and the Write-CRC bus model).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Mutable stats slot for `id`, created on first use. Layers
    /// appear in first-access order.
    pub fn layer_mut(&mut self, id: LayerId) -> &mut LayerStats {
        if let Some(i) = self.layers.iter().position(|(l, _)| *l == id) {
            return &mut self.layers[i].1;
        }
        self.layers.push((id, LayerStats::default()));
        &mut self.layers.last_mut().expect("just pushed").1
    }

    /// Stats for `id`, if that layer has recorded anything.
    pub fn layer(&self, id: LayerId) -> Option<LayerStats> {
        self.layers.iter().find(|(l, _)| *l == id).map(|(_, s)| *s)
    }

    /// All per-layer stats in first-access order.
    pub fn layers(&self) -> &[(LayerId, LayerStats)] {
        &self.layers
    }

    /// Records a trace event; `f` is only evaluated when tracing is on.
    pub fn trace(&mut self, layer: LayerId, f: impl FnOnce() -> String) {
        if let Some(sink) = &mut self.trace {
            sink.push(TraceEvent { layer, event: f() });
        }
    }

    /// Drains the recorded trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }
}

/// A functional memory layer addressable in 64 B blocks.
///
/// Implemented by the concrete ranks ([`ChipkillMemory`],
/// [`BaselineMemory`], [`RestripedMemory`]) and by every middleware
/// layer; `Box<dyn BlockDevice>` composes them into arbitrary stacks.
/// Devices are `Send` so composed stacks can be owned by shard worker
/// threads (`pmck-service`).
pub trait BlockDevice: Send {
    /// Identifies the layer in stats and traces.
    fn id(&self) -> LayerId;

    /// The layer's stable string label (the [`LayerId`] string form).
    fn label(&self) -> &'static str {
        self.id().as_str()
    }

    /// Capacity in blocks as seen *above* this layer.
    fn num_blocks(&self) -> u64;

    /// Executes one access.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] when the stack has no layer handling
    /// this access kind, plus whatever the underlying operation surfaces.
    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError>;

    /// Reads one block directly into `data` — the hot-path form of
    /// `access(Access::Read(addr))`, skipping the [`AccessOutcome`]
    /// copy. Observationally identical to the access form (same stats,
    /// trace, remapping, and background-scrub scheduling); layers with
    /// an allocation-free read path override it. On error the buffer
    /// contents are unspecified.
    ///
    /// # Errors
    ///
    /// As `access(Access::Read(addr))`.
    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        match self.access(Access::Read(addr), ctx)? {
            AccessOutcome::Read(out) => {
                *data = out.data;
                Ok(out.path)
            }
            other => unreachable!("read returned {other:?}"),
        }
    }

    /// The chip failure detected by decode logic, if any.
    fn detected_failed_chip(&self) -> Option<usize> {
        None
    }

    /// The chipkill engine counters, when a chipkill rank is (or was)
    /// at the bottom of the stack.
    fn core_stats(&self) -> Option<CoreStats> {
        None
    }

    /// The persistence domain at the bottom of the stack, when the base
    /// was built with one. Mid-stack layers forward; volatile stacks
    /// return `None`.
    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        None
    }

    /// The tier census, when a [`crate::TieredMemory`] anchors the
    /// stack. Mid-stack layers forward; single-tier bases return `None`.
    fn tier_report(&self) -> Option<crate::tier::TierReport> {
        None
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for Box<D> {
    fn id(&self) -> LayerId {
        (**self).id()
    }
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }
    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        (**self).access(access, ctx)
    }
    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        (**self).read_into(addr, data, ctx)
    }
    fn detected_failed_chip(&self) -> Option<usize> {
        (**self).detected_failed_chip()
    }
    fn core_stats(&self) -> Option<CoreStats> {
        (**self).core_stats()
    }
    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        (**self).pmem_domain()
    }
    fn tier_report(&self) -> Option<crate::tier::TierReport> {
        (**self).tier_report()
    }
}

/// Folds one access result into the layer's stats and trace. Every
/// `BlockDevice` impl calls this exactly once per access it handles.
pub(crate) fn record_access(
    ctx: &mut AccessContext,
    id: LayerId,
    access: &Access,
    result: &Result<AccessOutcome, CoreError>,
) {
    let st = ctx.layer_mut(id);
    match access {
        Access::Read(_) => st.reads += 1,
        Access::Write { .. } | Access::WriteSum { .. } => st.writes += 1,
        Access::Scrub(_) => st.scrubs += 1,
        _ => {}
    }
    match result {
        Ok(AccessOutcome::Read(out)) => record_read_path(st, &out.path),
        Ok(AccessOutcome::Injected { bits }) => st.injected_bits += *bits as u64,
        Ok(_) => {}
        // An unsupported access is a routing miss, not a device fault.
        Err(CoreError::Unsupported(_)) => {}
        Err(_) => st.errors += 1,
    }
    ctx.trace(id, || {
        let what = match access.addr() {
            Some(a) => format!("{} {a}", access.kind()),
            None => access.kind().to_string(),
        };
        match result {
            Ok(out) => format!("{what} -> {}", describe_outcome(out)),
            Err(e) => format!("{what} -> error: {e}"),
        }
    });
}

/// [`record_access`] for the `read_into` hot path: identical stats and
/// trace to `access(Access::Read(addr))`, without materializing an
/// [`AccessOutcome`].
pub(crate) fn record_read_into(
    ctx: &mut AccessContext,
    id: LayerId,
    addr: u64,
    result: &Result<ReadPath, CoreError>,
) {
    let st = ctx.layer_mut(id);
    st.reads += 1;
    match result {
        Ok(path) => record_read_path(st, path),
        Err(CoreError::Unsupported(_)) => {}
        Err(_) => st.errors += 1,
    }
    ctx.trace(id, || match result {
        Ok(path) => format!("read {addr} -> {}", describe_read_path(path)),
        Err(e) => format!("read {addr} -> error: {e}"),
    });
}

fn record_read_path(st: &mut LayerStats, path: &ReadPath) {
    match path {
        ReadPath::Clean => st.clean_reads += 1,
        ReadPath::RsCorrected { .. } => st.rs_corrected += 1,
        ReadPath::VlewFallback { bits_corrected } => {
            st.vlew_fallbacks += 1;
            st.bits_corrected += *bits_corrected as u64;
        }
        ReadPath::ChipkillErasure { .. } => st.erasure_reads += 1,
        ReadPath::BitCorrected { bits_corrected } => {
            st.bit_corrected_reads += 1;
            st.bits_corrected += *bits_corrected as u64;
        }
        ReadPath::VlewListDecoded { bits_corrected } => {
            st.vlew_fallbacks += 1;
            st.list_decoded_reads += 1;
            st.bits_corrected += *bits_corrected as u64;
        }
    }
}

fn describe_read_path(path: &ReadPath) -> String {
    match path {
        ReadPath::Clean => "clean".into(),
        ReadPath::RsCorrected { corrections } => format!("rs_corrected {corrections}"),
        ReadPath::VlewFallback { bits_corrected } => format!("vlew_fallback {bits_corrected}"),
        ReadPath::ChipkillErasure { chip } => format!("erasure chip {chip}"),
        ReadPath::BitCorrected { bits_corrected } => format!("bit_corrected {bits_corrected}"),
        ReadPath::VlewListDecoded { bits_corrected } => {
            format!("vlew_list_decoded {bits_corrected}")
        }
    }
}

fn describe_outcome(out: &AccessOutcome) -> String {
    match out {
        AccessOutcome::Read(o) => describe_read_path(&o.path),
        AccessOutcome::Written => "written".into(),
        AccessOutcome::Scrubbed => "scrubbed".into(),
        AccessOutcome::Injected { bits } => format!("injected {bits}"),
        AccessOutcome::Patrolled(r) => format!("patrolled {}", r.blocks_scrubbed),
        AccessOutcome::BootScrubbed(r) => format!("boot_scrubbed {}", r.stripes_scrubbed),
        AccessOutcome::Verified(ok) => format!("verified {ok}"),
        AccessOutcome::Repaired { chip } => format!("repaired {chip:?}"),
        AccessOutcome::Restriped => "restriped".into(),
        AccessOutcome::Flushed { lines } => format!("flushed {lines}"),
        AccessOutcome::PowerLost { lost_lines } => format!("power_lost {lost_lines}"),
        AccessOutcome::Recovered(r) => {
            format!("recovered {} lines redone", r.lines_redone)
        }
        AccessOutcome::Tiered(r) => format!("tiered {} migrations", r.migrations),
    }
}

impl BlockDevice for ChipkillMemory {
    fn id(&self) -> LayerId {
        LayerId::Chipkill
    }

    fn num_blocks(&self) -> u64 {
        ChipkillMemory::num_blocks(self)
    }

    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        let result = self.read_block_into(addr, data);
        record_read_into(ctx, LayerId::Chipkill, addr, &result);
        result
    }

    fn detected_failed_chip(&self) -> Option<usize> {
        ChipkillMemory::detected_failed_chip(self)
    }

    fn core_stats(&self) -> Option<CoreStats> {
        Some(*self.stats())
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        let result = match access {
            Access::Read(addr) => self.read_block(addr).map(AccessOutcome::Read),
            Access::Write { addr, data } => self
                .write_block(addr, &data)
                .map(|_| AccessOutcome::Written),
            Access::WriteSum { addr, data } => self
                .write_block_sum(addr, &data)
                .map(|_| AccessOutcome::Written),
            Access::Scrub(addr) => self.scrub_block(addr).map(|_| AccessOutcome::Scrubbed),
            Access::InjectRber(rber) => Ok(AccessOutcome::Injected {
                bits: self.inject_bit_errors(rber, ctx.rng()),
            }),
            Access::Fault(ev) => Ok(AccessOutcome::Injected {
                bits: self.apply_fault_event(&ev, ctx.rng()),
            }),
            Access::BootScrub => self.boot_scrub().map(AccessOutcome::BootScrubbed),
            Access::Verify => Ok(AccessOutcome::Verified(self.verify_consistent())),
            Access::Repair => match ChipkillMemory::detected_failed_chip(self) {
                Some(chip) => self
                    .repair_chip(chip)
                    .map(|_| AccessOutcome::Repaired { chip: Some(chip) }),
                None => Ok(AccessOutcome::Repaired { chip: None }),
            },
            // No-ops without a persistence domain; see `crate::pmem`.
            Access::Flush => self.handle_flush(ctx),
            Access::PowerCut => self.handle_power_cut(),
            Access::Recover => self.handle_recover(ctx),
            Access::PatrolStep | Access::Restripe | Access::TierStep => {
                Err(CoreError::Unsupported(access.kind()))
            }
        };
        record_access(ctx, LayerId::Chipkill, &access, &result);
        result
    }

    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.domain.as_mut()
    }
}

impl BlockDevice for BaselineMemory {
    fn id(&self) -> LayerId {
        LayerId::Baseline
    }

    fn num_blocks(&self) -> u64 {
        BaselineMemory::num_blocks(self)
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        let result = match access {
            Access::Read(addr) => self.read_block(addr).map(|out| {
                AccessOutcome::Read(ReadOutcome {
                    data: out.data,
                    path: if out.bits_corrected == 0 {
                        ReadPath::Clean
                    } else {
                        ReadPath::BitCorrected {
                            bits_corrected: out.bits_corrected,
                        }
                    },
                })
            }),
            Access::Write { addr, data } => self
                .write_block(addr, &data)
                .map(|_| AccessOutcome::Written),
            // Scrub-by-rewrite: decode, then store the corrected block
            // (and a freshly encoded code word) back.
            Access::Scrub(addr) => self.read_block(addr).and_then(|out| {
                self.write_block(addr, &out.data)
                    .map(|_| AccessOutcome::Scrubbed)
            }),
            Access::InjectRber(rber) => Ok(AccessOutcome::Injected {
                bits: self.inject_bit_errors(rber, ctx.rng()),
            }),
            Access::Fault(ev) => match ev.kind {
                // Background-rate events carry no instantaneous action.
                FaultKind::Rber { .. } | FaultKind::RberRamp { .. } => {
                    Ok(AccessOutcome::Injected { bits: 0 })
                }
                FaultKind::ChipKill { chip, kind } => {
                    self.fail_chip(chip % 8, kind, ctx.rng());
                    Ok(AccessOutcome::Injected {
                        bits: BaselineMemory::num_blocks(self) as usize * 64,
                    })
                }
                _ => Err(CoreError::Unsupported("fault")),
            },
            Access::BootScrub => {
                let mut report = ScrubReport::default();
                for addr in 0..BaselineMemory::num_blocks(self) {
                    let out = self.read_block(addr)?;
                    report.bits_corrected += out.bits_corrected;
                    if out.bits_corrected > 0 {
                        report.words_with_errors += 1;
                    }
                    self.write_block(addr, &out.data)?;
                    report.stripes_scrubbed += 1;
                }
                Ok(AccessOutcome::BootScrubbed(report))
            }
            Access::Verify => {
                let mut clean = true;
                for addr in 0..BaselineMemory::num_blocks(self) {
                    match self.read_block(addr) {
                        Ok(out) if out.bits_corrected == 0 => {}
                        _ => {
                            clean = false;
                            break;
                        }
                    }
                }
                Ok(AccessOutcome::Verified(clean))
            }
            Access::WriteSum { .. }
            | Access::PatrolStep
            | Access::Repair
            | Access::Restripe
            | Access::Flush
            | Access::PowerCut
            | Access::Recover
            | Access::TierStep => Err(CoreError::Unsupported(access.kind())),
        };
        record_access(ctx, LayerId::Baseline, &access, &result);
        result
    }
}

impl BlockDevice for RestripedMemory {
    fn id(&self) -> LayerId {
        LayerId::Restriped
    }

    fn num_blocks(&self) -> u64 {
        RestripedMemory::num_blocks(self)
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        let result = match access {
            Access::Read(addr) => {
                let before = self.bits_corrected();
                self.read_block(addr).map(|data| {
                    let n = (self.bits_corrected() - before) as usize;
                    AccessOutcome::Read(ReadOutcome {
                        data,
                        path: if n == 0 {
                            ReadPath::Clean
                        } else {
                            ReadPath::BitCorrected { bits_corrected: n }
                        },
                    })
                })
            }
            Access::Write { addr, data } => self
                .write_block(addr, &data)
                .map(|_| AccessOutcome::Written),
            // A group read corrects and writes back the whole group.
            Access::Scrub(addr) => self.read_block(addr).map(|_| AccessOutcome::Scrubbed),
            Access::InjectRber(rber) => Ok(AccessOutcome::Injected {
                bits: self.inject_bit_errors(rber, ctx.rng()),
            }),
            Access::Fault(ev) => match ev.kind {
                FaultKind::Rber { .. } | FaultKind::RberRamp { .. } => {
                    Ok(AccessOutcome::Injected { bits: 0 })
                }
                // The re-striped layout has already absorbed its one
                // permitted chip failure; chip-structured faults no
                // longer apply.
                _ => Err(CoreError::Unsupported("fault")),
            },
            Access::BootScrub => {
                let before = self.bits_corrected();
                let groups = RestripedMemory::num_blocks(self) as usize / BLOCKS_PER_GROUP;
                for g in 0..groups {
                    self.read_block((g * BLOCKS_PER_GROUP) as u64)?;
                }
                Ok(AccessOutcome::BootScrubbed(ScrubReport {
                    stripes_scrubbed: groups,
                    bits_corrected: (self.bits_corrected() - before) as usize,
                    words_with_errors: 0,
                    list_rescues: 0,
                    chip_rebuilt: None,
                }))
            }
            Access::Verify => Ok(AccessOutcome::Verified(self.verify_consistent())),
            // No-ops without a persistence domain; see `crate::pmem`.
            Access::Flush => self.handle_flush(ctx),
            Access::PowerCut => self.handle_power_cut(),
            Access::Recover => self.handle_recover(ctx),
            Access::WriteSum { .. }
            | Access::PatrolStep
            | Access::Repair
            | Access::Restripe
            | Access::TierStep => Err(CoreError::Unsupported(access.kind())),
        };
        record_access(ctx, LayerId::Restriped, &access, &result);
        result
    }

    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.domain.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipkillConfig;

    #[test]
    fn chipkill_round_trip_through_the_trait() {
        let mut dev = ChipkillMemory::new(32, ChipkillConfig::default());
        let mut ctx = AccessContext::new(1).with_trace();
        let data = [0x5Au8; 64];
        dev.access(Access::Write { addr: 3, data }, &mut ctx)
            .unwrap();
        match dev.access(Access::Read(3), &mut ctx).unwrap() {
            AccessOutcome::Read(out) => {
                assert_eq!(out.data, data);
                assert_eq!(out.path, ReadPath::Clean);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let st = ctx.layer(LayerId::Chipkill).unwrap();
        assert_eq!(st.reads, 1);
        assert_eq!(st.writes, 1);
        assert_eq!(st.clean_reads, 1);
        let trace = ctx.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].event, "read 3 -> clean");
    }

    #[test]
    fn unsupported_accesses_are_routing_misses_not_errors() {
        let mut dev = ChipkillMemory::new(32, ChipkillConfig::default());
        let mut ctx = AccessContext::scratch();
        assert_eq!(
            dev.access(Access::Restripe, &mut ctx),
            Err(CoreError::Unsupported("restripe"))
        );
        assert_eq!(ctx.layer(LayerId::Chipkill).unwrap().errors, 0);
    }

    #[test]
    fn baseline_reports_bit_corrected_reads() {
        let mut dev = BaselineMemory::new(64);
        let mut ctx = AccessContext::new(7);
        for a in 0..64 {
            dev.access(
                Access::Write {
                    addr: a,
                    data: [a as u8; 64],
                },
                &mut ctx,
            )
            .unwrap();
        }
        dev.access(Access::InjectRber(1e-3), &mut ctx).unwrap();
        for a in 0..64 {
            match dev.access(Access::Read(a), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => assert_eq!(out.data, [a as u8; 64]),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let st = ctx.layer(LayerId::Baseline).unwrap();
        assert!(st.bit_corrected_reads > 0);
        assert!(st.injected_bits > 0);
        // Scrub-by-rewrite then verify clean.
        for a in 0..64 {
            dev.access(Access::Scrub(a), &mut ctx).unwrap();
        }
        assert_eq!(
            dev.access(Access::Verify, &mut ctx).unwrap(),
            AccessOutcome::Verified(true)
        );
    }

    #[test]
    fn fault_hook_drives_detection_through_the_trait() {
        use pmck_nvram::{ChipFailureKind, FaultEvent, FaultKind};
        let mut dev = ChipkillMemory::new(32, ChipkillConfig::default());
        let mut ctx = AccessContext::new(3);
        let data = [0x11u8; 64];
        dev.access(Access::Write { addr: 9, data }, &mut ctx)
            .unwrap();
        dev.access(
            Access::Fault(FaultEvent {
                at_cycle: 0,
                kind: FaultKind::ChipKill {
                    chip: 4,
                    kind: ChipFailureKind::RandomGarbage,
                },
            }),
            &mut ctx,
        )
        .unwrap();
        match dev.access(Access::Read(9), &mut ctx).unwrap() {
            AccessOutcome::Read(out) => {
                assert_eq!(out.data, data);
                assert_eq!(out.path, ReadPath::ChipkillErasure { chip: 4 });
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(BlockDevice::detected_failed_chip(&dev), Some(4));
        dev.access(Access::Repair, &mut ctx).unwrap();
        assert_eq!(BlockDevice::detected_failed_chip(&dev), None);
    }
}
