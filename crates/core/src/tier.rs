//! Adaptive per-region ECC tiering.
//!
//! The paper fixes one protection point — RS(72, 64) plus the t = 22
//! VLEW, 27% storage cost everywhere, provisioned for the *worst*
//! region. [`TieredMemory`] instead splits a rank into equally sized
//! regions, tracks each region's measured RBER
//! ([`pmck_nvram::RegionRber`]: the max of the wear-model prediction and
//! the observed error sample), and lets a [`TierPolicy`] assign each
//! region one of the three [`crate::Layout`] tiers: RS-only for healthy
//! regions (≈ 12.9% cost, VLEW area reclaimed as bonus blocks), the
//! paper's point, or the dense layout for worn regions (≈ 41.5%).
//!
//! # Migration protocol
//!
//! A tier change re-encodes the region in place, and the commit rides
//! the same restage-at-flush machinery as the §V-E re-stripe:
//!
//! 1. read every logical block out of the old engine (erasure/VLEW
//!    corrected — migration doubles as a scrub);
//! 2. build a fresh engine at the new tier and write the blocks in;
//! 3. move the region's [`crate::PmemDomain`] across and flush: the new
//!    data/code arrays *and* the tier-tagged metadata line land in one
//!    fence, so a power cut recovers wholly-old or wholly-new, never a
//!    mix;
//! 4. swap the live engine.
//!
//! Recovery per region replays the intent log, decodes the metadata
//! line, and rebuilds an engine at the *durable* tier before restoring
//! the image — the meta line, not the live state, decides the layout,
//! exactly like [`crate::Restripeable`] recovery.
//!
//! Every region's durable arrays are laid out with the **dense**
//! geometry's strides (the largest code area of the three tiers), so an
//! image staged by any tier fits at the same offsets and a migration
//! never moves durable objects.

use pmck_nvram::{FaultKind, RegionRber, WearModel};
use pmck_pmem::PmemConfig;

use crate::config::ChipkillConfig;
use crate::device::{
    record_access, Access, AccessContext, AccessOutcome, BlockDevice, LayerId, RecoveryReport,
};
use crate::engine::{ChipkillMemory, CoreError, ReadPath};
use crate::layout::{ChipkillLayout, ProtectionTier};
use crate::pmem::PmemDomain;
use crate::scrub::ScrubReport;
use crate::stats::CoreStats;

/// Region size quantum: the least common multiple of every tier's
/// blocks-per-VLEW (32 for the paper tier, 16 dense), so any tier's
/// stripes divide a region exactly.
const REGION_QUANTUM: u64 = 32;

/// Maps a region's measured RBER to a protection tier, with hysteresis
/// so regions hovering at a boundary do not thrash.
///
/// Upgrades (toward more protection) take effect immediately — an
/// under-protected region is a UBER liability. Downgrades step one tier
/// at a time and only once the RBER has fallen clearly below the
/// boundary (`boundary × hysteresis`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPolicy {
    /// RBER at or above which a region needs at least the paper tier.
    pub paper_rber: f64,
    /// RBER at or above which a region needs the dense tier.
    pub dense_rber: f64,
    /// Downgrade guard band in `(0, 1]`: a region leaves a tier only
    /// when its RBER is below `boundary × hysteresis`.
    pub hysteresis: f64,
}

impl Default for TierPolicy {
    fn default() -> Self {
        // The paper's runtime tier holds UBER at RBER 2e-4 (§V-C); give
        // RS-only only the comfortably clean regions and escalate to
        // dense at the 1e-3 boot-scrub design point.
        TierPolicy {
            paper_rber: 1e-5,
            dense_rber: 1e-3,
            hysteresis: 0.5,
        }
    }
}

impl TierPolicy {
    /// The tier a region at `rber` should run at, ignoring hysteresis.
    pub fn tier_for(&self, rber: f64) -> ProtectionTier {
        if rber >= self.dense_rber {
            ProtectionTier::Dense
        } else if rber >= self.paper_rber {
            ProtectionTier::Paper
        } else {
            ProtectionTier::RsOnly
        }
    }

    /// The tier a region currently at `current` should move to given its
    /// measured `rber`: upgrades jump straight to [`Self::tier_for`],
    /// downgrades descend one tier per pass and only past the guard
    /// band.
    pub fn next_tier(&self, current: ProtectionTier, rber: f64) -> ProtectionTier {
        let target = self.tier_for(rber);
        if target > current {
            return target;
        }
        if target < current {
            let boundary = match current {
                ProtectionTier::Dense => self.dense_rber,
                ProtectionTier::Paper => self.paper_rber,
                ProtectionTier::RsOnly => return current,
            };
            if rber < boundary * self.hysteresis {
                return match current {
                    ProtectionTier::Dense => ProtectionTier::Paper,
                    ProtectionTier::Paper => ProtectionTier::RsOnly,
                    ProtectionTier::RsOnly => unreachable!("handled above"),
                };
            }
        }
        current
    }
}

/// Per-tier region census plus the blended storage cost, produced by
/// [`TieredMemory::tier_step`] / [`TieredMemory::report`] and merged
/// across shards by the service front end.
///
/// Costs travel as parts-per-million so the report stays `Eq` (the
/// `Response` vocabulary derives it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierReport {
    /// Regions managed.
    pub regions: u64,
    /// Regions at the RS-only tier.
    pub rs_only_regions: u64,
    /// Regions at the paper tier.
    pub paper_regions: u64,
    /// Regions at the dense tier.
    pub dense_regions: u64,
    /// Migrations: performed by this pass when the report answers a
    /// [`crate::Request::TierStep`]; cumulative from
    /// [`TieredMemory::report`].
    pub migrations: u64,
    /// Region-weighted mean storage cost, in parts per million.
    pub blended_cost_ppm: u64,
}

impl TierReport {
    /// Folds `other` into `self` (cross-shard aggregation): counts sum,
    /// the blended cost becomes the region-weighted mean.
    pub fn merge(&mut self, other: &TierReport) {
        let total = self.regions + other.regions;
        let weighted =
            self.blended_cost_ppm * self.regions + other.blended_cost_ppm * other.regions;
        if let Some(blended) = weighted.checked_div(total) {
            self.blended_cost_ppm = blended;
        }
        self.regions = total;
        self.rs_only_regions += other.rs_only_regions;
        self.paper_regions += other.paper_regions;
        self.dense_regions += other.dense_regions;
        self.migrations += other.migrations;
    }

    /// The blended storage cost as a fraction.
    pub fn blended_cost(&self) -> f64 {
        self.blended_cost_ppm as f64 / 1e6
    }
}

/// A rank split into equally sized regions, each running its own
/// [`ChipkillMemory`] at the protection tier its measured RBER demands.
/// See the module docs for the migration protocol.
#[derive(Debug, Clone)]
pub struct TieredMemory {
    regions: Vec<ChipkillMemory>,
    /// Blocks per region (multiple of [`REGION_QUANTUM`]).
    region_blocks: u64,
    policy: TierPolicy,
    rber: RegionRber,
    /// The tier-independent config knobs every region engine inherits.
    base_cfg: ChipkillConfig,
    /// Stats of engines retired by migration or recovery, folded so
    /// [`TieredMemory::core_stats`] never loses history.
    folded_stats: CoreStats,
    migrations: u64,
}

impl TieredMemory {
    /// A rank of `num_blocks` blocks split into `num_regions` regions,
    /// every region starting at `cfg.tier`. The region size is
    /// `num_blocks / num_regions` rounded up to a whole quantum (32
    /// blocks), so the total capacity may round up.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or `num_regions == 0`.
    pub fn new(
        num_blocks: u64,
        num_regions: usize,
        cfg: ChipkillConfig,
        policy: TierPolicy,
    ) -> Self {
        assert!(num_blocks > 0, "capacity must be nonzero");
        assert!(num_regions > 0, "at least one region");
        let per_region = num_blocks
            .div_ceil(num_regions as u64)
            .div_ceil(REGION_QUANTUM)
            * REGION_QUANTUM;
        let regions = (0..num_regions)
            .map(|_| ChipkillMemory::new(per_region, cfg))
            .collect();
        TieredMemory {
            regions,
            region_blocks: per_region,
            policy,
            rber: RegionRber::new(num_regions, WearModel::default()),
            base_cfg: cfg,
            folded_stats: CoreStats::default(),
            migrations: 0,
        }
    }

    /// Replaces the wear model feeding the predicted RBER component
    /// (write counts and observations reset).
    pub fn with_wear_model(mut self, model: WearModel) -> Self {
        self.rber = RegionRber::new(self.regions.len(), model);
        self
    }

    /// Blocks per region.
    pub fn region_blocks(&self) -> u64 {
        self.region_blocks
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total capacity in blocks.
    pub fn num_blocks(&self) -> u64 {
        self.region_blocks * self.regions.len() as u64
    }

    /// The governing tier policy.
    pub fn policy(&self) -> &TierPolicy {
        &self.policy
    }

    /// The tier region `r` currently runs at.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn region_tier(&self, r: usize) -> ProtectionTier {
        self.regions[r].tier()
    }

    /// The per-region RBER tracker.
    pub fn rber(&self) -> &RegionRber {
        &self.rber
    }

    /// Mutable access to the RBER tracker (campaigns push synthetic
    /// observations through this).
    pub fn rber_mut(&mut self) -> &mut RegionRber {
        &mut self.rber
    }

    /// Installs one persistence domain per region, each sized with the
    /// dense geometry (the largest strides of the three tiers) so any
    /// tier's image fits at the same offsets.
    pub(crate) fn set_persistent(&mut self, pcfg: PmemConfig) {
        let dense = ChipkillLayout::dense();
        let stripes = (self.region_blocks as usize) / dense.blocks_per_vlew();
        for region in &mut self.regions {
            region.set_domain(PmemDomain::for_rank(
                &dense,
                stripes,
                self.region_blocks,
                pcfg,
            ));
        }
    }

    /// The current tier census (with cumulative migrations).
    pub fn report(&self) -> TierReport {
        let mut r = TierReport {
            regions: self.regions.len() as u64,
            migrations: self.migrations,
            ..TierReport::default()
        };
        let mut cost_sum = 0.0;
        for region in &self.regions {
            match region.tier() {
                ProtectionTier::RsOnly => r.rs_only_regions += 1,
                ProtectionTier::Paper => r.paper_regions += 1,
                ProtectionTier::Dense => r.dense_regions += 1,
            }
            cost_sum += region.storage_cost();
        }
        r.blended_cost_ppm = (cost_sum / self.regions.len() as f64 * 1e6) as u64;
        r
    }

    /// Merged engine stats across live regions plus every retired
    /// engine, with the migration counter folded in.
    pub fn merged_stats(&self) -> CoreStats {
        let mut total = self.folded_stats;
        for region in &self.regions {
            total.merge(region.stats());
        }
        total.tier_migrations = self.migrations;
        total
    }

    fn cfg_for_tier(&self, tier: ProtectionTier) -> ChipkillConfig {
        ChipkillConfig {
            eur_enabled: self.base_cfg.eur_enabled,
            decode_policy: self.base_cfg.decode_policy,
            ..ChipkillConfig::for_tier(tier)
        }
    }

    fn region_of(&self, addr: u64) -> Result<(usize, u64), CoreError> {
        let r = (addr / self.region_blocks) as usize;
        if r >= self.regions.len() {
            return Err(CoreError::OutOfRange(addr));
        }
        Ok((r, addr % self.region_blocks))
    }

    /// Physical stored bits of region `r` (data + code arrays), the
    /// denominator for observed-RBER samples.
    fn region_bits(&self, r: usize) -> u64 {
        let engine = &self.regions[r];
        let l = engine.layout();
        (engine.stripes() * l.total_chips() * (l.vlew_data_bytes + l.vlew_code_bytes)) as u64 * 8
    }

    /// One tier-policy pass: re-evaluates every region's measured RBER
    /// and migrates the regions whose tier changed. Regions holding a
    /// detected or injected chip failure are left alone (the repair path
    /// owns them), as are regions whose read-out hits an uncorrectable
    /// block.
    pub fn tier_step(&mut self, ctx: &mut AccessContext) -> TierReport {
        let mut migrated = 0u64;
        for r in 0..self.regions.len() {
            let current = self.regions[r].tier();
            let next = self.policy.next_tier(current, self.rber.measured_rber(r));
            if next != current && self.migrate_region(r, next, ctx) {
                migrated += 1;
            }
        }
        let mut report = self.report();
        report.migrations = migrated;
        report
    }

    /// Re-encodes region `r` at `tier` and commits through the region's
    /// persistence domain (one fence covers the new arrays and the
    /// tier-tagged metadata line). Returns whether the migration
    /// happened.
    fn migrate_region(&mut self, r: usize, tier: ProtectionTier, ctx: &mut AccessContext) -> bool {
        if self.regions[r].detected_failed_chip().is_some()
            || self.regions[r].injected_failure().is_some()
        {
            return false;
        }
        // Read out every logical block (corrected — migration doubles
        // as a scrub). An uncorrectable block aborts the migration;
        // the region stays at its current tier.
        let blocks = self.region_blocks as usize;
        let mut image = vec![0u8; blocks * 64];
        let mut disabled = Vec::new();
        let mut buf = [0u8; 64];
        for a in 0..self.region_blocks {
            if self.regions[r].is_disabled(a) {
                disabled.push(a);
                continue;
            }
            match self.regions[r].read_block_into(a, &mut buf) {
                Ok(_) => {
                    let off = a as usize * 64;
                    image[off..off + 64].copy_from_slice(&buf);
                }
                Err(_) => return false,
            }
        }
        // Build the replacement engine and write the image in.
        let mut fresh = ChipkillMemory::new(self.region_blocks, self.cfg_for_tier(tier));
        for a in 0..self.region_blocks {
            let off = a as usize * 64;
            buf.copy_from_slice(&image[off..off + 64]);
            fresh
                .write_block(a, &buf)
                .expect("fresh engine accepts every in-range write");
        }
        for a in disabled {
            let _ = fresh.disable_block(a);
        }
        // Commit: move the domain across and flush — the whole new
        // image plus the tier-tagged meta line in one fence.
        if let Some(domain) = self.regions[r].take_domain() {
            fresh.set_domain(domain);
            fresh
                .handle_flush(ctx)
                .expect("flush of a freshly built engine cannot fail");
        }
        let old = std::mem::replace(&mut self.regions[r], fresh);
        self.folded_stats.merge(old.stats());
        self.migrations += 1;
        ctx.trace(LayerId::Tiered, || format!("region {r} -> {tier}"));
        true
    }

    fn handle_flush(&mut self, ctx: &mut AccessContext) -> Result<AccessOutcome, CoreError> {
        let mut lines = 0;
        for region in &mut self.regions {
            match region.handle_flush(ctx)? {
                AccessOutcome::Flushed { lines: n } => lines += n,
                other => unreachable!("flush returned {other:?}"),
            }
        }
        Ok(AccessOutcome::Flushed { lines })
    }

    fn handle_power_cut(&mut self) -> Result<AccessOutcome, CoreError> {
        let mut lost = 0;
        for region in &mut self.regions {
            match region.handle_power_cut()? {
                AccessOutcome::PowerLost { lost_lines } => lost += lost_lines,
                other => unreachable!("power cut returned {other:?}"),
            }
        }
        Ok(AccessOutcome::PowerLost { lost_lines: lost })
    }

    /// Recovery: per region, replay the log and decode the metadata
    /// line; the *durable* tier decides which engine comes back (a crash
    /// mid-migration recovers whichever side of the fence committed).
    fn handle_recover(&mut self, ctx: &mut AccessContext) -> Result<AccessOutcome, CoreError> {
        let mut report = RecoveryReport::default();
        let mut recovered_any = false;
        for r in 0..self.regions.len() {
            let Some(mut domain) = self.regions[r].take_domain() else {
                continue;
            };
            recovered_any = true;
            let outcome = match domain
                .replay()
                .and_then(|o| domain.decode_meta().map(|m| (o, m)))
            {
                Ok(om) => om,
                Err(e) => {
                    self.regions[r].set_domain(domain);
                    return Err(e);
                }
            };
            let (outcome, meta) = outcome;
            if meta.tier != self.regions[r].tier() {
                // The durable image is at a different tier than the
                // live engine (crash raced a migration): rebuild.
                let mut fresh =
                    ChipkillMemory::new(self.region_blocks, self.cfg_for_tier(meta.tier));
                fresh.set_domain(domain);
                fresh.restore_from_image(&meta);
                let old = std::mem::replace(&mut self.regions[r], fresh);
                self.folded_stats.merge(old.stats());
                ctx.trace(LayerId::Tiered, || {
                    format!("recover region {r} -> {}", meta.tier)
                });
            } else {
                self.regions[r].set_domain(domain);
                self.regions[r].restore_from_image(&meta);
            }
            report.merge(&RecoveryReport {
                records_replayed: outcome.records_replayed,
                lines_redone: outcome.lines_redone,
                restriped: false,
            });
        }
        if recovered_any {
            let st = ctx.layer_mut(LayerId::Pmem);
            st.recoveries += 1;
            st.lines_redone += report.lines_redone;
        }
        Ok(AccessOutcome::Recovered(report))
    }

    fn boot_scrub(&mut self) -> Result<AccessOutcome, CoreError> {
        let mut total = ScrubReport::default();
        for region in &mut self.regions {
            let r = region.boot_scrub()?;
            total.stripes_scrubbed += r.stripes_scrubbed;
            total.bits_corrected += r.bits_corrected;
            total.words_with_errors += r.words_with_errors;
            total.list_rescues += r.list_rescues;
            total.chip_rebuilt = total.chip_rebuilt.or(r.chip_rebuilt);
        }
        Ok(AccessOutcome::BootScrubbed(total))
    }

    fn repair(&mut self) -> Result<AccessOutcome, CoreError> {
        let mut repaired = None;
        for region in &mut self.regions {
            if let Some(chip) = region.detected_failed_chip() {
                region.repair_chip(chip)?;
                repaired = Some(chip);
            }
        }
        Ok(AccessOutcome::Repaired { chip: repaired })
    }
}

impl BlockDevice for TieredMemory {
    fn id(&self) -> LayerId {
        LayerId::Tiered
    }

    fn num_blocks(&self) -> u64 {
        TieredMemory::num_blocks(self)
    }

    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        let result = self
            .region_of(addr)
            .and_then(|(r, local)| self.regions[r].read_block_into(local, data));
        crate::device::record_read_into(ctx, LayerId::Tiered, addr, &result);
        result
    }

    fn detected_failed_chip(&self) -> Option<usize> {
        self.regions.iter().find_map(|r| r.detected_failed_chip())
    }

    fn core_stats(&self) -> Option<CoreStats> {
        Some(self.merged_stats())
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        let result = match access {
            Access::Read(addr) => self
                .region_of(addr)
                .and_then(|(r, local)| self.regions[r].read_block(local))
                .map(AccessOutcome::Read),
            Access::Write { addr, data } => self.region_of(addr).and_then(|(r, local)| {
                self.rber.record_writes(r, 1);
                self.regions[r]
                    .write_block(local, &data)
                    .map(|_| AccessOutcome::Written)
            }),
            Access::WriteSum { addr, data } => self.region_of(addr).and_then(|(r, local)| {
                self.rber.record_writes(r, 1);
                self.regions[r]
                    .write_block_sum(local, &data)
                    .map(|_| AccessOutcome::Written)
            }),
            Access::Scrub(addr) => self
                .region_of(addr)
                .and_then(|(r, local)| self.regions[r].scrub_block(local))
                .map(|_| AccessOutcome::Scrubbed),
            Access::InjectRber(rber) => {
                // The background rate hits every region; each region's
                // observed-RBER sample sees its own share.
                let mut bits = 0usize;
                for r in 0..self.regions.len() {
                    let flipped = self.regions[r].inject_bit_errors(rber, ctx.rng());
                    let total = self.region_bits(r);
                    self.rber.record_observation(r, flipped as u64, total);
                    bits += flipped;
                }
                Ok(AccessOutcome::Injected { bits })
            }
            Access::Fault(ev) => match ev.kind {
                FaultKind::Rber { .. } | FaultKind::RberRamp { .. } => {
                    Ok(AccessOutcome::Injected { bits: 0 })
                }
                // Structured faults strike one region.
                _ => {
                    use pmck_rt::rng::Rng;
                    let r = ctx.rng().gen_range(0..self.regions.len());
                    let bits = self.regions[r].apply_fault_event(&ev, ctx.rng());
                    let total = self.region_bits(r);
                    self.rber.record_observation(r, bits as u64, total);
                    Ok(AccessOutcome::Injected { bits })
                }
            },
            Access::BootScrub => self.boot_scrub(),
            Access::Verify => Ok(AccessOutcome::Verified(
                self.regions.iter_mut().all(|r| r.verify_consistent()),
            )),
            Access::Repair => self.repair(),
            Access::TierStep => {
                let report = self.tier_step(ctx);
                let st = ctx.layer_mut(LayerId::Tiered);
                st.rs_only_regions = report.rs_only_regions;
                st.paper_regions = report.paper_regions;
                st.dense_regions = report.dense_regions;
                st.tier_migrations += report.migrations;
                Ok(AccessOutcome::Tiered(report))
            }
            Access::Flush => self.handle_flush(ctx),
            Access::PowerCut => self.handle_power_cut(),
            Access::Recover => self.handle_recover(ctx),
            Access::PatrolStep | Access::Restripe => Err(CoreError::Unsupported(access.kind())),
        };
        record_access(ctx, LayerId::Tiered, &access, &result);
        result
    }

    fn pmem_domain(&mut self) -> Option<&mut PmemDomain> {
        // The campaign's fuse-arming hook: region 0's media. Crash
        // campaigns target one region's migration at a time.
        self.regions[0].domain.as_mut()
    }

    fn tier_report(&self) -> Option<TierReport> {
        Some(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8) -> [u8; 64] {
        let mut b = [0u8; 64];
        for (i, x) in b.iter_mut().enumerate() {
            *x = tag.wrapping_mul(37).wrapping_add(i as u8);
        }
        b
    }

    #[test]
    fn policy_maps_rber_to_tiers_with_hysteresis() {
        let p = TierPolicy::default();
        assert_eq!(p.tier_for(0.0), ProtectionTier::RsOnly);
        assert_eq!(p.tier_for(1e-4), ProtectionTier::Paper);
        assert_eq!(p.tier_for(5e-3), ProtectionTier::Dense);
        // Upgrades are immediate and jump tiers.
        assert_eq!(
            p.next_tier(ProtectionTier::RsOnly, 5e-3),
            ProtectionTier::Dense
        );
        // Downgrades descend one tier and respect the guard band.
        assert_eq!(
            p.next_tier(ProtectionTier::Dense, 0.0),
            ProtectionTier::Paper
        );
        assert_eq!(
            p.next_tier(ProtectionTier::Dense, 0.9 * p.dense_rber),
            ProtectionTier::Dense,
            "inside the guard band: stay put"
        );
        assert_eq!(
            p.next_tier(ProtectionTier::Paper, 0.0),
            ProtectionTier::RsOnly
        );
        assert_eq!(
            p.next_tier(ProtectionTier::RsOnly, 0.0),
            ProtectionTier::RsOnly
        );
    }

    #[test]
    fn report_merge_weights_blended_cost() {
        let mut a = TierReport {
            regions: 1,
            rs_only_regions: 1,
            blended_cost_ppm: 100_000,
            ..TierReport::default()
        };
        let b = TierReport {
            regions: 3,
            dense_regions: 3,
            blended_cost_ppm: 400_000,
            migrations: 2,
            ..TierReport::default()
        };
        a.merge(&b);
        assert_eq!(a.regions, 4);
        assert_eq!(a.rs_only_regions, 1);
        assert_eq!(a.dense_regions, 3);
        assert_eq!(a.migrations, 2);
        assert_eq!(a.blended_cost_ppm, 325_000);
        assert!((a.blended_cost() - 0.325).abs() < 1e-9);
    }

    #[test]
    fn reads_and_writes_route_to_regions() {
        let mut mem = TieredMemory::new(128, 4, ChipkillConfig::default(), TierPolicy::default());
        assert_eq!(mem.region_blocks(), 32);
        assert_eq!(mem.num_regions(), 4);
        let mut ctx = AccessContext::new(1);
        for a in 0..128u64 {
            mem.access(
                Access::Write {
                    addr: a,
                    data: block(a as u8),
                },
                &mut ctx,
            )
            .unwrap();
        }
        for a in 0..128u64 {
            match mem.access(Access::Read(a), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => assert_eq!(out.data, block(a as u8), "addr {a}"),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(mem.rber().writes(0), 32);
        assert_eq!(mem.rber().writes(3), 32);
        assert!(matches!(
            mem.access(Access::Read(128), &mut ctx),
            Err(CoreError::OutOfRange(128))
        ));
    }

    #[test]
    fn tier_step_migrates_on_observed_rber_and_preserves_data() {
        let mut mem = TieredMemory::new(64, 2, ChipkillConfig::default(), TierPolicy::default());
        let mut ctx = AccessContext::new(2);
        for a in 0..64u64 {
            mem.access(
                Access::Write {
                    addr: a,
                    data: block(a as u8),
                },
                &mut ctx,
            )
            .unwrap();
        }
        // Region 0 looks worn, region 1 pristine.
        mem.rber_mut().record_observation(0, 5, 1000);
        let report = match mem.access(Access::TierStep, &mut ctx).unwrap() {
            AccessOutcome::Tiered(r) => r,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(report.regions, 2);
        assert_eq!(report.migrations, 2);
        assert_eq!(mem.region_tier(0), ProtectionTier::Dense);
        assert_eq!(mem.region_tier(1), ProtectionTier::RsOnly);
        assert!(report.dense_regions == 1 && report.rs_only_regions == 1);
        for a in 0..64u64 {
            match mem.access(Access::Read(a), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => assert_eq!(out.data, block(a as u8), "addr {a}"),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(mem.merged_stats().tier_migrations, 2);
        // A second pass with unchanged RBER is a no-op.
        let again = match mem.access(Access::TierStep, &mut ctx).unwrap() {
            AccessOutcome::Tiered(r) => r,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(again.migrations, 0);
    }

    #[test]
    fn blended_cost_tracks_the_census() {
        let mem = TieredMemory::new(64, 2, ChipkillConfig::default(), TierPolicy::default());
        let paper = ProtectionTier::Paper.layout().total_storage_cost();
        let r = mem.report();
        assert_eq!(r.paper_regions, 2);
        assert!((r.blended_cost() - paper).abs() < 1e-4);
    }

    #[test]
    fn persistent_migration_survives_flush_cut_recover() {
        let mut mem = TieredMemory::new(32, 1, ChipkillConfig::default(), TierPolicy::default());
        mem.set_persistent(PmemConfig::default());
        let mut ctx = AccessContext::new(3);
        for a in 0..32u64 {
            mem.access(
                Access::Write {
                    addr: a,
                    data: block(a as u8),
                },
                &mut ctx,
            )
            .unwrap();
        }
        mem.access(Access::Flush, &mut ctx).unwrap();
        // Force a migration to dense, then crash and recover: the
        // durable tier tag must bring the dense engine back.
        mem.rber_mut().record_observation(0, 5, 1000);
        mem.access(Access::TierStep, &mut ctx).unwrap();
        assert_eq!(mem.region_tier(0), ProtectionTier::Dense);
        mem.access(Access::PowerCut, &mut ctx).unwrap();
        mem.access(Access::Recover, &mut ctx).unwrap();
        assert_eq!(mem.region_tier(0), ProtectionTier::Dense);
        for a in 0..32u64 {
            match mem.access(Access::Read(a), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => assert_eq!(out.data, block(a as u8), "addr {a}"),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn cut_mid_migration_recovers_pre_or_post_tier() {
        let build = || {
            let mut mem =
                TieredMemory::new(32, 1, ChipkillConfig::default(), TierPolicy::default());
            mem.set_persistent(PmemConfig::default());
            let mut ctx = AccessContext::new(4);
            for a in 0..32u64 {
                mem.access(
                    Access::Write {
                        addr: a,
                        data: block(a as u8),
                    },
                    &mut ctx,
                )
                .unwrap();
            }
            mem.access(Access::Flush, &mut ctx).unwrap();
            mem.rber_mut().record_observation(0, 5, 1000);
            (mem, ctx)
        };
        // Reference run: learn the migration's step budget.
        let (mut reference, mut ctx) = build();
        let before = reference.pmem_domain().unwrap().steps_taken();
        reference.access(Access::TierStep, &mut ctx).unwrap();
        let steps = reference.pmem_domain().unwrap().steps_taken() - before;
        assert!(steps > 0, "the migration must persist something");

        let mut seen_old = false;
        let mut seen_new = false;
        for cut in (0..=steps).step_by((steps as usize / 8).max(1)) {
            let (mut mem, mut ctx) = build();
            mem.pmem_domain().unwrap().arm_fuse(cut);
            mem.access(Access::TierStep, &mut ctx).unwrap();
            mem.access(Access::PowerCut, &mut ctx).unwrap();
            mem.access(Access::Recover, &mut ctx).unwrap();
            let tier = mem.region_tier(0);
            assert!(
                tier == ProtectionTier::Paper || tier == ProtectionTier::Dense,
                "cut {cut}: unexpected tier {tier}"
            );
            seen_old |= tier == ProtectionTier::Paper;
            seen_new |= tier == ProtectionTier::Dense;
            for a in 0..32u64 {
                match mem.access(Access::Read(a), &mut ctx).unwrap() {
                    AccessOutcome::Read(out) => {
                        assert_eq!(out.data, block(a as u8), "cut {cut} addr {a}")
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        assert!(seen_old, "an early cut must recover the old tier");
        assert!(seen_new, "a late cut must recover the new tier");
    }
}
