//! Chipkill-correct for persistent memory on high-density NVRAMs — the
//! paper's proposal as a functional engine.
//!
//! # The scheme in brief
//!
//! A rank of nine NVRAM chips (eight data + one parity) serves 64 B blocks,
//! 8 B per chip. Two ECC tiers protect it (§V):
//!
//! * **VLEWs (boot tier)** — within each chip, every 256 B of row data
//!   forms a very long ECC word with 33 B of 22-bit-error-correcting BCH
//!   code, enough to survive RBER 10⁻³ after a week-to-a-year without
//!   refresh. At boot, [`ChipkillMemory::boot_scrub`] decodes every VLEW;
//!   a VLEW that is uncorrectable reveals a failed chip, which is then
//!   rebuilt through Reed-Solomon erasure correction (or, for the parity
//!   chip, recomputed from the data chips).
//! * **Per-block RS (runtime tier)** — every block carries eight RS check
//!   bytes in the parity chip. They exist for chip-failure erasure
//!   correction, but [`ChipkillMemory::read_block`] *reuses* them to
//!   opportunistically correct random bit errors — accepting at most
//!   [`ChipkillConfig::threshold`] (2) corrections to keep the SDC rate
//!   below target, and falling back to VLEW decoding otherwise.
//!
//! Writes carry `old ⊕ new` (bitwise-sum writes, §V-D): each chip
//! reconstructs the new data internally and derives the VLEW code-bit
//! update from the same sum (BCH is linear), coalescing updates per open
//! row in an ECC Update Registerfile. [`ChipkillMemory::write_block_sum`]
//! models this; its observable state is bit-identical to a conventional
//! write ([`ChipkillMemory::write_block`]), which property tests verify.
//!
//! The §III-A comparison point lives in [`BaselineMemory`]: a per-block
//! 14-bit-EC BCH with the same storage cost but no chip-failure
//! protection.
//!
//! # Examples
//!
//! ```
//! use pmck_core::{ChipkillConfig, ChipkillMemory};
//!
//! let mut rng = pmck_rt::rng::StdRng::seed_from_u64(1);
//! let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
//! let block = [0x5Au8; 64];
//! mem.write_block(3, &block);
//!
//! // A long power outage accumulates errors …
//! mem.inject_bit_errors(1e-3, &mut rng);
//! // … which the boot scrub removes.
//! let report = mem.boot_scrub().unwrap();
//! assert!(report.bits_corrected > 0 || report.stripes_scrubbed > 0);
//! assert_eq!(mem.read_block(3).unwrap().data, block);
//! ```

mod baseline;
mod config;
mod device;
mod engine;
mod iocrc;
mod layout;
mod patrol;
mod pmem;
mod rank;
mod request;
mod restripe;
mod scrub;
mod stack;
mod stats;
mod submit;
mod tier;
mod wearlevel;

pub use baseline::{BaselineMemory, BaselineReadOutcome};
pub use config::ChipkillConfig;
pub use device::{
    Access, AccessContext, AccessOutcome, BlockDevice, LayerId, LayerStats, ParseLayerIdError,
    RecoveryReport, TraceEvent,
};
pub use engine::{
    ChipkillMemory, ClusterError, ClusterFailure, CoreError, ReadOutcome, ReadPath, RecoveryError,
    RecoveryFailure, ServiceError, ServiceFailure,
};
pub use iocrc::{crc16, BusFault, LinkProtected, TransmitOutcome, WriteLink};
pub use layout::{ChipkillLayout, DenseLayout, Layout, PaperLayout, ProtectionTier, RsOnlyLayout};
pub use patrol::{PatrolReport, PatrolScrubber, Patrolled};
pub use pmem::PmemDomain;
pub use request::{merge_broadcast, Request, Response};
pub use restripe::{Restripeable, RestripedMemory, BLOCKS_PER_GROUP};
pub use scrub::ScrubReport;
pub use stack::{Stack, StackBuilder};
pub use stats::CoreStats;
pub use submit::{EagerTickets, SubmitTicket, Submitter};
pub use tier::{TierPolicy, TierReport, TieredMemory};
pub use wearlevel::{WearLevelled, WearLevelledMemory};

// Re-exports used in public signatures.
pub use pmck_bch::DecodePolicy;
pub use pmck_nvram::{ChipFailureKind, FailedChip};
pub use pmck_pmem::{MediaStats, PmemConfig};
