//! Post-chip-failure VLEW reconfiguration (§V-E).
//!
//! After a permanent chip failure, one option is to remap the faulty
//! chip's contents onto the ECC (parity) chip, giving up the per-block RS
//! bits. To keep bit-error correction, the memory controller re-encodes
//! each VLEW from 256 B of data *across all surviving chips* — i.e. four
//! consecutive 64 B blocks — instead of 256 B within a single chip. A
//! reconfigured VLEW spans only 4 blocks, so correction fetches 4 blocks
//! rather than 32+. Length and strength are unchanged, so storage cost is
//! unchanged.

use pmck_bch::{BchCode, BitPoly};
use pmck_nvram::BitErrorInjector;
use pmck_rt::rng::Rng;

use crate::device::{Access, AccessContext, AccessOutcome, BlockDevice, LayerId};
use crate::engine::{ChipkillMemory, CoreError, ReadPath};
use crate::stats::CoreStats;

/// Blocks per reconfigured VLEW (256 B / 64 B).
pub const BLOCKS_PER_GROUP: usize = 4;

/// A rank that has been reconfigured after a permanent chip failure:
/// the failed chip's data now lives where the RS check bytes were, and
/// VLEWs stripe across the rank in 4-block groups.
#[derive(Debug, Clone)]
pub struct RestripedMemory {
    pub(crate) data: Vec<u8>,
    pub(crate) codes: Vec<u8>, // 33 B per 4-block group
    pub(crate) num_blocks: u64,
    pub(crate) vlew: BchCode,
    pub(crate) bits_corrected: u64,
    /// Persistence domain, moved over from the chipkill rank at the
    /// re-stripe transition (see `crate::pmem`).
    pub(crate) domain: Option<crate::pmem::PmemDomain>,
}

impl RestripedMemory {
    /// Reconfigures a rank with a detected chip failure: every block is
    /// erasure-corrected out of the old layout, then re-encoded into
    /// rank-striped VLEWs.
    ///
    /// # Errors
    ///
    /// Propagates read errors from the old layout.
    pub fn from_failed_rank(mem: &mut ChipkillMemory) -> Result<Self, CoreError> {
        let num_blocks = mem.num_blocks();
        let mut data = vec![0u8; num_blocks as usize * 64];
        for addr in 0..num_blocks {
            let out = mem.read_block(addr)?;
            data[addr as usize * 64..(addr as usize + 1) * 64].copy_from_slice(&out.data);
        }
        let vlew = BchCode::vlew();
        let groups = num_blocks as usize / BLOCKS_PER_GROUP;
        let mut out = RestripedMemory {
            data,
            codes: vec![0u8; groups * 33],
            num_blocks,
            vlew,
            bits_corrected: 0,
            domain: None,
        };
        for g in 0..groups {
            let code = out.encode_group(g);
            out.codes[g * 33..(g + 1) * 33].copy_from_slice(&code);
        }
        Ok(out)
    }

    fn encode_group(&self, group: usize) -> Vec<u8> {
        let base = group * BLOCKS_PER_GROUP * 64;
        let bits = BitPoly::from_bytes(&self.data[base..base + 256]);
        let mut code = self.vlew.parity(&bits).to_bytes();
        code.resize(33, 0);
        code
    }

    /// Capacity in blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Blocks fetched to correct one block's errors (4, vs 36 before
    /// reconfiguration).
    pub fn blocks_fetched_per_correction(&self) -> usize {
        BLOCKS_PER_GROUP
    }

    /// Total bit errors corrected by reads so far.
    pub fn bits_corrected(&self) -> u64 {
        self.bits_corrected
    }

    fn group_word(&self, group: usize) -> BitPoly {
        let mut cw = BitPoly::zero(self.vlew.len());
        let code = BitPoly::from_bytes(&self.codes[group * 33..(group + 1) * 33]);
        cw.splice(0, &code.slice(0, self.vlew.parity_bits()));
        let base = group * BLOCKS_PER_GROUP * 64;
        let data = BitPoly::from_bytes(&self.data[base..base + 256]);
        cw.splice(self.vlew.parity_bits(), &data);
        cw
    }

    /// Reads a block, correcting the 4-block group through its VLEW when
    /// errors are present.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`] / [`CoreError::Uncorrectable`].
    pub fn read_block(&mut self, addr: u64) -> Result<[u8; 64], CoreError> {
        if addr >= self.num_blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let group = addr as usize / BLOCKS_PER_GROUP;
        let mut cw = self.group_word(group);
        match self.vlew.decode(&mut cw) {
            Ok(outcome) => {
                if !outcome.was_clean() {
                    self.bits_corrected += outcome.num_corrected() as u64;
                    // Write the corrected group back (scrub-on-read).
                    let data = cw
                        .slice(self.vlew.parity_bits(), self.vlew.data_bits())
                        .to_bytes();
                    let base = group * BLOCKS_PER_GROUP * 64;
                    self.data[base..base + 256].copy_from_slice(&data);
                    let code = cw.slice(0, self.vlew.parity_bits()).to_bytes();
                    self.codes[group * 33..group * 33 + 33].copy_from_slice(&{
                        let mut c = code;
                        c.resize(33, 0);
                        c
                    });
                }
                let off = (addr as usize % BLOCKS_PER_GROUP) * 64;
                let base = group * BLOCKS_PER_GROUP * 64;
                Ok(self.data[base + off..base + off + 64]
                    .try_into()
                    .expect("64 bytes"))
            }
            Err(_) => Err(CoreError::Uncorrectable),
        }
    }

    /// Writes a block, updating the group's VLEW code linearly.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`].
    pub fn write_block(&mut self, addr: u64, new: &[u8; 64]) -> Result<(), CoreError> {
        if addr >= self.num_blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let group = addr as usize / BLOCKS_PER_GROUP;
        let off = (addr as usize % BLOCKS_PER_GROUP) * 64;
        let base = group * BLOCKS_PER_GROUP * 64;
        // Delta against the stored (assumed-corrected by reads) value.
        let mut delta_bits = BitPoly::zero(self.vlew.data_bits());
        for (i, &n) in new.iter().enumerate() {
            let d = self.data[base + off + i] ^ n;
            for b in 0..8 {
                if d & (1 << b) != 0 {
                    delta_bits.set((off + i) * 8 + b, true);
                }
            }
        }
        let delta_code = self.vlew.parity(&delta_bits);
        let mut bytes = delta_code.to_bytes();
        bytes.resize(33, 0);
        for (i, b) in bytes.iter().enumerate() {
            self.codes[group * 33 + i] ^= b;
        }
        self.data[base + off..base + off + 64].copy_from_slice(new);
        Ok(())
    }

    /// Injects random bit flips across data and code; returns the count.
    pub fn inject_bit_errors<R: Rng + ?Sized>(&mut self, rber: f64, rng: &mut R) -> usize {
        let inj = BitErrorInjector::new(rber);
        inj.corrupt(&mut self.data, rng).len() + inj.corrupt(&mut self.codes, rng).len()
    }

    /// Checks that every group's stored VLEW code matches its data —
    /// i.e. the layout holds no latent errors.
    pub fn verify_consistent(&self) -> bool {
        let groups = self.num_blocks as usize / BLOCKS_PER_GROUP;
        (0..groups).all(|g| self.codes[g * 33..(g + 1) * 33] == self.encode_group(g)[..])
    }
}

// The size skew is intentional: there is exactly one RestripeState per
// stack, and boxing the engine would put an indirection on every access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum RestripeState {
    Chipkill(ChipkillMemory),
    Restriped(RestripedMemory),
    /// Transient marker while ownership moves between layouts; never
    /// observable from outside `access`.
    Poisoned,
}

/// A chipkill rank that can reconfigure itself into the §V-E re-striped
/// layout *in place* on [`Access::Restripe`]. Before the transition it
/// behaves exactly like the wrapped [`ChipkillMemory`]; afterwards like
/// the [`RestripedMemory`] rebuilt from it. The engine's demand-period
/// [`CoreStats`] are captured at the transition (the rebuild itself
/// reads every block, which would otherwise pollute them).
#[derive(Debug, Clone)]
pub struct Restripeable {
    pub(crate) state: RestripeState,
    pub(crate) final_stats: Option<CoreStats>,
    /// Construction parameters of the wrapped rank, kept so recovery can
    /// rebuild the chipkill layout from the durable image after a crash
    /// cut the re-stripe transition short (see `crate::pmem`).
    pub(crate) cfg: crate::config::ChipkillConfig,
    pub(crate) physical_blocks: u64,
}

impl Restripeable {
    /// Wraps a live chipkill rank.
    pub fn new(rank: ChipkillMemory) -> Self {
        let cfg = *rank.config();
        let physical_blocks = rank.num_blocks();
        Restripeable {
            state: RestripeState::Chipkill(rank),
            final_stats: None,
            cfg,
            physical_blocks,
        }
    }

    /// Whether the §V-E transition has happened.
    pub fn is_restriped(&self) -> bool {
        matches!(self.state, RestripeState::Restriped(_))
    }

    fn active(&self) -> &dyn BlockDevice {
        match &self.state {
            RestripeState::Chipkill(m) => m,
            RestripeState::Restriped(m) => m,
            RestripeState::Poisoned => unreachable!("restripe state poisoned"),
        }
    }

    pub(crate) fn active_mut(&mut self) -> &mut dyn BlockDevice {
        match &mut self.state {
            RestripeState::Chipkill(m) => m,
            RestripeState::Restriped(m) => m,
            RestripeState::Poisoned => unreachable!("restripe state poisoned"),
        }
    }
}

impl BlockDevice for Restripeable {
    fn id(&self) -> LayerId {
        LayerId::Restripeable
    }

    fn num_blocks(&self) -> u64 {
        self.active().num_blocks()
    }

    fn detected_failed_chip(&self) -> Option<usize> {
        self.active().detected_failed_chip()
    }

    fn core_stats(&self) -> Option<CoreStats> {
        match &self.state {
            RestripeState::Chipkill(m) => Some(*m.stats()),
            _ => self.final_stats,
        }
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        match access {
            Access::Restripe => match std::mem::replace(&mut self.state, RestripeState::Poisoned) {
                RestripeState::Chipkill(mut rank) => {
                    // Snapshot demand-period stats before the rebuild
                    // reads (and erasure-decodes) every block.
                    let stats = *rank.stats();
                    // The rebuild stages the complete new image in memory
                    // before any committed state changes: on failure the
                    // chipkill layout stands untouched — there is no
                    // partial transition to roll back.
                    match RestripedMemory::from_failed_rank(&mut rank) {
                        Ok(mut restriped) => {
                            restriped.domain = rank.take_domain();
                            // Commit the layout flip through the intent
                            // log: the re-striped image plus flipped
                            // metadata fence as one transaction, so a
                            // crash recovers whole-old or whole-new.
                            // Without a domain the log is a no-op and
                            // the in-memory swap is the whole commit —
                            // one code path either way.
                            restriped.commit_restripe(ctx);
                            self.state = RestripeState::Restriped(restriped);
                            self.final_stats = Some(stats);
                            ctx.trace(LayerId::Restripeable, || "restripe -> restriped".into());
                            Ok(AccessOutcome::Restriped)
                        }
                        Err(e) => {
                            self.state = RestripeState::Chipkill(rank);
                            ctx.layer_mut(LayerId::Restripeable).errors += 1;
                            Err(e)
                        }
                    }
                }
                other => {
                    self.state = other;
                    Err(CoreError::Unsupported("restripe"))
                }
            },
            // Recovery may land on either side of the durable layout
            // flip, so it is resolved here rather than by the active
            // layout (see `crate::pmem`).
            Access::Recover => self.recover_across(ctx),
            // Per-access stats land under the active layout's label.
            other => self.active_mut().access(other, ctx),
        }
    }

    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        self.active_mut().read_into(addr, data, ctx)
    }

    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.active_mut().pmem_domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipkillConfig;
    use pmck_nvram::ChipFailureKind;
    use pmck_rt::rng::StdRng;

    fn seeded_rank() -> (ChipkillMemory, Vec<[u8; 64]>) {
        let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
        let mut blocks = Vec::new();
        for a in 0..64u64 {
            let mut b = [0u8; 64];
            for (i, x) in b.iter_mut().enumerate() {
                *x = (a as u8).wrapping_mul(31).wrapping_add(i as u8);
            }
            mem.write_block(a, &b).unwrap();
            blocks.push(b);
        }
        (mem, blocks)
    }

    #[test]
    fn restripe_preserves_data_after_chip_failure() {
        let (mut mem, blocks) = seeded_rank();
        let mut rng = StdRng::seed_from_u64(5);
        mem.fail_chip(3, ChipFailureKind::RandomGarbage, &mut rng);
        let mut rs = RestripedMemory::from_failed_rank(&mut mem).unwrap();
        for (a, b) in blocks.iter().enumerate() {
            assert_eq!(&rs.read_block(a as u64).unwrap(), b, "block {a}");
        }
    }

    #[test]
    fn restriped_corrects_bit_errors() {
        let (mut mem, blocks) = seeded_rank();
        let mut rng = StdRng::seed_from_u64(6);
        mem.fail_chip(8, ChipFailureKind::StuckOne, &mut rng);
        let mut rs = RestripedMemory::from_failed_rank(&mut mem).unwrap();
        rs.inject_bit_errors(1e-3, &mut rng);
        for (a, b) in blocks.iter().enumerate() {
            assert_eq!(&rs.read_block(a as u64).unwrap(), b, "block {a}");
        }
        assert!(rs.bits_corrected() > 0);
    }

    #[test]
    fn restriped_write_read_round_trip() {
        let (mut mem, _) = seeded_rank();
        let mut rng = StdRng::seed_from_u64(7);
        mem.fail_chip(0, ChipFailureKind::StuckZero, &mut rng);
        let mut rs = RestripedMemory::from_failed_rank(&mut mem).unwrap();
        let nb = [0xEEu8; 64];
        rs.write_block(17, &nb).unwrap();
        rs.inject_bit_errors(5e-4, &mut rng);
        assert_eq!(rs.read_block(17).unwrap(), nb);
        assert_eq!(rs.blocks_fetched_per_correction(), 4);
    }

    #[test]
    fn out_of_range() {
        let (mut mem, _) = seeded_rank();
        let mut rng = StdRng::seed_from_u64(8);
        mem.fail_chip(1, ChipFailureKind::RandomGarbage, &mut rng);
        let mut rs = RestripedMemory::from_failed_rank(&mut mem).unwrap();
        assert!(matches!(rs.read_block(64), Err(CoreError::OutOfRange(64))));
    }
}
