//! Write-CRC I/O protection (paper §IV-B, footnote 4).
//!
//! Bitwise-sum writes traverse the memory bus like any other write, so
//! I/O transmission errors could corrupt the sum in flight. The paper
//! notes modern memory chips use **Write-CRC** [77] to detect these
//! errors and alert the processor to retransmit. This module models that
//! link layer: a CRC-16 is computed over each 64 B write payload, a
//! configurable bus fault process may flip bits in flight, and the
//! receiving chip verifies the CRC, triggering bounded retransmission.

use pmck_nvram::BitErrorInjector;
use pmck_rt::rng::Rng;

use crate::device::{Access, AccessContext, AccessOutcome, BlockDevice, LayerId};
use crate::engine::{CoreError, ReadPath};
use crate::stats::CoreStats;

/// CRC-16/CCITT-FALSE over `data` (polynomial 0x1021, init 0xFFFF) —
/// the DDR4 Write-CRC uses the same CRC-family link protection.
///
/// # Examples
///
/// ```
/// // The CRC-16/CCITT-FALSE check value for "123456789".
/// assert_eq!(pmck_core::crc16(b"123456789"), 0x29B1);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// The bus fault process: independent bit flips at a given rate during
/// each transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusFault {
    /// Per-bit transmission error probability.
    pub ber: f64,
}

impl BusFault {
    /// A fault-free bus.
    pub fn none() -> Self {
        BusFault { ber: 0.0 }
    }
}

/// The outcome of a protected transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// Delivered intact on the first try.
    Clean,
    /// Delivered after `retries` CRC-triggered retransmissions.
    Retransmitted {
        /// How many resends were needed.
        retries: u32,
    },
    /// The retry budget was exhausted (the controller would escalate to
    /// a machine-check in real hardware).
    Failed,
}

/// A Write-CRC-protected link carrying 64 B write payloads (data or
/// bitwise sums) to the NVRAM chips.
#[derive(Debug, Clone)]
pub struct WriteLink {
    fault: BusFault,
    max_retries: u32,
    transfers: u64,
    retransmissions: u64,
}

impl WriteLink {
    /// A link with the given fault process and retry budget.
    pub fn new(fault: BusFault, max_retries: u32) -> Self {
        WriteLink {
            fault,
            max_retries,
            transfers: 0,
            retransmissions: 0,
        }
    }

    /// Total payloads sent.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Sends `payload` across the faulty bus; the receiver checks the
    /// CRC and requests retransmission on mismatch. On success,
    /// `deliver` receives exactly the bytes that were sent.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8; 64],
        rng: &mut R,
        deliver: impl FnOnce(&[u8; 64]),
    ) -> TransmitOutcome {
        self.transfers += 1;
        let crc = crc16(payload);
        let injector = BitErrorInjector::new(self.fault.ber);
        for attempt in 0..=self.max_retries {
            let mut wire = *payload;
            // Corrupt data and (conceptually) the CRC in flight; flipping
            // CRC bits alone also mismatches, which only adds retries, so
            // corrupting the payload suffices for the model.
            injector.corrupt(&mut wire, rng);
            if crc16(&wire) == crc {
                // CRC match: with 16 check bits the odds of accepting a
                // corrupted payload are ~2^-16 per erroneous transfer;
                // the model treats a match as intact delivery (and the
                // wire equals the payload in all but ~e-9 of cases at
                // realistic bus BER).
                deliver(&wire);
                return if attempt == 0 {
                    TransmitOutcome::Clean
                } else {
                    self.retransmissions += attempt as u64;
                    TransmitOutcome::Retransmitted { retries: attempt }
                };
            }
        }
        self.retransmissions += self.max_retries as u64;
        TransmitOutcome::Failed
    }
}

/// Write-CRC middleware: every write payload (conventional or bitwise
/// sum) crosses a [`WriteLink`] before reaching the inner device. A
/// transfer that exhausts its retry budget surfaces as
/// [`CoreError::LinkFailed`] without touching the stored bits.
#[derive(Debug, Clone)]
pub struct LinkProtected<D> {
    inner: D,
    link: WriteLink,
}

impl<D: BlockDevice> LinkProtected<D> {
    /// Wraps `inner` behind a Write-CRC link with the given fault
    /// process and retry budget.
    pub fn over(inner: D, fault: BusFault, max_retries: u32) -> Self {
        LinkProtected {
            inner,
            link: WriteLink::new(fault, max_retries),
        }
    }

    /// The link's transfer counters.
    pub fn link(&self) -> &WriteLink {
        &self.link
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    fn transmit(
        &mut self,
        addr: u64,
        data: [u8; 64],
        sum: bool,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        let mut delivered = None;
        let outcome = self.link.send(&data, ctx.rng(), |w| delivered = Some(*w));
        let st = ctx.layer_mut(LayerId::Link);
        st.writes += 1;
        match outcome {
            TransmitOutcome::Clean => {}
            TransmitOutcome::Retransmitted { retries } => st.retransmissions += retries as u64,
            TransmitOutcome::Failed => {
                st.link_failures += 1;
                ctx.trace(LayerId::Link, || format!("write {addr} -> link failed"));
                return Err(CoreError::LinkFailed);
            }
        }
        let data = delivered.expect("successful transfers deliver");
        let access = if sum {
            Access::WriteSum { addr, data }
        } else {
            Access::Write { addr, data }
        };
        self.inner.access(access, ctx)
    }
}

impl<D: BlockDevice> BlockDevice for LinkProtected<D> {
    fn id(&self) -> LayerId {
        LayerId::Link
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn detected_failed_chip(&self) -> Option<usize> {
        self.inner.detected_failed_chip()
    }

    fn core_stats(&self) -> Option<CoreStats> {
        self.inner.core_stats()
    }

    fn pmem_domain(&mut self) -> Option<&mut crate::pmem::PmemDomain> {
        self.inner.pmem_domain()
    }

    fn tier_report(&self) -> Option<crate::tier::TierReport> {
        self.inner.tier_report()
    }

    fn access(
        &mut self,
        access: Access,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        match access {
            Access::Write { addr, data } => self.transmit(addr, data, false, ctx),
            Access::WriteSum { addr, data } => self.transmit(addr, data, true, ctx),
            // Reads and maintenance traffic stay on-module.
            other => self.inner.access(other, ctx),
        }
    }

    fn read_into(
        &mut self,
        addr: u64,
        data: &mut [u8; 64],
        ctx: &mut AccessContext,
    ) -> Result<ReadPath, CoreError> {
        // Reads stay on-module: no link traversal, nothing to record.
        self.inner.read_into(addr, data, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    #[test]
    fn crc16_known_vectors() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b""), 0xFFFF);
        // Any single-bit flip changes the CRC.
        let base = [0x42u8; 64];
        let c0 = crc16(&base);
        for i in 0..64 {
            for b in 0..8 {
                let mut m = base;
                m[i] ^= 1 << b;
                assert_ne!(crc16(&m), c0, "flip {i}.{b}");
            }
        }
    }

    #[test]
    fn clean_bus_delivers_first_try() {
        let mut link = WriteLink::new(BusFault::none(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let payload = [0xA5u8; 64];
        let mut got = None;
        let out = link.send(&payload, &mut rng, |w| got = Some(*w));
        assert_eq!(out, TransmitOutcome::Clean);
        assert_eq!(got, Some(payload));
        assert_eq!(link.retransmissions(), 0);
    }

    #[test]
    fn faulty_bus_retransmits_and_delivers_intact() {
        // 1e-3 per bit over 512 bits → ~40% of transfers need a resend.
        let mut link = WriteLink::new(BusFault { ber: 1e-3 }, 16);
        let mut rng = StdRng::seed_from_u64(2);
        let payload = [0x3Cu8; 64];
        let mut retransmitted = 0;
        for _ in 0..2000 {
            let mut got = None;
            match link.send(&payload, &mut rng, |w| got = Some(*w)) {
                TransmitOutcome::Clean => {}
                TransmitOutcome::Retransmitted { .. } => retransmitted += 1,
                TransmitOutcome::Failed => panic!("budget of 16 must suffice"),
            }
            assert_eq!(got, Some(payload), "delivery is always intact");
        }
        assert!(retransmitted > 400, "got {retransmitted}");
    }

    #[test]
    fn hopeless_bus_reports_failure() {
        let mut link = WriteLink::new(BusFault { ber: 0.2 }, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut failures = 0;
        for _ in 0..50 {
            if link.send(&[0u8; 64], &mut rng, |_| {}) == TransmitOutcome::Failed {
                failures += 1;
            }
        }
        assert!(failures > 25, "got {failures}");
    }

    #[test]
    fn end_to_end_sum_write_over_faulty_bus() {
        use crate::{ChipkillConfig, ChipkillMemory};
        let mut rng = StdRng::seed_from_u64(4);
        let mut mem = ChipkillMemory::new(32, ChipkillConfig::default());
        mem.write_block(5, &[0x11; 64]).unwrap();
        let mut link = WriteLink::new(BusFault { ber: 5e-4 }, 8);
        // new = 0x22…; sum = old ^ new.
        let sum = [0x11u8 ^ 0x22u8; 64];
        for _ in 0..50 {
            // Repeated idempotent sends of alternating sums.
            let mut delivered = None;
            let out = link.send(&sum, &mut rng, |w| delivered = Some(*w));
            assert_ne!(out, TransmitOutcome::Failed);
            mem.write_block_sum(5, &delivered.unwrap()).unwrap();
        }
        // 50 XORs of the same sum = identity ⊕ … (even count) → back to
        // the original value.
        assert_eq!(mem.read_block(5).unwrap().data, [0x11; 64]);
        assert!(mem.verify_consistent());
    }

    #[test]
    fn link_protected_layer_delivers_and_counts_retries() {
        use crate::{ChipkillConfig, ChipkillMemory};
        let mem = ChipkillMemory::new(32, ChipkillConfig::default());
        let mut dev = LinkProtected::over(mem, BusFault { ber: 1e-3 }, 16);
        let mut ctx = AccessContext::new(11);
        for i in 0..200u64 {
            let addr = i % 32;
            dev.access(
                Access::Write {
                    addr,
                    data: [i as u8; 64],
                },
                &mut ctx,
            )
            .unwrap();
        }
        for addr in 0..32u64 {
            // Last i < 200 with i % 32 == addr.
            let last = addr + 32 * ((199 - addr) / 32);
            let want = [last as u8; 64];
            match dev.access(Access::Read(addr), &mut ctx).unwrap() {
                AccessOutcome::Read(out) => assert_eq!(out.data, want, "block {addr}"),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let st = ctx.layer(LayerId::Link).unwrap();
        assert_eq!(st.writes, 200);
        assert!(st.retransmissions > 0, "1e-3 BER must force resends");
        assert_eq!(st.retransmissions, dev.link().retransmissions());
        assert_eq!(st.link_failures, 0);
    }

    #[test]
    fn hopeless_link_fails_the_write_without_storing() {
        use crate::{ChipkillConfig, ChipkillMemory};
        let mut mem = ChipkillMemory::new(32, ChipkillConfig::default());
        mem.write_block(3, &[0x77; 64]).unwrap();
        let mut dev = LinkProtected::over(mem, BusFault { ber: 0.2 }, 1);
        let mut ctx = AccessContext::new(13);
        let mut failures = 0;
        for _ in 0..30 {
            if dev.access(
                Access::Write {
                    addr: 3,
                    data: [0xFF; 64],
                },
                &mut ctx,
            ) == Err(CoreError::LinkFailed)
            {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(ctx.layer(LayerId::Link).unwrap().link_failures, failures);
    }
}
