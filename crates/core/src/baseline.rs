//! The §III-A comparison baseline: per-block 14-bit-EC BCH, bit-error
//! protection only.
//!
//! Every 64 B block carries its own 140-bit BCH code (~28% storage, same
//! as the proposal's 27%), correcting up to 14 random bit errors — enough
//! for RBER 10⁻³ — but a failed chip contributes up to 64 erroneous bits
//! per block, far beyond the code, so chip failures are fatal. The
//! proposal's headline claim is adding chip failure protection over this
//! baseline at no storage cost and ~2% performance cost.

use pmck_bch::{BchCode, BitPoly};
use pmck_nvram::{BitErrorInjector, ChipFailureKind, FailedChip};
use pmck_rt::rng::Rng;

use crate::engine::CoreError;

/// How a baseline read was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineReadOutcome {
    /// The block contents.
    pub data: [u8; 64],
    /// Bit errors corrected by the per-block BCH.
    pub bits_corrected: usize,
}

/// A rank protected only by per-block 14-bit-EC BCH (no parity chip).
#[derive(Debug, Clone)]
pub struct BaselineMemory {
    data: Vec<u8>,  // 64 B per block
    codes: Vec<u8>, // 18 B (140 bits rounded up) per block
    num_blocks: u64,
    bch: BchCode,
    code_bytes: usize,
    failed_chip: Option<FailedChip>,
}

impl BaselineMemory {
    /// A zero-initialized baseline rank of `num_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0`.
    pub fn new(num_blocks: u64) -> Self {
        assert!(num_blocks > 0, "capacity must be nonzero");
        let bch = BchCode::per_block_baseline();
        let code_bytes = bch.parity_bits().div_ceil(8);
        BaselineMemory {
            data: vec![0; num_blocks as usize * 64],
            codes: vec![0; num_blocks as usize * code_bytes],
            num_blocks,
            bch,
            code_bytes,
            failed_chip: None,
        }
    }

    /// Capacity in blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Storage overhead of the code bits (140/512 ≈ 27.3%).
    pub fn storage_overhead(&self) -> f64 {
        self.bch.storage_overhead()
    }

    /// Writes a block and its code.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`].
    pub fn write_block(&mut self, addr: u64, new: &[u8; 64]) -> Result<(), CoreError> {
        if addr >= self.num_blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let a = addr as usize;
        self.data[a * 64..(a + 1) * 64].copy_from_slice(new);
        let mut code = self.bch.parity(&BitPoly::from_bytes(new)).to_bytes();
        code.resize(self.code_bytes, 0);
        self.codes[a * self.code_bytes..(a + 1) * self.code_bytes].copy_from_slice(&code);
        Ok(())
    }

    /// Reads a block, correcting up to 14 bit errors.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfRange`] / [`CoreError::Uncorrectable`].
    pub fn read_block(&mut self, addr: u64) -> Result<BaselineReadOutcome, CoreError> {
        if addr >= self.num_blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let a = addr as usize;
        let mut cw = BitPoly::zero(self.bch.len());
        let code = BitPoly::from_bytes(&self.codes[a * self.code_bytes..(a + 1) * self.code_bytes]);
        cw.splice(0, &code.slice(0, self.bch.parity_bits()));
        cw.splice(
            self.bch.parity_bits(),
            &BitPoly::from_bytes(&self.data[a * 64..(a + 1) * 64]),
        );
        match self.bch.decode(&mut cw) {
            Ok(out) => {
                let data: [u8; 64] = self
                    .bch
                    .extract_data_bytes(&cw)
                    .try_into()
                    .expect("64 bytes");
                Ok(BaselineReadOutcome {
                    data,
                    bits_corrected: out.num_corrected(),
                })
            }
            Err(_) => Err(CoreError::Uncorrectable),
        }
    }

    /// Injects random bit flips across data and code; returns the count.
    pub fn inject_bit_errors<R: Rng + ?Sized>(&mut self, rber: f64, rng: &mut R) -> usize {
        let inj = BitErrorInjector::new(rber);
        inj.corrupt(&mut self.data, rng).len() + inj.corrupt(&mut self.codes, rng).len()
    }

    /// Fails a chip. The baseline has the same 8-chip data layout, so a
    /// failed chip corrupts bytes `[chip·8, chip·8+8)` of every block —
    /// beyond any per-block BCH.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= 8`.
    pub fn fail_chip<R: Rng + ?Sized>(&mut self, chip: usize, kind: ChipFailureKind, rng: &mut R) {
        assert!(chip < 8, "baseline has 8 data chips");
        let failure = FailedChip::new(chip, kind);
        for a in 0..self.num_blocks as usize {
            let s = a * 64 + chip * 8;
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&self.data[s..s + 8]);
            failure.corrupt_output(&mut bytes, rng);
            self.data[s..s + 8].copy_from_slice(&bytes);
        }
        self.failed_chip = Some(failure);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    #[test]
    fn round_trip_and_overhead() {
        let mut m = BaselineMemory::new(16);
        let b = [0x42u8; 64];
        m.write_block(7, &b).unwrap();
        let out = m.read_block(7).unwrap();
        assert_eq!(out.data, b);
        assert_eq!(out.bits_corrected, 0);
        assert!((m.storage_overhead() - 140.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn corrects_random_errors_at_boot_rber() {
        let mut m = BaselineMemory::new(128);
        let mut rng = StdRng::seed_from_u64(2);
        let blocks: Vec<[u8; 64]> = (0..128u64)
            .map(|a| {
                let mut b = [0u8; 64];
                for (i, x) in b.iter_mut().enumerate() {
                    *x = (a as u8) ^ (i as u8).wrapping_mul(3);
                }
                m.write_block(a, &b).unwrap();
                b
            })
            .collect();
        m.inject_bit_errors(1e-3, &mut rng);
        let mut corrected = 0;
        for (a, b) in blocks.iter().enumerate() {
            let out = m.read_block(a as u64).unwrap();
            assert_eq!(&out.data, b, "block {a}");
            corrected += out.bits_corrected;
        }
        assert!(corrected > 0, "1e-3 across 128 blocks must hit something");
    }

    #[test]
    fn chip_failure_is_fatal_for_baseline() {
        let mut m = BaselineMemory::new(64);
        let mut rng = StdRng::seed_from_u64(3);
        for a in 0..64u64 {
            m.write_block(a, &[a as u8; 64]).unwrap();
        }
        m.fail_chip(2, ChipFailureKind::RandomGarbage, &mut rng);
        let failures = (0..64u64)
            .filter(|&a| {
                match m.read_block(a) {
                    // Miscorrection would be SDC; count only honest reads.
                    Ok(out) => out.data != [a as u8; 64],
                    Err(_) => true,
                }
            })
            .count();
        assert!(failures > 56, "nearly all blocks lost, got {failures}/64");
    }

    #[test]
    fn out_of_range() {
        let mut m = BaselineMemory::new(4);
        assert!(matches!(m.read_block(4), Err(CoreError::OutOfRange(4))));
        assert!(matches!(
            m.write_block(9, &[0; 64]),
            Err(CoreError::OutOfRange(9))
        ));
    }
}
