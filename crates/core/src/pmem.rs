//! The persistence domain: durable images, intent-logged commits, and
//! crash recovery for the protection stack.
//!
//! # Durability model (restage-at-flush)
//!
//! The engine layers never touch durable media during normal operation —
//! reads, writes, scrubs, repairs and fault injections all mutate the
//! *live* in-memory arrays only, exactly as before. Durability is
//! established at [`crate::Access::Flush`]: the base layer drains its EUR
//! registers (so durable code bits stay consistent with durable data),
//! re-stages its **entire** live image into the
//! [`pmck_pmem::PersistentMedia`] staging buffer, and drains. Staging is
//! compare-skipped per cache line, so only lines that actually changed
//! since the previous fence become dirty, and the fence's CRC-sealed
//! intent-log record covers exactly those lines.
//!
//! The invariant `staging == live image` therefore holds *by
//! construction* after every flush; there is no per-mutation-site mirror
//! to keep in sync. Two consequences worth knowing:
//!
//! * A fault injected after the last flush exists only in the live
//!   arrays; a power cut discards it. Campaigns that want a fault to
//!   survive a crash must flush after injecting — which is also the
//!   physically honest model (the scar *is* in the NVRAM cells; what the
//!   media model loses is the *staged view* of them, so the campaign
//!   flushes to line the two up).
//! * [`crate::Access::PowerCut`] re-stages once more purely to *count*
//!   the lines that would have been lost, then drops all volatile media
//!   state; [`crate::Access::Recover`] replays the log and rebuilds the
//!   live arrays wholesale from the durable image.
//!
//! # Media layout
//!
//! One [`PmemDomain`] owns the media for a whole rank and maps both
//! layouts onto it ([`RegionMap`]): region A holds the nine chips' data
//! and VLEW-code arrays, region B holds the §V-E re-striped image, and a
//! single 64 B metadata line (magic, version, layout state, detected
//! failed chip, Start-Gap position, CRC) records which region is live.
//! The §V-E re-stripe stages region B *and* the flipped metadata line in
//! one fence, so the layout flip is crash-atomic: recovery lands on
//! whole-old or whole-new, never a mix.

use pmck_pmem::{crc32, FenceReport, PersistentMedia, PmemConfig, ReplayOutcome};

use crate::device::{Access, AccessContext, AccessOutcome, LayerId, RecoveryReport};
use crate::engine::{ChipkillMemory, CoreError, RecoveryError, RecoveryFailure};
use crate::layout::{ChipkillLayout, ProtectionTier};
use crate::rank::EurModel;
use crate::restripe::{RestripeState, Restripeable, RestripedMemory, BLOCKS_PER_GROUP};

const META_MAGIC: u64 = 0x504d_434b_4d45_5441; // "PMCKMETA"
const META_VERSION: u64 = 1;
const META_LEN: usize = 64;
/// `failed_chip` encoding for "none detected".
const META_NO_CHIP: u64 = u64::MAX;

/// Byte offsets of every durable object on the media.
///
/// Regions are aligned to the flush-line size so one cache line never
/// spans two objects (compare-skip staging then dirties lines of at most
/// one region per fence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RegionMap {
    chips: usize,
    line_bytes: usize,
    chip_data_stride: usize,
    chip_code_stride: usize,
    chip_code_base: usize,
    b_data_off: usize,
    b_data_len: usize,
    b_code_off: usize,
    meta_off: usize,
    total_len: usize,
}

impl RegionMap {
    fn new(layout: &ChipkillLayout, stripes: usize, num_blocks: u64, line_bytes: usize) -> Self {
        let align = |x: usize| x.div_ceil(line_bytes) * line_bytes;
        let chips = layout.total_chips();
        let chip_data_stride = align(stripes * layout.vlew_data_bytes);
        let chip_code_stride = align(stripes * layout.vlew_code_bytes);
        let chip_code_base = chips * chip_data_stride;
        let b_data_off = chip_code_base + chips * chip_code_stride;
        let b_data_len = num_blocks as usize * layout.block_bytes;
        let b_code_off = b_data_off + align(b_data_len);
        let groups = num_blocks as usize / BLOCKS_PER_GROUP;
        let meta_off = b_code_off + align(groups * 33);
        RegionMap {
            chips,
            line_bytes,
            chip_data_stride,
            chip_code_stride,
            chip_code_base,
            b_data_off,
            b_data_len,
            b_code_off,
            meta_off,
            total_len: meta_off + align(META_LEN),
        }
    }

    pub(crate) fn chip_data(&self, chip: usize) -> usize {
        debug_assert!(chip < self.chips);
        chip * self.chip_data_stride
    }

    pub(crate) fn chip_code(&self, chip: usize) -> usize {
        debug_assert!(chip < self.chips);
        self.chip_code_base + chip * self.chip_code_stride
    }

    pub(crate) fn b_data(&self) -> usize {
        self.b_data_off
    }

    pub(crate) fn b_code(&self) -> usize {
        self.b_code_off
    }

    pub(crate) fn b_data_len(&self) -> usize {
        self.b_data_len
    }

    pub(crate) fn meta(&self) -> usize {
        self.meta_off
    }

    pub(crate) fn total_len(&self) -> usize {
        self.total_len
    }
}

/// Decoded contents of the durable metadata line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MetaLine {
    /// Which layout the durable image is in: region A (chipkill) when
    /// `false`, region B (§V-E re-striped) when `true`.
    pub restriped: bool,
    /// The chip failure detected at the time of the fence (ground-truth
    /// injected failures are volatile campaign bookkeeping and are not
    /// persisted).
    pub failed_chip: Option<usize>,
    /// Start-Gap gap position at the time of the fence.
    pub wear_gap: u64,
    /// Start-Gap start position at the time of the fence.
    pub wear_start: u64,
    /// Protection tier of the durable chipkill image (word 6; `Paper`
    /// encodes as 0, so pre-tier meta lines — whose word 6 was
    /// reserved-zero — decode as the paper tier).
    pub tier: ProtectionTier,
}

impl MetaLine {
    fn encode(&self) -> [u8; META_LEN] {
        let mut line = [0u8; META_LEN];
        let words = [
            META_MAGIC,
            META_VERSION,
            self.restriped as u64,
            self.failed_chip.map_or(META_NO_CHIP, |c| c as u64),
            self.wear_gap,
            self.wear_start,
            self.tier.tag(),
        ];
        for (i, w) in words.iter().enumerate() {
            line[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&line[..56]) as u64;
        line[56..64].copy_from_slice(&crc.to_le_bytes());
        line
    }

    fn decode(line: &[u8], chips: usize) -> Result<Self, CoreError> {
        let bad = || CoreError::recovery(RecoveryFailure::CrcMismatch);
        let word = |i: usize| u64::from_le_bytes(line[i * 8..(i + 1) * 8].try_into().unwrap());
        if line.len() != META_LEN || word(7) != crc32(&line[..56]) as u64 {
            return Err(bad());
        }
        if word(0) != META_MAGIC || word(1) != META_VERSION {
            return Err(bad());
        }
        let restriped = match word(2) {
            0 => false,
            1 => true,
            _ => return Err(bad()),
        };
        let failed_chip = match word(3) {
            META_NO_CHIP => None,
            c if (c as usize) < chips => Some(c as usize),
            _ => return Err(bad()),
        };
        let tier = ProtectionTier::from_tag(word(6)).ok_or_else(bad)?;
        Ok(MetaLine {
            restriped,
            failed_chip,
            wear_gap: word(4),
            wear_start: word(5),
            tier,
        })
    }
}

/// A rank's persistence domain: the durable media plus the policy that
/// maps the live protection stack onto it. Installed on the base layer
/// by [`crate::StackBuilder::persistent`]; moved across the §V-E layout
/// transition. See the module docs for the durability model.
#[derive(Debug, Clone)]
pub struct PmemDomain {
    pub(crate) media: PersistentMedia,
    pub(crate) map: RegionMap,
    wear_gap: u64,
    wear_start: u64,
}

impl PmemDomain {
    /// Sizes the media for a rank's geometry (both layouts plus the
    /// metadata line).
    pub(crate) fn for_rank(
        layout: &ChipkillLayout,
        stripes: usize,
        num_blocks: u64,
        cfg: PmemConfig,
    ) -> Self {
        let map = RegionMap::new(layout, stripes, num_blocks, cfg.line_bytes);
        PmemDomain {
            media: PersistentMedia::new(map.total_len(), cfg),
            map,
            wear_gap: 0,
            wear_start: 0,
        }
    }

    /// The underlying media (fuse control, scars, raw state).
    pub fn media(&self) -> &PersistentMedia {
        &self.media
    }

    /// Mutable access to the underlying media.
    pub fn media_mut(&mut self) -> &mut PersistentMedia {
        &mut self.media
    }

    /// Current fence epoch.
    pub fn epoch(&self) -> u64 {
        self.media.epoch()
    }

    /// Cumulative media counters.
    pub fn media_stats(&self) -> &pmck_pmem::MediaStats {
        self.media.stats()
    }

    /// Arms the power-cut fuse: the next `steps` durable chunk writes
    /// succeed, then the media silently dies.
    pub fn arm_fuse(&mut self, steps: u64) {
        self.media.arm_fuse(steps);
    }

    /// Removes an armed fuse without cutting power.
    pub fn disarm_fuse(&mut self) {
        self.media.disarm_fuse();
    }

    /// Durable chunk writes attempted so far (the crash campaign's
    /// cut-point space).
    pub fn steps_taken(&self) -> u64 {
        self.media.steps_taken()
    }

    /// Whether an armed fuse has burned out.
    pub fn is_dead(&self) -> bool {
        self.media.is_dead()
    }

    /// Records the wear-levelling position to persist with the next
    /// fence (called by [`crate::WearLevelled`] on every flush).
    pub(crate) fn set_wear(&mut self, gap: u64, start: u64) {
        self.wear_gap = gap;
        self.wear_start = start;
    }

    /// The wear-levelling position restored by the last recovery.
    pub(crate) fn wear(&self) -> (u64, u64) {
        (self.wear_gap, self.wear_start)
    }

    /// Stages the metadata line for the given layout state.
    pub(crate) fn stage_meta(
        &mut self,
        restriped: bool,
        failed_chip: Option<usize>,
        tier: ProtectionTier,
    ) {
        let line = MetaLine {
            restriped,
            failed_chip,
            wear_gap: self.wear_gap,
            wear_start: self.wear_start,
            tier,
        }
        .encode();
        self.media.stage(self.map.meta(), &line);
    }

    /// Replays the intent log after a power cut, restoring `staging` to
    /// the durable post-replay image.
    ///
    /// # Errors
    ///
    /// [`CoreError::Recovery`] wrapping the media-level cause when the
    /// log is structurally corrupt (a torn record, by contrast, is
    /// silently ignored — pre-fence state is a valid recovery point).
    pub(crate) fn replay(&mut self) -> Result<ReplayOutcome, CoreError> {
        self.media.recover().map_err(|e| {
            let kind = match e {
                pmck_pmem::MediaError::UnsealedRecord { .. } => RecoveryFailure::UnsealedRecord,
                pmck_pmem::MediaError::TornEntry { .. } => RecoveryFailure::TornBlock,
            };
            CoreError::Recovery(RecoveryError::with_source(kind, e))
        })
    }

    /// Decodes the metadata line from the recovered image and refreshes
    /// the wear-levelling fields from it.
    ///
    /// # Errors
    ///
    /// [`CoreError::Recovery`] with [`RecoveryFailure::CrcMismatch`] if
    /// the line fails its checks.
    pub(crate) fn decode_meta(&mut self) -> Result<MetaLine, CoreError> {
        let off = self.map.meta();
        let meta = MetaLine::decode(&self.media.staging()[off..off + META_LEN], self.map.chips)?;
        self.wear_gap = meta.wear_gap;
        self.wear_start = meta.wear_start;
        Ok(meta)
    }
}

/// Drains the media and folds the fence into the stack's pmem counters.
fn drain_and_record(media: &mut PersistentMedia, ctx: &mut AccessContext) -> FenceReport {
    let torn_before = media.stats().torn_lines;
    let report = media.drain();
    let st = ctx.layer_mut(LayerId::Pmem);
    st.flushes += 1;
    st.fences += 1;
    st.lines_flushed += report.lines;
    st.log_bytes += report.log_bytes;
    if report.log_bytes > 0 {
        st.log_records += 1;
    }
    st.torn_lines += media.stats().torn_lines - torn_before;
    report
}

fn recovery_outcome(outcome: ReplayOutcome, restriped: bool) -> AccessOutcome {
    AccessOutcome::Recovered(RecoveryReport {
        records_replayed: outcome.records_replayed,
        lines_redone: outcome.lines_redone,
        restriped,
    })
}

impl ChipkillMemory {
    /// Re-stages the whole live image (all chip arrays plus metadata)
    /// into the media; compare-skip keeps unchanged lines clean.
    pub(crate) fn stage_image(&mut self) {
        let tier = self.config().tier;
        let failed = self.known_failed;
        let Some(domain) = self.domain.as_mut() else {
            return;
        };
        for (c, chip) in self.chips.iter().enumerate() {
            domain.media.stage(domain.map.chip_data(c), &chip.data);
            domain.media.stage(domain.map.chip_code(c), &chip.code);
        }
        domain.stage_meta(false, failed, tier);
    }

    /// Rebuilds the live arrays wholesale from the recovered image. The
    /// EUR registerfile is volatile and comes back empty; the detected
    /// failure is restored from the metadata line (ground-truth injected
    /// failures and disabled-block sets are volatile campaign
    /// bookkeeping and survive untouched).
    pub(crate) fn restore_from_image(&mut self, meta: &MetaLine) {
        let Some(domain) = self.domain.as_ref() else {
            return;
        };
        let staging = domain.media.staging();
        for (c, chip) in self.chips.iter_mut().enumerate() {
            let (off, len) = (domain.map.chip_data(c), chip.data.len());
            chip.data.copy_from_slice(&staging[off..off + len]);
            let (off, len) = (domain.map.chip_code(c), chip.code.len());
            chip.code.copy_from_slice(&staging[off..off + len]);
        }
        self.eur = EurModel::default();
        self.known_failed = meta.failed_chip;
    }

    pub(crate) fn handle_flush(
        &mut self,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        if self.domain.is_none() {
            return Ok(AccessOutcome::Flushed { lines: 0 });
        }
        // Pending EUR deltas must drain first so the durable code
        // arrays are consistent with the durable data.
        self.flush_eur();
        self.stage_image();
        let domain = self.domain.as_mut().expect("domain checked above");
        let report = drain_and_record(&mut domain.media, ctx);
        Ok(AccessOutcome::Flushed {
            lines: report.lines,
        })
    }

    pub(crate) fn handle_power_cut(&mut self) -> Result<AccessOutcome, CoreError> {
        if self.domain.is_none() {
            return Ok(AccessOutcome::PowerLost { lost_lines: 0 });
        }
        // Stage once more purely to count what dies with the power.
        self.stage_image();
        let domain = self.domain.as_mut().expect("domain checked above");
        Ok(AccessOutcome::PowerLost {
            lost_lines: domain.media.power_cut(),
        })
    }

    pub(crate) fn handle_recover(
        &mut self,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        if self.domain.is_none() {
            return Ok(AccessOutcome::Recovered(RecoveryReport::default()));
        }
        let domain = self.domain.as_mut().expect("domain checked above");
        let outcome = domain.replay()?;
        let meta = domain.decode_meta()?;
        debug_assert!(
            !meta.restriped,
            "a bare chipkill rank cannot hold a re-striped durable image"
        );
        self.restore_from_image(&meta);
        let st = ctx.layer_mut(LayerId::Pmem);
        st.recoveries += 1;
        st.lines_redone += outcome.lines_redone;
        Ok(recovery_outcome(outcome, meta.restriped))
    }
}

impl RestripedMemory {
    /// Re-stages the whole re-striped image (region B plus metadata).
    pub(crate) fn stage_image(&mut self) {
        let Some(domain) = self.domain.as_mut() else {
            return;
        };
        domain.media.stage(domain.map.b_data(), &self.data);
        domain.media.stage(domain.map.b_code(), &self.codes);
        domain.stage_meta(true, None, ProtectionTier::Paper);
    }

    /// Rebuilds the live arrays from the recovered region B image.
    pub(crate) fn restore_from_image(&mut self) {
        let Some(domain) = self.domain.as_ref() else {
            return;
        };
        let staging = domain.media.staging();
        let (off, len) = (domain.map.b_data(), self.data.len());
        self.data.copy_from_slice(&staging[off..off + len]);
        let (off, len) = (domain.map.b_code(), self.codes.len());
        self.codes.copy_from_slice(&staging[off..off + len]);
    }

    /// Rebuilds a re-striped layout entirely from a recovered durable
    /// image — recovery's path when the crash landed *after* the §V-E
    /// layout flip committed.
    pub(crate) fn from_pmem_image(domain: PmemDomain) -> Self {
        let num_blocks = (domain.map.b_data_len() / 64) as u64;
        let groups = num_blocks as usize / BLOCKS_PER_GROUP;
        let mut out = RestripedMemory {
            data: vec![0u8; num_blocks as usize * 64],
            codes: vec![0u8; groups * 33],
            num_blocks,
            vlew: pmck_bch::BchCode::vlew(),
            bits_corrected: 0,
            domain: Some(domain),
        };
        out.restore_from_image();
        out
    }

    /// Commits the freshly built layout through the intent log: region B
    /// plus the flipped metadata line fence as one transaction (the §V-E
    /// "map flip"). Without a domain the log is a no-op and the
    /// in-memory swap is the whole commit — same code path either way.
    pub(crate) fn commit_restripe(&mut self, ctx: &mut AccessContext) {
        if self.domain.is_none() {
            return;
        }
        self.stage_image();
        let domain = self.domain.as_mut().expect("domain checked above");
        drain_and_record(&mut domain.media, ctx);
    }

    pub(crate) fn handle_flush(
        &mut self,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        if self.domain.is_none() {
            return Ok(AccessOutcome::Flushed { lines: 0 });
        }
        self.stage_image();
        let domain = self.domain.as_mut().expect("domain checked above");
        let report = drain_and_record(&mut domain.media, ctx);
        Ok(AccessOutcome::Flushed {
            lines: report.lines,
        })
    }

    pub(crate) fn handle_power_cut(&mut self) -> Result<AccessOutcome, CoreError> {
        if self.domain.is_none() {
            return Ok(AccessOutcome::PowerLost { lost_lines: 0 });
        }
        self.stage_image();
        let domain = self.domain.as_mut().expect("domain checked above");
        Ok(AccessOutcome::PowerLost {
            lost_lines: domain.media.power_cut(),
        })
    }

    pub(crate) fn handle_recover(
        &mut self,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        if self.domain.is_none() {
            return Ok(AccessOutcome::Recovered(RecoveryReport::default()));
        }
        let domain = self.domain.as_mut().expect("domain checked above");
        let outcome = domain.replay()?;
        let meta = domain.decode_meta()?;
        debug_assert!(
            meta.restriped,
            "a bare re-striped layout cannot hold a chipkill durable image"
        );
        self.restore_from_image();
        let st = ctx.layer_mut(LayerId::Pmem);
        st.recoveries += 1;
        st.lines_redone += outcome.lines_redone;
        Ok(recovery_outcome(outcome, meta.restriped))
    }
}

impl Restripeable {
    /// Recovery across the §V-E layout flip: the durable metadata line —
    /// not the in-memory state — decides which layout comes back. A
    /// crash cut *before* the flip's fence recovers the chipkill layout
    /// from region A (even if the live state had already transitioned);
    /// a cut *after* recovers the re-striped layout from region B.
    pub(crate) fn recover_across(
        &mut self,
        ctx: &mut AccessContext,
    ) -> Result<AccessOutcome, CoreError> {
        if self.active_mut().pmem_domain().is_none() {
            // Volatile stack: forward the no-op to the active layout.
            return self.active_mut().access(Access::Recover, ctx);
        }
        let result = match std::mem::replace(&mut self.state, RestripeState::Poisoned) {
            RestripeState::Chipkill(mut rank) => {
                let mut domain = rank.take_domain().expect("domain checked above");
                match domain
                    .replay()
                    .and_then(|o| domain.decode_meta().map(|m| (o, m)))
                {
                    Err(e) => {
                        rank.set_domain(domain);
                        self.state = RestripeState::Chipkill(rank);
                        Err(e)
                    }
                    Ok((outcome, meta)) => {
                        if meta.restriped {
                            // The flip committed before the crash.
                            let stats = *rank.stats();
                            self.state =
                                RestripeState::Restriped(RestripedMemory::from_pmem_image(domain));
                            self.final_stats = Some(stats);
                            ctx.trace(LayerId::Restripeable, || "recover -> restriped".into());
                        } else {
                            rank.set_domain(domain);
                            rank.restore_from_image(&meta);
                            self.state = RestripeState::Chipkill(rank);
                        }
                        Ok((outcome, meta.restriped))
                    }
                }
            }
            RestripeState::Restriped(mut mem) => {
                let mut domain = mem.domain.take().expect("domain checked above");
                match domain
                    .replay()
                    .and_then(|o| domain.decode_meta().map(|m| (o, m)))
                {
                    Err(e) => {
                        mem.domain = Some(domain);
                        self.state = RestripeState::Restriped(mem);
                        Err(e)
                    }
                    Ok((outcome, meta)) => {
                        if meta.restriped {
                            mem.domain = Some(domain);
                            mem.restore_from_image();
                            self.state = RestripeState::Restriped(mem);
                        } else {
                            // The crash beat the flip's fence: the
                            // durable truth is still the chipkill
                            // layout in region A.
                            let mut rank = ChipkillMemory::new(self.physical_blocks, self.cfg);
                            rank.set_domain(domain);
                            rank.restore_from_image(&meta);
                            self.state = RestripeState::Chipkill(rank);
                            self.final_stats = None;
                            ctx.trace(LayerId::Restripeable, || "recover -> chipkill".into());
                        }
                        Ok((outcome, meta.restriped))
                    }
                }
            }
            RestripeState::Poisoned => unreachable!("restripe state poisoned"),
        };
        match result {
            Ok((outcome, restriped)) => {
                let st = ctx.layer_mut(LayerId::Pmem);
                st.recoveries += 1;
                st.lines_redone += outcome.lines_redone;
                Ok(recovery_outcome(outcome, restriped))
            }
            Err(e) => {
                ctx.layer_mut(LayerId::Restripeable).errors += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipkillConfig;
    use crate::device::BlockDevice;
    use pmck_nvram::{ChipFailureKind, FaultEvent, FaultKind};

    fn persistent_rank(blocks: u64) -> ChipkillMemory {
        let mut rank = ChipkillMemory::new(blocks, ChipkillConfig::default());
        let domain = PmemDomain::for_rank(
            &rank.config().layout,
            rank.stripes(),
            rank.num_blocks(),
            PmemConfig::default(),
        );
        rank.set_domain(domain);
        rank
    }

    fn block(tag: u8) -> [u8; 64] {
        let mut b = [0u8; 64];
        for (i, x) in b.iter_mut().enumerate() {
            *x = tag.wrapping_mul(31).wrapping_add(i as u8);
        }
        b
    }

    #[test]
    fn region_map_objects_do_not_overlap() {
        let layout = ChipkillLayout::default();
        let map = RegionMap::new(&layout, 2, 64, 64);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for c in 0..9 {
            spans.push((map.chip_data(c), 2 * layout.vlew_data_bytes));
            spans.push((map.chip_code(c), 2 * layout.vlew_code_bytes));
        }
        spans.push((map.b_data(), map.b_data_len()));
        spans.push((map.b_code(), 16 * 33));
        spans.push((map.meta(), META_LEN));
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
            assert_eq!(w[1].0 % 64, 0, "offset {} not line-aligned", w[1].0);
        }
        let (off, len) = *spans.last().unwrap();
        assert!(off + len <= map.total_len());
    }

    #[test]
    fn meta_line_round_trip_and_rejection() {
        let meta = MetaLine {
            restriped: true,
            failed_chip: Some(3),
            wear_gap: 17,
            wear_start: 5,
            tier: ProtectionTier::Dense,
        };
        let line = meta.encode();
        assert_eq!(MetaLine::decode(&line, 9).unwrap(), meta);
        // Any flipped byte fails the CRC.
        let mut torn = line;
        torn[20] ^= 0x40;
        let err = MetaLine::decode(&torn, 9).unwrap_err();
        match err {
            CoreError::Recovery(e) => assert_eq!(e.kind(), RecoveryFailure::CrcMismatch),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn flush_cut_recover_round_trips_the_rank() {
        let mut rank = persistent_rank(64);
        let mut ctx = AccessContext::new(1);
        for a in 0..64u64 {
            rank.write_block(a, &block(a as u8)).unwrap();
        }
        rank.handle_flush(&mut ctx).unwrap();

        // Overwrite after the flush, then lose power: the overwrites
        // (and their pending EUR deltas) must vanish.
        for a in 0..8u64 {
            rank.write_block(a, &[0xFF; 64]).unwrap();
        }
        match rank.handle_power_cut().unwrap() {
            AccessOutcome::PowerLost { lost_lines } => assert!(lost_lines > 0),
            other => panic!("unexpected outcome {other:?}"),
        }
        rank.handle_recover(&mut ctx).unwrap();
        for a in 0..64u64 {
            assert_eq!(
                rank.read_block(a).unwrap().data,
                block(a as u8),
                "block {a}"
            );
        }
        assert!(rank.verify_consistent(), "codes must match data");
    }

    #[test]
    fn unflushed_fault_is_healed_by_recovery() {
        let mut rank = persistent_rank(32);
        let mut ctx = AccessContext::new(2);
        for a in 0..32u64 {
            rank.write_block(a, &block(a as u8)).unwrap();
        }
        rank.handle_flush(&mut ctx).unwrap();
        rank.inject_bit_errors(1e-3, ctx.rng());
        rank.handle_power_cut().unwrap();
        rank.handle_recover(&mut ctx).unwrap();
        assert!(
            rank.verify_consistent(),
            "an unflushed scar dies with the power"
        );
    }

    #[test]
    fn restripe_flip_is_crash_atomic_across_every_cut_point() {
        // Reference run: learn the flip's step budget and both images.
        let build = || {
            let mut r = Restripeable::new(persistent_rank(32));
            let mut ctx = AccessContext::new(3);
            for a in 0..32u64 {
                r.access(
                    Access::Write {
                        addr: a,
                        data: block(a as u8),
                    },
                    &mut ctx,
                )
                .unwrap();
            }
            let ev = FaultEvent {
                at_cycle: 0,
                kind: FaultKind::ChipKill {
                    chip: 2,
                    kind: ChipFailureKind::RandomGarbage,
                },
            };
            r.access(Access::Fault(ev), &mut ctx).unwrap();
            r.access(Access::Flush, &mut ctx).unwrap();
            (r, ctx)
        };
        let read_all = |r: &mut Restripeable, ctx: &mut AccessContext| -> Vec<[u8; 64]> {
            (0..32u64)
                .map(|a| match r.access(Access::Read(a), ctx).unwrap() {
                    AccessOutcome::Read(out) => out.data,
                    other => panic!("unexpected outcome {other:?}"),
                })
                .collect()
        };

        let (mut reference, mut ctx) = build();
        let pre = read_all(&mut reference, &mut ctx);
        let steps_before = reference.pmem_domain().unwrap().steps_taken();
        reference.access(Access::Restripe, &mut ctx).unwrap();
        let steps = reference.pmem_domain().unwrap().steps_taken() - steps_before;
        let post = read_all(&mut reference, &mut ctx);
        assert_eq!(pre, post, "restripe preserves contents");
        assert!(steps > 0, "the flip must persist something");

        // Sample the cut space (every point is covered by the harness
        // campaign; here a stride keeps the unit test fast).
        let mut seen_chipkill = false;
        let mut seen_restriped = false;
        for cut in (0..=steps).step_by((steps as usize / 16).max(1)) {
            let (mut r, mut ctx) = build();
            r.pmem_domain().unwrap().arm_fuse(cut);
            r.access(Access::Restripe, &mut ctx).unwrap();
            r.access(Access::PowerCut, &mut ctx).unwrap();
            match r.access(Access::Recover, &mut ctx).unwrap() {
                AccessOutcome::Recovered(rep) => {
                    seen_chipkill |= !rep.restriped;
                    seen_restriped |= rep.restriped;
                    assert_eq!(rep.restriped, r.is_restriped());
                }
                other => panic!("unexpected outcome {other:?}"),
            }
            assert_eq!(read_all(&mut r, &mut ctx), pre, "cut {cut}");
        }
        assert!(seen_chipkill, "an early cut must recover the old layout");
        assert!(seen_restriped, "a late cut must recover the new layout");
    }
}
