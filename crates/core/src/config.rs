//! Engine configuration.

use pmck_bch::DecodePolicy;

use crate::layout::{ChipkillLayout, ProtectionTier};

/// Configuration of the chipkill-correct engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipkillConfig {
    /// The protection tier the rank runs at; resolves to one of the
    /// [`Layout`] implementations. `layout`/`threshold` must agree with
    /// it — use [`ChipkillConfig::for_tier`] to derive all three.
    pub tier: ProtectionTier,
    /// Rank/ECC geometry.
    pub layout: ChipkillLayout,
    /// Maximum RS corrections accepted at runtime before distrusting the
    /// result and falling back to VLEW decoding (paper §V-C: 2).
    pub threshold: usize,
    /// Whether VLEW code-bit updates coalesce in the per-chip ECC Update
    /// Registerfile (EUR, §V-D). Disabling models the no-coalescing
    /// ablation; functional results are identical either way.
    pub eur_enabled: bool,
    /// How far VLEW decoding reaches: `Bounded` stops at the designed
    /// radius `t`; `BeyondBound` additionally tries the unraveling list
    /// decoder at radius `t + 1` before declaring a word uncorrectable.
    pub decode_policy: DecodePolicy,
}

impl Default for ChipkillConfig {
    fn default() -> Self {
        ChipkillConfig {
            tier: ProtectionTier::Paper,
            layout: ChipkillLayout::default(),
            threshold: 2,
            eur_enabled: true,
            decode_policy: DecodePolicy::Bounded,
        }
    }
}

impl ChipkillConfig {
    /// The paper's configuration with a different acceptance threshold
    /// (for the threshold ablation of §V-C).
    pub fn with_threshold(threshold: usize) -> Self {
        ChipkillConfig {
            threshold,
            ..Self::default()
        }
    }

    /// The configuration for a protection tier: geometry and threshold
    /// both come from the tier's [`Layout`], everything else stays at
    /// the defaults.
    pub fn for_tier(tier: ProtectionTier) -> Self {
        let layout = tier.layout();
        ChipkillConfig {
            tier,
            layout: layout.geometry(),
            threshold: layout.rs_threshold(),
            ..Self::default()
        }
    }

    /// Whether the configured tier runs the VLEW boot tier.
    pub fn vlew_enabled(&self) -> bool {
        self.tier.layout().vlew_enabled()
    }

    /// Bonus blocks per stripe reclaimed from the code area (RS-only
    /// tier; 0 for VLEW-bearing tiers).
    pub fn bonus_blocks_per_stripe(&self) -> usize {
        self.tier.layout().bonus_blocks_per_stripe()
    }

    /// Total storage cost of the configured tier.
    pub fn total_storage_cost(&self) -> f64 {
        self.tier.layout().total_storage_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ChipkillConfig::default();
        assert_eq!(c.threshold, 2);
        assert!(c.eur_enabled);
        assert_eq!(c.decode_policy, DecodePolicy::Bounded);
        assert_eq!(c.layout.blocks_per_vlew(), 32);
    }

    #[test]
    fn threshold_override() {
        assert_eq!(ChipkillConfig::with_threshold(4).threshold, 4);
    }

    #[test]
    fn for_tier_derives_geometry_and_threshold_together() {
        let paper = ChipkillConfig::for_tier(ProtectionTier::Paper);
        assert_eq!(paper, ChipkillConfig::default());

        let rs_only = ChipkillConfig::for_tier(ProtectionTier::RsOnly);
        assert_eq!(rs_only.threshold, 4);
        assert!(!rs_only.vlew_enabled());
        assert_eq!(rs_only.bonus_blocks_per_stripe(), 4);

        let dense = ChipkillConfig::for_tier(ProtectionTier::Dense);
        assert_eq!(dense.layout.blocks_per_vlew(), 16);
        assert_eq!(dense.threshold, 2);
        assert!(dense.total_storage_cost() > paper.total_storage_cost());
    }
}
