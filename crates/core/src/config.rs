//! Engine configuration.

use pmck_bch::DecodePolicy;

use crate::layout::ChipkillLayout;

/// Configuration of the chipkill-correct engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipkillConfig {
    /// Rank/ECC geometry.
    pub layout: ChipkillLayout,
    /// Maximum RS corrections accepted at runtime before distrusting the
    /// result and falling back to VLEW decoding (paper §V-C: 2).
    pub threshold: usize,
    /// Whether VLEW code-bit updates coalesce in the per-chip ECC Update
    /// Registerfile (EUR, §V-D). Disabling models the no-coalescing
    /// ablation; functional results are identical either way.
    pub eur_enabled: bool,
    /// How far VLEW decoding reaches: `Bounded` stops at the designed
    /// radius `t`; `BeyondBound` additionally tries the unraveling list
    /// decoder at radius `t + 1` before declaring a word uncorrectable.
    pub decode_policy: DecodePolicy,
}

impl Default for ChipkillConfig {
    fn default() -> Self {
        ChipkillConfig {
            layout: ChipkillLayout::default(),
            threshold: 2,
            eur_enabled: true,
            decode_policy: DecodePolicy::Bounded,
        }
    }
}

impl ChipkillConfig {
    /// The paper's configuration with a different acceptance threshold
    /// (for the threshold ablation of §V-C).
    pub fn with_threshold(threshold: usize) -> Self {
        ChipkillConfig {
            threshold,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ChipkillConfig::default();
        assert_eq!(c.threshold, 2);
        assert!(c.eur_enabled);
        assert_eq!(c.decode_policy, DecodePolicy::Bounded);
        assert_eq!(c.layout.blocks_per_vlew(), 32);
    }

    #[test]
    fn threshold_override() {
        assert_eq!(ChipkillConfig::with_threshold(4).threshold, 4);
    }
}
