//! Decode-conformance battery for the rebuilt errorful path: boundary
//! weights around the correction radius, the unraveling beyond-bound
//! fallback, and crafted batch-edge corpus replay.
//!
//! The guarantees pinned here, per weight class:
//!
//! * `w ≤ t` — exact ground-truth recovery, always (bounded-distance
//!   decoding within the packing radius is unique).
//! * `w = t + 1`, bounded — the decoder may legally land on a *different*
//!   codeword within distance `t` (indistinguishable from a light error
//!   on that codeword), but it never leaves an invalid word behind:
//!   every accepted correction re-verifies as a codeword, every
//!   rejection leaves the word untouched.
//! * `w = t + 1`, beyond-bound, bounded-rejected — the unraveling list
//!   decoder recovers the exact ground truth or rejects; a unique
//!   radius-(t+1) candidate can only be the true pattern, so the
//!   measured miscorrection rate is zero.

use pmck_bch::{BchCode, BchError, BchScratch, BitPoly};
use pmck_harness::{diff_bch_batch, BitFlipBatchCase, BitFlipCase, Runner};
use pmck_rt::rng::{Rng, StdRng};

/// `encode_bytes(data)` plus the same word with `flips` applied.
fn clean_and_dirty(code: &BchCode, data: &[u8], flips: &[usize]) -> (BitPoly, BitPoly) {
    let clean = code.encode_bytes(data);
    let mut dirty = clean.clone();
    for &p in flips {
        dirty.flip(p);
    }
    (clean, dirty)
}

/// All strictly increasing `w`-subsets of `0..n`, passed to `visit`.
fn for_each_combination(n: usize, w: usize, visit: &mut impl FnMut(&[usize])) {
    let mut idx: Vec<usize> = (0..w).collect();
    if w > n {
        return;
    }
    loop {
        visit(&idx);
        // Advance the rightmost index that can still move.
        let mut i = w;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - w {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..w {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn nonzero_data(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(salt))
        .collect()
}

/// A deterministic non-trivial data word of exactly `data_bits` bits,
/// for small codes whose `k` is not byte-aligned.
fn nonzero_data_poly(code: &BchCode, salt: u64) -> BitPoly {
    let mut d = BitPoly::zero(code.data_bits());
    let mut x = salt | 1;
    for i in 0..code.data_bits() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if x >> 63 == 1 {
            d.flip(i);
        }
    }
    d
}

/// Exhaustive within-radius battery on (6, t=2, k=20) and (8, t=3, k=64):
/// every error pattern of weight 1..=t must come back as the exact flip
/// set, restoring the exact codeword.
#[test]
fn within_radius_weights_recover_ground_truth_exhaustively() {
    for (m, t, k) in [(6u32, 2usize, 20usize), (8, 3, 64)] {
        let code = BchCode::new(m, t, k).expect("valid parameters");
        let mut scratch = BchScratch::new(&code);
        let clean = code.encode(&nonzero_data_poly(&code, u64::from(m)));
        for w in 1..=t {
            // (8,3,64) weight 1 overlaps the (6,2,20) sweep in kind; keep
            // the battery exhaustive anyway — it is cheap in release.
            for_each_combination(code.len(), w, &mut |flips| {
                let mut word = clean.clone();
                for &p in flips {
                    word.flip(p);
                }
                let view = code
                    .decode_scratch(&mut word, &mut scratch)
                    .unwrap_or_else(|e| panic!("({m},{t},{k}) w={w} flips {flips:?}: {e:?}"));
                assert_eq!(view.corrected_bits(), flips, "exact flip set");
                assert!(!view.beyond_bound());
                assert_eq!(word, clean, "exact codeword restored");
            });
        }
    }
}

/// Exhaustive weight-(t+1) battery on (6, t=2, k=20), both policies.
#[test]
fn weight_t_plus_one_is_never_silently_corrupted() {
    let code = BchCode::new(6, 2, 20).expect("valid parameters");
    let t = code.t();
    let mut scratch = BchScratch::new(&code);
    let clean = code.encode(&nonzero_data_poly(&code, 0xA5));
    let mut bounded_rejects = 0usize;
    let mut rescued = 0usize;
    let mut list_rejects = 0usize;
    for_each_combination(code.len(), t + 1, &mut |flips| {
        let mut word = clean.clone();
        for &p in flips {
            word.flip(p);
        }
        let dirty = word.clone();
        // Bounded: a legal outcome is a valid codeword within t flips of
        // the received word (possibly the wrong one — information theory
        // allows it at t+1); an illegal outcome is an invalid word or a
        // modified word after a reject.
        match code.decode_scratch(&mut word, &mut scratch) {
            Ok(view) => {
                assert!(view.num_corrected() <= t);
                assert!(code.is_codeword(&word), "accepted word must re-verify");
            }
            Err(BchError::Uncorrectable) => {
                assert_eq!(word, dirty, "rejected word must be untouched");
                bounded_rejects += 1;
                // Beyond-bound on a bounded-rejected word: the unraveling
                // list decoder finds the exact pattern or rejects.
                let mut lw = dirty.clone();
                match code.decode_beyond_bound_scratch(&mut lw, &mut scratch) {
                    Ok(view) => {
                        assert!(view.beyond_bound());
                        assert_eq!(view.corrected_bits(), flips, "exact recovery only");
                        assert_eq!(lw, clean);
                        rescued += 1;
                    }
                    Err(BchError::Uncorrectable) => {
                        assert_eq!(lw, dirty);
                        list_rejects += 1;
                    }
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    });
    assert!(bounded_rejects > 0, "some t+1 patterns must reject");
    assert!(rescued > 0, "the list decoder must rescue some of them");
    // Exhaustively measured miscorrection rate of the fallback: zero.
    // (Every rescue above asserted exact ground truth.)
    assert_eq!(rescued + list_rejects, bounded_rejects);
}

/// Sampled boundary battery on the paper's full-size VLEW code at
/// weights t−1, t, and t+1.
#[test]
fn vlew_boundary_weights_sampled() {
    let code = BchCode::vlew();
    let t = code.t();
    let mut scratch = BchScratch::new(&code);
    let mut rng = StdRng::seed_from_u64(0x7E57);
    let gen_flips = |rng: &mut StdRng, w: usize| {
        let mut flips: Vec<usize> = Vec::with_capacity(w);
        while flips.len() < w {
            let p = rng.gen_range(0usize..code.len());
            if !flips.contains(&p) {
                flips.push(p);
            }
        }
        flips.sort_unstable();
        flips
    };
    // Within radius: exact recovery.
    for w in [t - 1, t] {
        for round in 0..40u64 {
            let data = nonzero_data(code.data_bits() / 8, (round as u8).wrapping_add(w as u8));
            let flips = gen_flips(&mut rng, w);
            let (clean, mut word) = clean_and_dirty(&code, &data, &flips);
            let view = code
                .decode_scratch(&mut word, &mut scratch)
                .expect("within radius");
            assert_eq!(view.corrected_bits(), &flips[..]);
            assert_eq!(word, clean);
        }
    }
    // t+1: bounded-rejected words are exactly recovered or rejected by
    // the fallback, never miscorrected.
    let mut rescued = 0usize;
    for round in 0..12u64 {
        let data = nonzero_data(code.data_bits() / 8, round as u8);
        let flips = gen_flips(&mut rng, t + 1);
        let (clean, dirty) = clean_and_dirty(&code, &data, &flips);
        let mut word = dirty.clone();
        if code.decode_scratch(&mut word, &mut scratch).is_ok() {
            continue; // legally resolved within t; covered above
        }
        let mut lw = dirty.clone();
        match code.decode_beyond_bound_scratch(&mut lw, &mut scratch) {
            Ok(view) => {
                assert_eq!(view.corrected_bits(), &flips[..]);
                assert_eq!(lw, clean);
                rescued += 1;
            }
            Err(BchError::Uncorrectable) => assert_eq!(lw, dirty),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(rescued > 0, "VLEW t+1 rescues must occur in the sample");
}

/// Batch edges and crafted corpus replay: the checked-in entries cover
/// the empty batch, a single word, a mixed clean/errorful/overweight
/// batch, and an all-errorful 9-word scrub window; fresh cases keep
/// sampling the same region. Every outcome is checked against the PGZ
/// reference by [`diff_bch_batch`].
#[test]
fn batch_edges_match_reference_with_corpus_replay() {
    let code = BchCode::new(8, 3, 64).expect("valid parameters");
    let mut scratch = BchScratch::new(&code);
    let report = Runner::new("bch:batch:edges").seed(0xBA7C).cases(400).run(
        |rng| {
            // Bias the size toward the edges: empty, single, and the
            // 9-word scrub-window shape a stripe decode produces.
            let n = match rng.gen_range(0u32..6) {
                0 => 0,
                1 => 1,
                2 => 9,
                _ => rng.gen_range(2usize..=9),
            };
            let words = (0..n)
                .map(|_| {
                    let mut data = vec![0u8; code.data_bits() / 8];
                    rng.fill_bytes(&mut data);
                    let w = rng.gen_range(0usize..=2 * code.t());
                    let mut flips: Vec<usize> = Vec::with_capacity(w);
                    while flips.len() < w {
                        let p = rng.gen_range(0usize..code.len());
                        if !flips.contains(&p) {
                            flips.push(p);
                        }
                    }
                    BitFlipCase { data, flips }
                })
                .collect();
            BitFlipBatchCase { words }
        },
        |case| diff_bch_batch(&code, &case.corrupted(&code), &mut scratch),
    );
    assert_eq!(report.generated, 400);
    assert!(
        report.corpus_replayed >= 4,
        "crafted batch-edge corpus entries must replay (got {})",
        report.corpus_replayed
    );
}

/// Beyond-bound crafted corpus replay on the VLEW code: the checked-in
/// t+1 entries (including the all-zero-data pattern the bounded decoder
/// provably rejects) must be exactly recovered or rejected untouched.
#[test]
fn beyond_bound_vlew_corpus_replays() {
    let code = BchCode::vlew();
    let t = code.t();
    let mut scratch = BchScratch::new(&code);
    let report = Runner::new("bch:beyond-bound:vlew")
        .seed(0xBB)
        .cases(4)
        .run(
            |rng| {
                let mut data = vec![0u8; code.data_bits() / 8];
                rng.fill_bytes(&mut data);
                let mut flips: Vec<usize> = Vec::with_capacity(t + 1);
                while flips.len() < t + 1 {
                    let p = rng.gen_range(0usize..code.len());
                    if !flips.contains(&p) {
                        flips.push(p);
                    }
                }
                flips.sort_unstable();
                BitFlipCase { data, flips }
            },
            |case| {
                let mut sorted = case.flips.clone();
                sorted.sort_unstable();
                let (clean, dirty) = clean_and_dirty(&code, &case.data, &sorted);
                let mut word = dirty.clone();
                match code.decode_beyond_bound_scratch(&mut word, &mut scratch) {
                    Ok(view) if view.beyond_bound() => {
                        if view.corrected_bits() != &sorted[..] || word != clean {
                            return Err("list decode diverged from ground truth".into());
                        }
                        Ok(())
                    }
                    Ok(view) => {
                        // Resolved within t: legal only if it reached a
                        // valid codeword.
                        if view.num_corrected() <= t && code.is_codeword(&word) {
                            Ok(())
                        } else {
                            Err("bounded resolution left an invalid word".into())
                        }
                    }
                    Err(BchError::Uncorrectable) => {
                        if word == dirty {
                            Ok(())
                        } else {
                            Err("rejected word was modified".into())
                        }
                    }
                    Err(e) => Err(format!("unexpected error {e:?}")),
                }
            },
        );
    assert_eq!(report.generated, 4);
    assert!(
        report.corpus_replayed >= 1,
        "crafted beyond-bound corpus entry must replay (got {})",
        report.corpus_replayed
    );
}

/// Measured miscorrection rate of the unraveling fallback at t+1 on
/// (8, t=3, k=64): over a seeded sample, every bounded-rejected word is
/// either exactly recovered or rejected — the rate of wrong corrections
/// is exactly zero, and rescues actually happen.
#[test]
fn beyond_bound_miscorrection_rate_is_zero() {
    let code = BchCode::new(8, 3, 64).expect("valid parameters");
    let t = code.t();
    let mut scratch = BchScratch::new(&code);
    let mut rng = StdRng::seed_from_u64(0x0F0F);
    let mut bounded_rejects = 0usize;
    let mut rescued = 0usize;
    let mut miscorrected = 0usize;
    for _ in 0..2_000 {
        let mut data = vec![0u8; code.data_bits() / 8];
        rng.fill_bytes(&mut data);
        let mut flips: Vec<usize> = Vec::with_capacity(t + 1);
        while flips.len() < t + 1 {
            let p = rng.gen_range(0usize..code.len());
            if !flips.contains(&p) {
                flips.push(p);
            }
        }
        flips.sort_unstable();
        let (clean, dirty) = clean_and_dirty(&code, &data, &flips);
        let mut word = dirty.clone();
        if code.decode_scratch(&mut word, &mut scratch).is_ok() {
            continue;
        }
        bounded_rejects += 1;
        let mut lw = dirty.clone();
        match code.decode_beyond_bound_scratch(&mut lw, &mut scratch) {
            Ok(_) if lw == clean => rescued += 1,
            Ok(_) => miscorrected += 1,
            Err(_) => {}
        }
    }
    assert!(bounded_rejects > 100, "sample must exercise the fallback");
    assert!(rescued > 0, "the fallback must rescue some words");
    assert_eq!(
        miscorrected, 0,
        "measured miscorrection rate must be zero ({rescued} rescues / {bounded_rejects} rejects)"
    );
}
