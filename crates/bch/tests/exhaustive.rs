//! Exhaustive differential test of the BCH decoder against brute-force
//! nearest-codeword search on the classic (15, 7) t=2 code: every one of
//! the 2^15 possible received words is checked against ground truth.

use pmck_bch::{BchCode, BitPoly};

fn word_from_u32(v: u32, len: usize) -> BitPoly {
    let mut p = BitPoly::zero(len);
    for i in 0..len {
        if v & (1 << i) != 0 {
            p.set(i, true);
        }
    }
    p
}

fn to_u32(p: &BitPoly) -> u32 {
    let mut v = 0u32;
    for i in p.iter_ones() {
        v |= 1 << i;
    }
    v
}

#[test]
fn exhaustive_15_7_bounded_distance_behaviour() {
    let code = BchCode::new(4, 2, 7).expect("(15,7) t=2");
    assert_eq!(code.len(), 15);

    // Enumerate all 128 codewords.
    let codewords: Vec<u32> = (0u32..128)
        .map(|d| to_u32(&code.encode(&word_from_u32(d, 7))))
        .collect();

    // Check d_min >= 2t+1 = 5 while we're at it.
    let mut d_min = usize::MAX;
    for (i, &a) in codewords.iter().enumerate() {
        for &b in codewords.iter().skip(i + 1) {
            d_min = d_min.min((a ^ b).count_ones() as usize);
        }
    }
    assert!(d_min >= 5, "minimum distance {d_min}");

    let mut corrected = 0u32;
    let mut flagged = 0u32;
    for received in 0u32..(1 << 15) {
        // Ground truth: distance to the nearest codeword.
        let (nearest, dist) = codewords
            .iter()
            .map(|&c| (c, (c ^ received).count_ones()))
            .min_by_key(|&(_, d)| d)
            .expect("128 codewords");

        let mut w = word_from_u32(received, 15);
        match code.decode(&mut w) {
            Ok(out) => {
                let result = to_u32(&w);
                // Any successful decode lands on a codeword within t.
                assert!(codewords.contains(&result), "{received:#x}");
                assert!(out.num_corrected() <= 2, "{received:#x}");
                if dist <= 2 {
                    // Within the packing radius decoding is unique and
                    // must return the nearest codeword.
                    assert_eq!(result, nearest, "{received:#x} at distance {dist}");
                    assert_eq!(out.num_corrected() as u32, (result ^ received).count_ones());
                }
                corrected += 1;
            }
            Err(_) => {
                // A failure is only legitimate beyond the packing radius.
                assert!(dist > 2, "{received:#x}: failed at distance {dist}");
                flagged += 1;
            }
        }
    }
    // Every word within distance 2 of some codeword decodes: that is
    // 128 · (1 + 15 + 105) = 15488 words.
    assert!(corrected >= 15488, "corrected {corrected}");
    assert_eq!(corrected + flagged, 1 << 15);
}

#[test]
fn exhaustive_single_error_correction_over_gf32() {
    // (31, 21) t=2 code: all single- and double-error patterns on one
    // codeword, all 31 + 465 of them.
    let code = BchCode::new(5, 2, 21).expect("(31,21) t=2");
    let data = word_from_u32(0b1_0110_1001_1100_1010_0101 & ((1 << 21) - 1), 21);
    let clean = code.encode(&data);
    for i in 0..code.len() {
        for j in i..code.len() {
            let mut w = clean.clone();
            w.flip(i);
            if j != i {
                w.flip(j);
            }
            code.decode(&mut w).expect("within t");
            assert_eq!(w, clean, "errors at {i},{j}");
        }
    }
}
