//! Seeded BCH decode properties, migrated onto the harness runner with
//! their historical seeds (42, 7, 99, 1), plus the negative-path
//! overweight property whose crafted counterexample is seeded into the
//! checked-in corpus.

use pmck_bch::{BchCode, BchError};
use pmck_harness::{BitFlipCase, Runner};
use pmck_rt::rng::{Rng, StdRng};

fn gen_flips(rng: &mut StdRng, code: &BchCode, num_flips: usize) -> BitFlipCase {
    let mut data = vec![0u8; code.data_bits() / 8];
    rng.fill_bytes(&mut data);
    let mut flips: Vec<usize> = Vec::with_capacity(num_flips);
    while flips.len() < num_flips {
        let p = rng.gen_range(0usize..code.len());
        if !flips.contains(&p) {
            flips.push(p);
        }
    }
    BitFlipCase { data, flips }
}

/// Historical seed 42 (`vlew_corrects_22_random_errors`): exactly t
/// errors on the paper's VLEW code must decode back to the clean word.
#[test]
fn vlew_corrects_t_random_errors() {
    let code = BchCode::vlew();
    Runner::new("bch:vlew-corrects-t").seed(42).cases(5).run(
        |rng| gen_flips(rng, &code, code.t()),
        |case| {
            let clean = code.encode_bytes(&case.data);
            let mut cw = case.corrupted(&code);
            let out = code
                .decode(&mut cw)
                .map_err(|e| format!("t errors must decode: {e}"))?;
            if out.num_corrected() != case.flips.len() {
                return Err(format!(
                    "corrected {} of {} flips",
                    out.num_corrected(),
                    case.flips.len()
                ));
            }
            if cw != clean {
                return Err("decode did not restore the clean word".into());
            }
            Ok(())
        },
    );
}

/// Historical seed 7 (`detects_overweight_patterns_often`): t+2 errors
/// must either be flagged or land on a valid codeword (counted as SDC
/// upstream) — never succeed with an invalid word. The aggregate check
/// that *some* patterns are flagged is preserved.
#[test]
fn overweight_patterns_flag_or_land_on_codeword() {
    let code = BchCode::new(8, 3, 64).unwrap();
    let mut flagged = 0u32;
    Runner::new("bch:overweight-never-silent")
        .seed(7)
        .cases(50)
        .run(
            |rng| gen_flips(rng, &code, code.t() + 2),
            |case| {
                let mut cw = case.corrupted(&code);
                match code.decode(&mut cw) {
                    Ok(_) if code.is_codeword(&cw) => Ok(()),
                    Ok(_) => Err("success with an invalid word".into()),
                    Err(BchError::Uncorrectable) => {
                        flagged += 1;
                        Ok(())
                    }
                    Err(e) => Err(format!("unexpected error {e}")),
                }
            },
        );
    assert!(flagged > 0, "at least some overweight patterns flagged");
}

/// Historical seed 99 (`uncorrectable_leaves_word_unmodified`): when the
/// decoder flags a 2t-error word, the word must be bit-identical to its
/// pre-decode state.
#[test]
fn uncorrectable_leaves_word_unmodified() {
    let code = BchCode::new(8, 3, 64).unwrap();
    let mut saw_uncorrectable = false;
    Runner::new("bch:uncorrectable-unmodified")
        .seed(99)
        .cases(100)
        .run(
            |rng| gen_flips(rng, &code, 2 * code.t()),
            |case| {
                let mut cw = case.corrupted(&code);
                let before = cw.clone();
                if code.decode(&mut cw).is_err() {
                    saw_uncorrectable = true;
                    if cw != before {
                        return Err("flagged word was modified".into());
                    }
                }
                Ok(())
            },
        );
    assert!(
        saw_uncorrectable,
        "expected at least one uncorrectable pattern"
    );
}

/// Historical seed 1 (`flash_word_t41_round_trip`): the t=41 flash
/// configuration corrects a full-weight error pattern.
#[test]
fn flash_word_t41_round_trip() {
    let code = BchCode::flash512(41).unwrap();
    Runner::new("bch:flash512-t41").seed(1).cases(1).run(
        |rng| gen_flips(rng, &code, 41),
        |case| {
            let clean = code.encode_bytes(&case.data);
            let mut cw = case.corrupted(&code);
            let out = code
                .decode(&mut cw)
                .map_err(|e| format!("must decode: {e}"))?;
            if out.num_corrected() != 41 || cw != clean {
                return Err("41-error round trip failed".into());
            }
            Ok(())
        },
    );
}

/// Negative path: a word carrying t+1 errors must be *flagged*, not
/// miscorrected — the decoder may never claim success while leaving (or
/// producing) a word other than a codeword within distance t. The
/// checked-in corpus seeds this property with a crafted 23-flip word on
/// the zero codeword (`tests/corpus/bch-overweight-negative-crafted.json`),
/// replayed before the generated cases.
#[test]
fn overweight_crafted_patterns_are_flagged_not_miscorrected() {
    let code = BchCode::vlew();
    let report = Runner::new("bch:overweight:negative")
        .seed(0xBAD)
        .cases(15)
        .run(
            |rng| gen_flips(rng, &code, code.t() + 1),
            |case| {
                let mut cw = case.corrupted(&code);
                let before = cw.clone();
                match code.decode(&mut cw) {
                    Err(BchError::Uncorrectable) if cw == before => Ok(()),
                    Err(BchError::Uncorrectable) => Err("flagged word was modified".into()),
                    Err(e) => Err(format!("unexpected error {e}")),
                    Ok(out) => Err(format!(
                        "{}-error word miscorrected ({} bits flipped)",
                        case.flips.len(),
                        out.num_corrected()
                    )),
                }
            },
        );
    assert!(
        report.corpus_replayed >= 1,
        "the crafted corpus case must be present and replayed"
    );
}
