//! Randomized tests: BCH round trips under random correctable error
//! patterns, and linearity of the encoder. Seeded `pmck-rt` streams
//! replace the former proptest strategies.

use pmck_bch::{BchCode, BitPoly};
use pmck_rt::rng::{Rng, StdRng};

fn random_bits(rng: &mut StdRng, len: usize) -> BitPoly {
    let mut p = BitPoly::zero(len);
    for i in 0..len {
        if rng.gen_bool(0.5) {
            p.set(i, true);
        }
    }
    p
}

#[test]
fn round_trip_with_upto_t_errors() {
    let mut rng = StdRng::seed_from_u64(0xBC4_0001);
    for _ in 0..64 {
        let t = rng.gen_range(1usize..=5);
        let code = BchCode::new(9, t, 128).unwrap();
        let data = random_bits(&mut rng, 128);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let nerr = rng.gen_range(0..=t);
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < nerr {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            cw.flip(p);
        }
        let out = code.decode(&mut cw).unwrap();
        assert_eq!(&cw, &clean);
        let got: Vec<usize> = out.corrected_bits().to_vec();
        let want: Vec<usize> = positions.into_iter().collect();
        assert_eq!(got, want);
    }
}

#[test]
fn parity_linearity() {
    let mut rng = StdRng::seed_from_u64(0xBC4_0002);
    for _ in 0..64 {
        let code = BchCode::new(8, 3, 96).unwrap();
        let a = random_bits(&mut rng, 96);
        let b = random_bits(&mut rng, 96);
        let mut ab = a.clone();
        ab.xor_assign(&b);
        let mut p = code.parity(&a);
        p.xor_assign(&code.parity(&b));
        assert_eq!(p, code.parity(&ab));
    }
}

#[test]
fn syndromes_zero_iff_codeword() {
    let mut rng = StdRng::seed_from_u64(0xBC4_0003);
    for _ in 0..64 {
        let code = BchCode::new(7, 2, 64).unwrap();
        let data = random_bits(&mut rng, 64);
        let mut cw = code.encode(&data);
        assert!(code.syndromes(&cw).iter().all(|&s| s == 0));
        cw.flip(rng.gen_range(0..code.len()));
        assert!(code.syndromes(&cw).iter().any(|&s| s != 0));
    }
}
