//! Property-based tests: BCH round trips under random correctable error
//! patterns, and linearity of the encoder.

use pmck_bch::{BchCode, BitPoly};
use proptest::prelude::*;

fn bits_from_seed(seed: u64, len: usize) -> BitPoly {
    let mut p = BitPoly::zero(len);
    let mut s = seed | 1;
    for i in 0..len {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if s >> 63 == 1 {
            p.set(i, true);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_with_upto_t_errors(
        seed in any::<u64>(),
        t in 1usize..=5,
        nerr_seed in any::<u64>(),
    ) {
        let code = BchCode::new(9, t, 128).unwrap();
        let data = bits_from_seed(seed, 128);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let nerr = (nerr_seed % (t as u64 + 1)) as usize;
        let mut positions = std::collections::BTreeSet::new();
        let mut s = nerr_seed | 1;
        while positions.len() < nerr {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            positions.insert((s >> 16) as usize % code.len());
        }
        for &p in &positions {
            cw.flip(p);
        }
        let out = code.decode(&mut cw).unwrap();
        prop_assert_eq!(&cw, &clean);
        let got: Vec<usize> = out.corrected_bits().to_vec();
        let want: Vec<usize> = positions.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn parity_linearity(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let code = BchCode::new(8, 3, 96).unwrap();
        let a = bits_from_seed(seed_a, 96);
        let b = bits_from_seed(seed_b, 96);
        let mut ab = a.clone();
        ab.xor_assign(&b);
        let mut p = code.parity(&a);
        p.xor_assign(&code.parity(&b));
        prop_assert_eq!(p, code.parity(&ab));
    }

    #[test]
    fn syndromes_zero_iff_codeword(seed in any::<u64>(), flip in any::<u64>()) {
        let code = BchCode::new(7, 2, 64).unwrap();
        let data = bits_from_seed(seed, 64);
        let mut cw = code.encode(&data);
        prop_assert!(code.syndromes(&cw).iter().all(|&s| s == 0));
        cw.flip((flip % code.len() as u64) as usize);
        prop_assert!(code.syndromes(&cw).iter().any(|&s| s != 0));
    }
}
