//! Parametric binary BCH codec.
//!
//! Binary BCH codes are the workhorse of the paper's very long ECC words
//! (VLEWs): a `t`-error-correcting BCH code over GF(2^m) spends
//! `t·(⌊log2(k)⌋+1)` code bits to protect `k` data bits. This crate builds
//! shortened systematic BCH codes for arbitrary `(m, t, k)` within
//! `k + t·m ≤ 2^m − 1`, encodes via polynomial division, and decodes via
//! syndrome computation, Berlekamp–Massey, and Chien search.
//!
//! Instances used by the reproduction:
//!
//! * **VLEW** — t=22, k=2048 bits (256 B of per-chip data), GF(2^12):
//!   264 code bits = 33 B ([`BchCode::vlew`]).
//! * **Per-block baseline** — t=14, k=512 bits (a 64 B block), GF(2^10):
//!   140 code bits, the "bit-error correction only" baseline of §III-A
//!   ([`BchCode::per_block_baseline`]).
//! * **Flash-style words** — t up to 41, k=4096 bits (512 B), GF(2^13)
//!   (Figure 3; [`BchCode::flash512`]).
//!
//! Encoding is linear: `parity(a ⊕ b) = parity(a) ⊕ parity(b)`. The write
//! path of the paper (§V-D) relies on exactly this property to turn a
//! bitwise-sum write into an ECC update, and [`BchCode::parity`] of the
//! XOR of old and new data is that update.
//!
//! # Examples
//!
//! ```
//! use pmck_bch::BchCode;
//!
//! let code = BchCode::new(6, 2, 16).unwrap(); // toy: t=2, 16 data bits
//! let data = [0xAB, 0xCD];
//! let mut cw = code.encode_bytes(&data);
//! cw.flip(3);
//! cw.flip(17);
//! let outcome = code.decode(&mut cw).unwrap();
//! assert_eq!(outcome.corrected_bits(), &[3, 17]);
//! assert_eq!(code.extract_data_bytes(&cw), data);
//! ```

mod chien;
mod code;
mod decode;
mod encode;
mod error;
mod syndrome;

pub use code::BchCode;
pub use decode::{BatchOutcome, BchDecodeView, BchScratch, DecodeOutcome, DecodePolicy};
pub use error::BchError;
pub use syndrome::SyndromePlan;

// Re-exported so downstream users can manipulate codewords without also
// depending on pmck-gf directly.
pub use pmck_gf::BitPoly;
