//! Systematic BCH encoding.

use pmck_gf::BitPoly;

use crate::code::BchCode;

impl BchCode {
    /// Encodes `data` (exactly [`BchCode::data_bits`] bits) into a fresh
    /// codeword of [`BchCode::len`] bits: parity in `[0, r)`, data in
    /// `[r, r+k)`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    pub fn encode(&self, data: &BitPoly) -> BitPoly {
        assert_eq!(data.len(), self.k, "data must have exactly {} bits", self.k);
        let mut cw = BitPoly::zero(self.len());
        cw.splice(self.r, data);
        let parity = self.parity(data);
        cw.splice(0, &parity);
        cw
    }

    /// Encodes a byte slice of exactly `data_bits / 8` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is not byte-aligned or the slice length does
    /// not match.
    pub fn encode_bytes(&self, data: &[u8]) -> BitPoly {
        assert_eq!(self.k % 8, 0, "data_bits must be byte-aligned");
        assert_eq!(data.len() * 8, self.k, "need {} data bytes", self.k / 8);
        self.encode(&BitPoly::from_bytes(data))
    }

    /// Computes the `r` parity bits for `data`: `(data(x) · x^r) mod g(x)`.
    ///
    /// Encoding is linear over GF(2), so `parity(a ⊕ b) = parity(a) ⊕
    /// parity(b)`; the paper's in-chip ECC-update path (§V-D) feeds the
    /// bitwise sum of old and new data through this function to obtain the
    /// code-bit update directly.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    pub fn parity(&self, data: &BitPoly) -> BitPoly {
        assert_eq!(data.len(), self.k, "data must have exactly {} bits", self.k);
        let mut shifted = BitPoly::zero(self.k + self.r);
        shifted.splice(self.r, data);
        let rem = shifted.rem(&self.generator);
        let mut parity = BitPoly::zero(self.r);
        for i in rem.iter_ones() {
            parity.set(i, true);
        }
        parity
    }

    /// Extracts the data bits from a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.len()`.
    pub fn extract_data(&self, cw: &BitPoly) -> BitPoly {
        assert_eq!(cw.len(), self.len(), "codeword length mismatch");
        cw.slice(self.r, self.k)
    }

    /// Extracts the data bits as bytes (requires byte-aligned `k`).
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.len()` or `k` is not byte-aligned.
    pub fn extract_data_bytes(&self, cw: &BitPoly) -> Vec<u8> {
        assert_eq!(self.k % 8, 0, "data_bits must be byte-aligned");
        self.extract_data(cw).to_bytes()
    }

    /// Whether `cw` is a valid codeword (i.e. divisible by the generator).
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.len()`.
    pub fn is_codeword(&self, cw: &BitPoly) -> bool {
        assert_eq!(cw.len(), self.len(), "codeword length mismatch");
        cw.rem(&self.generator).is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_produces_valid_codeword() {
        let code = BchCode::new(6, 3, 24).unwrap();
        let data = BitPoly::from_bytes(&[0x12, 0x34, 0x56]);
        let cw = code.encode(&data);
        assert_eq!(cw.len(), code.len());
        assert!(code.is_codeword(&cw));
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn zero_data_encodes_to_zero_word() {
        let code = BchCode::new(5, 2, 10).unwrap();
        let cw = code.encode(&BitPoly::zero(10));
        assert!(cw.is_zero());
        assert!(code.is_codeword(&cw));
    }

    #[test]
    fn parity_is_linear() {
        let code = BchCode::new(8, 4, 64).unwrap();
        let a = BitPoly::from_bytes(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33]);
        let b = BitPoly::from_bytes(&[0x55; 8]);
        let mut ab = a.clone();
        ab.xor_assign(&b);
        let mut pa = code.parity(&a);
        let pb = code.parity(&b);
        pa.xor_assign(&pb);
        // parity(a) ^ parity(b) == parity(a ^ b)
        assert_eq!(pa, code.parity(&ab));
    }

    #[test]
    fn single_bit_error_invalidates_word() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let mut cw = code.encode(&BitPoly::from_u64(0xABCDE, 20));
        assert!(code.is_codeword(&cw));
        for i in 0..cw.len() {
            cw.flip(i);
            assert!(!code.is_codeword(&cw), "flip at {i} must invalidate");
            cw.flip(i);
        }
    }

    #[test]
    fn vlew_encode_round_trip_bytes() {
        let code = BchCode::vlew();
        let data: Vec<u8> = (0..256).map(|i| (i * 31 + 7) as u8).collect();
        let cw = code.encode_bytes(&data);
        assert!(code.is_codeword(&cw));
        assert_eq!(code.extract_data_bytes(&cw), data);
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn encode_wrong_length_panics() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let _ = code.encode(&BitPoly::zero(19));
    }
}
