//! BCH code construction: cyclotomic cosets, minimal polynomials, and the
//! generator polynomial.

use pmck_gf::{BitPoly, FieldPoly, Gf2m};

use crate::chien::ChienPlan;
use crate::error::BchError;
use crate::syndrome::SyndromePlan;

/// A systematic, shortened, binary `t`-error-correcting BCH code over
/// GF(2^m) protecting `k` data bits.
///
/// Codeword layout (bit index = polynomial degree):
///
/// ```text
/// [0 .. r)        parity bits   (r = deg g(x) ≤ t·m)
/// [r .. r + k)    data bits
/// ```
///
/// The code is shortened from the natural length `2^m − 1`: the high-order
/// `2^m − 1 − (k + r)` information positions are implicitly zero.
///
/// # Examples
///
/// ```
/// use pmck_bch::BchCode;
///
/// let vlew = BchCode::vlew();
/// assert_eq!(vlew.t(), 22);
/// assert_eq!(vlew.data_bits(), 2048);
/// assert_eq!(vlew.parity_bits(), 264); // 33 bytes, as in the paper
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    pub(crate) field: Gf2m,
    pub(crate) t: usize,
    pub(crate) k: usize,
    pub(crate) r: usize,
    pub(crate) generator: BitPoly,
    /// Byte-sliced syndrome evaluation plan (the decode hot-path kernel).
    pub(crate) plan: SyndromePlan,
    /// Bit-sliced Chien search plan (64 candidate positions per step).
    pub(crate) chien: ChienPlan,
}

impl BchCode {
    /// Constructs a `t`-error-correcting BCH code over GF(2^m) with `k`
    /// data bits.
    ///
    /// # Errors
    ///
    /// * [`BchError::UnsupportedField`] if `m` is outside `3..=16`.
    /// * [`BchError::ZeroCorrectionCapability`] if `t == 0`.
    /// * [`BchError::CodeTooLong`] if `k` plus the generator degree exceeds
    ///   the natural length `2^m − 1`.
    pub fn new(m: u32, t: usize, k: usize) -> Result<Self, BchError> {
        if t == 0 {
            return Err(BchError::ZeroCorrectionCapability);
        }
        let field = Gf2m::new(m).map_err(|_| BchError::UnsupportedField(m))?;
        let generator = generator_poly(&field, t);
        let r = generator.degree().expect("generator is nonzero");
        let natural = field.order() as usize;
        if k + r > natural {
            return Err(BchError::CodeTooLong(k + r, natural));
        }
        let plan = SyndromePlan::new(&field, t);
        let chien = ChienPlan::new(&field, t, k + r);
        Ok(BchCode {
            field,
            t,
            k,
            r,
            generator,
            plan,
            chien,
        })
    }

    /// The paper's VLEW code: t=22 over GF(2^12) protecting 256 B
    /// (2048 bits) of per-chip data with 264 code bits (33 B).
    pub fn vlew() -> Self {
        BchCode::new(12, 22, 2048).expect("VLEW parameters are valid")
    }

    /// The §III-A bit-error-correction baseline: t=14 over GF(2^10)
    /// protecting one 64 B block (512 bits) with 140 code bits (~28%
    /// storage overhead).
    pub fn per_block_baseline() -> Self {
        BchCode::new(10, 14, 512).expect("baseline parameters are valid")
    }

    /// A Flash-style word (Figure 3): `t`-error correction over GF(2^13)
    /// protecting 512 B (4096 bits) of data.
    ///
    /// # Errors
    ///
    /// Same as [`BchCode::new`]; `t` up to 315 fits the natural length.
    pub fn flash512(t: usize) -> Result<Self, BchError> {
        BchCode::new(13, t, 4096)
    }

    /// The designed correction capability `t` (the decoder may correct any
    /// pattern of up to `t` bit errors).
    pub fn t(&self) -> usize {
        self.t
    }

    /// The number of data bits `k`.
    pub fn data_bits(&self) -> usize {
        self.k
    }

    /// The number of parity bits `r` (the generator degree).
    pub fn parity_bits(&self) -> usize {
        self.r
    }

    /// The codeword length `n = k + r`.
    pub fn len(&self) -> usize {
        self.k + self.r
    }

    /// Whether the codeword length is zero (never true for a valid code;
    /// provided for API completeness alongside [`BchCode::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage overhead `r / k`.
    pub fn storage_overhead(&self) -> f64 {
        self.r as f64 / self.k as f64
    }

    /// The underlying field GF(2^m).
    pub fn field(&self) -> &Gf2m {
        &self.field
    }

    /// The generator polynomial g(x) over GF(2).
    pub fn generator(&self) -> &BitPoly {
        &self.generator
    }
}

/// Computes the generator polynomial of a `t`-error-correcting binary BCH
/// code: `g(x) = lcm of the minimal polynomials of alpha^1 .. alpha^{2t}`.
/// Only odd exponents contribute distinct minimal polynomials (conjugacy),
/// so the product runs over the cyclotomic cosets of 1, 3, 5, …, 2t−1.
fn generator_poly(field: &Gf2m, t: usize) -> BitPoly {
    let order = field.order() as u64;
    let mut covered = vec![false; field.order() as usize + 1];
    let mut g = BitPoly::from_u64(1, 1);
    for i in (1..=(2 * t as u64 - 1)).step_by(2) {
        let rep = (i % order) as usize;
        if rep == 0 || covered[rep] {
            continue;
        }
        // Cyclotomic coset of `i`: {i, 2i, 4i, ...} mod (2^m − 1).
        let mut coset = Vec::new();
        let mut e = i % order;
        loop {
            if covered[e as usize] {
                break;
            }
            covered[e as usize] = true;
            coset.push(e);
            e = (e * 2) % order;
            if e == i % order {
                break;
            }
        }
        // Minimal polynomial: prod over the coset of (x + alpha^e).
        let mut min_poly = FieldPoly::one(field);
        for &e in &coset {
            let root = field.alpha_pow(e);
            min_poly = min_poly.mul(&FieldPoly::from_coeffs(field, vec![root, 1]));
        }
        // The minimal polynomial has GF(2) coefficients.
        let mut mp_bits = BitPoly::zero(min_poly.coeffs().len());
        for (d, &c) in min_poly.coeffs().iter().enumerate() {
            debug_assert!(c <= 1, "minimal polynomial coefficient must be binary");
            if c == 1 {
                mp_bits.set(d, true);
            }
        }
        g = g.clmul(&mp_bits);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_15_7_2_code() {
        // The (15,7) 2-error-correcting BCH code has generator
        // x^8 + x^7 + x^6 + x^4 + 1 = 0x1D1.
        let code = BchCode::new(4, 2, 7).unwrap();
        assert_eq!(code.parity_bits(), 8);
        assert_eq!(code.len(), 15);
        let mut g = 0u64;
        for i in code.generator().iter_ones() {
            g |= 1 << i;
        }
        assert_eq!(g, 0x1D1);
    }

    #[test]
    fn classic_15_5_3_code() {
        // The (15,5) 3-error-correcting BCH code has generator
        // x^10 + x^8 + x^5 + x^4 + x^2 + x + 1 = 0x537.
        let code = BchCode::new(4, 3, 5).unwrap();
        assert_eq!(code.parity_bits(), 10);
        let mut g = 0u64;
        for i in code.generator().iter_ones() {
            g |= 1 << i;
        }
        assert_eq!(g, 0x537);
    }

    #[test]
    fn vlew_parameters_match_paper() {
        let code = BchCode::vlew();
        // 22 × 12 = 264 bits = 33 B of code bits over 256 B of data.
        assert_eq!(code.parity_bits(), 264);
        assert_eq!(code.data_bits(), 2048);
        assert!((code.storage_overhead() - 33.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_parameters_match_paper() {
        let code = BchCode::per_block_baseline();
        // 14 × 10 = 140 bits over 512 data bits ≈ 27.3% ("28%").
        assert_eq!(code.parity_bits(), 140);
        assert!((code.storage_overhead() - 140.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn flash_words() {
        for t in [12, 24, 41] {
            let code = BchCode::flash512(t).unwrap();
            assert_eq!(code.parity_bits(), 13 * t);
            assert_eq!(code.data_bits(), 4096);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert_eq!(
            BchCode::new(4, 0, 7).unwrap_err(),
            BchError::ZeroCorrectionCapability
        );
        assert_eq!(
            BchCode::new(2, 1, 7).unwrap_err(),
            BchError::UnsupportedField(2)
        );
        assert!(matches!(
            BchCode::new(4, 3, 6).unwrap_err(),
            BchError::CodeTooLong(16, 15)
        ));
    }

    #[test]
    fn generator_divides_x_n_minus_1() {
        // g(x) must divide x^(2^m −1) − 1; equivalently alpha^1..alpha^2t
        // are roots of g.
        let code = BchCode::new(6, 3, 20).unwrap();
        let f = code.field();
        for j in 1..=(2 * code.t() as u64) {
            let x = f.alpha_pow(j);
            // Evaluate g at alpha^j over GF(2^6).
            let mut acc = 0u32;
            for i in code.generator().iter_ones() {
                acc ^= f.alpha_pow(f.log(x) as u64 * i as u64);
            }
            assert_eq!(acc, 0, "alpha^{j} must be a root of g");
        }
    }
}
