//! Error types for the BCH codec.

use std::fmt;

/// Errors produced when constructing a [`crate::BchCode`] or decoding a
/// codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BchError {
    /// `m` outside the supported range of the underlying field (3..=16).
    UnsupportedField(u32),
    /// `t` must be at least 1.
    ZeroCorrectionCapability,
    /// The shortened code would exceed the natural length `2^m − 1`
    /// (i.e. `k + r > 2^m − 1`). Carries `(needed, natural)`.
    CodeTooLong(usize, usize),
    /// The received word's length does not match the code's `n`.
    /// Carries `(got, expected)`.
    LengthMismatch(usize, usize),
    /// The error pattern exceeds the code's correction capability; the word
    /// was flagged uncorrectable and left unmodified.
    Uncorrectable,
}

impl fmt::Display for BchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BchError::UnsupportedField(m) => write!(f, "unsupported field degree m={m}"),
            BchError::ZeroCorrectionCapability => {
                write!(f, "correction capability t must be at least 1")
            }
            BchError::CodeTooLong(needed, natural) => write!(
                f,
                "code length {needed} exceeds natural BCH length {natural}"
            ),
            BchError::LengthMismatch(got, expected) => {
                write!(f, "received word has {got} bits, code expects {expected}")
            }
            BchError::Uncorrectable => write!(f, "error pattern is uncorrectable"),
        }
    }
}

impl std::error::Error for BchError {}
