//! Byte-sliced BCH syndrome evaluation.
//!
//! The naive kernel walks `iter_ones()` and pays one `alpha_pow` (a
//! modular reduction plus a table lookup) per *set bit* per odd syndrome —
//! for a random 2312-bit VLEW word that is ~1150 field ops per syndrome.
//! The sliced kernel instead exploits `S_j = r(alpha^j) = (r mod m_j)(alpha^j)`
//! where `m_j` is the minimal polynomial of `alpha^j` over GF(2): the whole
//! word is reduced mod the degree-`d` binary polynomial `m_j` (d ≤ m)
//! byte-at-a-time, CRC-style, consuming the codeword's `u64` limbs eight
//! bits per table step, and only the tiny d-bit remainder is evaluated in
//! the field. That is `⌈n/8⌉` table lookups per odd syndrome — ~290 for
//! the VLEW — independent of error weight, with even syndromes still
//! derived by squaring (`S_2j = S_j²`).
//!
//! Each reduction chain is serially dependent (every table step needs the
//! previous remainder), so a single chain leaves the core mostly idle.
//! The kernel therefore walks the word once per *group of four* direct
//! syndromes, advancing four independent remainder chains per byte — the
//! loads and XORs of the four chains overlap in the pipeline, recovering
//! most of the latency the dependence chain would otherwise serialize.

use pmck_gf::{BitPoly, FieldPoly, Gf2m};

/// How one odd syndrome `S_j` is computed.
#[derive(Clone)]
enum OddSyndrome {
    /// Reduce the word mod the minimal polynomial `m_j`, then evaluate the
    /// remainder at `alpha^j`.
    Direct {
        /// `d = deg m_j` (the cyclotomic coset size of `j`).
        deg: u32,
        /// `(1 << d) − 1`.
        mask: u32,
        /// `table[h] = (h(x)·x^d) mod m_j` for every 8-bit chunk `h`.
        table: Vec<u32>,
        /// `eval[i] = alpha^(j·i)`, evaluating remainder bit `i`.
        eval: Vec<u32>,
    },
    /// `S_j = S_{j'}^(2^s)` because `j ≡ j'·2^s (mod 2^m − 1)` puts `j`
    /// in the cyclotomic coset of the earlier odd `j'`.
    Derived {
        /// Index into the odd-syndrome list: `j' = 2·from + 1`.
        from: usize,
        /// Number of squarings `s`.
        squarings: u32,
    },
}

/// A precomputed byte-sliced evaluation plan for all `2t` syndromes of a
/// binary BCH code.
#[derive(Clone)]
pub struct SyndromePlan {
    t: usize,
    /// Entry `i` computes the odd syndrome `S_{2i+1}`.
    odd: Vec<OddSyndrome>,
    /// Indices into `odd` of the `Direct` entries, in order — the chains
    /// the interleaved limb walk schedules four at a time.
    direct: Vec<usize>,
}

impl std::fmt::Debug for SyndromePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let direct = self
            .odd
            .iter()
            .filter(|o| matches!(o, OddSyndrome::Direct { .. }))
            .count();
        f.debug_struct("SyndromePlan")
            .field("t", &self.t)
            .field("direct", &direct)
            .field("derived", &(self.odd.len() - direct))
            .finish()
    }
}

impl SyndromePlan {
    /// Builds the plan for a `t`-error-correcting code over `field`.
    ///
    /// # Panics
    ///
    /// Panics if any required root exponent collapses to zero mod the
    /// field order (never the case for a valid BCH construction, where
    /// `2t − 1` is below the natural length).
    pub fn new(field: &Gf2m, t: usize) -> Self {
        let order = field.order() as u64;
        let mut odd: Vec<OddSyndrome> = Vec::with_capacity(t);
        for j in (1..=2 * t as u64 - 1).step_by(2) {
            let jm = j % order;
            assert_ne!(jm, 0, "syndrome exponent {j} collapses mod field order");
            // An earlier odd j' with j ≡ j'·2^s shares a coset: derive by
            // squaring instead of re-reducing the whole word.
            let derived = odd.iter().enumerate().find_map(|(idx, _)| {
                let jp = (2 * idx as u64 + 1) % order;
                let mut e = jp;
                for s in 1..=field.degree() {
                    e = (e * 2) % order;
                    if e == jm {
                        return Some(OddSyndrome::Derived {
                            from: idx,
                            squarings: s,
                        });
                    }
                }
                None
            });
            if let Some(d) = derived {
                odd.push(d);
                continue;
            }
            // Cyclotomic coset of j and the minimal polynomial of alpha^j.
            let mut coset = Vec::new();
            let mut e = jm;
            loop {
                coset.push(e);
                e = (e * 2) % order;
                if e == jm {
                    break;
                }
            }
            let mut mp = FieldPoly::one(field);
            for &e in &coset {
                mp = mp.mul(&FieldPoly::from_coeffs(field, vec![field.alpha_pow(e), 1]));
            }
            let coeffs = mp.coeffs();
            let deg = (coeffs.len() - 1) as u32;
            debug_assert_eq!(deg as usize, coset.len());
            let mut poly_bits = 0u32;
            for (i, &c) in coeffs.iter().enumerate() {
                debug_assert!(c <= 1, "minimal polynomial coefficient must be binary");
                poly_bits |= c << i;
            }
            // table[h] = (h << d) mod m_j by bitwise long division; the
            // quotient bits span [d, d+8).
            let table = (0..256u32)
                .map(|h| {
                    let mut v = h << deg;
                    for bit in (deg..deg + 8).rev() {
                        if (v >> bit) & 1 == 1 {
                            v ^= poly_bits << (bit - deg);
                        }
                    }
                    v
                })
                .collect();
            let eval = (0..deg as u64)
                .map(|i| field.alpha_pow((jm * i) % order))
                .collect();
            odd.push(OddSyndrome::Direct {
                deg,
                mask: (1 << deg) - 1,
                table,
                eval,
            });
        }
        let direct = odd
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, OddSyndrome::Direct { .. }))
            .map(|(i, _)| i)
            .collect();
        SyndromePlan { t, odd, direct }
    }

    /// The number of syndromes the plan covers, `2t`.
    pub fn count(&self) -> usize {
        2 * self.t
    }

    /// Evaluates all `2t` syndromes of `word` into `out`
    /// (`out[j-1] = S_j`). Returns `true` when every syndrome is zero,
    /// i.e. the word is a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != 2t`.
    pub fn syndromes_into(&self, field: &Gf2m, word: &BitPoly, out: &mut [u32]) -> bool {
        assert_eq!(out.len(), 2 * self.t, "syndrome buffer length mismatch");
        let mut nonzero = 0u32;
        // Direct odds first, four interleaved reduction chains per limb
        // walk; the last partial group narrows the interleave width.
        let mut chunk = self.direct.as_slice();
        while !chunk.is_empty() {
            let n = chunk.len().min(4);
            let (head, rest) = chunk.split_at(n);
            match n {
                4 => self.reduce_group::<4>(head, word, out, &mut nonzero),
                3 => self.reduce_group::<3>(head, word, out, &mut nonzero),
                2 => self.reduce_group::<2>(head, word, out, &mut nonzero),
                _ => self.reduce_group::<1>(head, word, out, &mut nonzero),
            }
            chunk = rest;
        }
        // Derived odds square an already-computed direct syndrome (a
        // derivation's root is always the coset's first odd, a `Direct`).
        for (idx, plan) in self.odd.iter().enumerate() {
            if let OddSyndrome::Derived { from, squarings } = plan {
                let mut v = out[2 * from];
                for _ in 0..*squarings {
                    v = field.square(v);
                }
                out[2 * idx] = v;
                nonzero |= v;
            }
        }
        // Even syndromes of a binary code: S_2j = S_j².
        for j in (2..=2 * self.t).step_by(2) {
            let v = field.square(out[j / 2 - 1]);
            out[j - 1] = v;
            nonzero |= v;
        }
        nonzero == 0
    }

    /// Runs `N` direct reduction chains (`idxs`, indices into `odd`) over
    /// one pass of the word's limbs, then evaluates each remainder and
    /// stores `out[2·idx] = S_{2·idx+1}`.
    fn reduce_group<const N: usize>(
        &self,
        idxs: &[usize],
        word: &BitPoly,
        out: &mut [u32],
        nonzero: &mut u32,
    ) {
        debug_assert_eq!(idxs.len(), N);
        // (deg, mask, table, eval) per chain; the fixed-size `[u32; 256]`
        // table views plus the `& 0xFF` index below let the inner loop run
        // without bounds checks.
        let parts: [(u32, u32, &[u32; 256], &[u32]); N] =
            std::array::from_fn(|i| match &self.odd[idxs[i]] {
                OddSyndrome::Direct {
                    deg,
                    mask,
                    table,
                    eval,
                } => {
                    let table: &[u32; 256] =
                        table.as_slice().try_into().expect("table has 256 entries");
                    (*deg, *mask, table, eval.as_slice())
                }
                OddSyndrome::Derived { .. } => unreachable!("direct index at a derived entry"),
            });
        // Consume the word's limbs eight bits per step, most significant
        // byte first; bits at or beyond `len` in the top limb are
        // guaranteed zero, so whole limbs can be eaten without masking.
        let mut rem = [0u32; N];
        for &limb in word.limbs().iter().rev() {
            let mut shift = 56u32;
            loop {
                let byte = ((limb >> shift) & 0xFF) as u32;
                for (r, &(d, mask, table, _)) in rem.iter_mut().zip(&parts) {
                    let t = (*r << 8) | byte;
                    *r = (t & mask) ^ table[((t >> d) & 0xFF) as usize];
                }
                if shift == 0 {
                    break;
                }
                shift -= 8;
            }
        }
        // Evaluate each d-bit remainder at its alpha^j.
        for (i, (&idx, &(_, _, _, eval))) in idxs.iter().zip(&parts).enumerate() {
            let mut acc = 0u32;
            let mut bits = rem[i];
            while bits != 0 {
                acc ^= eval[bits.trailing_zeros() as usize];
                bits &= bits - 1;
            }
            out[2 * idx] = acc;
            *nonzero |= acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::BchCode;
    use pmck_rt::rng::StdRng;

    /// The naive reference kernel: alpha_pow per set bit.
    fn slow_syndromes(code: &BchCode, word: &BitPoly) -> Vec<u32> {
        let f = code.field();
        let order = f.order() as u64;
        let t = code.t();
        let mut s = vec![0u32; 2 * t];
        for j in (1..=2 * t as u64).step_by(2) {
            let mut acc = 0u32;
            for p in word.iter_ones() {
                acc ^= f.alpha_pow((j * p as u64) % order);
            }
            s[(j - 1) as usize] = acc;
        }
        for j in (2..=2 * t).step_by(2) {
            s[j - 1] = f.square(s[j / 2 - 1]);
        }
        s
    }

    fn random_word(rng: &mut StdRng, len: usize) -> BitPoly {
        let mut w = BitPoly::zero(len);
        for i in 0..len {
            if rng.next_u64() & 1 == 1 {
                w.set(i, true);
            }
        }
        w
    }

    #[test]
    fn sliced_matches_naive_vlew() {
        let code = BchCode::vlew();
        let plan = SyndromePlan::new(code.field(), code.t());
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..20 {
            let w = random_word(&mut rng, code.len());
            let mut s = vec![0u32; plan.count()];
            let clean = plan.syndromes_into(code.field(), &w, &mut s);
            let reference = slow_syndromes(&code, &w);
            assert_eq!(s, reference);
            assert_eq!(clean, reference.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn clean_codeword_reports_all_zero() {
        let code = BchCode::vlew();
        let plan = SyndromePlan::new(code.field(), code.t());
        let mut rng = StdRng::seed_from_u64(7);
        let data = random_word(&mut rng, code.data_bits());
        let cw = code.encode(&data);
        let mut s = vec![0u32; plan.count()];
        assert!(plan.syndromes_into(code.field(), &cw, &mut s));
        assert!(s.iter().all(|&x| x == 0));
        let mut dirty = cw.clone();
        dirty.flip(1234);
        assert!(!plan.syndromes_into(code.field(), &dirty, &mut s));
    }

    #[test]
    fn sliced_matches_naive_small_fields() {
        // Small fields exercise short minimal polynomials (d < 8) where
        // the table's quotient window is wider than the remainder.
        for (m, t, k) in [(4u32, 2usize, 7usize), (6, 3, 20), (10, 14, 512)] {
            let code = BchCode::new(m, t, k).unwrap();
            let plan = SyndromePlan::new(code.field(), code.t());
            let mut rng = StdRng::seed_from_u64(m as u64 * 1000 + t as u64);
            for _ in 0..10 {
                let w = random_word(&mut rng, code.len());
                let mut s = vec![0u32; plan.count()];
                plan.syndromes_into(code.field(), &w, &mut s);
                assert_eq!(s, slow_syndromes(&code, &w), "m={m} t={t}");
            }
        }
    }

    #[test]
    fn derived_syndromes_via_coset_sharing() {
        // GF(2^6), t=13: 25 ≡ 11·2^3 (mod 63), so S_25 derives from S_11
        // by squaring — the plan must have at least one derived entry and
        // still agree with the naive kernel.
        let code = BchCode::new(6, 13, 10).unwrap();
        let plan = SyndromePlan::new(code.field(), code.t());
        let dbg = format!("{plan:?}");
        assert!(
            !dbg.contains("derived: 0"),
            "expected a derived entry in {dbg}"
        );
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let w = random_word(&mut rng, code.len());
            let mut s = vec![0u32; plan.count()];
            plan.syndromes_into(code.field(), &w, &mut s);
            assert_eq!(s, slow_syndromes(&code, &w));
        }
    }
}
