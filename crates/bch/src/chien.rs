//! Bit-sliced, limb-parallel Chien search.
//!
//! The classic Chien search evaluates the error-locator polynomial
//! `σ(α^{-p})` one position at a time: `deg σ` field multiplications per
//! candidate position, ~2·deg table lookups each — for the 2312-bit VLEW
//! at full weight that is ~100k serial multiplications per decode. The
//! bit-sliced kernel instead keeps, for every coefficient `i`, the
//! `64·WB` values `σ_i·α^{-i·(base+l)}` (`l = 0..64·WB`) as `m`
//! bit-planes of `WB` `u64` words each — plane `b`, lane `l` holds bit
//! `b` of the field element for position `base + l` — the same limb
//! discipline as the byte-sliced [`crate::SyndromePlan`]. `WB = 4`
//! (256 positions per step) amortizes the per-matrix-column decode
//! overhead over four words of lanes, which measures ~2x faster than
//! single-word blocks on the full-weight VLEW scan.
//!
//! Two facts make the per-block step cheap:
//!
//! * Multiplication by a *constant* `c` is GF(2)-linear, so it acts on the
//!   planes as an m×m binary matrix: `out[j] ^= in[b]` for every `b` with
//!   bit `j` of `c·β_b` set (`β_b` the polynomial-basis element `1 << b`).
//!   Advancing a coefficient's lanes to the next block is one such map
//!   with `c = α^{-64·WB·i}`, whose masks are precomputed per coefficient.
//! * The lane values at block 0 factor as `σ_i · α^{-i·l}`: the geometric
//!   part is decode-independent and precomputed bit-sliced, so per decode
//!   the initialization is a single constant-map application per
//!   coefficient instead of 64·WB−1 serial multiplications.
//!
//! A lane is a root iff all `m` sum planes have a zero bit there, so root
//! detection is an OR-reduction and one inverted mask per 64 positions.
//! The search exits as soon as `deg σ` roots are found (a degree-`deg`
//! polynomial has no more), which the position-serial kernel could have
//! done too but never amortized.

use pmck_gf::Gf2m;

/// Upper bound on the field degree `m` (checked by `Gf2m::new`), sizing
/// the fixed per-block plane accumulators.
const MAX_M: usize = 16;

/// Words per plane: each Chien step evaluates `64·WB` candidate
/// positions, amortizing the matrix-column decode across `WB` words.
const WB: usize = 4;

/// Candidate positions evaluated per block step.
const BLOCK_LANES: usize = 64 * WB;

/// Precomputed bit-sliced Chien tables for one code: the block-0
/// geometric lanes and the per-coefficient block-advance masks.
#[derive(Clone)]
pub(crate) struct ChienPlan {
    /// Field degree: planes per element.
    m: usize,
    /// Shortened codeword length: positions `0..n` are searched.
    n: usize,
    /// Correction capability: coefficients `1..=t` are provisioned.
    t: usize,
    /// `init[((i-1)·m + b)·WB + l/64]`, bit `l % 64` = bit `b` of
    /// `α^{-i·l}`, `l = 0..64·WB`.
    init: Vec<u64>,
    /// `step[(i-1)·m + b] = α^{-64·WB·i} · β_b`: the constant-multiplier
    /// matrix column advancing coefficient `i` by one block.
    step: Vec<u32>,
}

impl std::fmt::Debug for ChienPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChienPlan")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("t", &self.t)
            .finish()
    }
}

impl ChienPlan {
    /// Builds the plan for a `t`-error-correcting code of shortened
    /// length `n` over `field`.
    pub(crate) fn new(field: &Gf2m, t: usize, n: usize) -> Self {
        let m = field.degree() as usize;
        let order = field.order() as u64;
        let mut init = vec![0u64; t * m * WB];
        let mut step = vec![0u32; t * m];
        for i in 1..=t as u64 {
            let planes = &mut init[(i as usize - 1) * m * WB..i as usize * m * WB];
            for l in 0..BLOCK_LANES as u64 {
                let v = field.alpha_pow(order - (i * l) % order);
                let w = (l / 64) as usize;
                let bit = l % 64;
                for b in 0..m {
                    planes[b * WB + w] |= u64::from((v >> b) & 1) << bit;
                }
            }
            let c = field.alpha_pow(order - (BLOCK_LANES as u64 * i) % order);
            for b in 0..m {
                step[(i as usize - 1) * m + b] = field.mul(c, 1 << b);
            }
        }
        ChienPlan {
            m,
            n,
            t,
            init,
            step,
        }
    }

    /// The accumulator length a caller's scratch must provide: `t · m`
    /// planes of `WB` words.
    pub(crate) fn acc_len(&self) -> usize {
        self.t * self.m * WB
    }

    /// Finds the positions `p ∈ [0, n)` with `σ(α^{-p}) == 0`, appending
    /// them to `out` in ascending order, and returns how many were found.
    /// `sigma` is the trimmed locator (`sigma[0] == 1`, top coefficient
    /// nonzero, `deg ≤ t`); `acc` is caller scratch of at least
    /// [`ChienPlan::acc_len`] words. Exits early once `deg σ` roots are
    /// found.
    pub(crate) fn search(
        &self,
        field: &Gf2m,
        sigma: &[u32],
        acc: &mut [u64],
        out: &mut Vec<usize>,
    ) -> usize {
        let m = self.m;
        let pw = m * WB;
        let deg = sigma.len() - 1;
        debug_assert!(deg >= 1 && deg <= self.t, "locator degree out of range");
        // Initialize lanes for block 0: A_i = σ_i ⊙ init_i, one
        // constant-multiplier map per coefficient.
        for (i, &c) in sigma.iter().enumerate().skip(1) {
            let planes = &mut acc[(i - 1) * pw..i * pw];
            planes.fill(0);
            if c == 0 {
                continue;
            }
            let geo = &self.init[(i - 1) * pw..i * pw];
            for b in 0..m {
                let src = &geo[b * WB..b * WB + WB];
                let mut col = field.mul(c, 1 << b);
                while col != 0 {
                    let j = col.trailing_zeros() as usize;
                    for w in 0..WB {
                        planes[j * WB + w] ^= src[w];
                    }
                    col &= col - 1;
                }
            }
        }
        let mut found = 0usize;
        let mut base = 0usize;
        loop {
            // Sum planes over all coefficients; σ_0 = 1 adds the all-ones
            // plane 0.
            let mut sum = [[0u64; WB]; MAX_M];
            for planes in acc[..deg * pw].chunks_exact(pw) {
                for (s, p) in sum.iter_mut().zip(planes.chunks_exact(WB)) {
                    for (sw, &pv) in s.iter_mut().zip(p) {
                        *sw ^= pv;
                    }
                }
            }
            for w in 0..WB {
                sum[0][w] ^= !0u64;
                let word_base = base + w * 64;
                if word_base >= self.n {
                    break;
                }
                let mut nonzero = 0u64;
                for s in &sum[..m] {
                    nonzero |= s[w];
                }
                let mut roots = !nonzero;
                let lanes = (self.n - word_base).min(64);
                if lanes < 64 {
                    roots &= (1u64 << lanes) - 1;
                }
                while roots != 0 {
                    out.push(word_base + roots.trailing_zeros() as usize);
                    found += 1;
                    roots &= roots - 1;
                }
            }
            base += BLOCK_LANES;
            // A degree-`deg` polynomial has at most `deg` roots in the
            // whole field: once all are found nothing remains to scan.
            if found >= deg || base >= self.n {
                return found;
            }
            // Advance every coefficient's lanes by one block: multiply by
            // the constant α^{-64·WB·i} via its precomputed matrix columns.
            for i in 0..deg {
                let planes = &mut acc[i * pw..(i + 1) * pw];
                let cols = &self.step[i * m..(i + 1) * m];
                let mut next = [[0u64; WB]; MAX_M];
                for b in 0..m {
                    let mut src = [0u64; WB];
                    src.copy_from_slice(&planes[b * WB..b * WB + WB]);
                    if src == [0u64; WB] {
                        continue;
                    }
                    let mut col = cols[b];
                    while col != 0 {
                        let j = col.trailing_zeros() as usize;
                        for (nw, &sw) in next[j].iter_mut().zip(&src) {
                            *nw ^= sw;
                        }
                        col &= col - 1;
                    }
                }
                for (p, n) in planes.chunks_exact_mut(WB).zip(&next) {
                    p.copy_from_slice(n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::BchCode;

    /// The position-serial reference: Horner-free per-position evaluation,
    /// exactly the shape the bit-sliced kernel replaced.
    fn slow_chien(code: &BchCode, sigma: &[u32]) -> Vec<usize> {
        let f = code.field();
        let order = f.order() as u64;
        let mut outp = Vec::new();
        for p in 0..code.len() as u64 {
            let x = f.alpha_pow(order - (p % order));
            let mut acc = 0u32;
            let mut xp = 1u32;
            for &c in sigma {
                if c != 0 {
                    acc ^= f.mul(c, xp);
                }
                xp = f.mul(xp, x);
            }
            if acc == 0 {
                outp.push(p as usize);
            }
        }
        outp
    }

    /// σ(x) = Π (1 − α^{p}·x) for the given error positions.
    fn locator_for(code: &BchCode, positions: &[usize]) -> Vec<u32> {
        let f = code.field();
        let mut sigma = vec![0u32; positions.len() + 1];
        sigma[0] = 1;
        for (deg, &p) in positions.iter().enumerate() {
            let x = f.alpha_pow(p as u64);
            for i in (1..=deg + 1).rev() {
                sigma[i] ^= f.mul(x, sigma[i - 1]);
            }
        }
        sigma
    }

    #[test]
    fn bit_sliced_matches_serial_reference_vlew() {
        let code = BchCode::vlew();
        let plan = ChienPlan::new(code.field(), code.t(), code.len());
        let mut acc = vec![0u64; plan.acc_len()];
        // Positions crossing block boundaries, the last partial block, and
        // adjacent lanes.
        for positions in [
            vec![0],
            vec![63],
            vec![64],
            vec![2311],
            vec![0, 1, 62, 63, 64, 65],
            vec![5, 300, 301, 1999, 2310, 2311],
            (0..22).map(|i| i * 105 + 2).collect::<Vec<_>>(),
        ] {
            let sigma = locator_for(&code, &positions);
            let mut out = Vec::new();
            let found = plan.search(code.field(), &sigma, &mut acc, &mut out);
            let mut want = positions.clone();
            want.sort_unstable();
            assert_eq!(out, want, "positions {positions:?}");
            assert_eq!(found, want.len());
            assert_eq!(out, slow_chien(&code, &sigma));
        }
    }

    #[test]
    fn bit_sliced_matches_serial_reference_small_codes() {
        // Codes whose length is not a multiple of 64 exercise the partial
        // last block; small m exercises few planes.
        for (m, t, k) in [(4u32, 2usize, 7usize), (6, 3, 20), (10, 14, 512)] {
            let code = BchCode::new(m, t, k).unwrap();
            let plan = ChienPlan::new(code.field(), code.t(), code.len());
            let mut acc = vec![0u64; plan.acc_len()];
            for w in 1..=t {
                let positions: Vec<usize> = (0..w).map(|i| (i * 37 + 3) % code.len()).collect();
                let mut dedup = positions.clone();
                dedup.sort_unstable();
                dedup.dedup();
                if dedup.len() != positions.len() {
                    continue;
                }
                let sigma = locator_for(&code, &positions);
                let mut out = Vec::new();
                plan.search(code.field(), &sigma, &mut acc, &mut out);
                assert_eq!(out, dedup, "m={m} t={t} w={w}");
                assert_eq!(out, slow_chien(&code, &sigma));
            }
        }
    }

    #[test]
    fn rootless_locator_finds_nothing() {
        // A locator whose roots all lie in the shortened-away region must
        // scan the whole word and report zero roots.
        let code = BchCode::new(6, 3, 20).unwrap();
        let f = code.field();
        // Root at position n (outside the shortened length but inside the
        // natural length 63).
        let outside = code.len();
        let sigma = vec![1, f.alpha_pow(outside as u64)];
        let plan = ChienPlan::new(f, code.t(), code.len());
        let mut acc = vec![0u64; plan.acc_len()];
        let mut out = Vec::new();
        let found = plan.search(f, &sigma, &mut acc, &mut out);
        assert_eq!(found, 0);
        assert!(out.is_empty());
        assert_eq!(slow_chien(&code, &sigma), Vec::<usize>::new());
    }
}
