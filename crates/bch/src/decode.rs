//! BCH decoding: syndromes, Berlekamp–Massey, Chien search.

use pmck_gf::BitPoly;

use crate::code::BchCode;
use crate::error::BchError;

/// The result of a successful [`BchCode::decode`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    corrected: Vec<usize>,
}

impl DecodeOutcome {
    /// The bit positions that were flipped to restore the codeword,
    /// ascending. Empty when the word was already clean.
    pub fn corrected_bits(&self) -> &[usize] {
        &self.corrected
    }

    /// The number of corrected bit errors.
    pub fn num_corrected(&self) -> usize {
        self.corrected.len()
    }

    /// Whether the received word was already a valid codeword.
    pub fn was_clean(&self) -> bool {
        self.corrected.is_empty()
    }
}

impl BchCode {
    /// Decodes `word` in place: computes syndromes, runs Berlekamp–Massey
    /// to find the error-locator polynomial, locates errors via Chien
    /// search, and flips the erroneous bits.
    ///
    /// On success returns which bits were corrected. Patterns of up to
    /// [`BchCode::t`] bit errors are always corrected exactly.
    ///
    /// # Errors
    ///
    /// * [`BchError::LengthMismatch`] if `word` is not `n` bits long.
    /// * [`BchError::Uncorrectable`] when the error pattern is detectably
    ///   beyond the code's capability (the word is left unmodified).
    ///   Note that, as with any bounded-distance decoder, patterns of more
    ///   than `t` errors may also *miscorrect* silently.
    pub fn decode(&self, word: &mut BitPoly) -> Result<DecodeOutcome, BchError> {
        if word.len() != self.len() {
            return Err(BchError::LengthMismatch(word.len(), self.len()));
        }
        let mut syndromes = vec![0u32; 2 * self.t];
        if self.syndromes_into(word, &mut syndromes) {
            return Ok(DecodeOutcome { corrected: vec![] });
        }
        let sigma = self.berlekamp_massey(&syndromes);
        let deg = sigma.len() - 1;
        if deg == 0 || deg > self.t {
            return Err(BchError::Uncorrectable);
        }
        let locations = self.chien_search(&sigma);
        if locations.len() != deg {
            return Err(BchError::Uncorrectable);
        }
        for &loc in &locations {
            word.flip(loc);
        }
        // A correct decode must yield a valid codeword; a miscorrection of
        // an overweight pattern can still land on a codeword (that is what
        // SDC is), but landing off-codeword means the decode failed.
        if !self.is_codeword(word) {
            for &loc in &locations {
                word.flip(loc);
            }
            return Err(BchError::Uncorrectable);
        }
        let mut corrected = locations;
        corrected.sort_unstable();
        Ok(DecodeOutcome { corrected })
    }

    /// Computes the 2t syndromes `S_j = r(alpha^j)`, `j = 1..=2t`.
    ///
    /// Runs the byte-sliced kernel (reduce mod the minimal polynomial of
    /// `alpha^j`, then evaluate the short remainder) and exploits the
    /// binary-code identity `S_{2j} = S_j^2`: only odd syndromes are
    /// evaluated directly.
    ///
    /// # Panics
    ///
    /// Panics if `word` is not `n` bits long.
    pub fn syndromes(&self, word: &BitPoly) -> Vec<u32> {
        let mut s = vec![0u32; 2 * self.t];
        self.syndromes_into(word, &mut s);
        s
    }

    /// Computes all 2t syndromes into `out` (`out[j-1] = S_j`) without
    /// allocating. Returns `true` when every syndrome is zero, i.e. the
    /// word is already a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `word` is not `n` bits long or `out.len() != 2t`.
    pub fn syndromes_into(&self, word: &BitPoly, out: &mut [u32]) -> bool {
        assert_eq!(word.len(), self.len(), "codeword length mismatch");
        self.plan.syndromes_into(&self.field, word, out)
    }

    /// Berlekamp–Massey: returns the error-locator polynomial sigma as a
    /// coefficient vector (index = degree, `sigma[0] == 1`).
    fn berlekamp_massey(&self, s: &[u32]) -> Vec<u32> {
        let f = &self.field;
        let n = s.len();
        let mut sigma = vec![0u32; n + 1];
        sigma[0] = 1;
        let mut b = sigma.clone();
        let mut l = 0usize; // current LFSR length
        let mut m = 1usize; // steps since last length change
        let mut bb = 1u32; // last nonzero discrepancy
        for i in 0..n {
            // Discrepancy d = S_i + sum_{j=1..l} sigma_j * S_{i-j}
            let mut d = s[i];
            for j in 1..=l {
                if sigma[j] != 0 && i >= j {
                    d ^= f.mul(sigma[j], s[i - j]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i {
                let t_saved = sigma.clone();
                let coef = f.div(d, bb).expect("bb is nonzero");
                for j in 0..n + 1 - m {
                    if b[j] != 0 {
                        sigma[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                l = i + 1 - l;
                b = t_saved;
                bb = d;
                m = 1;
            } else {
                let coef = f.div(d, bb).expect("bb is nonzero");
                for j in 0..n + 1 - m {
                    if b[j] != 0 {
                        sigma[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                m += 1;
            }
        }
        sigma.truncate(l + 1);
        while sigma.len() > 1 && *sigma.last().expect("nonempty") == 0 {
            sigma.pop();
        }
        sigma
    }

    /// Chien search: finds codeword positions `p` (within the shortened
    /// length) such that `sigma(alpha^{-p}) == 0`.
    fn chien_search(&self, sigma: &[u32]) -> Vec<usize> {
        let f = &self.field;
        let order = f.order() as u64;
        let mut out = Vec::new();
        for p in 0..self.len() as u64 {
            // Evaluate sigma at alpha^{-p}.
            let x = f.alpha_pow(order - (p % order));
            let mut acc = 0u32;
            let mut xp = 1u32;
            for &c in sigma {
                if c != 0 {
                    acc ^= f.mul(c, xp);
                }
                xp = f.mul(xp, x);
            }
            if acc == 0 {
                out.push(p as usize);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The seeded randomized properties (historical seeds 42, 7, 99, 1)
    // live in `tests/props.rs` on the harness runner with shrinking and
    // corpus replay; only deterministic/exhaustive checks remain inline.

    #[test]
    fn clean_word_decodes_with_no_corrections() {
        let code = BchCode::new(6, 3, 24).unwrap();
        let mut cw = code.encode(&BitPoly::from_u64(0xFACADE, 24));
        let out = code.decode(&mut cw).unwrap();
        assert!(out.was_clean());
    }

    #[test]
    fn corrects_up_to_t_errors_exhaustive_positions() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let data = BitPoly::from_u64(0x5A5A5, 20);
        let clean = code.encode(&data);
        // Every single-bit error.
        for i in 0..code.len() {
            let mut cw = clean.clone();
            cw.flip(i);
            let out = code.decode(&mut cw).unwrap();
            assert_eq!(out.corrected_bits(), &[i]);
            assert_eq!(cw, clean);
        }
        // Every double-bit error.
        for i in 0..code.len() {
            for j in (i + 1)..code.len() {
                let mut cw = clean.clone();
                cw.flip(i);
                cw.flip(j);
                let out = code.decode(&mut cw).unwrap();
                assert_eq!(out.corrected_bits(), &[i, j]);
                assert_eq!(cw, clean, "errors at {i},{j}");
            }
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let mut w = BitPoly::zero(code.len() + 1);
        assert!(matches!(
            code.decode(&mut w),
            Err(BchError::LengthMismatch(_, _))
        ));
    }

    #[test]
    fn errors_in_parity_region_are_corrected_too() {
        let code = BchCode::new(6, 3, 20).unwrap();
        let clean = code.encode(&BitPoly::from_u64(0x1234, 20));
        let mut cw = clean.clone();
        // All three errors inside the parity bits [0, r).
        cw.flip(0);
        cw.flip(1);
        cw.flip(code.parity_bits() - 1);
        code.decode(&mut cw).unwrap();
        assert_eq!(cw, clean);
    }
}
