//! BCH decoding: syndromes, Berlekamp–Massey, bit-sliced Chien search,
//! and an opt-in beyond-bound list decoder.
//!
//! The decoder is allocation-free on the hot path: syndromes, the BM
//! polynomials, the Chien plane accumulators, and the corrected-position
//! list all live in a reusable [`BchScratch`]. The `*_scratch` entry
//! points take an explicit scratch and return [`BchDecodeView`] slices
//! into it; the classic [`BchCode::decode`] borrows a per-thread pooled
//! scratch, so it too stops allocating internally once warm (only the
//! owned [`DecodeOutcome`] is heap-backed). [`BchCode::decode_batch`]
//! runs many words through one scratch so scrub and patrol sweeps keep
//! the plan tables hot and share every buffer.
//!
//! Correction is verified without re-reducing the whole word: a decode
//! proposing flips at positions `P` is valid iff the syndromes of the
//! error pattern match the received syndromes (`S_j(e) == S_j(r)` for
//! all `2t` of them — syndromes exactly characterize codeword
//! membership), which costs `deg·t` table lookups instead of another
//! 2312-bit polynomial reduction.

use std::cell::RefCell;

use pmck_gf::BitPoly;

use crate::code::BchCode;
use crate::error::BchError;

/// How far a decode is allowed to reach.
///
/// `Bounded` is the classic Berlekamp–Massey bounded-distance decoder:
/// up to `t` errors, miscorrection behavior identical to the PGZ
/// reference oracle. `BeyondBound` additionally runs an unraveling-style
/// list decoder when the bounded decode rejects: it re-decodes the same
/// syndromes under every single-position pre-flip hypothesis, correcting
/// weight `t+1` patterns when exactly one candidate codeword emerges and
/// rejecting (never guessing) when the list is empty or ambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecodePolicy {
    /// Bounded-distance decoding only: up to `t` errors.
    #[default]
    Bounded,
    /// Bounded first, then the unraveling list fallback at radius `t+1`.
    BeyondBound,
}

/// The result of a successful [`BchCode::decode`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    corrected: Vec<usize>,
}

impl DecodeOutcome {
    /// The bit positions that were flipped to restore the codeword,
    /// ascending. Empty when the word was already clean.
    pub fn corrected_bits(&self) -> &[usize] {
        &self.corrected
    }

    /// The number of corrected bit errors.
    pub fn num_corrected(&self) -> usize {
        self.corrected.len()
    }

    /// Whether the received word was already a valid codeword.
    pub fn was_clean(&self) -> bool {
        self.corrected.is_empty()
    }
}

/// A view of a successful decode, borrowing the scratch it ran in.
///
/// All accessors return slices into the scratch — no heap allocation.
/// Convert with [`BchDecodeView::to_outcome`] when the result must
/// outlive the scratch borrow.
#[derive(Debug, Clone, Copy)]
pub struct BchDecodeView<'s> {
    corrected: &'s [usize],
    t: usize,
}

impl BchDecodeView<'_> {
    /// The bit positions that were flipped to restore the codeword,
    /// ascending. Empty when the word was already clean.
    pub fn corrected_bits(&self) -> &[usize] {
        self.corrected
    }

    /// The number of corrected bit errors.
    pub fn num_corrected(&self) -> usize {
        self.corrected.len()
    }

    /// Whether the received word was already a valid codeword.
    pub fn was_clean(&self) -> bool {
        self.corrected.is_empty()
    }

    /// Whether the correction exceeded the bounded-distance radius `t`,
    /// i.e. only the beyond-bound list decoder could have produced it.
    pub fn beyond_bound(&self) -> bool {
        self.corrected.len() > self.t
    }

    /// Copies the view into an owned [`DecodeOutcome`].
    pub fn to_outcome(&self) -> DecodeOutcome {
        DecodeOutcome {
            corrected: self.corrected.to_vec(),
        }
    }
}

/// The per-word verdict of a [`BchCode::decode_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The word was already a valid codeword; untouched.
    Clean,
    /// `bits` bit flips restored the codeword in place. `beyond_bound`
    /// marks corrections only the list fallback could reach.
    Corrected {
        /// Number of bits flipped.
        bits: usize,
        /// Whether the correction exceeded the bounded radius `t`.
        beyond_bound: bool,
    },
    /// The pattern was rejected; the word is untouched.
    Uncorrectable,
}

impl BatchOutcome {
    /// The number of bits corrected (zero for clean and uncorrectable
    /// words).
    pub fn bits_corrected(&self) -> usize {
        match self {
            BatchOutcome::Corrected { bits, .. } => *bits,
            _ => 0,
        }
    }

    /// Whether the word was already clean.
    pub fn was_clean(&self) -> bool {
        matches!(self, BatchOutcome::Clean)
    }

    /// Whether the word was rejected as uncorrectable.
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, BatchOutcome::Uncorrectable)
    }
}

/// Reusable decoder working memory, sized once for a given code so that
/// every subsequent decode is heap-allocation-free (the batch-outcome
/// buffer grows to the largest batch seen, then stays).
///
/// A scratch built for one `(m, t, k)` geometry works for any
/// [`BchCode`] with the same geometry. Build one per decoding context
/// (engine, bench loop, test) and reuse it across calls.
#[derive(Debug, Clone)]
pub struct BchScratch {
    /// Received-word syndromes `S_1..S_2t` (`synd[j-1] = S_j`).
    synd: Vec<u32>,
    /// Error-pattern syndromes for the algebraic verification step.
    esynd: Vec<u32>,
    /// Error-locator polynomial σ (index = degree).
    sigma: Vec<u32>,
    /// BM correction polynomial B.
    bm_b: Vec<u32>,
    /// BM save buffer (old σ during length changes).
    bm_saved: Vec<u32>,
    /// Bit-sliced Chien plane accumulators (`t·m` words).
    acc: Vec<u64>,
    /// Corrected positions, ascending (≤ t+1 entries).
    positions: Vec<usize>,
    /// First list-decode candidate pattern (≤ t+1 entries).
    candidate: Vec<usize>,
    /// List-decode trial syndromes under a pre-flip hypothesis.
    trial: Vec<u32>,
    /// Incremental `α^{j·p}` state per odd `j` for trial syndromes.
    xj: Vec<u32>,
    /// Per-word verdicts of the last batch decode.
    outcomes: Vec<BatchOutcome>,
}

impl BchScratch {
    /// A scratch sized for `code`'s geometry.
    pub fn new(code: &BchCode) -> Self {
        let t2 = 2 * code.t;
        BchScratch {
            synd: vec![0; t2],
            esynd: vec![0; t2],
            sigma: vec![0; t2 + 1],
            bm_b: vec![0; t2 + 1],
            bm_saved: vec![0; t2 + 1],
            acc: vec![0; code.chien.acc_len()],
            positions: Vec::with_capacity(code.t + 1),
            candidate: Vec::with_capacity(code.t + 1),
            trial: vec![0; t2],
            xj: vec![0; code.t],
            outcomes: Vec::new(),
        }
    }
}

thread_local! {
    /// Per-thread scratch pool backing the classic (scratch-less) decode
    /// API, keyed by code geometry. The few geometries in play per
    /// thread make a linear scan cheaper than any map.
    static SCRATCH_POOL: RefCell<Vec<(u32, usize, usize, BchScratch)>> =
        const { RefCell::new(Vec::new()) };
}

impl BchCode {
    /// Decodes `word` in place: computes syndromes, runs Berlekamp–Massey
    /// to find the error-locator polynomial, locates errors via the
    /// bit-sliced Chien search, and flips the erroneous bits.
    ///
    /// On success returns which bits were corrected. Patterns of up to
    /// [`BchCode::t`] bit errors are always corrected exactly.
    ///
    /// Borrows a per-thread pooled scratch; use
    /// [`BchCode::decode_scratch`] to control the scratch explicitly.
    ///
    /// # Errors
    ///
    /// * [`BchError::LengthMismatch`] if `word` is not `n` bits long.
    /// * [`BchError::Uncorrectable`] when the error pattern is detectably
    ///   beyond the code's capability (the word is left unmodified).
    ///   Note that, as with any bounded-distance decoder, patterns of more
    ///   than `t` errors may also *miscorrect* silently.
    pub fn decode(&self, word: &mut BitPoly) -> Result<DecodeOutcome, BchError> {
        self.with_pooled_scratch(|code, scratch| {
            code.decode_scratch(word, scratch).map(|v| v.to_outcome())
        })
    }

    /// As [`BchCode::decode`], but running in the caller's `scratch` and
    /// returning a slice view into it. Performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// As [`BchCode::decode`].
    pub fn decode_scratch<'s>(
        &self,
        word: &mut BitPoly,
        scratch: &'s mut BchScratch,
    ) -> Result<BchDecodeView<'s>, BchError> {
        self.decode_core(word, scratch)?;
        Ok(BchDecodeView {
            corrected: &scratch.positions,
            t: self.t,
        })
    }

    /// Decodes `word` with the unraveling-style list fallback: the
    /// bounded-distance decode runs first, and when it rejects, every
    /// single-position pre-flip hypothesis is re-decoded on adjusted
    /// syndromes. A weight-`t+1` pattern is corrected iff exactly one
    /// candidate codeword emerges; an empty or ambiguous list rejects.
    ///
    /// Within radius `t+1` this never miscorrects: the true codeword is
    /// always in the list (any correct guess reduces the residual to
    /// weight `t`), so a wrong unique candidate cannot exist. The cost is
    /// `n` Berlekamp–Massey runs on the failure path (~ms-scale for the
    /// VLEW), which is why the policy is an opt-in recovery knob rather
    /// than the default.
    ///
    /// # Errors
    ///
    /// As [`BchCode::decode`]; [`BchError::Uncorrectable`] now also means
    /// the list was empty or ambiguous.
    pub fn decode_beyond_bound_scratch<'s>(
        &self,
        word: &mut BitPoly,
        scratch: &'s mut BchScratch,
    ) -> Result<BchDecodeView<'s>, BchError> {
        match self.decode_core(word, scratch) {
            Ok(()) => {}
            Err(BchError::Uncorrectable) => self.list_decode_core(word, scratch)?,
            Err(e) => return Err(e),
        }
        Ok(BchDecodeView {
            corrected: &scratch.positions,
            t: self.t,
        })
    }

    /// Decodes every word of `words` in place through one shared
    /// `scratch`, returning one [`BatchOutcome`] per word (same order).
    /// Boot scrubs and patrol sweeps use this to amortize table walks:
    /// the plan tables stay hot across the batch and no per-word state is
    /// re-allocated. Equivalent to [`BchCode::decode_scratch`] per word.
    ///
    /// # Panics
    ///
    /// Panics if any word is not `n` bits long (a batch is homogeneous by
    /// construction; per-word length errors would mask caller bugs).
    pub fn decode_batch<'s>(
        &self,
        words: &mut [BitPoly],
        scratch: &'s mut BchScratch,
    ) -> &'s [BatchOutcome] {
        self.decode_batch_policy(words, DecodePolicy::Bounded, scratch)
    }

    /// As [`BchCode::decode_batch`], with the decode reach selected by
    /// `policy` (see [`DecodePolicy`]).
    ///
    /// # Panics
    ///
    /// As [`BchCode::decode_batch`].
    pub fn decode_batch_policy<'s>(
        &self,
        words: &mut [BitPoly],
        policy: DecodePolicy,
        scratch: &'s mut BchScratch,
    ) -> &'s [BatchOutcome] {
        for w in words.iter_mut() {
            assert_eq!(w.len(), self.len(), "batch word length mismatch");
            let res = match policy {
                DecodePolicy::Bounded => self.decode_core(w, scratch),
                DecodePolicy::BeyondBound => match self.decode_core(w, scratch) {
                    Err(BchError::Uncorrectable) => self.list_decode_core(w, scratch),
                    other => other,
                },
            };
            let outcome = match res {
                Ok(()) if scratch.positions.is_empty() => BatchOutcome::Clean,
                Ok(()) => BatchOutcome::Corrected {
                    bits: scratch.positions.len(),
                    beyond_bound: scratch.positions.len() > self.t,
                },
                Err(_) => BatchOutcome::Uncorrectable,
            };
            scratch.outcomes.push(outcome);
        }
        // Keep only this batch's verdicts: drain older ones from the
        // front so the buffer's capacity is reused, not regrown.
        let start = scratch.outcomes.len() - words.len();
        scratch.outcomes.drain(..start);
        &scratch.outcomes
    }

    /// Computes the 2t syndromes `S_j = r(alpha^j)`, `j = 1..=2t`.
    ///
    /// Runs the byte-sliced kernel (reduce mod the minimal polynomial of
    /// `alpha^j`, then evaluate the short remainder) and exploits the
    /// binary-code identity `S_{2j} = S_j^2`: only odd syndromes are
    /// evaluated directly.
    ///
    /// Allocates the result; every internal decode path uses
    /// [`BchCode::syndromes_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `word` is not `n` bits long.
    pub fn syndromes(&self, word: &BitPoly) -> Vec<u32> {
        let mut s = vec![0u32; 2 * self.t];
        self.syndromes_into(word, &mut s);
        s
    }

    /// Computes all 2t syndromes into `out` (`out[j-1] = S_j`) without
    /// allocating. Returns `true` when every syndrome is zero, i.e. the
    /// word is already a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `word` is not `n` bits long or `out.len() != 2t`.
    pub fn syndromes_into(&self, word: &BitPoly, out: &mut [u32]) -> bool {
        assert_eq!(word.len(), self.len(), "codeword length mismatch");
        self.plan.syndromes_into(&self.field, word, out)
    }

    /// Runs `f` with the pooled scratch for this code's geometry,
    /// creating it on the thread's first decode of this geometry.
    fn with_pooled_scratch<T>(&self, f: impl FnOnce(&BchCode, &mut BchScratch) -> T) -> T {
        let key = (self.field.degree(), self.t, self.k);
        SCRATCH_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            let idx = match pool.iter().position(|&(m, t, k, _)| (m, t, k) == key) {
                Some(i) => i,
                None => {
                    pool.push((key.0, key.1, key.2, BchScratch::new(self)));
                    pool.len() - 1
                }
            };
            f(self, &mut pool[idx].3)
        })
    }

    /// The bounded-distance decode engine. On `Ok(())` the word has been
    /// corrected and verified and `scratch.positions` holds the flipped
    /// positions ascending (empty for a clean word); on error the word is
    /// unmodified. `scratch.synd` holds the received syndromes whenever
    /// the length check passed.
    fn decode_core(&self, word: &mut BitPoly, scratch: &mut BchScratch) -> Result<(), BchError> {
        if word.len() != self.len() {
            return Err(BchError::LengthMismatch(word.len(), self.len()));
        }
        scratch.positions.clear();
        // Fast path: a clean word exits before any locator machinery.
        if self.syndromes_into(word, &mut scratch.synd) {
            return Ok(());
        }
        let deg = self.berlekamp_massey_into(scratch);
        if deg == 0 || deg > self.t {
            return Err(BchError::Uncorrectable);
        }
        let found = self.chien.search(
            &self.field,
            &scratch.sigma[..=deg],
            &mut scratch.acc,
            &mut scratch.positions,
        );
        if found != deg {
            scratch.positions.clear();
            return Err(BchError::Uncorrectable);
        }
        // A correct decode must yield a valid codeword; landing
        // off-codeword means the decode failed. Verified algebraically:
        // the flipped word is a codeword iff the error pattern's
        // syndromes equal the received ones.
        if !self.error_syndromes_match(&scratch.positions, &scratch.synd, &mut scratch.esynd) {
            scratch.positions.clear();
            return Err(BchError::Uncorrectable);
        }
        for &p in &scratch.positions {
            word.flip(p);
        }
        Ok(())
    }

    /// The unraveling list decoder, run after a bounded-distance reject
    /// (`scratch.synd` holds the received syndromes). For every position
    /// `p`, the syndromes are adjusted by `α^{j·p}` (hypothesizing an
    /// error there) and re-decoded; each success yields a candidate
    /// pattern of weight `t+1`. Exactly one distinct candidate corrects;
    /// none or several reject with the word unmodified.
    fn list_decode_core(
        &self,
        word: &mut BitPoly,
        scratch: &mut BchScratch,
    ) -> Result<(), BchError> {
        let f = &self.field;
        let t2 = 2 * self.t;
        scratch.candidate.clear();
        scratch.xj.fill(1); // α^{j·0} for every odd j
        let mut found = false;
        for p in 0..self.len() {
            // Trial syndromes S'_j = S_j + α^{j·p}: odd from the
            // incremental state, even via the Frobenius square (squaring
            // distributes over the XOR adjustment).
            for i in 0..self.t {
                scratch.trial[2 * i] = scratch.synd[2 * i] ^ scratch.xj[i];
            }
            for j in (2..=t2).step_by(2) {
                scratch.trial[j - 1] = f.square(scratch.trial[j / 2 - 1]);
            }
            if self.trial_decode(p, scratch) {
                // `positions` now holds the candidate pattern (the guess
                // merged with the residual roots), weight t+1.
                if !found {
                    found = true;
                    std::mem::swap(&mut scratch.candidate, &mut scratch.positions);
                } else if scratch.candidate != scratch.positions {
                    // Two distinct codewords within radius t+1: refusing
                    // to guess is the whole point of the uniqueness rule.
                    scratch.positions.clear();
                    return Err(BchError::Uncorrectable);
                }
            }
            // Advance α^{j·p} → α^{j·(p+1)} for every odd j.
            for (i, x) in scratch.xj.iter_mut().enumerate() {
                *x = f.mul(*x, f.alpha_pow(2 * i as u64 + 1));
            }
        }
        if !found {
            scratch.positions.clear();
            return Err(BchError::Uncorrectable);
        }
        std::mem::swap(&mut scratch.candidate, &mut scratch.positions);
        for &p in &scratch.positions {
            word.flip(p);
        }
        Ok(())
    }

    /// One list-decode trial: BM + Chien + verification on the adjusted
    /// syndromes in `scratch.trial`, with the guess position `p` merged
    /// in. On `true`, `scratch.positions` holds the sorted candidate
    /// pattern of weight `deg + 1 = t + 1`.
    fn trial_decode(&self, p: usize, scratch: &mut BchScratch) -> bool {
        // An all-zero trial would mean a weight-1 pattern explains the
        // word — impossible after a bounded reject, which is complete
        // within radius t.
        if scratch.trial.iter().all(|&s| s == 0) {
            debug_assert!(false, "weight-1 residual after a bounded reject");
            return false;
        }
        let deg = {
            // BM runs on the trial syndromes: swap them into place so
            // `berlekamp_massey_into` reads its usual buffer.
            std::mem::swap(&mut scratch.synd, &mut scratch.trial);
            let deg = self.berlekamp_massey_into(scratch);
            std::mem::swap(&mut scratch.synd, &mut scratch.trial);
            deg
        };
        if deg == 0 || deg > self.t {
            return false;
        }
        scratch.positions.clear();
        let found = self.chien.search(
            &self.field,
            &scratch.sigma[..=deg],
            &mut scratch.acc,
            &mut scratch.positions,
        );
        if found != deg {
            return false;
        }
        if !self.error_syndromes_match(&scratch.positions, &scratch.trial, &mut scratch.esynd) {
            return false;
        }
        // The residual containing the guess itself would collapse to a
        // weight ≤ t pattern for the original syndromes — impossible
        // after a bounded reject; drop it defensively.
        if scratch.positions.contains(&p) {
            debug_assert!(false, "guess position re-appeared as a residual root");
            return false;
        }
        scratch.positions.push(p);
        scratch.positions.sort_unstable();
        true
    }

    /// Whether the error pattern at `positions` has exactly the syndromes
    /// `synd`: odd syndromes by direct evaluation (`deg` table lookups
    /// each), even ones via `S_2j = S_j²`. Equivalent to re-checking
    /// codeword membership of the flipped word, at a fraction of the
    /// cost.
    fn error_syndromes_match(&self, positions: &[usize], synd: &[u32], esynd: &mut [u32]) -> bool {
        let f = &self.field;
        let t2 = 2 * self.t;
        for j in (1..=t2 as u64).step_by(2) {
            let mut acc = 0u32;
            for &p in positions {
                acc ^= f.alpha_pow(j * p as u64);
            }
            esynd[j as usize - 1] = acc;
        }
        for j in (2..=t2).step_by(2) {
            esynd[j - 1] = f.square(esynd[j / 2 - 1]);
        }
        esynd == synd
    }

    /// Berlekamp–Massey over `scratch.synd`, leaving the error-locator
    /// polynomial σ in `scratch.sigma` (index = degree, `sigma[0] == 1`)
    /// and returning its degree. Allocation-free: the iteration's save
    /// buffer is swapped, not cloned.
    fn berlekamp_massey_into(&self, scratch: &mut BchScratch) -> usize {
        let f = &self.field;
        let BchScratch {
            synd: s,
            sigma,
            bm_b: b,
            bm_saved: saved,
            ..
        } = scratch;
        let n = s.len();
        sigma.fill(0);
        sigma[0] = 1;
        b.fill(0);
        b[0] = 1;
        let mut l = 0usize; // current LFSR length
        let mut m = 1usize; // steps since last length change
        let mut bb = 1u32; // last nonzero discrepancy
        for i in 0..n {
            // Discrepancy d = S_i + sum_{j=1..l} sigma_j * S_{i-j}
            let mut d = s[i];
            for j in 1..=l {
                if sigma[j] != 0 && i >= j {
                    d ^= f.mul(sigma[j], s[i - j]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i {
                saved.copy_from_slice(sigma);
                let coef = f.div(d, bb).expect("bb is nonzero");
                for j in 0..n + 1 - m {
                    if b[j] != 0 {
                        sigma[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                l = i + 1 - l;
                std::mem::swap(b, saved);
                bb = d;
                m = 1;
            } else {
                let coef = f.div(d, bb).expect("bb is nonzero");
                for j in 0..n + 1 - m {
                    if b[j] != 0 {
                        sigma[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                m += 1;
            }
        }
        (0..=l).rev().find(|&i| sigma[i] != 0).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The seeded randomized properties (historical seeds 42, 7, 99, 1)
    // live in `tests/props.rs` on the harness runner with shrinking and
    // corpus replay; the differential campaigns against the PGZ oracle
    // live in `crates/harness/tests/differential.rs`. Only
    // deterministic/exhaustive checks remain inline.

    #[test]
    fn clean_word_decodes_with_no_corrections() {
        let code = BchCode::new(6, 3, 24).unwrap();
        let mut cw = code.encode(&BitPoly::from_u64(0xFACADE, 24));
        let out = code.decode(&mut cw).unwrap();
        assert!(out.was_clean());
    }

    #[test]
    fn corrects_up_to_t_errors_exhaustive_positions() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let data = BitPoly::from_u64(0x5A5A5, 20);
        let clean = code.encode(&data);
        // Every single-bit error.
        for i in 0..code.len() {
            let mut cw = clean.clone();
            cw.flip(i);
            let out = code.decode(&mut cw).unwrap();
            assert_eq!(out.corrected_bits(), &[i]);
            assert_eq!(cw, clean);
        }
        // Every double-bit error.
        for i in 0..code.len() {
            for j in (i + 1)..code.len() {
                let mut cw = clean.clone();
                cw.flip(i);
                cw.flip(j);
                let out = code.decode(&mut cw).unwrap();
                assert_eq!(out.corrected_bits(), &[i, j]);
                assert_eq!(cw, clean, "errors at {i},{j}");
            }
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let mut w = BitPoly::zero(code.len() + 1);
        assert!(matches!(
            code.decode(&mut w),
            Err(BchError::LengthMismatch(_, _))
        ));
        let mut scratch = BchScratch::new(&code);
        assert!(matches!(
            code.decode_scratch(&mut w, &mut scratch),
            Err(BchError::LengthMismatch(_, _))
        ));
    }

    #[test]
    fn errors_in_parity_region_are_corrected_too() {
        let code = BchCode::new(6, 3, 20).unwrap();
        let clean = code.encode(&BitPoly::from_u64(0x1234, 20));
        let mut cw = clean.clone();
        // All three errors inside the parity bits [0, r).
        cw.flip(0);
        cw.flip(1);
        cw.flip(code.parity_bits() - 1);
        code.decode(&mut cw).unwrap();
        assert_eq!(cw, clean);
    }

    #[test]
    fn scratch_and_pooled_paths_agree() {
        let code = BchCode::new(8, 3, 64).unwrap();
        let mut scratch = BchScratch::new(&code);
        let data: Vec<u8> = (0..8).map(|i| (i * 31 + 7) as u8).collect();
        let clean = code.encode_bytes(&data);
        for errs in 0..=3usize {
            let mut w1 = clean.clone();
            let mut w2 = clean.clone();
            for e in 0..errs {
                w1.flip(e * 29 + 1);
                w2.flip(e * 29 + 1);
            }
            let pooled = code.decode(&mut w1).unwrap();
            let view = code.decode_scratch(&mut w2, &mut scratch).unwrap();
            assert_eq!(pooled.corrected_bits(), view.corrected_bits(), "{errs}");
            assert!(!view.beyond_bound());
            assert_eq!(w1, w2);
            assert_eq!(w1, clean);
        }
    }

    #[test]
    fn batch_matches_per_word_decodes() {
        let code = BchCode::new(8, 3, 64).unwrap();
        let mut scratch = BchScratch::new(&code);
        let clean = code.encode_bytes(&[0xA5; 8]);
        let mut words: Vec<BitPoly> = (0..6).map(|_| clean.clone()).collect();
        // Word 0 clean, 1..=3 errorful within radius, 4 overweight-but-
        // detected is not guaranteed, so craft 4 errors far apart, 5 clean.
        words[1].flip(3);
        words[2].flip(10);
        words[2].flip(40);
        words[3].flip(0);
        words[3].flip(33);
        words[3].flip(87);
        for p in [1, 20, 41, 62] {
            words[4].flip(p);
        }
        let outcomes = code.decode_batch(&mut words, &mut scratch).to_vec();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes[0].was_clean());
        assert_eq!(outcomes[1].bits_corrected(), 1);
        assert_eq!(outcomes[2].bits_corrected(), 2);
        assert_eq!(outcomes[3].bits_corrected(), 3);
        assert!(outcomes[5].was_clean());
        for (i, w) in words.iter().enumerate() {
            match outcomes[i] {
                BatchOutcome::Clean | BatchOutcome::Corrected { .. } => {
                    if !outcomes[i].is_uncorrectable() && outcomes[i].bits_corrected() <= 3 {
                        assert!(code.is_codeword(w), "word {i}");
                    }
                }
                BatchOutcome::Uncorrectable => {
                    // Untouched: still 4 flips away from clean.
                    assert!(!code.is_codeword(w));
                }
            }
        }
        // An empty batch is a no-op with an empty verdict list.
        let empty: &[BatchOutcome] = code.decode_batch(&mut [], &mut scratch);
        assert!(empty.is_empty());
    }

    #[test]
    fn beyond_bound_recovers_t_plus_one_or_rejects_never_miscorrects() {
        let code = BchCode::new(6, 2, 20).unwrap();
        let clean = code.encode(&BitPoly::from_u64(0x2F1D3, 20));
        let mut scratch = BchScratch::new(&code);
        let mut recovered = 0usize;
        let mut rejected = 0usize;
        // All weight-3 (t+1) patterns over a position subsample.
        let n = code.len();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    if (a + b + c) % 7 != 0 {
                        continue; // subsample for test time
                    }
                    let mut w = clean.clone();
                    w.flip(a);
                    w.flip(b);
                    w.flip(c);
                    // Skip patterns the bounded decoder resolves (possibly
                    // by miscorrection — that is bounded-distance SDC, not
                    // the list decoder's business).
                    let mut probe = w.clone();
                    if code.decode_scratch(&mut probe, &mut scratch).is_ok() {
                        continue;
                    }
                    match code.decode_beyond_bound_scratch(&mut w, &mut scratch) {
                        Ok(view) => {
                            assert_eq!(view.corrected_bits(), &[a, b, c]);
                            assert!(view.beyond_bound());
                            assert_eq!(w, clean, "pattern {a},{b},{c}");
                            recovered += 1;
                        }
                        Err(BchError::Uncorrectable) => {
                            // Ambiguous list: word must be untouched.
                            let mut expect = clean.clone();
                            expect.flip(a);
                            expect.flip(b);
                            expect.flip(c);
                            assert_eq!(w, expect);
                            rejected += 1;
                        }
                        Err(e) => panic!("unexpected error {e:?}"),
                    }
                }
            }
        }
        assert!(recovered > 0, "list decoder never fired");
        // Either outcome is legal; what is *illegal* is a silent
        // miscorrection, asserted above by exact ground-truth recovery.
        let _ = rejected;
    }
}
