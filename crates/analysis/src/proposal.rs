//! Reliability of the proposal itself: UE rates for both tiers, closing
//! the loop on the paper's "<1 UE per 10¹⁵ blocks" claim.

use crate::prob::{binom_tail_ge, binom_tail_gt, byte_error_rate};

/// Probability a single VLEW (2048 data + 264 code bits, t=22) is
/// uncorrectable at bit error rate `rber` — the boot-tier per-word UE
/// probability (§V-B).
pub fn vlew_ue_probability(rber: f64) -> f64 {
    binom_tail_gt(2048 + 264, 22, rber)
}

/// Per-block UE probability at boot: a block is lost if its stripe's
/// VLEWs fail beyond the chipkill budget. With no chip failure present, a
/// block is unrecoverable only if some chip's VLEW covering it fails
/// *and* the RS erasure path cannot absorb it — i.e. two or more of the
/// stripe's nine VLEWs fail (one failed chip is rebuilt via erasures).
pub fn boot_block_ue_rate(rber: f64) -> f64 {
    let p = vlew_ue_probability(rber);
    // P(>= 2 of 9 fail); each surviving block in the stripe is lost.
    let nine_choose = |k: usize| crate::prob::ln_choose(9, k).exp();
    let mut total = 0.0;
    for k in 2..=9 {
        total += nine_choose(k) * p.powi(k as i32) * (1.0 - p).powi(9 - k as i32);
    }
    total
}

/// Per-block UE probability at runtime (no chip failure). A runtime UE
/// requires the RS tier to reject *and* the VLEW tier to fail; since the
/// VLEW is the final arbiter and sees the same cells, the unconditional
/// VLEW failure probability upper-bounds the block's runtime UE rate —
/// and at runtime RBERs it is already orders of magnitude under target.
pub fn runtime_block_ue_rate(rber: f64) -> f64 {
    vlew_ue_probability(rber)
}

/// The fraction of runtime reads whose RS tier rejects (≥3 byte errors:
/// the VLEW fallback trigger), re-exported here for UE bookkeeping.
pub fn runtime_fallback_rate(rber: f64) -> f64 {
    binom_tail_ge(72, 3, byte_error_rate(rber))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BOOT_RBER, UE_TARGET};

    #[test]
    fn single_vlew_meets_per_word_budget() {
        // t=22 was chosen so the per-word failure probability sits at or
        // under ~1e-15 at boot RBER.
        let p = vlew_ue_probability(BOOT_RBER);
        assert!(p < 3e-15, "got {p:e}");
        assert!(p > 1e-18, "not absurdly conservative: {p:e}");
    }

    #[test]
    fn boot_block_ue_meets_target() {
        let ue = boot_block_ue_rate(BOOT_RBER);
        assert!(ue < UE_TARGET, "got {ue:e}");
    }

    #[test]
    fn runtime_block_ue_is_far_below_boot() {
        let rt = runtime_block_ue_rate(2e-4);
        let boot = vlew_ue_probability(BOOT_RBER);
        assert!(rt < boot, "runtime {rt:e} vs boot-word {boot:e}");
        assert!(rt < UE_TARGET, "runtime UE {rt:e}");
    }

    #[test]
    fn ue_rates_are_monotone_in_rber() {
        let mut prev = 0.0;
        for &r in &[1e-5, 1e-4, 5e-4, 1e-3, 2e-3] {
            let v = vlew_ue_probability(r);
            assert!(v >= prev);
            prev = v;
        }
    }
}
