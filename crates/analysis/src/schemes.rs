//! Storage cost of extending DRAM chipkill-correct schemes to NVRAM RBERs
//! (paper Figure 2 and §III-B).
//!
//! Each model finds the minimum code strength meeting the UE target at a
//! given RBER, then reports *total* storage cost including chip-failure
//! protection. The paper's headline: at RBER 10⁻³ the cheapest extension
//! costs ≈69%, versus 27% for the proposal.

use crate::prob::{binom_tail_gt, byte_error_rate};
use crate::storage::{bch_code_bits, min_rs_t};

/// A DRAM chipkill-correct scheme extended to tolerate NVRAM RBER.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtendedScheme {
    /// XED (ISCA'16): a BCH word per 8 B of per-chip data, plus a parity
    /// chip for chip failures.
    Xed,
    /// The Samsung study (HPCA'17): a BCH word per 16 B of per-chip data,
    /// plus a parity chip.
    Samsung,
    /// DUO (HPCA'18): rank-level RS per 64 B block; one check byte per
    /// chip-failure erasure (8 total) and two per random byte error.
    Duo,
}

impl ExtendedScheme {
    /// All schemes in Figure 2's order.
    pub const ALL: [ExtendedScheme; 3] = [
        ExtendedScheme::Xed,
        ExtendedScheme::Samsung,
        ExtendedScheme::Duo,
    ];

    /// Scheme name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ExtendedScheme::Xed => "XED-extended",
            ExtendedScheme::Samsung => "Samsung-extended",
            ExtendedScheme::Duo => "DUO-extended",
        }
    }

    /// Total storage cost (fraction of data storage) to meet `ue_target`
    /// per 64 B block at bit error rate `rber`, or `None` if infeasible.
    ///
    /// For the per-chip BCH schemes the per-block UE probability is the
    /// union bound over the words a block touches; total cost adds the
    /// parity chip: `ovh + 1/8 · (1 + ovh)`.
    pub fn total_cost(self, rber: f64, ue_target: f64) -> Option<f64> {
        match self {
            ExtendedScheme::Xed => per_chip_bch_cost(64, 8, rber, ue_target),
            ExtendedScheme::Samsung => per_chip_bch_cost(128, 4, rber, ue_target),
            ExtendedScheme::Duo => {
                let t = min_rs_t(64, 8, rber, ue_target, 128)?;
                Some((8 + 2 * t) as f64 / 64.0)
            }
        }
    }
}

impl std::fmt::Display for ExtendedScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost of a per-chip BCH organization: each `word_bits` of per-chip data
/// gets its own BCH word; a 64 B block spans `words_per_block` such words;
/// a parity chip covers chip failures.
fn per_chip_bch_cost(
    word_bits: usize,
    words_per_block: usize,
    rber: f64,
    ue_target: f64,
) -> Option<f64> {
    let t = (1..=word_bits).find(|&t| {
        let n = word_bits + bch_code_bits(t, word_bits);
        // Union bound across the words a block touches.
        binom_tail_gt(n, t, rber) * words_per_block as f64 <= ue_target
    })?;
    let ovh = bch_code_bits(t, word_bits) as f64 / word_bits as f64;
    Some(ovh + (1.0 / 8.0) * (1.0 + ovh))
}

/// The cheapest extended scheme and its cost at `rber`, or `None` if all
/// are infeasible.
pub fn cheapest_extension(rber: f64, ue_target: f64) -> Option<(ExtendedScheme, f64)> {
    ExtendedScheme::ALL
        .iter()
        .filter_map(|&s| s.total_cost(rber, ue_target).map(|c| (s, c)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// Figure 2 as data: `(rber, cost per scheme in `ExtendedScheme::ALL`
/// order)` for each requested RBER.
pub fn figure2_series(rbers: &[f64], ue_target: f64) -> Vec<(f64, Vec<Option<f64>>)> {
    rbers
        .iter()
        .map(|&r| {
            (
                r,
                ExtendedScheme::ALL
                    .iter()
                    .map(|&s| s.total_cost(r, ue_target))
                    .collect(),
            )
        })
        .collect()
}

/// Sanity helper used in tests and experiments: DUO's byte-error rate for
/// a given bit rate (exposed for reporting).
pub fn duo_byte_rate(rber: f64) -> f64 {
    byte_error_rate(rber)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UE_TARGET;

    #[test]
    fn costs_rise_with_rber() {
        for scheme in ExtendedScheme::ALL {
            let lo = scheme.total_cost(1e-5, UE_TARGET).unwrap();
            let hi = scheme.total_cost(1e-3, UE_TARGET).unwrap();
            assert!(hi > lo, "{scheme}: {lo} -> {hi}");
        }
    }

    #[test]
    fn cheapest_extension_at_1e3_is_expensive() {
        // Paper: the lowest storage cost for 1e-3 RBER is 69%. Exact
        // bookkeeping differs slightly; the reproduced minimum must land
        // in the same "prohibitively expensive" band (>= 55%), far above
        // the proposal's 27%.
        let (scheme, cost) = cheapest_extension(1e-3, UE_TARGET).unwrap();
        assert!(cost >= 0.55, "{scheme} at {cost}");
        assert!(cost <= 0.85, "{scheme} at {cost}");
    }

    #[test]
    fn duo_is_cheapest_at_high_rber() {
        // Rank-level RS amortizes better than per-8B BCH at high RBER.
        let (scheme, _) = cheapest_extension(1e-3, UE_TARGET).unwrap();
        assert_eq!(scheme, ExtendedScheme::Duo);
    }

    #[test]
    fn xed_is_cheap_at_dram_like_rates() {
        // At DRAM-ish RBER every scheme is affordable (cost dominated by
        // the parity chip, ≈12.5–35%).
        for scheme in ExtendedScheme::ALL {
            let c = scheme.total_cost(1e-7, UE_TARGET).unwrap();
            assert!(c < 0.45, "{scheme}: {c}");
        }
    }

    #[test]
    fn figure2_series_has_all_schemes() {
        let series = figure2_series(&[1e-5, 1e-4, 1e-3], UE_TARGET);
        assert_eq!(series.len(), 3);
        for (_, costs) in &series {
            assert_eq!(costs.len(), 3);
            assert!(costs.iter().all(|c| c.is_some()));
        }
    }
}
