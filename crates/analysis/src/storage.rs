//! Storage-cost models for BCH/RS protection (paper §III-A, §IV, Fig 4).

use crate::prob::{binom_tail_gt, byte_error_rate};

/// BCH code bits needed to correct `t` errors over `k_bits` of data,
/// using the paper's formula `t · (⌊log2(k)⌋ + 1)`.
///
/// # Examples
///
/// ```
/// // 14-bit-EC over a 64 B block: 14 × 10 = 140 bits (~28% overhead).
/// assert_eq!(pmck_analysis::storage::bch_code_bits(14, 512), 140);
/// // The 22-bit-EC VLEW over 256 B: 22 × 12 = 264 bits = 33 B.
/// assert_eq!(pmck_analysis::storage::bch_code_bits(22, 2048), 264);
/// ```
pub fn bch_code_bits(t: usize, k_bits: usize) -> usize {
    assert!(k_bits > 0, "k_bits must be positive");
    let log2k = usize::BITS as usize - 1 - k_bits.leading_zeros() as usize;
    t * (log2k + 1)
}

/// BCH storage overhead `r / k` for `t`-bit correction over `k_bits`.
pub fn bch_overhead(t: usize, k_bits: usize) -> f64 {
    bch_code_bits(t, k_bits) as f64 / k_bits as f64
}

/// The smallest `t` such that a `k_bits`-data BCH word at bit error rate
/// `rber` has `P(more than t errors) <= ue_target`, accounting for errors
/// in the code bits themselves (the word length grows with `t`).
///
/// Returns `None` if no `t <= max_t` meets the target.
pub fn min_bch_t(k_bits: usize, rber: f64, ue_target: f64, max_t: usize) -> Option<usize> {
    (1..=max_t).find(|&t| {
        let n = k_bits + bch_code_bits(t, k_bits);
        binom_tail_gt(n, t, rber) <= ue_target
    })
}

/// Total storage cost of the paper's storage-inspired organization: a
/// `data_bytes` VLEW per chip (BCH at the minimum `t` for `ue_target`)
/// plus one parity chip per `data_chips` data chips:
/// `cost = r/k + (1/data_chips) · (1 + r/k)`.
///
/// Returns `(t, cost)`, or `None` if no feasible `t` exists.
pub fn vlew_plus_parity_cost(
    data_bytes: usize,
    rber: f64,
    ue_target: f64,
    data_chips: usize,
) -> Option<(usize, f64)> {
    let k_bits = data_bytes * 8;
    let t = min_bch_t(k_bits, rber, ue_target, 512)?;
    let overhead = bch_overhead(t, k_bits);
    let cost = overhead + (1.0 / data_chips as f64) * (1.0 + overhead);
    Some((t, cost))
}

/// Storage cost of protecting each 64 B block with a dedicated `t`-bit-EC
/// BCH (the §III-A construction). `t = 14` gives the paper's 28% baseline;
/// `t = 78` (to absorb a 64-bit chip failure on top) gives its 152%.
pub fn per_block_bch_cost(t: usize) -> f64 {
    bch_overhead(t, 512)
}

/// The smallest number of correctable byte errors `t` such that an RS word
/// with `data_bytes` data, `erasure_check_bytes` erasure budget and `2t`
/// error-check bytes meets `ue_target` at bit rate `rber`.
///
/// Returns `None` if no `t <= max_t` meets the target.
pub fn min_rs_t(
    data_bytes: usize,
    erasure_check_bytes: usize,
    rber: f64,
    ue_target: f64,
    max_t: usize,
) -> Option<usize> {
    let q = byte_error_rate(rber);
    (1..=max_t).find(|&t| {
        let n = data_bytes + erasure_check_bytes + 2 * t;
        binom_tail_gt(n, t, q) <= ue_target
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BOOT_RBER, UE_TARGET};

    #[test]
    fn paper_bch_sizes() {
        assert_eq!(bch_code_bits(14, 512), 140);
        assert_eq!(bch_code_bits(78, 512), 780);
        assert_eq!(bch_code_bits(22, 2048), 264);
        assert_eq!(bch_code_bits(41, 4096), 533);
    }

    #[test]
    fn paper_overheads() {
        // §III-A: 14-EC ≈ 28%, 78-EC ≈ 152%.
        assert!((per_block_bch_cost(14) - 0.2734).abs() < 1e-3);
        assert!((per_block_bch_cost(78) - 1.5234).abs() < 1e-3);
    }

    #[test]
    fn min_t_reproduces_the_papers_design_points() {
        // 64 B block at 1e-3 needs 14-bit EC (§III-A).
        assert_eq!(min_bch_t(512, BOOT_RBER, UE_TARGET, 100), Some(14));
        // 256 B VLEW at 1e-3 needs 22-bit EC (§IV/V).
        assert_eq!(min_bch_t(2048, BOOT_RBER, UE_TARGET, 100), Some(22));
    }

    #[test]
    fn vlew_total_cost_is_27_percent() {
        let (t, cost) = vlew_plus_parity_cost(256, BOOT_RBER, UE_TARGET, 8).unwrap();
        assert_eq!(t, 22);
        // 33/256 + 1/8·(1+33/256) = 0.2699…
        assert!((cost - 0.27).abs() < 0.005, "cost {cost}");
    }

    #[test]
    fn longer_words_cost_less_figure4_trend() {
        let costs: Vec<f64> = [64usize, 128, 256, 512, 1024]
            .iter()
            .map(|&bytes| {
                vlew_plus_parity_cost(bytes, BOOT_RBER, UE_TARGET, 8)
                    .unwrap()
                    .1
            })
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "cost must not increase with length");
        }
        // 64 B word is much more expensive than 256 B.
        assert!(costs[0] > 0.35 && costs[2] < 0.28);
    }

    #[test]
    fn min_t_infeasible_returns_none() {
        assert_eq!(min_bch_t(512, 0.4, 1e-15, 4), None);
    }

    #[test]
    fn min_rs_t_sane() {
        // At boot RBER, DUO-style per-block RS needs roughly 15–18 error
        // corrections on top of the 8 erasure bytes.
        let t = min_rs_t(64, 8, BOOT_RBER, UE_TARGET, 64).unwrap();
        assert!((14..=20).contains(&t), "t={t}");
    }
}
