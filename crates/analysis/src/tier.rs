//! Per-tier reliability of the adaptive protection layouts.
//!
//! The engine can run each region at one of three tiers (see
//! `pmck-core`'s `Layout` trait): the RS-only tier drops the VLEW and
//! reclaims its code area as bonus capacity, the paper tier is the
//! fixed RS+VLEW design point (§V), and the dense tier halves the VLEW
//! data span so the same t=22 BCH code covers 128 B instead of 256 B.
//! This module gives each tier's analytic per-block UE rate as a
//! function of RBER, which the `frontier` experiment combines with the
//! layouts' storage costs into the storage-overhead-vs-UBER frontier.

use crate::prob::{binom_tail_gt, byte_error_rate};
use crate::proposal::vlew_ue_probability;

/// Per-block UE probability of the RS-only tier. Without a VLEW there
/// is no fallback: the block is lost as soon as its 72-byte RS codeword
/// carries more byte errors than the code corrects (4, with all eight
/// check symbols spent on errors).
pub fn rs_only_block_ue_rate(rber: f64) -> f64 {
    binom_tail_gt(72, 4, byte_error_rate(rber))
}

/// Per-block UE probability of the paper tier at runtime — the VLEW is
/// the final arbiter, so its failure probability (2048 + 264 bits,
/// t=22) upper-bounds the block UE rate.
pub fn paper_block_ue_rate(rber: f64) -> f64 {
    vlew_ue_probability(rber)
}

/// Probability a dense-tier VLEW (1024 data + 264 code bits, t=22) is
/// uncorrectable at bit error rate `rber`. Halving the data span keeps
/// the code bytes and the correction radius, so the same t covers
/// relatively twice the error density.
pub fn dense_vlew_ue_probability(rber: f64) -> f64 {
    binom_tail_gt(1024 + 264, 22, rber)
}

/// Per-block UE probability of the dense tier at runtime (same
/// final-arbiter bound as [`paper_block_ue_rate`]).
pub fn dense_block_ue_rate(rber: f64) -> f64 {
    dense_vlew_ue_probability(rber)
}

/// The per-block UE rates of the three tiers at `rber`, cheapest tier
/// first: `[rs_only, paper, dense]`.
pub fn tier_ue_rates(rber: f64) -> [f64; 3] {
    [
        rs_only_block_ue_rate(rber),
        paper_block_ue_rate(rber),
        dense_block_ue_rate(rber),
    ]
}

/// Index (into [`tier_ue_rates`] order) of the cheapest tier whose UE
/// rate meets `ue_target` at `rber`, or `None` when even the dense tier
/// misses the target.
pub fn cheapest_tier(rber: f64, ue_target: f64) -> Option<usize> {
    tier_ue_rates(rber).iter().position(|&ue| ue < ue_target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BOOT_RBER, RUNTIME_RBER_PCM_HOURLY, UE_TARGET};

    #[test]
    fn tiers_order_by_strength_at_fixed_rber() {
        for &rber in &[1e-6, 1e-5, 1e-4, 1e-3] {
            let [rs, paper, dense] = tier_ue_rates(rber);
            assert!(rs > paper, "rs {rs:e} vs paper {paper:e} at {rber:e}");
            assert!(paper > dense, "paper {paper:e} vs dense {dense:e}");
        }
    }

    #[test]
    fn rs_only_suffices_when_pristine() {
        // At very low RBER the RS-only tier already meets the target —
        // the basis for reclaiming the VLEW code area as bonus blocks.
        // The crossover sits near 4e-6.
        assert_eq!(cheapest_tier(3e-6, UE_TARGET), Some(0));
        assert!(rs_only_block_ue_rate(3e-6) < UE_TARGET);
        assert!(rs_only_block_ue_rate(5e-6) > UE_TARGET);
    }

    #[test]
    fn paper_tier_covers_the_runtime_design_points() {
        // The paper's fixed 27% point: RS+VLEW meets the target at the
        // quoted runtime RBERs where RS-only no longer does.
        assert_eq!(cheapest_tier(RUNTIME_RBER_PCM_HOURLY, UE_TARGET), Some(1));
        assert!(rs_only_block_ue_rate(RUNTIME_RBER_PCM_HOURLY) > UE_TARGET);
        assert!(paper_block_ue_rate(RUNTIME_RBER_PCM_HOURLY) < UE_TARGET);
    }

    #[test]
    fn dense_tier_extends_past_boot_rber() {
        // Beyond ~1e-3 the paper tier's word UE rate crosses the
        // target; the dense tier holds on to ~1.8e-3.
        assert!(dense_block_ue_rate(BOOT_RBER) < UE_TARGET);
        assert!(dense_block_ue_rate(1.5e-3) < UE_TARGET);
        assert!(paper_block_ue_rate(1.5e-3) > UE_TARGET);
        assert_eq!(cheapest_tier(1.5e-3, UE_TARGET), Some(2));
        // Past the dense tier's own crossover no tier meets the target.
        assert_eq!(cheapest_tier(3e-3, UE_TARGET), None);
    }

    #[test]
    fn all_rates_are_monotone_in_rber() {
        let mut prev = [0.0; 3];
        for &r in &[1e-6, 1e-5, 1e-4, 1e-3, 3e-3] {
            let now = tier_ue_rates(r);
            for (a, b) in prev.iter().zip(now.iter()) {
                assert!(b >= a);
            }
            prev = now;
        }
    }
}
