//! Log-space combinatorial probability, accurate for the astronomically
//! small tails that reliability targets live in (10⁻¹⁵ … 10⁻³⁰).

use std::sync::Mutex;

/// Natural log of `n!`, exact summation with caching.
///
/// # Examples
///
/// ```
/// let v = pmck_analysis::prob::ln_factorial(5);
/// assert!((v - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: usize) -> f64 {
    static TABLE: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let mut table = TABLE.lock().expect("ln_factorial table lock");
    if table.is_empty() {
        table.push(0.0); // ln 0! = 0
    }
    while table.len() <= n {
        let k = table.len();
        let prev = table[k - 1];
        table.push(prev + (k as f64).ln());
    }
    table[n]
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The binomial probability mass `P(X = k)` for `X ~ Binomial(n, p)`.
pub fn binom_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_p.exp()
}

/// The upper tail `P(X >= k0)` for `X ~ Binomial(n, p)`.
///
/// Sums term by term from `k0` upward with early exit once terms stop
/// contributing, so tails of 10⁻³⁰ remain accurate.
pub fn binom_tail_ge(n: usize, k0: usize, p: f64) -> f64 {
    if k0 == 0 {
        return 1.0;
    }
    if k0 > n || p == 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut term = binom_pmf(n, k0, p);
    let mut k = k0;
    loop {
        sum += term;
        k += 1;
        if k > n || term == 0.0 {
            break;
        }
        // ratio P(k)/P(k-1) = (n-k+1)/k * p/(1-p)
        let ratio = (n - k + 1) as f64 / k as f64 * p / (1.0 - p);
        term *= ratio;
        if term < sum * 1e-18 {
            sum += term; // final correction
            break;
        }
    }
    sum.min(1.0)
}

/// The strict upper tail `P(X > k0) = P(X >= k0 + 1)`.
pub fn binom_tail_gt(n: usize, k0: usize, p: f64) -> f64 {
    binom_tail_ge(n, k0 + 1, p)
}

/// The byte-error rate implied by an i.i.d. bit error rate `p`:
/// `q = 1 − (1 − p)^8`. (A byte is erroneous if any of its bits flipped.)
pub fn byte_error_rate(bit_rate: f64) -> f64 {
    1.0 - (1.0 - bit_rate).powi(8)
}

/// Distribution of the number of bit errors in an access of `n_bits`
/// bits at rate `p`, for counts `0..=max_count`, plus the residual tail
/// `P(X > max_count)` as the final element. Length is `max_count + 2`.
pub fn error_count_distribution(n_bits: usize, p: f64, max_count: usize) -> Vec<f64> {
    let mut out: Vec<f64> = (0..=max_count).map(|k| binom_pmf(n_bits, k, p)).collect();
    out.push(binom_tail_gt(n_bits, max_count, p));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_known_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_choose_known_values() {
        assert!((ln_choose(72, 2) - 2556f64.ln()).abs() < 1e-9);
        assert!((ln_choose(72, 4) - 1_028_790f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        let n = 100;
        let p = 0.03;
        let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_complements_pmf() {
        let n = 576;
        let p = 2e-4;
        let lhs = binom_tail_ge(n, 3, p);
        let rhs = 1.0 - binom_pmf(n, 0, p) - binom_pmf(n, 1, p) - binom_pmf(n, 2, p);
        assert!((lhs - rhs).abs() / lhs < 1e-9);
    }

    #[test]
    fn tiny_tails_are_positive_and_tiny() {
        // VLEW design point: 2312-bit word at 1e-3; P(>22) must be ≈1e-15.
        let p = binom_tail_gt(2312, 22, 1e-3);
        assert!(p > 1e-17 && p < 1e-13, "got {p:e}");
    }

    #[test]
    fn edge_cases() {
        assert_eq!(binom_tail_ge(10, 0, 0.5), 1.0);
        assert_eq!(binom_tail_ge(10, 11, 0.5), 0.0);
        assert_eq!(binom_tail_ge(10, 3, 0.0), 0.0);
        assert_eq!(binom_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(10, 10, 1.0), 1.0);
    }

    #[test]
    fn byte_rate_approximation() {
        let q = byte_error_rate(2e-4);
        assert!((q - 1.5988e-3).abs() < 1e-6);
    }

    #[test]
    fn figure7_distribution() {
        // Figure 7 counts bit errors per 64 B request (512 bits) at 2e-4:
        // >99.98% of accesses have ≤ 2 errors.
        let dist = error_count_distribution(512, 2e-4, 4);
        let le2: f64 = dist[0] + dist[1] + dist[2];
        assert!(le2 > 0.9998, "got {le2}");
        // Over the whole 72 B RS word (576 bits), ~1.5e-7 of accesses have
        // five or more errors (§V-C).
        let ge5 = binom_tail_ge(576, 5, 2e-4);
        assert!(ge5 > 1e-7 && ge5 < 2e-7, "got {ge5:e}");
    }
}
