//! Memory-bandwidth overhead models (paper Figure 5, §IV, §V-C/D).

use crate::prob::binom_tail_ge;

/// Geometry of the paper's VLEW layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlewGeometry {
    /// Data blocks spanned by one VLEW's data (256 B / 8 B = 32).
    pub data_blocks: usize,
    /// Blocks spanned by one VLEW's code bits (⌈33 B / 8 B⌉ = 5, but the
    /// paper counts 33/8 ≈ 4 as transferred block-equivalents).
    pub code_blocks: usize,
}

impl Default for VlewGeometry {
    fn default() -> Self {
        VlewGeometry {
            data_blocks: 32,
            code_blocks: 4,
        }
    }
}

impl VlewGeometry {
    /// Extra blocks fetched to VLEW-correct one block:
    /// `data_blocks + code_blocks − 1` (the block itself was already
    /// fetched). Paper: 32 + 4 − 1 = 35.
    pub fn extra_blocks_per_correction(&self) -> usize {
        self.data_blocks + self.code_blocks - 1
    }
}

/// Fraction of 72 B accesses (block + check bytes, 576 bits) containing at
/// least one bit error at rate `rber`. Paper: ≈4% at 7·10⁻⁵, ≈10.3% at
/// 2·10⁻⁴.
pub fn fraction_erroneous_accesses(rber: f64) -> f64 {
    binom_tail_ge(576, 1, rber)
}

/// Read bandwidth overhead of protecting memory with VLEWs alone: every
/// erroneous access over-fetches the whole VLEW. Paper: 140% at 7·10⁻⁵,
/// 360% at 2·10⁻⁴.
pub fn naive_vlew_read_overhead(rber: f64, geom: VlewGeometry) -> f64 {
    fraction_erroneous_accesses(rber) * geom.extra_blocks_per_correction() as f64
}

/// Write bandwidth overhead models of Figure 5 / §V-D, as multiples of
/// the demand write traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteScheme {
    /// Naive VLEW: 4 overhead writes of code bits per data write (400%).
    NaiveVlew,
    /// In-chip encoder removes code-bit writes, but old data must be
    /// fetched (for error checking) and sent back: 200%.
    InChipEncoder,
    /// Old value served from the LLC (OMV hit), but still sent to memory
    /// alongside the new data: 100%.
    OmvInLlc,
    /// The full proposal: the write carries `old ⊕ new` (bitwise sum), so
    /// no extra transfers at all: 0%.
    BitwiseSum,
}

impl WriteScheme {
    /// All schemes, in increasing order of optimization.
    pub const ALL: [WriteScheme; 4] = [
        WriteScheme::NaiveVlew,
        WriteScheme::InChipEncoder,
        WriteScheme::OmvInLlc,
        WriteScheme::BitwiseSum,
    ];

    /// The write bandwidth overhead (1.0 = +100%).
    pub fn overhead(self) -> f64 {
        match self {
            WriteScheme::NaiveVlew => 4.0,
            WriteScheme::InChipEncoder => 2.0,
            WriteScheme::OmvInLlc => 1.0,
            WriteScheme::BitwiseSum => 0.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WriteScheme::NaiveVlew => "naive VLEW (RMW of code bits)",
            WriteScheme::InChipEncoder => "in-chip encoder (fetch + send old)",
            WriteScheme::OmvInLlc => "OMV in LLC (send old)",
            WriteScheme::BitwiseSum => "bitwise-sum write (proposal)",
        }
    }
}

/// Runtime read overhead of the proposal (§V-C): the fraction of reads
/// rejected by the threshold decoder times the VLEW fetch cost.
/// `fallback_fraction` comes from [`crate::sdc::fallback_fraction`];
/// `fetch_blocks` is 36 in the paper's overhead arithmetic.
pub fn proposal_read_overhead(fallback_fraction: f64, fetch_blocks: usize) -> f64 {
    fallback_fraction * fetch_blocks as f64
}

/// Write-latency scaling of the proposal for iso-lifetime (§V-E/§VI): the
/// physical bits written per request grow by `(33/8)·C`, and `tWR` is
/// scaled by the same factor under the pessimistic linear
/// endurance-vs-lifetime assumption. Returns the multiplier for `tWR`.
pub fn iso_lifetime_twr_multiplier(c_factor: f64) -> f64 {
    1.0 + (33.0 / 8.0) * c_factor
}

/// §IV: memory-bus bandwidth overhead of refreshing (scrubbing) the whole
/// NVRAM capacity once per `period_s` — every block plus its ECC must
/// stream across the bus for error correction. The paper's example: even
/// a small 160 GB channel refreshed every second costs ~1000% of a
/// 2400 MT/s channel's bandwidth.
pub fn refresh_scrub_overhead(
    capacity_bytes: f64,
    period_s: f64,
    bus_bytes_per_s: f64,
    ecc_overhead: f64,
) -> f64 {
    assert!(period_s > 0.0 && bus_bytes_per_s > 0.0, "positive rates");
    capacity_bytes * (1.0 + ecc_overhead) / (bus_bytes_per_s * period_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_blocks_is_35() {
        assert_eq!(VlewGeometry::default().extra_blocks_per_correction(), 35);
    }

    #[test]
    fn erroneous_access_fractions_match_paper() {
        let f_low = fraction_erroneous_accesses(7e-5);
        assert!((f_low - 0.0395).abs() < 0.003, "got {f_low}");
        let f_high = fraction_erroneous_accesses(2e-4);
        assert!((f_high - 0.109).abs() < 0.01, "got {f_high}");
    }

    #[test]
    fn naive_read_overheads_match_figure5() {
        let g = VlewGeometry::default();
        let low = naive_vlew_read_overhead(7e-5, g);
        assert!((1.2..1.6).contains(&low), "≈140%, got {low}");
        let high = naive_vlew_read_overhead(2e-4, g);
        assert!((3.2..4.0).contains(&high), "≈360%, got {high}");
    }

    #[test]
    fn write_scheme_ladder() {
        let ovh: Vec<f64> = WriteScheme::ALL.iter().map(|s| s.overhead()).collect();
        assert_eq!(ovh, vec![4.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn proposal_read_overhead_is_small() {
        // 0.018% × 36 ≈ 0.6% (paper §V-C).
        let o = proposal_read_overhead(1.8e-4, 36);
        assert!((o - 0.0065).abs() < 0.001);
    }

    #[test]
    fn iso_lifetime_multiplier() {
        assert!((iso_lifetime_twr_multiplier(0.0) - 1.0).abs() < 1e-12);
        // C=0.2 → 1 + 4.125·0.2 = 1.825
        assert!((iso_lifetime_twr_multiplier(0.2) - 1.825).abs() < 1e-12);
    }

    #[test]
    fn refresh_scrub_matches_section4() {
        // 160 GB refreshed every second over a 19.2 GB/s channel with 27%
        // ECC: ~1000% bus overhead (paper §IV).
        let o = refresh_scrub_overhead(160e9, 1.0, 19.2e9, 0.27);
        assert!((9.0..12.0).contains(&o), "got {o}");
        // Hourly refresh is ~0.3% — negligible, which is why the paper
        // targets the 2e-4 hourly-refresh RBER point instead.
        let hourly = refresh_scrub_overhead(160e9, 3600.0, 19.2e9, 0.27);
        assert!(hourly < 0.01, "got {hourly}");
    }

    #[test]
    #[should_panic(expected = "positive rates")]
    fn refresh_scrub_rejects_zero_period() {
        let _ = refresh_scrub_overhead(1e9, 0.0, 19.2e9, 0.27);
    }
}
