//! Analytical reliability, storage-cost, and bandwidth models.
//!
//! Everything in the paper's Problem/Motivation sections (Figures 2–5, 7)
//! and its Appendix is standard combinatorial error-probability analysis.
//! This crate reproduces those models:
//!
//! * [`prob`] — log-space binomial tail probabilities that stay accurate
//!   down to 10⁻³⁰.
//! * [`storage`] — BCH/RS storage-cost formulas and the minimum correction
//!   strength needed to hit an uncorrectable-error (UE) target at a given
//!   RBER (Figure 4, §III-A).
//! * [`schemes`] — storage cost of extending DRAM chipkill schemes
//!   (XED, the Samsung study, DUO) to NVRAM RBERs (Figure 2).
//! * [`sdc`] — the Appendix's Term-A/Term-B miscorrection model for the
//!   per-block RS code and the paper's threshold-2 design point.
//! * [`bandwidth`] — read/write bandwidth overheads of naive VLEW
//!   protection and of the proposal (Figure 5, §V-C).
//! * [`flash`] — the commercial-Flash ECC configurations of Figure 3.
//!
//! # Examples
//!
//! ```
//! use pmck_analysis::sdc;
//!
//! // Appendix numbers: accepting up to t=4 corrections at RBER 2e-4 gives
//! // an SDC rate ~3.2e-11; limiting to t=2 gives ~3.3e-22.
//! let sdc_t4 = sdc::sdc_rate(2e-4, 64, 8, 4);
//! assert!(sdc_t4 > 1e-11 && sdc_t4 < 1e-10);
//! let sdc_t2 = sdc::sdc_rate(2e-4, 64, 8, 2);
//! assert!(sdc_t2 < 1e-20);
//! ```

pub mod bandwidth;
pub mod flash;
pub mod prob;
pub mod proposal;
pub mod schemes;
pub mod sdc;
pub mod storage;
pub mod tier;

/// The paper's uncorrectable-error reliability target: fewer than one
/// block with a UE per 10¹⁵ blocks, at any instant.
pub const UE_TARGET: f64 = 1e-15;

/// The paper's silent-data-corruption target: fewer than one block with
/// SDC per 10¹⁷ blocks, at any instant.
pub const SDC_TARGET: f64 = 1e-17;

/// The boot-time RBER design point (ReRAM after ~1 year, or 3-bit PCM
/// after ~1 week, without refresh).
pub const BOOT_RBER: f64 = 1e-3;

/// The runtime RBER design points quoted in the paper: ReRAM (~7·10⁻⁵)
/// and 3-bit PCM refreshed hourly (2·10⁻⁴).
pub const RUNTIME_RBER_RERAM: f64 = 7e-5;

/// See [`RUNTIME_RBER_RERAM`].
pub const RUNTIME_RBER_PCM_HOURLY: f64 = 2e-4;
