//! Commercial-Flash ECC configurations (paper Figure 3, §IV).
//!
//! Flash chips protect 512 B (4096-bit) words with strong BCH — 12- to
//! 41-bit correction for MLC parts — and pay little storage for it because
//! the words are long. The §IV arithmetic: 41-bit-EC costs 13%, and with
//! one parity chip per eight data chips the storage-style total is
//! `13% + 1/8 · (1 + 13%) ≈ 27%`.

use crate::storage::bch_code_bits;

/// One Flash ECC configuration from Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashEccEntry {
    /// Device class label.
    pub device: &'static str,
    /// Correction strength in bits per 512 B word.
    pub t: usize,
}

/// The Figure 3 configurations (Cypress SLC-vs-MLC application note \[69\]).
pub const FLASH_ECC_TABLE: [FlashEccEntry; 6] = [
    FlashEccEntry {
        device: "SLC NAND (1-bit EC)",
        t: 1,
    },
    FlashEccEntry {
        device: "SLC NAND (4-bit EC)",
        t: 4,
    },
    FlashEccEntry {
        device: "MLC NAND (12-bit EC)",
        t: 12,
    },
    FlashEccEntry {
        device: "MLC NAND (24-bit EC)",
        t: 24,
    },
    FlashEccEntry {
        device: "MLC NAND (40-bit EC)",
        t: 40,
    },
    FlashEccEntry {
        device: "MLC NAND (41-bit EC)",
        t: 41,
    },
];

/// Data bits per Flash ECC word (512 B).
pub const FLASH_WORD_DATA_BITS: usize = 4096;

impl FlashEccEntry {
    /// Code bits for this entry (`t × 13` over 4096 data bits).
    pub fn code_bits(&self) -> usize {
        bch_code_bits(self.t, FLASH_WORD_DATA_BITS)
    }

    /// Storage overhead of the ECC alone.
    pub fn ecc_overhead(&self) -> f64 {
        self.code_bits() as f64 / FLASH_WORD_DATA_BITS as f64
    }

    /// Total storage-system overhead with one parity chip per eight data
    /// chips: `ovh + 1/8 · (1 + ovh)`.
    pub fn total_overhead_with_parity(&self) -> f64 {
        let o = self.ecc_overhead();
        o + (1.0 / 8.0) * (1.0 + o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlc_41_matches_section4_numbers() {
        let e = FLASH_ECC_TABLE[5];
        assert_eq!(e.t, 41);
        assert_eq!(e.code_bits(), 533);
        assert!((e.ecc_overhead() - 0.13).abs() < 0.005);
        // 13% + 1/8·(1+13%) ≈ 27%.
        assert!((e.total_overhead_with_parity() - 0.27).abs() < 0.01);
    }

    #[test]
    fn overheads_increase_with_t() {
        for w in FLASH_ECC_TABLE.windows(2) {
            assert!(w[1].ecc_overhead() > w[0].ecc_overhead());
        }
    }

    #[test]
    fn slc_is_cheap() {
        assert!(FLASH_ECC_TABLE[0].ecc_overhead() < 0.005);
    }
}
