//! The Appendix's miscorrection (SDC) model for the per-block RS code.
//!
//! SDC rate = **Term A** × **Term B**:
//!
//! * Term A — probability a received word contains at least `nth` symbol
//!   errors, where `nth = d − t` is the minimum weight that can land
//!   within distance `t` of a *wrong* codeword (`d = r + 1`).
//! * Term B — probability such a noncodeword decodes into a codeword:
//!   `C(n, t) · 2^{8t} · 2^{8k} / 2^{8(k+r)} = C(n, t) · 256^{t−r}`.
//!
//! Paper numbers at RBER 2·10⁻⁴ for RS(72, 64): `t=4 → A=1.3e-7,
//! B=2.4e-4, SDC=3.2e-11`; `t=2 → A=3.6e-11, B=9.1e-12, SDC=3.3e-22`.

use crate::prob::{binom_tail_ge, byte_error_rate, ln_choose};

/// Term A: probability of at least `nth = d − t` byte errors in an
/// `(k + r)`-byte word at bit error rate `rber`.
pub fn term_a(rber: f64, k: usize, r: usize, t: usize) -> f64 {
    let d = r + 1;
    assert!(t < d, "t must be below the minimum distance");
    let nth = d - t;
    let q = byte_error_rate(rber);
    binom_tail_ge(k + r, nth, q)
}

/// Term B: probability that an uncorrectable noncodeword lies within
/// Hamming distance `t` of some unintended codeword.
pub fn term_b(k: usize, r: usize, t: usize) -> f64 {
    // C(k+r, t) · 256^t · 256^k / 256^(k+r) = exp(ln C + 8 ln2 ·(t − r))
    let ln = ln_choose(k + r, t) + 8.0 * std::f64::consts::LN_2 * (t as f64 - r as f64);
    ln.exp()
}

/// The SDC rate when the decoder corrects up to `t` byte errors: Term A ×
/// Term B.
pub fn sdc_rate(rber: f64, k: usize, r: usize, t: usize) -> f64 {
    term_a(rber, k, r, t) * term_b(k, r, t)
}

/// The fraction of reads the runtime path sends to VLEW fallback: blocks
/// whose RS decode makes more than `threshold` corrections (or is
/// uncorrectable). Approximated, as in §V-C, by the probability of more
/// than `threshold` byte errors.
pub fn fallback_fraction(rber: f64, k: usize, r: usize, threshold: usize) -> f64 {
    let q = byte_error_rate(rber);
    binom_tail_ge(k + r, threshold + 1, q)
}

/// Sweep of the acceptance threshold `t` (the paper's ablation in §V-C):
/// returns `(t, sdc_rate, fallback_fraction)` for `t = 0..=max_t`.
pub fn threshold_sweep(rber: f64, k: usize, r: usize, max_t: usize) -> Vec<(usize, f64, f64)> {
    (0..=max_t)
        .map(|t| {
            let sdc = if t == 0 { 0.0 } else { sdc_rate(rber, k, r, t) };
            (t, sdc, fallback_fraction(rber, k, r, t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SDC_TARGET;

    const K: usize = 64;
    const R: usize = 8;

    #[test]
    fn term_a_matches_appendix() {
        // t=4 → nth=5 → ~1.3e-7 at 2e-4.
        let a = term_a(2e-4, K, R, 4);
        assert!(a > 0.9e-7 && a < 1.9e-7, "got {a:e}");
        // t=2 → nth=7 → ~3.6e-11.
        let a2 = term_a(2e-4, K, R, 2);
        assert!(a2 > 2.5e-11 && a2 < 5.5e-11, "got {a2:e}");
    }

    #[test]
    fn term_b_matches_appendix() {
        let b4 = term_b(K, R, 4);
        assert!((b4 / 2.4e-4 - 1.0).abs() < 0.05, "got {b4:e}");
        let b2 = term_b(K, R, 2);
        assert!((b2 / 9.1e-12 - 1.0).abs() < 0.05, "got {b2:e}");
    }

    #[test]
    fn sdc_rates_match_appendix() {
        let s4 = sdc_rate(2e-4, K, R, 4);
        assert!(s4 > 1e-11 && s4 < 6e-11, "got {s4:e}");
        let s2 = sdc_rate(2e-4, K, R, 2);
        assert!(s2 > 1e-23 && s2 < 1e-21, "got {s2:e}");
    }

    #[test]
    fn t4_violates_target_t2_meets_it() {
        // The design argument: t=4 is ~3,000,000X over the SDC target,
        // t=2 is orders of magnitude under it.
        assert!(sdc_rate(2e-4, K, R, 4) / SDC_TARGET > 1e5);
        assert!(sdc_rate(2e-4, K, R, 2) / SDC_TARGET < 1e-3);
        // And at the lower runtime RBER 7e-5, t=4 is still ~18,000X over.
        let ratio = sdc_rate(7e-5, K, R, 4) / SDC_TARGET;
        assert!(ratio > 1e3 && ratio < 1e6, "ratio {ratio:e}");
    }

    #[test]
    fn fallback_fraction_matches_section5c() {
        // ~0.02% of reads need VLEW fallback at 2e-4 (paper: 0.018% avg).
        let f = fallback_fraction(2e-4, K, R, 2);
        assert!(f > 1.0e-4 && f < 3.5e-4, "got {f:e}");
    }

    #[test]
    fn sweep_is_monotonic() {
        let sweep = threshold_sweep(2e-4, K, R, 4);
        assert_eq!(sweep.len(), 5);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "SDC grows with t");
            assert!(w[1].2 <= w[0].2, "fallback shrinks with t");
        }
    }

    #[test]
    #[should_panic(expected = "below the minimum distance")]
    fn t_at_distance_rejected() {
        let _ = term_a(2e-4, K, R, 9);
    }
}
