//! Stochastic bit-error injection.

use pmck_rt::rng::Rng;

/// Injects independent random bit flips at a fixed raw bit error rate.
///
/// Uses geometric skip sampling (draw the gap to the next error directly),
/// so the cost of corrupting a buffer is proportional to the number of
/// errors rather than the number of bits — essential when scrubbing
/// gigabytes at RBER 10⁻³ or probing terabytes at 10⁻⁵.
///
/// # Examples
///
/// ```
/// use pmck_nvram::BitErrorInjector;
///
/// let inj = BitErrorInjector::new(1e-2);
/// let mut rng = pmck_rt::rng::StdRng::seed_from_u64(7);
/// let mut buf = vec![0u8; 8192];
/// let flips = inj.corrupt(&mut buf, &mut rng);
/// // ~655 expected flips; loosely bounded here.
/// assert!(flips.len() > 400 && flips.len() < 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitErrorInjector {
    rber: f64,
}

impl BitErrorInjector {
    /// Creates an injector with raw bit error rate `rber`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rber < 1.0`.
    pub fn new(rber: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rber),
            "rber must be in [0, 1), got {rber}"
        );
        BitErrorInjector { rber }
    }

    /// The configured raw bit error rate.
    pub fn rber(&self) -> f64 {
        self.rber
    }

    /// Samples the bit positions (ascending) that flip in a span of
    /// `n_bits` independent bits.
    pub fn sample_positions<R: Rng + ?Sized>(&self, n_bits: usize, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::new();
        if self.rber == 0.0 || n_bits == 0 {
            return out;
        }
        let ln_q = (1.0 - self.rber).ln(); // < 0
        let mut pos = 0usize;
        loop {
            // Geometric gap: floor(ln(U) / ln(1-p)) failures before the
            // next success.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let gap = (u.ln() / ln_q).floor();
            if !gap.is_finite() || gap >= (n_bits - pos) as f64 {
                break;
            }
            pos += gap as usize;
            out.push(pos);
            pos += 1;
            if pos >= n_bits {
                break;
            }
        }
        out
    }

    /// Flips random bits of `buf` in place; returns the flipped bit
    /// positions (bit `i` = bit `i % 8` of byte `i / 8`), ascending.
    pub fn corrupt<R: Rng + ?Sized>(&self, buf: &mut [u8], rng: &mut R) -> Vec<usize> {
        let positions = self.sample_positions(buf.len() * 8, rng);
        for &p in &positions {
            buf[p / 8] ^= 1 << (p % 8);
        }
        positions
    }
}

/// The expected number of bit errors in `n_bits` at rate `rber`.
pub fn expected_errors(n_bits: usize, rber: f64) -> f64 {
    n_bits as f64 * rber
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    #[test]
    fn zero_rate_never_flips() {
        let inj = BitErrorInjector::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut buf = [0xFFu8; 128];
        assert!(inj.corrupt(&mut buf, &mut rng).is_empty());
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    #[should_panic(expected = "rber must be in")]
    fn rejects_rate_one() {
        let _ = BitErrorInjector::new(1.0);
    }

    #[test]
    fn positions_are_ascending_and_unique() {
        let inj = BitErrorInjector::new(0.05);
        let mut rng = StdRng::seed_from_u64(42);
        let pos = inj.sample_positions(10_000, &mut rng);
        assert!(!pos.is_empty());
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*pos.last().unwrap() < 10_000);
    }

    #[test]
    fn empirical_rate_matches_configured() {
        let p = 1e-3;
        let inj = BitErrorInjector::new(p);
        let mut rng = StdRng::seed_from_u64(7);
        let n_bits = 4_000_000;
        let mut total = 0usize;
        for _ in 0..10 {
            total += inj.sample_positions(n_bits, &mut rng).len();
        }
        let measured = total as f64 / (10.0 * n_bits as f64);
        let rel = (measured - p).abs() / p;
        assert!(rel < 0.05, "measured {measured:.3e} vs {p:.1e}");
    }

    #[test]
    fn corrupt_flips_exactly_reported_bits() {
        let inj = BitErrorInjector::new(0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let original = [0xA5u8; 256];
        let mut buf = original;
        let pos = inj.corrupt(&mut buf, &mut rng);
        let mut expect = original;
        for &p in &pos {
            expect[p / 8] ^= 1 << (p % 8);
        }
        assert_eq!(buf, expect);
    }

    #[test]
    fn per_block_distribution_matches_figure7_shape() {
        // At RBER 2e-4 a 72 B (576-bit) access has ≥1 error with
        // probability ~0.109; >99.98% have ≤2 errors (paper Fig 7).
        let inj = BitErrorInjector::new(2e-4);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let mut counts = [0usize; 8];
        for _ in 0..trials {
            let n = inj.sample_positions(576, &mut rng).len().min(7);
            counts[n] += 1;
        }
        let p0 = counts[0] as f64 / trials as f64;
        assert!(
            (p0 - 0.8914).abs() < 0.01,
            "P(0 errors) ≈ 0.891, got {p0:.4}"
        );
        let le2 = (counts[0] + counts[1] + counts[2]) as f64 / trials as f64;
        assert!(le2 > 0.9995, "≤2 errors fraction {le2}");
    }

    #[test]
    fn expected_errors_helper() {
        assert_eq!(expected_errors(512, 1e-3), 0.512);
    }
}
