//! NVRAM error models: retention-driven raw bit error rates, stochastic
//! bit-error injection, chip failures, and write-endurance wear.
//!
//! High-density NVRAMs (multi-level PCM, ReRAM) forget data over time: the
//! raw bit error rate (RBER) grows with time since the last write or
//! refresh (paper §II-B, Figure 1). This crate models:
//!
//! * [`MemoryTech`] / [`rber_at`] — per-technology retention curves
//!   interpolating the measurements the paper cites (e.g. 3-bit PCM at
//!   7·10⁻⁵ one second after refresh, 2·10⁻⁴ after an hour, 10⁻³ after a
//!   week; ReRAM at 10⁻³ after a year).
//! * [`BitErrorInjector`] — i.i.d. random bit flips at a given RBER, using
//!   geometric skip sampling so injection cost scales with the number of
//!   errors, not the number of bits.
//! * [`ChipFailureKind`] / [`FailedChip`] — whole-chip failure patterns
//!   (stuck output, random garbage) for chipkill experiments.
//! * [`WearModel`] — probabilistic wear-out where a cell's error
//!   probability rises with write count (paper §II-B, \[64\]).
//! * [`FaultSchedule`] — a deterministic fault-timeline DSL (bursts,
//!   correlated row faults, chip-kill at cycle N, RBER ramps) consumed by
//!   the engine, the memory simulator, and the `soak` campaign driver.
//!
//! # Examples
//!
//! ```
//! use pmck_nvram::{rber_at, BitErrorInjector, MemoryTech};
//!
//! // 3-bit PCM, one week unrefreshed: the paper's 1e-3 boot-time target.
//! let p = rber_at(MemoryTech::Pcm3Bit, 7.0 * 86400.0);
//! assert!((8e-4..2e-3).contains(&p));
//!
//! let mut rng = pmck_rt::rng::StdRng::seed_from_u64(1);
//! let inj = BitErrorInjector::new(p);
//! let mut block = [0u8; 64];
//! let flipped = inj.corrupt(&mut block, &mut rng);
//! assert_eq!(flipped.len(), block.iter().map(|b| b.count_ones() as usize).sum::<usize>());
//! ```

mod chipfail;
mod inject;
mod schedule;
mod tech;
mod wear;

pub use chipfail::{ChipFailureKind, FailedChip};
pub use inject::{expected_errors, BitErrorInjector};
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, ScheduleError};
pub use tech::{rber_at, rber_band, MemoryTech, RetentionCurve};
pub use wear::{RegionRber, WearModel, WearState};
