//! Whole-chip failure models for chipkill experiments.

use pmck_rt::rng::Rng;

/// How a failed chip corrupts the bytes it contributes to each block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipFailureKind {
    /// Output pins stuck at all-zeros.
    StuckZero,
    /// Output pins stuck at all-ones.
    StuckOne,
    /// Output is uniformly random garbage (e.g. broken sense amps or a
    /// dead address decoder returning arbitrary rows).
    RandomGarbage,
    /// The stored value is returned unchanged — a fault in the chip's
    /// control logic that happens to leave array contents readable. Still
    /// counted as failed for retirement purposes.
    SilentControl,
}

impl ChipFailureKind {
    /// All failure kinds.
    pub const ALL: [ChipFailureKind; 4] = [
        ChipFailureKind::StuckZero,
        ChipFailureKind::StuckOne,
        ChipFailureKind::RandomGarbage,
        ChipFailureKind::SilentControl,
    ];
}

/// A failed chip: which chip in the rank and how its output is corrupted.
///
/// # Examples
///
/// ```
/// use pmck_nvram::{ChipFailureKind, FailedChip};
///
/// let f = FailedChip::new(3, ChipFailureKind::StuckOne);
/// let mut out = [0u8; 8];
/// let mut rng = pmck_rt::rng::StdRng::seed_from_u64(0);
/// f.corrupt_output(&mut out, &mut rng);
/// assert_eq!(out, [0xFF; 8]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailedChip {
    chip_index: usize,
    kind: ChipFailureKind,
}

impl FailedChip {
    /// Declares chip `chip_index` failed with the given corruption `kind`.
    pub fn new(chip_index: usize, kind: ChipFailureKind) -> Self {
        FailedChip { chip_index, kind }
    }

    /// The failed chip's index within its rank.
    pub fn chip_index(&self) -> usize {
        self.chip_index
    }

    /// The corruption pattern.
    pub fn kind(&self) -> ChipFailureKind {
        self.kind
    }

    /// Applies the failure to the bytes this chip would have returned.
    pub fn corrupt_output<R: Rng + ?Sized>(&self, bytes: &mut [u8], rng: &mut R) {
        match self.kind {
            ChipFailureKind::StuckZero => bytes.fill(0),
            ChipFailureKind::StuckOne => bytes.fill(0xFF),
            ChipFailureKind::RandomGarbage => rng.fill_bytes(bytes),
            ChipFailureKind::SilentControl => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    #[test]
    fn stuck_patterns() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = [0xA5u8; 8];
        FailedChip::new(0, ChipFailureKind::StuckZero).corrupt_output(&mut b, &mut rng);
        assert_eq!(b, [0u8; 8]);
        FailedChip::new(0, ChipFailureKind::StuckOne).corrupt_output(&mut b, &mut rng);
        assert_eq!(b, [0xFFu8; 8]);
    }

    #[test]
    fn garbage_differs_from_original_with_high_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = [0xA5u8; 8];
        let mut changed = 0;
        for _ in 0..32 {
            let mut b = orig;
            FailedChip::new(1, ChipFailureKind::RandomGarbage).corrupt_output(&mut b, &mut rng);
            if b != orig {
                changed += 1;
            }
        }
        assert!(changed >= 31);
    }

    #[test]
    fn silent_control_preserves_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = [0x42u8; 8];
        FailedChip::new(2, ChipFailureKind::SilentControl).corrupt_output(&mut b, &mut rng);
        assert_eq!(b, [0x42u8; 8]);
    }
}
