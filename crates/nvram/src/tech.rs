//! Per-technology retention curves (paper Figure 1).
//!
//! Each curve is a piecewise power law (log-log linear interpolation)
//! through the measurement anchor points the paper cites. Only the RBER
//! *value* at a given time-since-refresh enters the downstream ECC math,
//! so matching the anchors reproduces every number in the paper.

/// A memory or storage technology with a published RBER characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTech {
    /// 2-bit (MLC) phase-change memory.
    Pcm2Bit,
    /// 3-bit (TLC) phase-change memory — the paper's headline PCM case:
    /// 7·10⁻⁵ @ 1 s, 2·10⁻⁴ @ 1 h, 10⁻³ @ 1 week since refresh.
    Pcm3Bit,
    /// Resistive RAM (27 nm-class): ~7·10⁻⁵ at runtime, 10⁻³ @ 1 year.
    ReRam,
    /// Spin-transfer-torque MRAM (retention-error dominated).
    SttRam,
    /// Commercial MLC NAND Flash (reference band in Figure 1).
    FlashMlc,
    /// 28 nm-class DRAM (cell-fault rate; time-independent reference).
    Dram,
}

impl MemoryTech {
    /// All modeled technologies, in Figure 1's presentation order.
    pub const ALL: [MemoryTech; 6] = [
        MemoryTech::Pcm2Bit,
        MemoryTech::Pcm3Bit,
        MemoryTech::ReRam,
        MemoryTech::SttRam,
        MemoryTech::FlashMlc,
        MemoryTech::Dram,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MemoryTech::Pcm2Bit => "2-bit PCM",
            MemoryTech::Pcm3Bit => "3-bit PCM",
            MemoryTech::ReRam => "ReRAM",
            MemoryTech::SttRam => "STT-RAM",
            MemoryTech::FlashMlc => "MLC Flash",
            MemoryTech::Dram => "DRAM (cell faults)",
        }
    }

    /// The retention curve for this technology.
    pub fn retention_curve(self) -> RetentionCurve {
        // Anchor points (seconds since refresh, RBER). Sources: paper
        // §II-B and Figure 1; Athmanathan'16 [60] for 3-bit PCM; Sills'15
        // [63] for ReRAM; Naeimi'13 [34] for STT-RAM; Cai'13 [66] and
        // Parnell'17 [65] for Flash; Cha'17 [29] for DRAM cell faults.
        let anchors: &[(f64, f64)] = match self {
            MemoryTech::Pcm3Bit => &[(1.0, 7.0e-5), (3600.0, 2.0e-4), (7.0 * 86400.0, 1.0e-3)],
            MemoryTech::Pcm2Bit => &[
                (1.0, 1.0e-6),
                (3600.0, 6.0e-6),
                (7.0 * 86400.0, 4.0e-5),
                (365.25 * 86400.0, 2.0e-4),
            ],
            MemoryTech::ReRam => &[
                (1.0, 7.0e-5),
                (30.0 * 86400.0, 5.0e-4),
                (365.25 * 86400.0, 1.0e-3),
            ],
            MemoryTech::SttRam => &[(1.0, 5.0e-6), (5.0, 1.0e-5), (365.25 * 86400.0, 3.0e-4)],
            MemoryTech::FlashMlc => &[
                (86400.0, 1.0e-6),
                (90.0 * 86400.0, 1.0e-4),
                (365.25 * 86400.0, 4.0e-4),
            ],
            // DRAM's dominant errors are permanent cell faults, flat in
            // time; the paper quotes up to 1e-4 for future high-density
            // generations.
            MemoryTech::Dram => &[(1.0, 1.0e-6), (365.25 * 86400.0, 1.0e-6)],
        };
        RetentionCurve {
            tech: self,
            anchors: anchors.to_vec(),
        }
    }
}

impl std::fmt::Display for MemoryTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A piecewise power-law RBER-vs-time curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionCurve {
    tech: MemoryTech,
    /// `(seconds_since_refresh, rber)` anchor points, ascending in time.
    anchors: Vec<(f64, f64)>,
}

impl RetentionCurve {
    /// The technology this curve describes.
    pub fn tech(&self) -> MemoryTech {
        self.tech
    }

    /// The anchor points `(seconds, rber)`.
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }

    /// The RBER after `seconds_since_refresh` seconds without refresh.
    /// Clamped to the curve's endpoints outside the measured range;
    /// log-log interpolated between anchors.
    ///
    /// # Panics
    ///
    /// Panics if `seconds_since_refresh` is not finite and positive.
    pub fn rber(&self, seconds_since_refresh: f64) -> f64 {
        assert!(
            seconds_since_refresh.is_finite() && seconds_since_refresh > 0.0,
            "time since refresh must be positive and finite"
        );
        let t = seconds_since_refresh;
        let first = self.anchors.first().expect("curves have anchors");
        let last = self.anchors.last().expect("curves have anchors");
        if t <= first.0 {
            return first.1;
        }
        if t >= last.0 {
            return last.1;
        }
        for w in self.anchors.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t >= t0 && t <= t1 {
                let frac = (t.ln() - t0.ln()) / (t1.ln() - t0.ln());
                return (p0.ln() + frac * (p1.ln() - p0.ln())).exp();
            }
        }
        unreachable!("anchors are ascending and t is inside the range")
    }
}

/// The RBER of `tech` after `seconds_since_refresh` without refresh.
///
/// Convenience wrapper around
/// [`MemoryTech::retention_curve`] + [`RetentionCurve::rber`].
///
/// # Panics
///
/// Panics if `seconds_since_refresh` is not finite and positive.
pub fn rber_at(tech: MemoryTech, seconds_since_refresh: f64) -> f64 {
    tech.retention_curve().rber(seconds_since_refresh)
}

/// The `(min, max)` RBER band of `tech` over its measured retention range
/// (the bars of Figure 1).
pub fn rber_band(tech: MemoryTech) -> (f64, f64) {
    let curve = tech.retention_curve();
    let lo = curve
        .anchors()
        .iter()
        .map(|&(_, p)| p)
        .fold(f64::INFINITY, f64::min);
    let hi = curve
        .anchors()
        .iter()
        .map(|&(_, p)| p)
        .fold(0.0f64, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm3_anchor_points_match_paper() {
        assert!((rber_at(MemoryTech::Pcm3Bit, 1.0) - 7e-5).abs() < 1e-9);
        assert!((rber_at(MemoryTech::Pcm3Bit, 3600.0) - 2e-4).abs() < 1e-9);
        assert!((rber_at(MemoryTech::Pcm3Bit, 7.0 * 86400.0) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn reram_reaches_1e3_after_a_year() {
        assert!((rber_at(MemoryTech::ReRam, 365.25 * 86400.0) - 1e-3).abs() < 1e-9);
        assert!((rber_at(MemoryTech::ReRam, 1.0) - 7e-5).abs() < 1e-9);
    }

    #[test]
    fn rber_is_monotonic_in_time() {
        for tech in MemoryTech::ALL {
            let curve = tech.retention_curve();
            let mut prev = 0.0;
            let mut t = 0.5;
            while t < 4.0e8 {
                let p = curve.rber(t);
                assert!(p >= prev - 1e-15, "{tech}: rber must not decrease");
                assert!(p > 0.0 && p < 0.5, "{tech}: rber in (0, 0.5)");
                prev = p;
                t *= 2.0;
            }
        }
    }

    #[test]
    fn clamps_outside_measured_range() {
        let c = MemoryTech::Pcm3Bit.retention_curve();
        assert_eq!(c.rber(1e-3), c.rber(1.0));
        assert_eq!(c.rber(1e12), c.rber(7.0 * 86400.0));
    }

    #[test]
    fn interpolation_is_between_anchors() {
        let c = MemoryTech::Pcm3Bit.retention_curve();
        let mid = c.rber(600.0); // between 1 s and 1 h
        assert!(mid > 7e-5 && mid < 2e-4);
    }

    #[test]
    fn band_is_min_max() {
        let (lo, hi) = rber_band(MemoryTech::Pcm3Bit);
        assert!((lo - 7e-5).abs() < 1e-9);
        assert!((hi - 1e-3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_time() {
        let _ = rber_at(MemoryTech::ReRam, 0.0);
    }

    #[test]
    fn nvram_rber_resembles_flash_not_dram() {
        // The paper's Figure 1 takeaway.
        let (_, pcm_hi) = rber_band(MemoryTech::Pcm3Bit);
        let (_, flash_hi) = rber_band(MemoryTech::FlashMlc);
        let (_, dram_hi) = rber_band(MemoryTech::Dram);
        assert!(pcm_hi / flash_hi < 10.0, "NVRAM within 10x of Flash");
        assert!(pcm_hi / dram_hi > 100.0, "NVRAM far above DRAM");
    }
}
