//! Fault-schedule DSL: scripted, deterministic fault timelines.
//!
//! Field studies of DRAM/NVRAM faults show errors are bursty and
//! spatially correlated — stuck rows, dying chips, retention ramps — not
//! i.i.d. bit flips. A [`FaultSchedule`] scripts such a timeline as a
//! sorted list of [`FaultEvent`]s on an abstract cycle axis, so soak runs
//! and fault campaigns can replay the *same* adversarial history against
//! any component:
//!
//! * `pmck-core::engine` applies [`FaultKind::Burst`],
//!   [`FaultKind::RowFault`] and [`FaultKind::ChipKill`] events to its
//!   stored arrays (`ChipkillMemory::apply_fault_event`);
//! * `pmck-memsim` derives degraded-mode timing from the same schedule
//!   (`FaultTimeline`);
//! * the `soak` binary in `pmck-bench` drains events cycle by cycle while
//!   driving the full read/write/scrub/re-stripe stack.
//!
//! Schedules are written either programmatically or in a tiny line-based
//! text DSL (one event per line, `#` comments):
//!
//! ```text
//! at 0      rber 2e-4            # background RBER from cycle 0
//! at 1000   burst 6 width 64     # 6 flips within a 64-bit window
//! at 2000   row 3 7 rber 1e-2    # chip 3, stripe 7 degrades to 1e-2
//! ramp 3000..9000 rber 2e-4..1e-3  # retention ramp
//! at 5000   chipkill 4 garbage   # chip 4 dies mid-run
//! ```
//!
//! # Examples
//!
//! ```
//! use pmck_nvram::{FaultKind, FaultSchedule};
//!
//! let s = FaultSchedule::parse("at 0 rber 1e-4\nat 10 chipkill 2 stuck0").unwrap();
//! assert_eq!(s.events().len(), 2);
//! assert_eq!(s.rber_at(5), 1e-4);
//! assert!(matches!(s.events()[1].kind, FaultKind::ChipKill { chip: 2, .. }));
//! let round = FaultSchedule::from_json(&s.to_json()).unwrap();
//! assert_eq!(round.events().len(), 2);
//! ```

use std::fmt;

use pmck_rt::json::Json;

use crate::chipfail::ChipFailureKind;

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The background raw bit error rate becomes `rber` from this cycle
    /// on (until the next rate event).
    Rber {
        /// New background RBER.
        rber: f64,
    },
    /// The background RBER ramps linearly from `from` to `to` over
    /// `over_cycles` cycles starting at the event cycle (a retention
    /// drift or thermal excursion).
    RberRamp {
        /// Rate at the start of the ramp.
        from: f64,
        /// Rate once the ramp completes.
        to: f64,
        /// Ramp duration in cycles (the rate stays at `to` afterwards).
        over_cycles: u64,
    },
    /// A burst of `bits` flips confined to a window of `width_bits`
    /// consecutive stored bits (optionally pinned to one chip).
    Burst {
        /// Number of bit flips in the burst.
        bits: u32,
        /// Width of the window the flips land in, in bits.
        width_bits: u32,
        /// Chip to hit; `None` picks one deterministically from the
        /// campaign RNG.
        chip: Option<usize>,
    },
    /// A spatially-correlated row fault: one chip's slice of one stripe
    /// degrades to `rber` (data and code bits alike).
    RowFault {
        /// The chip whose row is faulty.
        chip: usize,
        /// The stripe (VLEW group) holding the faulty row.
        stripe: usize,
        /// Error rate applied across that region.
        rber: f64,
    },
    /// A whole chip fails with the given corruption pattern.
    ChipKill {
        /// The failed chip index.
        chip: usize,
        /// How the dead chip corrupts its output.
        kind: ChipFailureKind,
    },
}

/// One scheduled fault: what happens, and on which cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Cycle on which the fault fires.
    pub at_cycle: u64,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A parse or decode failure for a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// What went wrong.
    pub message: String,
    /// The 1-based source line (0 for JSON decode errors).
    pub line: usize,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "schedule line {}: {}", self.line, self.message)
        } else {
            write!(f, "schedule: {}", self.message)
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A deterministic fault timeline: events sorted by cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no faults ever fire).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an event, keeping the list sorted by cycle (stable for equal
    /// cycles: earlier insertions fire first).
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        let idx = self
            .events
            .partition_point(|e| e.at_cycle <= event.at_cycle);
        self.events.insert(idx, event);
        self
    }

    /// Builder-style [`FaultSchedule::push`].
    pub fn with(mut self, at_cycle: u64, kind: FaultKind) -> Self {
        self.push(FaultEvent { at_cycle, kind });
        self
    }

    /// All events, ascending by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events firing in `[from, to)`, ascending.
    pub fn events_in(&self, from: u64, to: u64) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at_cycle < from);
        let hi = self.events.partition_point(|e| e.at_cycle < to);
        &self.events[lo..hi]
    }

    /// The last cycle on which anything fires (ramps extend to their
    /// completion), or 0 for an empty schedule.
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::RberRamp { over_cycles, .. } => e.at_cycle + over_cycles,
                _ => e.at_cycle,
            })
            .max()
            .unwrap_or(0)
    }

    /// The background RBER in effect at `cycle`: the most recent
    /// [`FaultKind::Rber`] value, or the interpolated value of an active
    /// (or completed) [`FaultKind::RberRamp`]. Zero before any rate event.
    pub fn rber_at(&self, cycle: u64) -> f64 {
        let mut rber = 0.0;
        for e in &self.events {
            if e.at_cycle > cycle {
                break;
            }
            match e.kind {
                FaultKind::Rber { rber: r } => rber = r,
                FaultKind::RberRamp {
                    from,
                    to,
                    over_cycles,
                } => {
                    let elapsed = cycle - e.at_cycle;
                    rber = if over_cycles == 0 || elapsed >= over_cycles {
                        to
                    } else {
                        from + (to - from) * (elapsed as f64 / over_cycles as f64)
                    };
                }
                _ => {}
            }
        }
        rber
    }

    /// Parses the line-based text DSL (see the module docs for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// [`ScheduleError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, ScheduleError> {
        let mut schedule = FaultSchedule::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let src = raw.split('#').next().unwrap_or("").trim();
            if src.is_empty() {
                continue;
            }
            let toks: Vec<&str> = src.split_whitespace().collect();
            let err = |message: &str| ScheduleError {
                message: message.to_owned(),
                line,
            };
            match toks[0] {
                "at" => {
                    if toks.len() < 3 {
                        return Err(err("expected `at <cycle> <fault>...`"));
                    }
                    let at_cycle: u64 = toks[1].parse().map_err(|_| err("invalid cycle number"))?;
                    let kind = parse_kind(&toks[2..]).map_err(|m| err(&m))?;
                    schedule.push(FaultEvent { at_cycle, kind });
                }
                "ramp" => {
                    // ramp <from>..<to> rber <p0>..<p1>
                    if toks.len() != 4 || toks[2] != "rber" {
                        return Err(err("expected `ramp <c0>..<c1> rber <p0>..<p1>`"));
                    }
                    let (c0, c1) = parse_range(toks[1]).map_err(|m| err(&m))?;
                    let (p0, p1) = parse_frange(toks[3]).map_err(|m| err(&m))?;
                    if c1 < c0 {
                        return Err(err("ramp end before start"));
                    }
                    schedule.push(FaultEvent {
                        at_cycle: c0,
                        kind: FaultKind::RberRamp {
                            from: p0,
                            to: p1,
                            over_cycles: c1 - c0,
                        },
                    });
                }
                other => return Err(err(&format!("unknown directive `{other}`"))),
            }
        }
        Ok(schedule)
    }

    /// Serializes the schedule as a JSON value (the corpus/report
    /// format).
    pub fn to_json(&self) -> Json {
        let mut arr = Json::array();
        for e in &self.events {
            let mut o = Json::object();
            o.set("at", e.at_cycle);
            match e.kind {
                FaultKind::Rber { rber } => {
                    o.set("kind", "rber").set("rber", rber);
                }
                FaultKind::RberRamp {
                    from,
                    to,
                    over_cycles,
                } => {
                    o.set("kind", "ramp")
                        .set("from", from)
                        .set("to", to)
                        .set("over", over_cycles);
                }
                FaultKind::Burst {
                    bits,
                    width_bits,
                    chip,
                } => {
                    o.set("kind", "burst")
                        .set("bits", bits)
                        .set("width", width_bits);
                    if let Some(c) = chip {
                        o.set("chip", c);
                    }
                }
                FaultKind::RowFault { chip, stripe, rber } => {
                    o.set("kind", "row")
                        .set("chip", chip)
                        .set("stripe", stripe)
                        .set("rber", rber);
                }
                FaultKind::ChipKill { chip, kind } => {
                    o.set("kind", "chipkill")
                        .set("chip", chip)
                        .set("failure", failure_name(kind));
                }
            }
            arr.push(o);
        }
        Json::object().with("events", arr)
    }

    /// Decodes a schedule from its [`FaultSchedule::to_json`] form.
    ///
    /// # Errors
    ///
    /// [`ScheduleError`] (line 0) describing the malformed field.
    pub fn from_json(json: &Json) -> Result<Self, ScheduleError> {
        let err = |message: &str| ScheduleError {
            message: message.to_owned(),
            line: 0,
        };
        let events = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| err("missing `events` array"))?;
        let mut schedule = FaultSchedule::new();
        for e in events {
            let at_cycle = e
                .get("at")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("event missing `at`"))?;
            let kind_name = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| err("event missing `kind`"))?;
            let f64_field = |key: &str| {
                e.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| err(&format!("`{kind_name}` missing `{key}`")))
            };
            let u64_field = |key: &str| {
                e.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err(&format!("`{kind_name}` missing `{key}`")))
            };
            let kind = match kind_name {
                "rber" => FaultKind::Rber {
                    rber: f64_field("rber")?,
                },
                "ramp" => FaultKind::RberRamp {
                    from: f64_field("from")?,
                    to: f64_field("to")?,
                    over_cycles: u64_field("over")?,
                },
                "burst" => FaultKind::Burst {
                    bits: u64_field("bits")? as u32,
                    width_bits: u64_field("width")? as u32,
                    chip: e.get("chip").and_then(Json::as_u64).map(|c| c as usize),
                },
                "row" => FaultKind::RowFault {
                    chip: u64_field("chip")? as usize,
                    stripe: u64_field("stripe")? as usize,
                    rber: f64_field("rber")?,
                },
                "chipkill" => FaultKind::ChipKill {
                    chip: u64_field("chip")? as usize,
                    kind: e
                        .get("failure")
                        .and_then(Json::as_str)
                        .and_then(failure_from_name)
                        .ok_or_else(|| err("`chipkill` missing/invalid `failure`"))?,
                },
                other => return Err(err(&format!("unknown event kind `{other}`"))),
            };
            schedule.push(FaultEvent { at_cycle, kind });
        }
        Ok(schedule)
    }
}

fn parse_kind(toks: &[&str]) -> Result<FaultKind, String> {
    match toks[0] {
        "rber" => {
            let rber = toks
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("`rber` needs a rate")?;
            Ok(FaultKind::Rber { rber })
        }
        "burst" => {
            // burst <bits> width <w> [chip <c>]
            let bits: u32 = toks
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("`burst` needs a flip count")?;
            if toks.get(2) != Some(&"width") {
                return Err("`burst` expects `width <bits>`".into());
            }
            let width_bits: u32 = toks
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or("`width` needs a bit count")?;
            let chip = match (toks.get(4), toks.get(5)) {
                (Some(&"chip"), Some(c)) => {
                    Some(c.parse().map_err(|_| "invalid chip index".to_owned())?)
                }
                (None, _) => None,
                _ => return Err("trailing tokens after `burst`".into()),
            };
            Ok(FaultKind::Burst {
                bits,
                width_bits,
                chip,
            })
        }
        "row" => {
            // row <chip> <stripe> rber <p>
            let chip = toks
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("`row` needs a chip index")?;
            let stripe = toks
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or("`row` needs a stripe index")?;
            if toks.get(3) != Some(&"rber") {
                return Err("`row` expects `rber <p>`".into());
            }
            let rber = toks
                .get(4)
                .and_then(|s| s.parse().ok())
                .ok_or("`rber` needs a rate")?;
            Ok(FaultKind::RowFault { chip, stripe, rber })
        }
        "chipkill" => {
            let chip = toks
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("`chipkill` needs a chip index")?;
            let kind = toks
                .get(2)
                .copied()
                .and_then(failure_from_name)
                .ok_or("`chipkill` needs stuck0|stuck1|garbage|silent")?;
            Ok(FaultKind::ChipKill { chip, kind })
        }
        other => Err(format!("unknown fault `{other}`")),
    }
}

fn parse_range(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s.split_once("..").ok_or("expected `<a>..<b>`")?;
    Ok((
        a.parse().map_err(|_| "invalid range start".to_owned())?,
        b.parse().map_err(|_| "invalid range end".to_owned())?,
    ))
}

fn parse_frange(s: &str) -> Result<(f64, f64), String> {
    let (a, b) = s.split_once("..").ok_or("expected `<p0>..<p1>`")?;
    Ok((
        a.parse().map_err(|_| "invalid rate".to_owned())?,
        b.parse().map_err(|_| "invalid rate".to_owned())?,
    ))
}

fn failure_name(kind: ChipFailureKind) -> &'static str {
    match kind {
        ChipFailureKind::StuckZero => "stuck0",
        ChipFailureKind::StuckOne => "stuck1",
        ChipFailureKind::RandomGarbage => "garbage",
        ChipFailureKind::SilentControl => "silent",
    }
}

fn failure_from_name(name: &str) -> Option<ChipFailureKind> {
    match name {
        "stuck0" => Some(ChipFailureKind::StuckZero),
        "stuck1" => Some(ChipFailureKind::StuckOne),
        "garbage" => Some(ChipFailureKind::RandomGarbage),
        "silent" => Some(ChipFailureKind::SilentControl),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let text = "\
# a comment
at 0    rber 2e-4
at 1000 burst 6 width 64
at 1500 burst 3 width 32 chip 2
at 2000 row 3 7 rber 1e-2
ramp 3000..9000 rber 2e-4..1e-3
at 5000 chipkill 4 garbage
";
        let s = FaultSchedule::parse(text).unwrap();
        assert_eq!(s.events().len(), 6);
        assert_eq!(s.events()[0].kind, FaultKind::Rber { rber: 2e-4 });
        assert_eq!(
            s.events()[2].kind,
            FaultKind::Burst {
                bits: 3,
                width_bits: 32,
                chip: Some(2)
            }
        );
        assert_eq!(
            s.events()[3].kind,
            FaultKind::RowFault {
                chip: 3,
                stripe: 7,
                rber: 1e-2
            }
        );
        assert_eq!(s.horizon(), 9000);
    }

    #[test]
    fn rejects_bad_lines_with_line_numbers() {
        for (text, line) in [
            ("at x rber 1e-3", 1),
            ("\nat 5 frobnicate", 2),
            ("burst 3 width 4", 1),
            ("at 1 burst 3", 1),
            ("ramp 9..3 rber 0..0", 1),
            ("at 1 chipkill 0 explode", 1),
        ] {
            let err = FaultSchedule::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?} -> {err}");
        }
    }

    #[test]
    fn rber_resolution_with_ramp() {
        let s = FaultSchedule::parse("at 0 rber 1e-4\nramp 100..200 rber 1e-4..1e-3").unwrap();
        assert_eq!(s.rber_at(0), 1e-4);
        assert_eq!(s.rber_at(99), 1e-4);
        let mid = s.rber_at(150);
        assert!((mid - 5.5e-4).abs() < 1e-9, "mid {mid}");
        assert_eq!(s.rber_at(200), 1e-3);
        assert_eq!(s.rber_at(10_000), 1e-3);
    }

    #[test]
    fn rber_before_any_event_is_zero() {
        let s = FaultSchedule::new().with(50, FaultKind::Rber { rber: 0.5 });
        assert_eq!(s.rber_at(0), 0.0);
        assert_eq!(s.rber_at(50), 0.5);
    }

    #[test]
    fn events_in_window() {
        let s = FaultSchedule::new()
            .with(10, FaultKind::Rber { rber: 1e-4 })
            .with(20, FaultKind::Rber { rber: 2e-4 })
            .with(30, FaultKind::Rber { rber: 3e-4 });
        assert_eq!(s.events_in(0, 10).len(), 0);
        assert_eq!(s.events_in(10, 30).len(), 2);
        assert_eq!(s.events_in(0, 100).len(), 3);
    }

    #[test]
    fn push_keeps_sorted_order() {
        let s = FaultSchedule::new()
            .with(30, FaultKind::Rber { rber: 3e-4 })
            .with(10, FaultKind::Rber { rber: 1e-4 })
            .with(20, FaultKind::Rber { rber: 2e-4 });
        let cycles: Vec<u64> = s.events().iter().map(|e| e.at_cycle).collect();
        assert_eq!(cycles, vec![10, 20, 30]);
    }

    #[test]
    fn json_round_trip() {
        let s = FaultSchedule::parse(
            "at 0 rber 2e-4\nat 10 burst 4 width 16 chip 1\nat 20 row 2 5 rber 1e-2\n\
             ramp 30..40 rber 1e-4..1e-3\nat 50 chipkill 8 stuck1",
        )
        .unwrap();
        let round = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn from_json_rejects_malformed() {
        let bad = Json::parse(r#"{"events":[{"at":1,"kind":"chipkill","chip":0}]}"#).unwrap();
        assert!(FaultSchedule::from_json(&bad).is_err());
        let bad2 = Json::parse(r#"{"nope":[]}"#).unwrap();
        assert!(FaultSchedule::from_json(&bad2).is_err());
    }
}
