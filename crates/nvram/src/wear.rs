//! Write-endurance wear model.
//!
//! Wear errors in ReRAM are probabilistic: the probability that a given
//! cell reads erroneously rises gradually with the number of writes before
//! eventually reaching 100% (paper §II-B, citing Sills'14 \[64\]). The model
//! here is a smooth ramp `p(w) = p_max · (w / endurance)^gamma`, clamped
//! to `[0, 1]`, which captures "gradual rise then certain failure".

use pmck_rt::rng::Rng;

/// Parameters of the probabilistic wear model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearModel {
    /// Rated write endurance (writes at which `p` reaches `p_max`).
    pub endurance: u64,
    /// Sharpness of the ramp; >1 delays onset (typical: 2–4).
    pub gamma: f64,
    /// Error probability at the rated endurance (1.0 = certain failure).
    pub p_max: f64,
}

impl Default for WearModel {
    fn default() -> Self {
        // ReRAM-class endurance (1e8 writes) with a cubic onset.
        WearModel {
            endurance: 100_000_000,
            gamma: 3.0,
            p_max: 1.0,
        }
    }
}

impl WearModel {
    /// The per-read wear-induced error probability after `writes` writes.
    pub fn error_probability(&self, writes: u64) -> f64 {
        let frac = writes as f64 / self.endurance as f64;
        (self.p_max * frac.powf(self.gamma)).clamp(0.0, 1.0)
    }

    /// Whether a block with `writes` writes should be considered worn out
    /// and disabled, at the given acceptable probability `p_disable`.
    pub fn is_worn_out(&self, writes: u64, p_disable: f64) -> bool {
        self.error_probability(writes) >= p_disable
    }
}

/// Per-block wear state: write counter plus disabled flag.
///
/// # Examples
///
/// ```
/// use pmck_nvram::{WearModel, WearState};
///
/// let model = WearModel { endurance: 1000, gamma: 1.0, p_max: 1.0 };
/// let mut st = WearState::new();
/// for _ in 0..500 {
///     st.record_write();
/// }
/// assert_eq!(model.error_probability(st.writes()), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearState {
    writes: u64,
    disabled: bool,
}

impl WearState {
    /// Fresh, unworn state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Records one write.
    pub fn record_write(&mut self) {
        self.writes = self.writes.saturating_add(1);
    }

    /// Records `n` writes at once (e.g. amplified code-bit writes — the
    /// paper's §V-E lifetime accounting scales physical bits written per
    /// request by `33B/8B · C`).
    pub fn record_writes(&mut self, n: u64) {
        self.writes = self.writes.saturating_add(n);
    }

    /// Whether the block has been disabled.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Marks the block disabled (taken out of service).
    pub fn disable(&mut self) {
        self.disabled = true;
    }

    /// Samples whether a read of this block suffers a wear error.
    pub fn sample_wear_error<R: Rng + ?Sized>(&self, model: &WearModel, rng: &mut R) -> bool {
        let p = model.error_probability(self.writes);
        p > 0.0 && rng.gen_bool(p.min(1.0))
    }
}

/// Per-region measured raw bit error rate, feeding adaptive ECC
/// tiering: each region accumulates a write count (mapped through the
/// wear model into a predicted wear RBER) and an observed error sample
/// (errors seen per bits examined, e.g. from fault injection or scrub
/// sweeps). The measured RBER is the max of the two components — the
/// policy must provision for whichever signal is worse.
#[derive(Debug, Clone)]
pub struct RegionRber {
    model: WearModel,
    regions: Vec<RegionWear>,
}

#[derive(Debug, Clone, Copy, Default)]
struct RegionWear {
    writes: u64,
    observed_errors: u64,
    observed_bits: u64,
}

impl RegionRber {
    /// A tracker for `regions` regions under the given wear model.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`.
    pub fn new(regions: usize, model: WearModel) -> Self {
        assert!(regions > 0, "at least one region");
        RegionRber {
            model,
            regions: vec![RegionWear::default(); regions],
        }
    }

    /// Number of tracked regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The wear model the predicted component is derived from.
    pub fn model(&self) -> &WearModel {
        &self.model
    }

    /// Records `n` block writes against `region`.
    pub fn record_writes(&mut self, region: usize, n: u64) {
        let r = &mut self.regions[region];
        r.writes = r.writes.saturating_add(n);
    }

    /// Records an observed error sample for `region`: `errors` erroneous
    /// bits out of `bits` examined.
    pub fn record_observation(&mut self, region: usize, errors: u64, bits: u64) {
        let r = &mut self.regions[region];
        r.observed_errors = r.observed_errors.saturating_add(errors);
        r.observed_bits = r.observed_bits.saturating_add(bits);
    }

    /// Total writes recorded against `region`.
    pub fn writes(&self, region: usize) -> u64 {
        self.regions[region].writes
    }

    /// The region's measured RBER: max(wear-predicted, observed sample
    /// rate). 0 for a fresh region with no observations.
    pub fn measured_rber(&self, region: usize) -> f64 {
        let r = self.regions[region];
        let predicted = self.model.error_probability(r.writes);
        let observed = if r.observed_bits == 0 {
            0.0
        } else {
            r.observed_errors as f64 / r.observed_bits as f64
        };
        predicted.max(observed)
    }

    /// Clears the observed sample for `region` (e.g. after a scrub
    /// rewrites the cells the sample was drawn from).
    pub fn reset_observation(&mut self, region: usize) {
        let r = &mut self.regions[region];
        r.observed_errors = 0;
        r.observed_bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    #[test]
    fn probability_ramps_monotonically() {
        let m = WearModel::default();
        let mut prev = -1.0;
        for w in [0u64, 10_000, 1_000_000, 50_000_000, 100_000_000, 1 << 60] {
            let p = m.error_probability(w);
            assert!(p >= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn reaches_certainty_at_endurance() {
        let m = WearModel {
            endurance: 1000,
            gamma: 2.0,
            p_max: 1.0,
        };
        assert_eq!(m.error_probability(1000), 1.0);
        assert_eq!(m.error_probability(0), 0.0);
    }

    #[test]
    fn worn_out_threshold() {
        let m = WearModel {
            endurance: 100,
            gamma: 1.0,
            p_max: 1.0,
        };
        assert!(!m.is_worn_out(9, 0.1));
        assert!(m.is_worn_out(10, 0.1));
    }

    #[test]
    fn region_rber_tracks_both_components() {
        let model = WearModel {
            endurance: 1000,
            gamma: 1.0,
            p_max: 1.0,
        };
        let mut t = RegionRber::new(2, model);
        assert_eq!(t.num_regions(), 2);
        assert_eq!(t.measured_rber(0), 0.0);
        // Wear-predicted component.
        t.record_writes(0, 100);
        assert!((t.measured_rber(0) - 0.1).abs() < 1e-12);
        assert_eq!(t.writes(0), 100);
        // Observed component dominates when worse.
        t.record_observation(0, 300, 1000);
        assert!((t.measured_rber(0) - 0.3).abs() < 1e-12);
        t.reset_observation(0);
        assert!((t.measured_rber(0) - 0.1).abs() < 1e-12);
        // Regions are independent.
        assert_eq!(t.measured_rber(1), 0.0);
    }

    #[test]
    fn state_counts_and_disables() {
        let mut st = WearState::new();
        st.record_write();
        st.record_writes(9);
        assert_eq!(st.writes(), 10);
        assert!(!st.is_disabled());
        st.disable();
        assert!(st.is_disabled());
    }

    #[test]
    fn sampling_respects_probability() {
        let m = WearModel {
            endurance: 100,
            gamma: 1.0,
            p_max: 1.0,
        };
        let mut st = WearState::new();
        st.record_writes(50); // p = 0.5
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000)
            .filter(|_| st.sample_wear_error(&m, &mut rng))
            .count();
        assert!((4500..5500).contains(&hits), "hits={hits}");
        let fresh = WearState::new();
        assert!(!fresh.sample_wear_error(&m, &mut rng));
    }
}
