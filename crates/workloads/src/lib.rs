//! Synthetic persistent-memory workload generators.
//!
//! The paper evaluates WHISPER persistent-memory benchmarks and SPLASH3
//! scientific benchmarks running under the ATLAS persistent-memory
//! library, inside gem5 (§VI). Reproducing that stack verbatim is a
//! hardware-scale undertaking; what the proposal's costs actually depend
//! on is a small set of workload properties:
//!
//! 1. the off-chip access mix — PM vs DRAM, read vs write (Figure 14);
//! 2. the row-buffer locality of PM writes, which sets the **C factor**
//!    (VLEW code-bit writes per PM write, Figure 15);
//! 3. how promptly dirty PM blocks are cleaned (`clwb`), which sets the
//!    dirty-PM cache occupancy (Figure 10) and the OMV hit rate
//!    (Figure 18);
//! 4. the compute-to-memory ratio and access dependence, which set how
//!    sensitive performance is to NVRAM write latency (Figures 16/17 —
//!    e.g. `hashmap`, all write queries with little compute, is the
//!    worst case; network servers like `memcached` hide write latency
//!    behind request processing).
//!
//! Each generator here is parameterized directly on those axes and
//! emits a deterministic, seedable stream of [`Op`]s that the
//! full-system simulator replays. The catalog ([`WorkloadSpec::all`])
//! mirrors the paper's workload list: WHISPER-style `echo`, `memcached`,
//! `redis`, `vacation`, `ctree`, `btree`, `rbtree`, `hashmap`, `ycsb`,
//! `tpcc`, and SPLASH3-style `barnes`, `fft`, `lu`, `ocean`, `radix`,
//! `water` under an ATLAS-like all-heap-in-PM regime.
//!
//! # Examples
//!
//! ```
//! use pmck_workloads::{TraceGenerator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::by_name("hashmap").unwrap();
//! let mut g = TraceGenerator::new(spec, 42);
//! let ops: Vec<_> = (0..1000).map(|_| g.next_op()).collect();
//! assert!(ops.iter().any(|o| o.is_pm_write()));
//! ```

mod generator;
mod spec;
mod trace;

pub use generator::TraceGenerator;
pub use spec::{WorkloadClass, WorkloadSpec};
pub use trace::{MemRef, Op};
