//! Trace operation types.

/// A block reference: address (64 B granularity) plus region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Block address within the region.
    pub addr: u64,
    /// Whether the block belongs to persistent memory (the NVRAM rank)
    /// rather than volatile DRAM.
    pub pm: bool,
}

impl MemRef {
    /// A persistent-memory reference.
    pub fn pm(addr: u64) -> Self {
        MemRef { addr, pm: true }
    }

    /// A DRAM reference.
    pub fn dram(addr: u64) -> Self {
        MemRef { addr, pm: false }
    }
}

/// One operation of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `cycles` of core-local work with no memory access.
    Compute(u32),
    /// A 64 B load.
    Load(MemRef),
    /// A 64 B store.
    Store(MemRef),
    /// A cache-line write-back (`clwb`) of the given block.
    Clwb(MemRef),
    /// A persist fence (`sfence`): all prior cleans must reach memory
    /// before execution continues.
    Fence,
}

impl Op {
    /// Whether this op stores to persistent memory.
    pub fn is_pm_write(&self) -> bool {
        matches!(self, Op::Store(r) if r.pm)
    }

    /// The memory reference, if this op touches memory.
    pub fn mem_ref(&self) -> Option<MemRef> {
        match self {
            Op::Load(r) | Op::Store(r) | Op::Clwb(r) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_queries() {
        let p = MemRef::pm(5);
        let d = MemRef::dram(5);
        assert!(p.pm && !d.pm);
        assert!(Op::Store(p).is_pm_write());
        assert!(!Op::Store(d).is_pm_write());
        assert!(!Op::Load(p).is_pm_write());
        assert_eq!(Op::Clwb(p).mem_ref(), Some(p));
        assert_eq!(Op::Fence.mem_ref(), None);
        assert_eq!(Op::Compute(10).mem_ref(), None);
    }
}
