//! Deterministic trace generation from a [`WorkloadSpec`].

use std::collections::VecDeque;

use pmck_rt::rng::Rng;
use pmck_rt::rng::SmallRng;

use crate::spec::{WorkloadClass, WorkloadSpec};
use crate::trace::{MemRef, Op};

/// A deterministic, seedable generator of workload [`Op`]s.
///
/// Two generators constructed with the same spec and seed produce the
/// same infinite stream — the baseline and proposal simulations replay
/// identical traces.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: SmallRng,
    queue: VecDeque<Op>,
    pending_cleans: VecDeque<MemRef>,
    last_item_addr: u64,
    log_head: u64,
    stream_pos: u64,
    ops_emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` seeded with `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let last_item_addr = rng.gen_range(0..spec.pm_blocks);
        let stream_pos = rng.gen_range(0..spec.pm_blocks);
        TraceGenerator {
            spec,
            rng,
            queue: VecDeque::new(),
            pending_cleans: VecDeque::new(),
            last_item_addr,
            log_head: 0,
            stream_pos,
            ops_emitted: 0,
        }
    }

    /// The workload being generated.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Produces the next operation (the stream is infinite).
    pub fn next_op(&mut self) -> Op {
        while self.queue.is_empty() {
            self.build_transaction();
        }
        self.ops_emitted += 1;
        self.queue.pop_front().expect("queue refilled")
    }

    /// Total operations emitted so far.
    pub fn ops_emitted(&self) -> u64 {
        self.ops_emitted
    }

    fn range(&mut self, (lo, hi): (u32, u32)) -> u32 {
        if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    /// The log region occupies the top 1/16 of the PM footprint; item
    /// space the rest. The log is append-only with wraparound, giving it
    /// near-perfect row locality (WHISPER logs behave this way).
    fn log_addr(&mut self) -> u64 {
        let log_blocks = (self.spec.pm_blocks / 16).max(64);
        let base = self.spec.pm_blocks - log_blocks;
        let a = base + (self.log_head % log_blocks);
        self.log_head += 1;
        a
    }

    fn item_addr(&mut self) -> u64 {
        let item_blocks = self.spec.pm_blocks - (self.spec.pm_blocks / 16).max(64);
        let hot_blocks = self.spec.hot_blocks.clamp(1, item_blocks);
        if self.rng.gen_bool(self.spec.store_locality) {
            self.last_item_addr = (self.last_item_addr + 1) % item_blocks;
        } else if self.rng.gen_bool(self.spec.hot_fraction) {
            // Temporal locality: most accesses revisit the hot set.
            self.last_item_addr = self.rng.gen_range(0..hot_blocks);
        } else {
            self.last_item_addr = self.rng.gen_range(0..item_blocks);
        }
        self.last_item_addr
    }

    fn dram_addr(&mut self) -> u64 {
        // DRAM accesses (stack, connection state, metadata) are highly
        // cacheable: 90% land in a small hot region.
        let hot = (self.spec.dram_blocks / 64)
            .clamp(256, 2048)
            .min(self.spec.dram_blocks);
        if self.rng.gen_bool(0.9) {
            self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(0..self.spec.dram_blocks)
        }
    }

    /// Pushes a store and schedules its clean after `clean_lag`
    /// transactions' worth of delay.
    fn push_store(&mut self, addr: u64) {
        self.queue.push_back(Op::Store(MemRef::pm(addr)));
        self.pending_cleans.push_back(MemRef::pm(addr));
    }

    /// Emits due cleans (everything beyond the lag window), ending with a
    /// persist fence when anything was cleaned.
    fn drain_cleans(&mut self) {
        let keep = self.spec.clean_lag;
        let mut cleaned = false;
        while self.pending_cleans.len() > keep {
            let r = self.pending_cleans.pop_front().expect("nonempty");
            self.queue.push_back(Op::Clwb(r));
            cleaned = true;
        }
        if cleaned {
            self.queue.push_back(Op::Fence);
        }
    }

    fn build_transaction(&mut self) {
        match self.spec.class {
            WorkloadClass::NetworkServer => self.network_tx(),
            WorkloadClass::WriteQuery => self.write_query_tx(),
            WorkloadClass::Scientific => self.scientific_tx(),
        }
    }

    fn network_tx(&mut self) {
        // Request processing (network stack, parsing) hides latency.
        let gap = self.range(self.spec.compute);
        self.queue.push_back(Op::Compute(gap));
        for _ in 0..self.range(self.spec.dram_reads) {
            let a = self.dram_addr();
            self.queue.push_back(Op::Load(MemRef::dram(a)));
        }
        if self.rng.gen_bool(self.spec.read_query_prob) {
            for _ in 0..self.range(self.spec.pm_reads).max(1) {
                let a = self.item_addr();
                self.queue.push_back(Op::Load(MemRef::pm(a)));
            }
        } else {
            // Write query: log append, then item update.
            for _ in 0..self.range(self.spec.log_writes) {
                let a = self.log_addr();
                self.push_store(a);
            }
            for _ in 0..self.range(self.spec.stores_per_op) {
                let a = self.item_addr();
                // Read-modify-write of the item.
                self.queue.push_back(Op::Load(MemRef::pm(a)));
                self.push_store(a);
            }
            self.drain_cleans();
        }
    }

    fn write_query_tx(&mut self) {
        let gap = self.range(self.spec.compute);
        self.queue.push_back(Op::Compute(gap));
        for _ in 0..self.range(self.spec.dram_reads) {
            let a = self.dram_addr();
            self.queue.push_back(Op::Load(MemRef::dram(a)));
        }
        if self.rng.gen_bool(self.spec.read_query_prob) {
            // Read query: pointer chase only.
            let depth = self.range(self.spec.chase_depth).max(1);
            for _ in 0..depth {
                let a = self.item_addr();
                self.queue.push_back(Op::Load(MemRef::pm(a)));
                self.queue.push_back(Op::Compute(15));
            }
            return;
        }
        // Pointer chase to the target node: dependent loads.
        let depth = self.range(self.spec.chase_depth).max(1);
        let mut node = 0;
        for _ in 0..depth {
            node = self.item_addr();
            self.queue.push_back(Op::Load(MemRef::pm(node)));
            self.queue.push_back(Op::Compute(15));
        }
        // Log, then modify the node (adjacent blocks).
        for _ in 0..self.range(self.spec.log_writes) {
            let a = self.log_addr();
            self.push_store(a);
        }
        let stores = self.range(self.spec.stores_per_op);
        let item_blocks = self.spec.pm_blocks - (self.spec.pm_blocks / 16).max(64);
        for k in 0..stores as u64 {
            self.push_store((node + k) % item_blocks);
        }
        self.drain_cleans();
    }

    fn scientific_tx(&mut self) {
        let gap = self.range(self.spec.compute);
        self.queue.push_back(Op::Compute(gap));
        for _ in 0..self.range(self.spec.dram_reads) {
            let a = self.dram_addr();
            self.queue.push_back(Op::Load(MemRef::dram(a)));
        }
        // Streaming reads over the PM heap, with phase-dependent stores.
        let reads = self.range(self.spec.pm_reads).max(1);
        let hot_blocks = self.spec.hot_blocks.clamp(1, self.spec.pm_blocks);
        for _ in 0..reads {
            if self.rng.gen_bool(self.spec.store_locality) {
                self.stream_pos = (self.stream_pos + 1) % self.spec.pm_blocks;
            } else if self.rng.gen_bool(self.spec.hot_fraction) {
                self.stream_pos = self.rng.gen_range(0..hot_blocks);
            } else {
                self.stream_pos = self.rng.gen_range(0..self.spec.pm_blocks);
            }
            self.queue.push_back(Op::Load(MemRef::pm(self.stream_pos)));
            if self.rng.gen_bool(self.spec.store_prob) {
                let addr = self.stream_pos;
                self.queue.push_back(Op::Store(MemRef::pm(addr)));
                self.pending_cleans.push_back(MemRef::pm(addr));
            }
        }
        // ATLAS-style logging at synchronization points.
        for _ in 0..self.range(self.spec.log_writes) {
            let a = self.log_addr();
            self.push_store(a);
        }
        self.drain_cleans();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn mix(name: &str, n: usize) -> (f64, f64, f64, f64, f64) {
        let spec = WorkloadSpec::by_name(name).unwrap();
        let mut g = TraceGenerator::new(spec, 7);
        let (mut pm_r, mut pm_w, mut d_r, mut d_w, mut clean) = (0f64, 0f64, 0f64, 0f64, 0f64);
        let mut mem_ops = 0f64;
        for _ in 0..n {
            match g.next_op() {
                Op::Load(r) => {
                    mem_ops += 1.0;
                    if r.pm {
                        pm_r += 1.0
                    } else {
                        d_r += 1.0
                    }
                }
                Op::Store(r) => {
                    mem_ops += 1.0;
                    if r.pm {
                        pm_w += 1.0
                    } else {
                        d_w += 1.0
                    }
                }
                Op::Clwb(_) => clean += 1.0,
                _ => {}
            }
        }
        (
            pm_r / mem_ops,
            pm_w / mem_ops,
            d_r / mem_ops,
            d_w / mem_ops,
            clean,
        )
    }

    #[test]
    fn deterministic_by_seed() {
        let spec = WorkloadSpec::by_name("btree").unwrap();
        let mut a = TraceGenerator::new(spec, 1);
        let mut b = TraceGenerator::new(spec, 1);
        for _ in 0..5000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = TraceGenerator::new(spec, 2);
        let same = (0..5000).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 5000, "different seeds must differ");
    }

    #[test]
    fn every_workload_generates_and_touches_pm() {
        for spec in WorkloadSpec::all() {
            let mut g = TraceGenerator::new(spec, 3);
            let mut pm = false;
            let mut fence = false;
            for _ in 0..20_000 {
                match g.next_op() {
                    Op::Load(r) | Op::Store(r) => pm |= r.pm,
                    Op::Fence => fence = true,
                    _ => {}
                }
            }
            assert!(pm, "{}: must touch PM", spec.name);
            assert!(fence, "{}: must persist", spec.name);
        }
    }

    #[test]
    fn hashmap_is_pm_write_dominated() {
        let (pm_r, pm_w, _, _, _) = mix("hashmap", 50_000);
        assert!(pm_w > 0.4, "hashmap pm write frac {pm_w}");
        assert!(pm_w > pm_r, "writes dominate reads");
    }

    #[test]
    fn scientific_is_pm_read_dominated() {
        let (pm_r, pm_w, _, _, _) = mix("barnes", 50_000);
        assert!(pm_r > pm_w * 3.0, "barnes reads {pm_r} vs writes {pm_w}");
    }

    #[test]
    fn network_workloads_have_dram_traffic() {
        let (_, _, d_r, _, _) = mix("memcached", 50_000);
        assert!(d_r > 0.15, "memcached dram read frac {d_r}");
    }

    #[test]
    fn every_store_is_eventually_cleaned() {
        for name in ["echo", "hashmap", "ocean"] {
            let spec = WorkloadSpec::by_name(name).unwrap();
            let mut g = TraceGenerator::new(spec, 5);
            let mut stores = 0i64;
            let mut cleans = 0i64;
            for _ in 0..100_000 {
                match g.next_op() {
                    Op::Store(r) if r.pm => stores += 1,
                    Op::Clwb(_) => cleans += 1,
                    _ => {}
                }
            }
            let lag_bound = spec.clean_lag as i64 + 16;
            assert!(
                (stores - cleans) <= lag_bound,
                "{name}: stores {stores} vs cleans {cleans}"
            );
        }
    }

    #[test]
    fn addresses_stay_in_footprint() {
        for spec in WorkloadSpec::all() {
            let mut g = TraceGenerator::new(spec, 9);
            for _ in 0..20_000 {
                if let Some(r) = g.next_op().mem_ref() {
                    let bound = if r.pm {
                        spec.pm_blocks
                    } else {
                        spec.dram_blocks
                    };
                    assert!(r.addr < bound, "{}: {} < {}", spec.name, r.addr, bound);
                }
            }
        }
    }

    #[test]
    fn log_writes_are_sequential() {
        let spec = WorkloadSpec::by_name("echo").unwrap();
        let mut g = TraceGenerator::new(spec, 11);
        let log_base = spec.pm_blocks - (spec.pm_blocks / 16).max(64);
        let mut log_addrs = Vec::new();
        for _ in 0..50_000 {
            if let Op::Store(r) = g.next_op() {
                if r.pm && r.addr >= log_base {
                    log_addrs.push(r.addr);
                }
            }
        }
        assert!(log_addrs.len() > 100);
        let sequential = log_addrs
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[1] < w[0])
            .count();
        assert!(
            sequential as f64 / (log_addrs.len() - 1) as f64 > 0.95,
            "log appends are sequential"
        );
    }
}
