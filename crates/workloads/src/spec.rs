//! The workload catalog, parameterized on the axes the proposal's costs
//! depend on (see the crate docs).

/// Broad behavioural class of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Query-per-network-request servers (echo, memcached, redis,
    /// vacation): long per-query processing hides memory latency.
    NetworkServer,
    /// Write-query data structures (ctree, btree, rbtree, hashmap):
    /// pointer chase + node update + log, little compute.
    WriteQuery,
    /// SPLASH3-style scientific kernels under ATLAS (heap in PM):
    /// streaming reads, phase-wise stores, lazy cleaning.
    Scientific,
}

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (matches the paper's figures).
    pub name: &'static str,
    /// Behavioural class.
    pub class: WorkloadClass,
    /// Persistent-memory footprint in 64 B blocks.
    pub pm_blocks: u64,
    /// DRAM footprint in 64 B blocks.
    pub dram_blocks: u64,
    /// Per-transaction compute gap, cycles (min, max).
    pub compute: (u32, u32),
    /// Fraction of queries that are read-only (network class).
    pub read_query_prob: f64,
    /// Pointer-chase depth (write-query class), inclusive range.
    pub chase_depth: (u32, u32),
    /// Item stores per write transaction, inclusive range.
    pub stores_per_op: (u32, u32),
    /// Sequential log appends per write transaction, inclusive range.
    pub log_writes: (u32, u32),
    /// Probability that consecutive item stores are block-sequential
    /// (drives row-buffer locality and hence the C factor).
    pub store_locality: f64,
    /// Transactions a store may stay dirty before it is cleaned
    /// (drives Figure 10 occupancy and Figure 18 OMV hits).
    pub clean_lag: usize,
    /// DRAM reads per transaction, inclusive range.
    pub dram_reads: (u32, u32),
    /// PM reads per transaction, inclusive range.
    pub pm_reads: (u32, u32),
    /// Scientific: store probability per streamed read.
    pub store_prob: f64,
    /// Probability an item access falls in the hot set (temporal
    /// locality; drives LLC hit rate).
    pub hot_fraction: f64,
    /// Hot-set size in blocks.
    pub hot_blocks: u64,
}

impl WorkloadSpec {
    /// The full catalog, in the order the paper's figures list workloads.
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            // ---- WHISPER-style network servers ----
            WorkloadSpec {
                name: "echo",
                class: WorkloadClass::NetworkServer,
                pm_blocks: 1 << 21,
                dram_blocks: 1 << 18,
                compute: (9600, 24000),
                read_query_prob: 0.25,
                chase_depth: (0, 0),
                stores_per_op: (1, 2),
                log_writes: (2, 4),
                store_locality: 0.8,
                clean_lag: 400,
                dram_reads: (2, 5),
                pm_reads: (1, 2),
                store_prob: 0.0,
                hot_fraction: 0.95,
                hot_blocks: 10000,
            },
            WorkloadSpec {
                name: "memcached",
                class: WorkloadClass::NetworkServer,
                pm_blocks: 1 << 22,
                dram_blocks: 1 << 19,
                compute: (16000, 40000),
                read_query_prob: 0.5,
                chase_depth: (0, 0),
                stores_per_op: (1, 2),
                log_writes: (1, 2),
                store_locality: 0.7,
                clean_lag: 500,
                dram_reads: (3, 7),
                pm_reads: (1, 3),
                store_prob: 0.0,
                hot_fraction: 0.95,
                hot_blocks: 12000,
            },
            WorkloadSpec {
                name: "redis",
                class: WorkloadClass::NetworkServer,
                pm_blocks: 1 << 22,
                dram_blocks: 1 << 19,
                compute: (9000, 22000),
                read_query_prob: 0.4,
                chase_depth: (0, 0),
                stores_per_op: (1, 3),
                log_writes: (2, 3),
                store_locality: 0.75,
                clean_lag: 450,
                dram_reads: (2, 6),
                pm_reads: (1, 3),
                store_prob: 0.0,
                hot_fraction: 0.95,
                hot_blocks: 11000,
            },
            WorkloadSpec {
                name: "vacation",
                class: WorkloadClass::NetworkServer,
                pm_blocks: 1 << 21,
                dram_blocks: 1 << 19,
                compute: (8000, 21000),
                read_query_prob: 0.35,
                chase_depth: (0, 0),
                stores_per_op: (2, 4),
                log_writes: (1, 3),
                store_locality: 0.7,
                clean_lag: 500,
                dram_reads: (3, 8),
                pm_reads: (2, 4),
                store_prob: 0.0,
                hot_fraction: 0.94,
                hot_blocks: 12000,
            },
            // ---- WHISPER-style write-query data structures ----
            WorkloadSpec {
                name: "ctree",
                class: WorkloadClass::WriteQuery,
                pm_blocks: 1 << 21,
                dram_blocks: 1 << 16,
                compute: (6400, 19200),
                read_query_prob: 0.0,
                chase_depth: (3, 6),
                stores_per_op: (2, 3),
                log_writes: (1, 2),
                store_locality: 0.8,
                clean_lag: 250,
                dram_reads: (0, 2),
                pm_reads: (0, 0),
                store_prob: 0.0,
                hot_fraction: 0.95,
                hot_blocks: 9000,
            },
            WorkloadSpec {
                name: "btree",
                class: WorkloadClass::WriteQuery,
                pm_blocks: 1 << 21,
                dram_blocks: 1 << 16,
                compute: (6000, 17600),
                read_query_prob: 0.0,
                chase_depth: (2, 5),
                stores_per_op: (2, 4),
                log_writes: (1, 2),
                store_locality: 0.82,
                clean_lag: 250,
                dram_reads: (0, 2),
                pm_reads: (0, 0),
                store_prob: 0.0,
                hot_fraction: 0.95,
                hot_blocks: 9000,
            },
            WorkloadSpec {
                name: "rbtree",
                class: WorkloadClass::WriteQuery,
                pm_blocks: 1 << 21,
                dram_blocks: 1 << 16,
                compute: (8000, 24000),
                read_query_prob: 0.0,
                chase_depth: (4, 8),
                stores_per_op: (2, 4),
                log_writes: (1, 2),
                store_locality: 0.78,
                clean_lag: 250,
                dram_reads: (0, 2),
                pm_reads: (0, 0),
                store_prob: 0.0,
                hot_fraction: 0.95,
                hot_blocks: 9000,
            },
            WorkloadSpec {
                // The worst case for the proposal (Figure 16/17): only
                // write queries, no pointer-chase serialization, little
                // compute, random item placement.
                name: "hashmap",
                class: WorkloadClass::WriteQuery,
                pm_blocks: 1 << 22,
                dram_blocks: 1 << 15,
                compute: (3200, 8000),
                read_query_prob: 0.0,
                chase_depth: (1, 1),
                stores_per_op: (1, 2),
                log_writes: (1, 2),
                store_locality: 0.25,
                clean_lag: 350,
                dram_reads: (0, 1),
                pm_reads: (0, 0),
                store_prob: 0.0,
                hot_fraction: 0.9,
                hot_blocks: 20000,
            },
            WorkloadSpec {
                name: "ycsb",
                class: WorkloadClass::WriteQuery,
                pm_blocks: 1 << 22,
                dram_blocks: 1 << 16,
                compute: (4800, 14400),
                read_query_prob: 0.5,
                chase_depth: (1, 2),
                stores_per_op: (1, 2),
                log_writes: (1, 1),
                store_locality: 0.6,
                clean_lag: 400,
                dram_reads: (0, 2),
                pm_reads: (1, 2),
                store_prob: 0.0,
                hot_fraction: 0.93,
                hot_blocks: 14000,
            },
            WorkloadSpec {
                name: "tpcc",
                class: WorkloadClass::WriteQuery,
                pm_blocks: 1 << 22,
                dram_blocks: 1 << 17,
                compute: (6400, 19200),
                read_query_prob: 0.2,
                chase_depth: (2, 4),
                stores_per_op: (3, 6),
                log_writes: (2, 4),
                store_locality: 0.75,
                clean_lag: 500,
                dram_reads: (1, 4),
                pm_reads: (1, 3),
                store_prob: 0.0,
                hot_fraction: 0.93,
                hot_blocks: 14000,
            },
            // ---- SPLASH3-style scientific under ATLAS ----
            WorkloadSpec {
                name: "barnes",
                class: WorkloadClass::Scientific,
                pm_blocks: 1 << 20,
                dram_blocks: 1 << 17,
                compute: (3200, 9600),
                read_query_prob: 0.0,
                chase_depth: (0, 0),
                stores_per_op: (0, 0),
                log_writes: (0, 1),
                store_locality: 0.9,
                clean_lag: 80,
                dram_reads: (1, 3),
                pm_reads: (4, 10),
                store_prob: 0.03,
                hot_fraction: 0.97,
                hot_blocks: 10000,
            },
            WorkloadSpec {
                name: "fft",
                class: WorkloadClass::Scientific,
                pm_blocks: 1 << 20,
                dram_blocks: 1 << 16,
                compute: (3000, 9600),
                read_query_prob: 0.0,
                chase_depth: (0, 0),
                stores_per_op: (0, 0),
                log_writes: (0, 1),
                store_locality: 0.97,
                clean_lag: 600,
                dram_reads: (0, 2),
                pm_reads: (4, 8),
                store_prob: 0.2,
                hot_fraction: 0.94,
                hot_blocks: 12000,
            },
            WorkloadSpec {
                name: "lu",
                class: WorkloadClass::Scientific,
                pm_blocks: 1 << 19,
                dram_blocks: 1 << 16,
                compute: (2400, 6600),
                read_query_prob: 0.0,
                chase_depth: (0, 0),
                stores_per_op: (0, 0),
                log_writes: (0, 1),
                store_locality: 0.95,
                clean_lag: 500,
                dram_reads: (0, 2),
                pm_reads: (3, 8),
                store_prob: 0.15,
                hot_fraction: 0.96,
                hot_blocks: 9000,
            },
            WorkloadSpec {
                name: "ocean",
                class: WorkloadClass::Scientific,
                pm_blocks: 1 << 21,
                dram_blocks: 1 << 16,
                compute: (2400, 7800),
                read_query_prob: 0.0,
                chase_depth: (0, 0),
                stores_per_op: (0, 0),
                log_writes: (0, 1),
                store_locality: 0.97,
                clean_lag: 700,
                dram_reads: (0, 2),
                pm_reads: (5, 10),
                store_prob: 0.18,
                hot_fraction: 0.94,
                hot_blocks: 14000,
            },
            WorkloadSpec {
                name: "radix",
                class: WorkloadClass::Scientific,
                pm_blocks: 1 << 20,
                dram_blocks: 1 << 15,
                compute: (3600, 11200),
                read_query_prob: 0.0,
                chase_depth: (0, 0),
                stores_per_op: (0, 0),
                log_writes: (0, 1),
                store_locality: 0.75,
                clean_lag: 600,
                dram_reads: (0, 1),
                pm_reads: (3, 7),
                store_prob: 0.3,
                hot_fraction: 0.9,
                hot_blocks: 20000,
            },
            WorkloadSpec {
                name: "water",
                class: WorkloadClass::Scientific,
                pm_blocks: 1 << 19,
                dram_blocks: 1 << 16,
                compute: (1800, 5200),
                read_query_prob: 0.0,
                chase_depth: (0, 0),
                stores_per_op: (0, 0),
                log_writes: (0, 1),
                store_locality: 0.9,
                clean_lag: 150,
                dram_reads: (1, 3),
                pm_reads: (3, 8),
                store_prob: 0.05,
                hot_fraction: 0.97,
                hot_blocks: 8000,
            },
        ]
    }

    /// Looks a workload up by name.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::all().into_iter().find(|w| w.name == name)
    }

    /// The WHISPER-style subset (network + write-query).
    pub fn whisper() -> Vec<WorkloadSpec> {
        Self::all()
            .into_iter()
            .filter(|w| w.class != WorkloadClass::Scientific)
            .collect()
    }

    /// The SPLASH3-style subset.
    pub fn splash() -> Vec<WorkloadSpec> {
        Self::all()
            .into_iter()
            .filter(|w| w.class == WorkloadClass::Scientific)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_sixteen_unique_workloads() {
        let all = WorkloadSpec::all();
        assert_eq!(all.len(), 16);
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn lookup_by_name() {
        assert!(WorkloadSpec::by_name("hashmap").is_some());
        assert!(WorkloadSpec::by_name("nonesuch").is_none());
    }

    #[test]
    fn subsets_partition_catalog() {
        assert_eq!(
            WorkloadSpec::whisper().len() + WorkloadSpec::splash().len(),
            WorkloadSpec::all().len()
        );
        assert_eq!(WorkloadSpec::splash().len(), 6);
    }

    #[test]
    fn parameters_are_sane() {
        for w in WorkloadSpec::all() {
            assert!(w.compute.0 <= w.compute.1, "{}", w.name);
            assert!(w.pm_blocks > 0 && w.dram_blocks > 0, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.read_query_prob), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.store_locality), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.store_prob), "{}", w.name);
        }
    }
}
