//! Property tests for the workload generators: structural guarantees the
//! simulator relies on.

use pmck_workloads::{Op, TraceGenerator, WorkloadSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (0usize..WorkloadSpec::all().len()).prop_map(|i| WorkloadSpec::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streams_are_deterministic(spec in spec_strategy(), seed in any::<u64>()) {
        let mut a = TraceGenerator::new(spec, seed);
        let mut b = TraceGenerator::new(spec, seed);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn addresses_always_in_bounds(spec in spec_strategy(), seed in any::<u64>()) {
        let mut g = TraceGenerator::new(spec, seed);
        for _ in 0..5_000 {
            if let Some(r) = g.next_op().mem_ref() {
                let bound = if r.pm { spec.pm_blocks } else { spec.dram_blocks };
                prop_assert!(r.addr < bound);
            }
        }
    }

    #[test]
    fn cleans_only_follow_stores(spec in spec_strategy(), seed in any::<u64>()) {
        // A clwb may only target an address that was stored earlier and
        // not yet cleaned more times than stored.
        let mut g = TraceGenerator::new(spec, seed);
        let mut outstanding: std::collections::HashMap<u64, i64> =
            std::collections::HashMap::new();
        for _ in 0..10_000 {
            match g.next_op() {
                Op::Store(r) if r.pm => {
                    *outstanding.entry(r.addr).or_insert(0) += 1;
                }
                Op::Clwb(r) => {
                    let e = outstanding.entry(r.addr).or_insert(0);
                    *e -= 1;
                    prop_assert!(*e >= 0, "clean without a prior store at {}", r.addr);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn fences_terminate_clean_batches(spec in spec_strategy(), seed in any::<u64>()) {
        // Between the last Clwb of a batch and the next non-clean op
        // there must be a Fence (persistence ordering).
        let mut g = TraceGenerator::new(spec, seed);
        let mut pending_clean = false;
        for _ in 0..10_000 {
            match g.next_op() {
                Op::Clwb(_) => pending_clean = true,
                Op::Fence => pending_clean = false,
                Op::Compute(_) | Op::Load(_) | Op::Store(_) => {
                    prop_assert!(!pending_clean, "cleans must be fenced before new work");
                }
            }
        }
    }

    #[test]
    fn compute_fractions_reflect_class(spec in spec_strategy()) {
        let mut g = TraceGenerator::new(spec, 7);
        let mut compute_cycles = 0u64;
        let mut mem_ops = 0u64;
        for _ in 0..20_000 {
            match g.next_op() {
                Op::Compute(n) => compute_cycles += n as u64,
                Op::Load(_) | Op::Store(_) => mem_ops += 1,
                _ => {}
            }
        }
        prop_assert!(mem_ops > 0);
        let per_op = compute_cycles as f64 / mem_ops as f64;
        // Every workload does *some* work per memory op, and none is
        // absurdly compute-starved or compute-drowned.
        prop_assert!(per_op > 5.0 && per_op < 50_000.0, "{}: {per_op}", spec.name);
    }
}
