//! Randomized tests for the workload generators: structural guarantees
//! the simulator relies on, checked for every workload spec across many
//! seeded iterations.

use pmck_rt::rng::{Rng, StdRng};
use pmck_workloads::{Op, TraceGenerator, WorkloadSpec};

/// Runs `f` for every workload spec with several derived seeds.
fn for_each_spec(test_seed: u64, seeds_per_spec: usize, mut f: impl FnMut(WorkloadSpec, u64)) {
    let mut rng = StdRng::seed_from_u64(test_seed);
    for spec in WorkloadSpec::all() {
        for _ in 0..seeds_per_spec {
            f(spec, rng.gen());
        }
    }
}

#[test]
fn streams_are_deterministic() {
    for_each_spec(0x3019_0001, 3, |spec, seed| {
        let mut a = TraceGenerator::new(spec, seed);
        let mut b = TraceGenerator::new(spec, seed);
        for _ in 0..2_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    });
}

#[test]
fn addresses_always_in_bounds() {
    for_each_spec(0x3019_0002, 3, |spec, seed| {
        let mut g = TraceGenerator::new(spec, seed);
        for _ in 0..5_000 {
            if let Some(r) = g.next_op().mem_ref() {
                let bound = if r.pm {
                    spec.pm_blocks
                } else {
                    spec.dram_blocks
                };
                assert!(r.addr < bound);
            }
        }
    });
}

#[test]
fn cleans_only_follow_stores() {
    for_each_spec(0x3019_0003, 3, |spec, seed| {
        // A clwb may only target an address that was stored earlier and
        // not yet cleaned more times than stored.
        let mut g = TraceGenerator::new(spec, seed);
        let mut outstanding: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        for _ in 0..10_000 {
            match g.next_op() {
                Op::Store(r) if r.pm => {
                    *outstanding.entry(r.addr).or_insert(0) += 1;
                }
                Op::Clwb(r) => {
                    let e = outstanding.entry(r.addr).or_insert(0);
                    *e -= 1;
                    assert!(*e >= 0, "clean without a prior store at {}", r.addr);
                }
                _ => {}
            }
        }
    });
}

#[test]
fn fences_terminate_clean_batches() {
    for_each_spec(0x3019_0004, 3, |spec, seed| {
        // Between the last Clwb of a batch and the next non-clean op
        // there must be a Fence (persistence ordering).
        let mut g = TraceGenerator::new(spec, seed);
        let mut pending_clean = false;
        for _ in 0..10_000 {
            match g.next_op() {
                Op::Clwb(_) => pending_clean = true,
                Op::Fence => pending_clean = false,
                Op::Compute(_) | Op::Load(_) | Op::Store(_) => {
                    assert!(!pending_clean, "cleans must be fenced before new work");
                }
            }
        }
    });
}

#[test]
fn compute_fractions_reflect_class() {
    for spec in WorkloadSpec::all() {
        let mut g = TraceGenerator::new(spec, 7);
        let mut compute_cycles = 0u64;
        let mut mem_ops = 0u64;
        for _ in 0..20_000 {
            match g.next_op() {
                Op::Compute(n) => compute_cycles += n as u64,
                Op::Load(_) | Op::Store(_) => mem_ops += 1,
                _ => {}
            }
        }
        assert!(mem_ops > 0);
        let per_op = compute_cycles as f64 / mem_ops as f64;
        // Every workload does *some* work per memory op, and none is
        // absurdly compute-starved or compute-drowned.
        assert!(per_op > 5.0 && per_op < 50_000.0, "{}: {per_op}", spec.name);
    }
}
