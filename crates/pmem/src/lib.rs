//! Persistence-domain model for persistent-memory ranks.
//!
//! The functional stack mutates its chip arrays in ordinary volatile
//! memory; this crate supplies the missing durability story. A
//! [`PersistentMedia`] keeps two byte images of the same address space:
//!
//! * **staging** — the merged "CPU cache + WPQ" view. Every store lands
//!   here first and is *volatile*: a power cut discards it.
//! * **durable** — what the NVRAM cells actually hold. Only
//!   [`PersistentMedia::fence`] moves bytes here, and only for lines
//!   that were first [`PersistentMedia::flush`]ed.
//!
//! The protocol is modeled on the virtio-pmem asynchronous flush
//! command: *"Data written to this memory is made persistent by
//! separately sending a flush command — writes that have been flushed
//! are preserved across device reset and power failure."* `flush`
//! selects dirty lines (cache → write-pending queue), `fence` commits
//! the whole pending set atomically, and [`PersistentMedia::drain`] is
//! the flush-everything convenience used by `Request::Flush`.
//!
//! # The intent log makes every fence all-or-nothing
//!
//! Media writes tear: a 64 B line persists in `torn_chunk_bytes`
//! pieces, and power can fail between any two pieces. A multi-line
//! fence interrupted halfway would otherwise leave the durable image
//! half old, half new — a state no decoder is guaranteed to recover.
//! `fence` therefore writes a single CRC-sealed *redo record* into a
//! log region of the same media before touching any data line:
//!
//! ```text
//! [ magic u64 | epoch u64 | count u64 | (offset u64, line bytes)×count | crc u64 ]
//! ```
//!
//! * power lost while the record itself is being written → the CRC
//!   seal fails on recovery, the record is ignored, and the durable
//!   image is the intact **pre-fence** state;
//! * power lost after the seal, while data lines are being persisted →
//!   recovery replays the sealed record and reconstructs the complete
//!   **post-fence** state.
//!
//! Replay is idempotent (it rewrites whole lines with their recorded
//! contents), so recovering twice — or recovering after a clean
//! shutdown — is harmless. Only one record is ever live: the next
//! fence overwrites the log region from offset zero, and a partially
//! overwritten old record is self-invalidating by CRC.
//!
//! # Power cuts and scars
//!
//! [`PersistentMedia::arm_fuse`] kills the media after a chosen number
//! of durable chunk writes — the crash-campaign hook. A dead media
//! silently drops further durable writes (the simulation may keep
//! executing volatile-side; everything after the fuse simply never
//! reached the cells). [`PersistentMedia::power_cut`] then discards
//! the volatile state and [`PersistentMedia::recover`] rebuilds
//! staging from the durable image after log replay.
//!
//! Fault injection is *physical*: [`PersistentMedia::scar_xor`]
//! applies a cell disturbance directly to the durable image (and to
//! staging, keeping it in sync with the live arrays it mirrors),
//! bypassing the flush protocol — corrupted cells survive power cuts,
//! unflushed clean data does not.

use std::fmt;

/// Geometry of the persistence domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmemConfig {
    /// Flush/dirty-tracking granularity (a CPU cache line), in bytes.
    pub line_bytes: usize,
    /// Atomic media write unit: power can fail between chunks of a
    /// line, never inside one chunk (8 = the paper's per-chip share of
    /// a block).
    pub torn_chunk_bytes: usize,
}

impl Default for PmemConfig {
    fn default() -> Self {
        PmemConfig {
            line_bytes: 64,
            torn_chunk_bytes: 8,
        }
    }
}

/// Counters published through the stack's `LayerStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaStats {
    /// `flush` calls (including the implicit one inside `drain`).
    pub flushes: u64,
    /// `fence` calls.
    pub fences: u64,
    /// Dirty lines moved cache → WPQ by flushes.
    pub lines_flushed: u64,
    /// Intent-log records written.
    pub log_records: u64,
    /// Intent-log bytes written.
    pub log_bytes: u64,
    /// Lines left partially persisted by a fuse cut.
    pub torn_lines: u64,
    /// Successful recoveries.
    pub recoveries: u64,
    /// Lines rewritten by log replay during recovery.
    pub lines_redone: u64,
}

/// Result of one fence (or drain).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FenceReport {
    /// Lines the fence attempted to persist.
    pub lines: u64,
    /// Intent-log bytes written for this fence (0 for an empty fence).
    pub log_bytes: u64,
}

/// Result of replaying the intent log during recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Sealed records found and replayed (0 or 1).
    pub records_replayed: u64,
    /// Lines rewritten from the record.
    pub lines_redone: u64,
}

/// A structurally corrupt intent log: recovery cannot tell what the
/// durable image is supposed to be. Distinct from a *torn* record,
/// which fails its CRC seal and is silently ignored (pre-fence state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaError {
    /// The record header claims more lines than the log region can
    /// hold, so no seal covering it can exist.
    UnsealedRecord {
        /// Line count claimed by the header.
        count: u64,
        /// Most lines a sealed record could carry.
        capacity_lines: u64,
    },
    /// A sealed entry targets an offset outside the data region.
    TornEntry {
        /// The out-of-range byte offset.
        offset: u64,
    },
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::UnsealedRecord {
                count,
                capacity_lines,
            } => write!(
                f,
                "intent-log record claims {count} lines but the log region holds \
                 at most {capacity_lines}"
            ),
            MediaError::TornEntry { offset } => write!(
                f,
                "sealed intent-log entry targets out-of-range offset {offset}"
            ),
        }
    }
}

impl std::error::Error for MediaError {}

/// Record magic ("PMCKLOG1" as a little-endian u64).
const LOG_MAGIC: u64 = 0x3147_4f4c_4b43_4d50;
/// Bytes of record framing: magic + epoch + count header, crc footer.
const LOG_HEADER: usize = 24;
const LOG_FOOTER: usize = 8;

/// CRC-32 (IEEE 802.3, reflected), bitwise. Media images are small and
/// fences are not the simulation hot loop, so no table is kept.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Fixed-capacity bitset over line indices.
#[derive(Debug, Clone)]
struct LineSet {
    words: Vec<u64>,
}

impl LineSet {
    fn new(lines: usize) -> Self {
        LineSet {
            words: vec![0; lines.div_ceil(64)],
        }
    }
    fn set(&mut self, line: usize) {
        self.words[line / 64] |= 1 << (line % 64);
    }
    fn clear(&mut self, line: usize) {
        self.words[line / 64] &= !(1 << (line % 64));
    }
    fn test(&self, line: usize) -> bool {
        self.words[line / 64] & (1 << (line % 64)) != 0
    }
    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
    fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

/// The dual-image persistence domain. See the crate docs for the
/// durability protocol.
#[derive(Debug, Clone)]
pub struct PersistentMedia {
    cfg: PmemConfig,
    /// Bytes in the data region (log region excluded).
    data_len: usize,
    /// Volatile merged view ("CPU cache + WPQ"), data region only.
    staging: Vec<u8>,
    /// What the cells hold: data region, then the log region.
    durable: Vec<u8>,
    log_base: usize,
    log_cap: usize,
    /// Lines dirty in cache (stored, not yet flushed).
    cache: LineSet,
    /// Lines flushed into the WPQ, awaiting a fence.
    wpq: LineSet,
    /// Reusable record-encode buffer (capacity reserved up front so
    /// steady-state fences never allocate).
    log_buf: Vec<u8>,
    epoch: u64,
    fuse: Option<u64>,
    dead: bool,
    steps_taken: u64,
    stats: MediaStats,
}

impl PersistentMedia {
    /// A domain over `data_len` bytes of media (rounded up to whole
    /// lines). The log region is sized for the worst-case record: a
    /// fence covering every line.
    ///
    /// # Panics
    ///
    /// Panics if `data_len == 0` or the torn-chunk size does not evenly
    /// divide the line size.
    pub fn new(data_len: usize, cfg: PmemConfig) -> Self {
        assert!(data_len > 0, "media must hold at least one line");
        assert!(
            cfg.line_bytes > 0
                && cfg.torn_chunk_bytes > 0
                && cfg.line_bytes.is_multiple_of(cfg.torn_chunk_bytes),
            "torn chunk must evenly divide the line size"
        );
        let lb = cfg.line_bytes;
        let data_len = data_len.div_ceil(lb) * lb;
        let lines = data_len / lb;
        let log_cap = LOG_HEADER + lines * (8 + lb) + LOG_FOOTER;
        PersistentMedia {
            cfg,
            data_len,
            staging: vec![0; data_len],
            durable: vec![0; data_len + log_cap],
            log_base: data_len,
            log_cap,
            cache: LineSet::new(lines),
            wpq: LineSet::new(lines),
            log_buf: Vec::with_capacity(log_cap),
            epoch: 0,
            fuse: None,
            dead: false,
            steps_taken: 0,
            stats: MediaStats::default(),
        }
    }

    /// Bytes in the data region.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.cfg.line_bytes
    }

    /// Lines in the data region.
    pub fn lines(&self) -> usize {
        self.data_len / self.cfg.line_bytes
    }

    /// Fence epoch (incremented by every non-empty fence).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &MediaStats {
        &self.stats
    }

    /// The volatile merged view.
    pub fn staging(&self) -> &[u8] {
        &self.staging
    }

    /// The durable data region (what survives a power cut, before
    /// log replay).
    pub fn durable_data(&self) -> &[u8] {
        &self.durable[..self.data_len]
    }

    /// Stores `src` at byte offset `off` in the volatile view, marking
    /// the touched lines cache-dirty.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data region.
    pub fn write(&mut self, off: usize, src: &[u8]) {
        assert!(off + src.len() <= self.data_len, "write beyond data region");
        if src.is_empty() {
            return;
        }
        self.staging[off..off + src.len()].copy_from_slice(src);
        let lb = self.cfg.line_bytes;
        for line in (off / lb)..=((off + src.len() - 1) / lb) {
            self.cache.set(line);
        }
    }

    /// Stores `src` at byte offset `off`, dirtying only the lines whose
    /// bytes actually change. The re-stage form of
    /// [`PersistentMedia::write`]: callers that re-stage a whole region
    /// every epoch use this so untouched lines stay clean and a
    /// no-change epoch fences nothing. Returns the number of lines
    /// marked dirty by this call.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data region.
    pub fn stage(&mut self, off: usize, src: &[u8]) -> u64 {
        assert!(off + src.len() <= self.data_len, "write beyond data region");
        if src.is_empty() {
            return 0;
        }
        let lb = self.cfg.line_bytes;
        let mut dirtied = 0;
        for line in (off / lb)..=((off + src.len() - 1) / lb) {
            let ls = (line * lb).max(off);
            let le = ((line + 1) * lb).min(off + src.len());
            if self.staging[ls..le] != src[ls - off..le - off] {
                self.staging[ls..le].copy_from_slice(&src[ls - off..le - off]);
                self.cache.set(line);
                dirtied += 1;
            }
        }
        dirtied
    }

    /// Reads from the volatile view into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data region.
    pub fn read(&self, off: usize, dst: &mut [u8]) {
        dst.copy_from_slice(&self.staging[off..off + dst.len()]);
    }

    /// Moves cache-dirty lines overlapping `[off, off + len)` into the
    /// WPQ. Returns the number of lines moved.
    pub fn flush_range(&mut self, off: usize, len: usize) -> u64 {
        self.stats.flushes += 1;
        if len == 0 {
            return 0;
        }
        let lb = self.cfg.line_bytes;
        let end = (off + len).min(self.data_len);
        let mut moved = 0;
        for line in (off / lb)..=((end - 1) / lb) {
            if self.cache.test(line) {
                self.cache.clear(line);
                self.wpq.set(line);
                moved += 1;
            }
        }
        self.stats.lines_flushed += moved;
        moved
    }

    /// Moves every cache-dirty line into the WPQ.
    pub fn flush_all(&mut self) -> u64 {
        self.stats.flushes += 1;
        let mut moved = 0;
        for w in 0..self.cache.words.len() {
            let mut word = self.cache.words[w];
            self.wpq.words[w] |= word;
            while word != 0 {
                word &= word - 1;
                moved += 1;
            }
        }
        self.cache.clear_all();
        self.stats.lines_flushed += moved;
        moved
    }

    /// Commits the WPQ to durable media, all-or-nothing: seals a redo
    /// record in the log region, then persists each pending line. An
    /// empty WPQ is a no-op fence (no record, no epoch bump).
    pub fn fence(&mut self) -> FenceReport {
        self.stats.fences += 1;
        let lines = self.wpq.count();
        if lines == 0 {
            return FenceReport::default();
        }
        let lb = self.cfg.line_bytes;
        self.log_buf.clear();
        push_u64(&mut self.log_buf, LOG_MAGIC);
        push_u64(&mut self.log_buf, self.epoch);
        push_u64(&mut self.log_buf, lines);
        for w in 0..self.wpq.words.len() {
            let mut word = self.wpq.words[w];
            while word != 0 {
                let line = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                push_u64(&mut self.log_buf, (line * lb) as u64);
                self.log_buf
                    .extend_from_slice(&self.staging[line * lb..(line + 1) * lb]);
            }
        }
        let crc = crc32(&self.log_buf);
        push_u64(&mut self.log_buf, crc as u64);
        debug_assert!(self.log_buf.len() <= self.log_cap, "log region overflow");
        let log_bytes = self.log_buf.len() as u64;
        self.stats.log_records += 1;
        self.stats.log_bytes += log_bytes;
        self.persist_log();
        for w in 0..self.wpq.words.len() {
            let mut word = self.wpq.words[w];
            while word != 0 {
                let line = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                self.persist_line(line);
            }
        }
        self.wpq.clear_all();
        self.epoch += 1;
        FenceReport { lines, log_bytes }
    }

    /// `flush_all` followed by `fence`: the virtio-pmem flush command.
    pub fn drain(&mut self) -> FenceReport {
        let flushed = self.flush_all();
        let mut report = self.fence();
        report.lines = report.lines.max(flushed);
        report
    }

    /// Consumes one durable chunk-write budget step. Returns `false`
    /// once the fuse has burned out (the media is dead).
    fn step_allowed(&mut self) -> bool {
        if self.dead {
            return false;
        }
        if let Some(remaining) = self.fuse.as_mut() {
            if *remaining == 0 {
                self.dead = true;
                return false;
            }
            *remaining -= 1;
        }
        self.steps_taken += 1;
        true
    }

    /// Persists the encoded record into the durable log region,
    /// chunk by chunk.
    fn persist_log(&mut self) {
        let ch = self.cfg.torn_chunk_bytes;
        let len = self.log_buf.len();
        let mut at = 0;
        while at < len {
            if !self.step_allowed() {
                return;
            }
            let n = ch.min(len - at);
            self.durable[self.log_base + at..self.log_base + at + n]
                .copy_from_slice(&self.log_buf[at..at + n]);
            at += n;
        }
    }

    /// Persists one staged line into the durable data region, chunk by
    /// chunk; a mid-line fuse cut leaves the line torn.
    fn persist_line(&mut self, line: usize) {
        let lb = self.cfg.line_bytes;
        let ch = self.cfg.torn_chunk_bytes;
        let base = line * lb;
        let mut written = 0;
        while written < lb {
            if !self.step_allowed() {
                if written > 0 {
                    self.stats.torn_lines += 1;
                }
                return;
            }
            self.durable[base + written..base + written + ch]
                .copy_from_slice(&self.staging[base + written..base + written + ch]);
            written += ch;
        }
    }

    /// Arms the crash fuse: the next `steps` durable chunk writes
    /// succeed, then the media dies. `steps == 0` dies on the first
    /// durable write.
    pub fn arm_fuse(&mut self, steps: u64) {
        self.fuse = Some(steps);
    }

    /// Disarms the fuse (the media stays alive indefinitely).
    pub fn disarm_fuse(&mut self) {
        self.fuse = None;
    }

    /// Whether the fuse has burned out.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Durable chunk writes performed so far (enumerating this after an
    /// uncut run of an operation yields the campaign's cut-point space).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Cuts power: every line not committed by a fence is lost. Returns
    /// the number of volatile lines discarded. The staging image is
    /// rebuilt by [`PersistentMedia::recover`]; power is considered
    /// restored (the fuse resets).
    pub fn power_cut(&mut self) -> u64 {
        let lost = self.cache.count() + self.wpq.count();
        self.cache.clear_all();
        self.wpq.clear_all();
        self.fuse = None;
        self.dead = false;
        lost
    }

    /// Replays the intent log onto the durable image, then rebuilds the
    /// volatile view from it. Idempotent.
    ///
    /// # Errors
    ///
    /// [`MediaError`] when the log is structurally corrupt (not merely
    /// torn — a torn record is ignored and the pre-fence image stands).
    pub fn recover(&mut self) -> Result<ReplayOutcome, MediaError> {
        let outcome = self.replay_log()?;
        self.staging.copy_from_slice(&self.durable[..self.data_len]);
        self.cache.clear_all();
        self.wpq.clear_all();
        self.stats.recoveries += 1;
        self.stats.lines_redone += outcome.lines_redone;
        Ok(outcome)
    }

    fn replay_log(&mut self) -> Result<ReplayOutcome, MediaError> {
        let lb = self.cfg.line_bytes;
        let log = &self.durable[self.log_base..];
        if read_u64(log, 0) != LOG_MAGIC {
            return Ok(ReplayOutcome::default());
        }
        let count = read_u64(log, 16);
        let capacity_lines = ((self.log_cap - LOG_HEADER - LOG_FOOTER) / (8 + lb)) as u64;
        if count > capacity_lines {
            return Err(MediaError::UnsealedRecord {
                count,
                capacity_lines,
            });
        }
        let body_len = LOG_HEADER + count as usize * (8 + lb);
        let sealed = read_u64(log, body_len) as u32;
        if crc32(&log[..body_len]) != sealed {
            // Torn record: the fence never committed; pre-state stands.
            return Ok(ReplayOutcome::default());
        }
        // Validate every entry before applying any, so a corrupt record
        // cannot half-apply.
        for i in 0..count as usize {
            let off = read_u64(log, LOG_HEADER + i * (8 + lb));
            if !off.is_multiple_of(lb as u64) || off + lb as u64 > self.data_len as u64 {
                return Err(MediaError::TornEntry { offset: off });
            }
        }
        for i in 0..count as usize {
            let entry = LOG_HEADER + i * (8 + lb);
            let off = read_u64(&self.durable[self.log_base..], entry) as usize;
            let src = self.log_base + entry + 8;
            self.durable.copy_within(src..src + lb, off);
        }
        Ok(ReplayOutcome {
            records_replayed: 1,
            lines_redone: count,
        })
    }

    /// Applies a physical cell disturbance: XORs `mask` into both the
    /// durable image and the staging view at `off` (staging mirrors the
    /// live arrays the engine already disturbed). Consumes no fuse
    /// steps and ignores the flush protocol — scars survive power cuts.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the data region.
    pub fn scar_xor(&mut self, off: usize, mask: &[u8]) {
        assert!(off + mask.len() <= self.data_len, "scar beyond data region");
        for (i, &m) in mask.iter().enumerate() {
            if !self.dead {
                self.durable[off + i] ^= m;
            }
            self.staging[off + i] ^= m;
        }
    }

    /// Flips one stored bit: `bit` indexes bits from byte offset `off`.
    pub fn scar_flip_bit(&mut self, off: usize, bit: usize) {
        let byte = off + bit / 8;
        assert!(byte < self.data_len, "scar beyond data region");
        let mask = 1u8 << (bit % 8);
        if !self.dead {
            self.durable[byte] ^= mask;
        }
        self.staging[byte] ^= mask;
    }

    /// Corrupts the durable log region directly (crafted-corruption
    /// hook for recovery-error tests).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the log region.
    pub fn scar_log(&mut self, off: usize, bytes: &[u8]) {
        assert!(off + bytes.len() <= self.log_cap, "scar beyond log region");
        self.durable[self.log_base + off..self.log_base + off + bytes.len()].copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn media(lines: usize) -> PersistentMedia {
        PersistentMedia::new(lines * 64, PmemConfig::default())
    }

    fn cut_and_recover(m: &mut PersistentMedia) -> ReplayOutcome {
        m.power_cut();
        m.recover().expect("recovery must succeed")
    }

    #[test]
    fn unflushed_writes_die_with_the_power() {
        let mut m = media(4);
        m.write(0, &[0xAA; 64]);
        assert_eq!(m.staging()[0], 0xAA);
        assert_eq!(m.durable_data()[0], 0);
        cut_and_recover(&mut m);
        assert_eq!(m.staging()[0], 0, "unflushed line must not survive");
    }

    #[test]
    fn stage_skips_unchanged_lines() {
        let mut m = media(4);
        m.write(0, &[0xAA; 128]);
        m.drain();
        // Re-staging identical bytes dirties nothing: the next fence is
        // empty and burns no fuse steps.
        assert_eq!(m.stage(0, &[0xAA; 128]), 0);
        let r = m.drain();
        assert_eq!(r.lines, 0);
        assert_eq!(r.log_bytes, 0);
        // One changed byte dirties exactly its line.
        let mut img = [0xAA; 128];
        img[70] = 0xBB;
        assert_eq!(m.stage(0, &img), 1);
        assert_eq!(m.drain().lines, 1);
        assert_eq!(m.staging()[70], 0xBB);
        assert_eq!(m.durable_data()[70], 0xBB);
    }

    #[test]
    fn flush_without_fence_is_not_durable() {
        let mut m = media(4);
        m.write(64, &[0x55; 64]);
        assert_eq!(m.flush_range(64, 64), 1);
        cut_and_recover(&mut m);
        assert_eq!(m.staging()[64], 0, "WPQ content needs a fence to survive");
    }

    #[test]
    fn drain_survives_power_cut() {
        let mut m = media(4);
        m.write(0, &[1; 64]);
        m.write(128, &[2; 64]);
        let report = m.drain();
        assert_eq!(report.lines, 2);
        assert!(report.log_bytes > 0);
        assert_eq!(m.epoch(), 1);
        let replay = cut_and_recover(&mut m);
        // Clean-shutdown replay re-applies the sealed record (idempotent).
        assert_eq!(replay.records_replayed, 1);
        assert_eq!(m.staging()[0], 1);
        assert_eq!(m.staging()[128], 2);
    }

    #[test]
    fn empty_fence_writes_no_record() {
        let mut m = media(2);
        let report = m.fence();
        assert_eq!(report, FenceReport::default());
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.stats().log_records, 0);
    }

    #[test]
    fn only_fenced_epoch_survives() {
        let mut m = media(2);
        m.write(0, &[1; 64]);
        m.drain();
        m.write(0, &[2; 64]);
        m.flush_range(0, 64); // flushed, never fenced
        cut_and_recover(&mut m);
        assert_eq!(m.staging()[0], 1, "pre-fence epoch must stand");
    }

    /// Every possible cut point inside a two-line drain recovers to
    /// exactly the pre-fence or post-fence image — never a mixture.
    #[test]
    fn every_cut_point_is_all_or_nothing() {
        // Dry run to learn the step budget.
        let mut dry = media(4);
        dry.write(0, &[0x11; 64]);
        dry.write(192, &[0x22; 64]);
        dry.drain();
        let steps = dry.steps_taken();
        assert!(steps > 0);

        for cut in 0..=steps {
            let mut m = media(4);
            m.write(0, &[0x11; 64]);
            m.write(192, &[0x22; 64]);
            m.arm_fuse(cut);
            m.drain();
            cut_and_recover(&mut m);
            let a = m.staging()[0];
            let b = m.staging()[192];
            assert!(
                (a, b) == (0, 0) || (a, b) == (0x11, 0x22),
                "cut {cut}/{steps}: recovered to a mixed image ({a:#x}, {b:#x})"
            );
        }
        // A cut after the final step must be the post image.
        let mut m = media(4);
        m.write(0, &[0x11; 64]);
        m.write(192, &[0x22; 64]);
        m.arm_fuse(steps);
        m.drain();
        assert!(!m.is_dead());
        cut_and_recover(&mut m);
        assert_eq!((m.staging()[0], m.staging()[192]), (0x11, 0x22));
    }

    #[test]
    fn mid_data_cut_tears_the_raw_line_but_replay_heals_it() {
        let mut m = media(1);
        let mut pattern = [0u8; 64];
        for (i, b) in pattern.iter_mut().enumerate() {
            *b = i as u8 | 0x80;
        }
        m.write(0, &pattern);
        // Let the whole record persist plus one data chunk: the durable
        // line is torn (one new chunk, rest old zeroes) until replay.
        let mut probe = media(1);
        probe.write(0, &pattern);
        probe.drain();
        let record_chunks = probe.stats().log_bytes.div_ceil(8);
        m.arm_fuse(record_chunks + 1);
        m.drain();
        assert!(m.is_dead());
        assert_eq!(m.stats().torn_lines, 1);
        assert_eq!(&m.durable_data()[..8], &pattern[..8], "first chunk landed");
        assert_eq!(m.durable_data()[63], 0, "last chunk did not");
        cut_and_recover(&mut m);
        assert_eq!(m.staging(), &pattern[..], "sealed record redoes the line");
    }

    #[test]
    fn second_fence_overwrites_the_record() {
        let mut m = media(4);
        m.write(0, &[1; 64]);
        m.drain();
        m.write(64, &[2; 64]);
        m.drain();
        let replay = cut_and_recover(&mut m);
        assert_eq!(replay.lines_redone, 1, "only the last record is live");
        assert_eq!(m.staging()[0], 1);
        assert_eq!(m.staging()[64], 2);
    }

    #[test]
    fn scars_survive_power_cuts_and_skip_the_flush_protocol() {
        let mut m = media(2);
        m.write(0, &[0xF0; 64]);
        m.drain();
        // Scar a line *not* covered by the live record: replay rewrites
        // recorded lines (healing their scars), but untouched cells keep
        // their corruption across the cut.
        m.scar_xor(64, &[0x0F]);
        assert_eq!(m.staging()[64], 0x0F, "staging mirrors the disturbance");
        cut_and_recover(&mut m);
        assert_eq!(m.staging()[64], 0x0F, "cell corruption is physical");
        m.scar_flip_bit(64, 3);
        assert_eq!(m.durable_data()[64], 0x07);
    }

    #[test]
    fn replay_heals_scars_on_lines_the_live_record_covers() {
        let mut m = media(2);
        m.write(0, &[0xF0; 64]);
        m.drain();
        m.scar_xor(0, &[0x0F]);
        cut_and_recover(&mut m);
        assert_eq!(
            m.staging()[0],
            0xF0,
            "redo replay rewrites the recorded line, undoing the scar"
        );
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut m = media(3);
        m.write(0, &[7; 64]);
        m.write(64, &[9; 64]);
        m.drain();
        cut_and_recover(&mut m);
        let first: Vec<u8> = m.staging().to_vec();
        let replay = m.recover().unwrap();
        assert_eq!(replay.records_replayed, 1);
        assert_eq!(m.staging(), &first[..]);
    }

    #[test]
    fn bogus_count_is_an_unsealed_record() {
        let mut m = media(2);
        m.write(0, &[1; 64]);
        m.drain();
        // Keep the magic, blow up the count field (offset 16).
        m.scar_log(16, &u64::MAX.to_le_bytes());
        m.power_cut();
        match m.recover() {
            Err(MediaError::UnsealedRecord { count, .. }) => assert_eq!(count, u64::MAX),
            other => panic!("expected UnsealedRecord, got {other:?}"),
        }
    }

    #[test]
    fn sealed_record_with_bad_offset_is_a_torn_entry() {
        let mut m = media(2);
        // Hand-craft a sealed record whose single entry points past the
        // data region.
        let mut rec = Vec::new();
        push_u64(&mut rec, LOG_MAGIC);
        push_u64(&mut rec, 0);
        push_u64(&mut rec, 1);
        push_u64(&mut rec, (m.data_len() + 64) as u64);
        rec.extend_from_slice(&[0u8; 64]);
        let crc = crc32(&rec);
        push_u64(&mut rec, crc as u64);
        m.scar_log(0, &rec);
        m.power_cut();
        match m.recover() {
            Err(MediaError::TornEntry { offset }) => {
                assert_eq!(offset as usize, m.data_len() + 64);
            }
            other => panic!("expected TornEntry, got {other:?}"),
        }
    }

    #[test]
    fn torn_record_is_ignored_not_an_error() {
        let mut m = media(2);
        m.write(0, &[3; 64]);
        m.drain();
        m.write(64, &[4; 64]);
        // Cut inside the record write of the second fence, after the
        // epoch chunk has landed: the mixed old/new record bytes fail
        // the CRC seal. (Cutting after only the magic chunk would leave
        // the old record byte-identical — and correctly still sealed.)
        m.arm_fuse(2);
        m.drain();
        let replay = cut_and_recover(&mut m);
        assert_eq!(replay.records_replayed, 0, "torn record must be ignored");
        assert_eq!(m.staging()[0], 3, "first fence epoch stands");
        assert_eq!(m.staging()[64], 0);
    }

    #[test]
    fn steady_state_fence_does_not_allocate_beyond_capacity() {
        let mut m = media(8);
        for round in 0..10u8 {
            for line in 0..8usize {
                m.write(line * 64, &[round; 64]);
            }
            m.drain();
        }
        assert_eq!(m.log_buf.capacity(), m.log_cap);
        assert_eq!(m.epoch(), 10);
    }

    #[test]
    fn flush_range_only_moves_overlapping_dirty_lines() {
        let mut m = media(4);
        m.write(0, &[1; 64]);
        m.write(128, &[2; 64]);
        assert_eq!(m.flush_range(128, 64), 1);
        m.fence();
        cut_and_recover(&mut m);
        assert_eq!(m.staging()[128], 2, "flushed+fenced line survives");
        assert_eq!(m.staging()[0], 0, "cache-only line does not");
    }
}
