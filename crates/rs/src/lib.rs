//! Reed-Solomon codec over GF(2^8) with errors-and-erasures decoding and
//! threshold-limited correction.
//!
//! The paper protects every 64 B memory block with eight RS check bytes
//! stored in a ninth (parity) chip — the code RS(72, 64) over GF(2^8) with
//! minimum distance 9. Those eight check bytes serve two roles:
//!
//! * **Chip-failure (erasure) correction** — when a chip is known dead, its
//!   eight byte positions within the block are erasures, and `d − 1 = 8`
//!   erasures are correctable ([`RsCode::decode_erasures`]).
//! * **Opportunistic runtime bit-error correction** (§V-C) — up to four
//!   random byte errors are correctable, but accepting 3- or 4-byte
//!   corrections carries a miscorrection (SDC) risk the paper deems too
//!   high; the controller therefore *accepts at most two corrections* and
//!   falls back to VLEW decoding otherwise
//!   ([`RsCode::decode_with_threshold`]).
//!
//! # Examples
//!
//! ```
//! use pmck_rs::{RsCode, ThresholdOutcome};
//!
//! let code = RsCode::per_block();
//! let data: Vec<u8> = (0..64).collect();
//! let mut cw = code.encode(&data);
//!
//! // Two byte errors: accepted at the paper's threshold of 2.
//! cw[10] ^= 0x5A;
//! cw[20] ^= 0xA5;
//! match code.decode_with_threshold(&mut cw, 2).unwrap() {
//!     ThresholdOutcome::Accepted { corrections } => assert_eq!(corrections, 2),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! assert_eq!(&code.extract_data(&cw), &data);
//! ```

mod code;
mod decode;
mod error;
mod threshold;

pub use code::RsCode;
pub use decode::{RsDecodeOutcome, RsDecodeView, RsScratch};
pub use error::RsError;
pub use threshold::{RejectReason, ThresholdOutcome};
