//! Error types for the Reed-Solomon codec.

use std::fmt;

/// Errors produced when constructing an [`crate::RsCode`] or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsError {
    /// `k + r` exceeds 255, the natural length over GF(2^8).
    /// Carries `(k, r)`.
    CodeTooLong(usize, usize),
    /// `r` must be at least 1 and `k` at least 1.
    DegenerateParameters,
    /// The word slice length does not match `n`. Carries `(got, expected)`.
    LengthMismatch(usize, usize),
    /// An erasure position is out of range or duplicated.
    BadErasure(usize),
    /// More erasures were declared than the code can handle (`> d − 1`).
    TooManyErasures(usize),
    /// The error pattern is detectably beyond the code's capability; the
    /// word is left unmodified.
    Uncorrectable,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::CodeTooLong(k, r) => {
                write!(f, "RS({}, {k}) exceeds GF(2^8) natural length 255", k + r)
            }
            RsError::DegenerateParameters => write!(f, "k and r must both be at least 1"),
            RsError::LengthMismatch(got, expected) => {
                write!(f, "word has {got} bytes, code expects {expected}")
            }
            RsError::BadErasure(p) => write!(f, "invalid or duplicate erasure position {p}"),
            RsError::TooManyErasures(n) => write!(f, "{n} erasures exceed code capability"),
            RsError::Uncorrectable => write!(f, "error pattern is uncorrectable"),
        }
    }
}

impl std::error::Error for RsError {}
