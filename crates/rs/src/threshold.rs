//! Threshold-limited decoding (§V-C of the paper).
//!
//! A miscorrection is more likely to masquerade as a *large* number of
//! corrections than a small one, so the memory controller accepts the RS
//! result only when the decoder touched at most `threshold` symbols
//! (threshold = 2 in the paper); otherwise it distrusts the correction and
//! falls back to VLEW decoding.

use crate::code::RsCode;
use crate::decode::RsScratch;
use crate::error::RsError;

/// Why a threshold decode refused to accept the RS correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The decoder corrected more symbols than the acceptance threshold;
    /// the corrections were rolled back.
    TooManyCorrections(usize),
    /// The decoder flagged the pattern uncorrectable outright.
    Uncorrectable,
}

/// The outcome of [`RsCode::decode_with_threshold`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdOutcome {
    /// The word was already a valid codeword; nothing changed.
    Clean,
    /// The correction was accepted; `corrections` symbols were fixed
    /// (`1..=threshold`).
    Accepted {
        /// Number of symbols corrected.
        corrections: usize,
    },
    /// The correction was rejected; the word is unmodified and the caller
    /// must fall back to VLEW correction.
    Rejected(RejectReason),
}

impl ThresholdOutcome {
    /// Whether the block left this stage with a trusted value (clean or
    /// accepted correction).
    pub fn is_trusted(&self) -> bool {
        !matches!(self, ThresholdOutcome::Rejected(_))
    }
}

impl RsCode {
    /// Decodes `word`, accepting the result only when the number of
    /// corrected symbols is at most `threshold`; otherwise all corrections
    /// are rolled back and [`ThresholdOutcome::Rejected`] is returned,
    /// signalling the caller to fall back to VLEW correction.
    ///
    /// # Errors
    ///
    /// [`RsError::LengthMismatch`] if `word.len() != n`. (Correction
    /// failures are not errors here — they are the
    /// [`ThresholdOutcome::Rejected`] variant, because rejection is an
    /// expected, handled outcome of the runtime read path.)
    pub fn decode_with_threshold(
        &self,
        word: &mut [u8],
        threshold: usize,
    ) -> Result<ThresholdOutcome, RsError> {
        self.with_pooled_scratch(|code, scratch| {
            code.decode_with_threshold_scratch(word, threshold, scratch)
        })
    }

    /// As [`RsCode::decode_with_threshold`], but running in the caller's
    /// `scratch`. The runtime read path calls this with the engine-owned
    /// scratch, making the clean-read common case allocation-free.
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode_with_threshold`].
    pub fn decode_with_threshold_scratch(
        &self,
        word: &mut [u8],
        threshold: usize,
        scratch: &mut RsScratch,
    ) -> Result<ThresholdOutcome, RsError> {
        match self.decode_scratch(word, scratch) {
            Ok(view) if view.was_clean() => Ok(ThresholdOutcome::Clean),
            Ok(view) => {
                let n = view.num_corrections();
                if n <= threshold {
                    Ok(ThresholdOutcome::Accepted { corrections: n })
                } else {
                    // Roll back: the correction is distrusted.
                    for &(p, m) in view.corrections() {
                        word[p] ^= m;
                    }
                    Ok(ThresholdOutcome::Rejected(
                        RejectReason::TooManyCorrections(n),
                    ))
                }
            }
            Err(RsError::Uncorrectable) => {
                Ok(ThresholdOutcome::Rejected(RejectReason::Uncorrectable))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The seeded randomized properties (historical seeds 5, 13) live in
    // `tests/props.rs` on the harness runner.

    #[test]
    fn clean_block_is_clean() {
        let code = RsCode::per_block();
        let mut cw = code.encode(&[7u8; 64]);
        assert_eq!(
            code.decode_with_threshold(&mut cw, 2).unwrap(),
            ThresholdOutcome::Clean
        );
    }

    #[test]
    fn one_and_two_errors_accepted() {
        let code = RsCode::per_block();
        let clean = code.encode(&[0xABu8; 64]);
        for nerr in 1..=2 {
            let mut cw = clean.clone();
            for i in 0..nerr {
                cw[i * 30] ^= 0x11;
            }
            match code.decode_with_threshold(&mut cw, 2).unwrap() {
                ThresholdOutcome::Accepted { corrections } => assert_eq!(corrections, nerr),
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn three_and_four_errors_rejected_and_rolled_back() {
        let code = RsCode::per_block();
        let clean = code.encode(&[0x5Au8; 64]);
        for nerr in 3..=4 {
            let mut cw = clean.clone();
            for i in 0..nerr {
                cw[i * 15 + 2] ^= 0x77;
            }
            let before = cw.clone();
            match code.decode_with_threshold(&mut cw, 2).unwrap() {
                ThresholdOutcome::Rejected(RejectReason::TooManyCorrections(n)) => {
                    assert_eq!(n, nerr)
                }
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(cw, before, "rejected corrections must be rolled back");
        }
    }
}
