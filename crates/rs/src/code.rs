//! RS code construction and systematic encoding.

use pmck_gf::{FieldPoly, Gf2m, SyndromeRows};

use crate::error::RsError;

/// A systematic Reed-Solomon code RS(n, k) over GF(2^8) with `r = n − k`
/// check symbols and minimum distance `d = r + 1`.
///
/// Code roots are `alpha^1 .. alpha^r` (first consecutive root 1). The
/// codeword vector is indexed by polynomial degree:
///
/// ```text
/// [0 .. r)    check bytes
/// [r .. n)    data bytes (data[i] at position r + i)
/// ```
///
/// # Examples
///
/// ```
/// use pmck_rs::RsCode;
///
/// let code = RsCode::per_block(); // RS(72, 64), the paper's per-block code
/// assert_eq!(code.check_symbols(), 8);
/// assert_eq!(code.min_distance(), 9);
/// assert_eq!(code.max_random_errors(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct RsCode {
    pub(crate) field: Gf2m,
    pub(crate) k: usize,
    pub(crate) r: usize,
    pub(crate) generator: FieldPoly,
    /// Precomputed multiply-by-`alpha^j` rows: the syndrome hot-path
    /// kernel (one table lookup per byte instead of log/exp multiplies).
    pub(crate) rows: SyndromeRows,
}

impl RsCode {
    /// Constructs RS(k + r, k) over GF(2^8).
    ///
    /// # Errors
    ///
    /// * [`RsError::DegenerateParameters`] if `k == 0` or `r == 0`.
    /// * [`RsError::CodeTooLong`] if `k + r > 255`.
    pub fn new(k: usize, r: usize) -> Result<Self, RsError> {
        if k == 0 || r == 0 {
            return Err(RsError::DegenerateParameters);
        }
        if k + r > 255 {
            return Err(RsError::CodeTooLong(k, r));
        }
        let field = Gf2m::new(8).expect("GF(2^8) is supported");
        // g(x) = prod_{j=1..r} (x + alpha^j)
        let mut generator = FieldPoly::one(&field);
        for j in 1..=r as u64 {
            let root = field.alpha_pow(j);
            generator = generator.mul(&FieldPoly::from_coeffs(&field, vec![root, 1]));
        }
        let rows = SyndromeRows::new(&field, r);
        Ok(RsCode {
            field,
            k,
            r,
            generator,
            rows,
        })
    }

    /// The paper's per-block code: RS(72, 64) — 64 data bytes (one memory
    /// block) plus 8 check bytes (the parity chip's contribution).
    pub fn per_block() -> Self {
        RsCode::new(64, 8).expect("per-block parameters are valid")
    }

    /// Number of data symbols `k`.
    pub fn data_symbols(&self) -> usize {
        self.k
    }

    /// Number of check symbols `r`.
    pub fn check_symbols(&self) -> usize {
        self.r
    }

    /// Codeword length `n = k + r`.
    pub fn len(&self) -> usize {
        self.k + self.r
    }

    /// Whether the codeword length is zero (never true for a valid code).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum Hamming distance `d = r + 1`.
    pub fn min_distance(&self) -> usize {
        self.r + 1
    }

    /// Maximum number of random symbol errors correctable, `⌊r/2⌋`.
    pub fn max_random_errors(&self) -> usize {
        self.r / 2
    }

    /// Maximum number of erasures correctable (with no errors), `d − 1 = r`.
    pub fn max_erasures(&self) -> usize {
        self.r
    }

    /// Encodes `data` (exactly `k` bytes) into an `n`-byte codeword:
    /// check bytes in `[0, r)`, data in `[r, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "need exactly {} data bytes", self.k);
        let mut cw = vec![0u8; self.len()];
        cw[self.r..].copy_from_slice(data);
        let parity = self.parity(data);
        cw[..self.r].copy_from_slice(&parity);
        cw
    }

    /// Computes the `r` check bytes for `data`: `(d(x)·x^r) mod g(x)`.
    ///
    /// Like all linear codes, `parity(a ⊕ b) = parity(a) ⊕ parity(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn parity(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.r];
        self.parity_into(data, &mut out);
        out
    }

    /// Computes the `r` check bytes for `data` into `out`, without
    /// allocating. The LFSR register lives on the stack (`n ≤ 255`, so
    /// `r < 255` always fits).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or `out.len() != r`.
    pub fn parity_into(&self, data: &[u8], out: &mut [u8]) {
        assert_eq!(data.len(), self.k, "need exactly {} data bytes", self.k);
        assert_eq!(out.len(), self.r, "parity buffer length mismatch");
        // Synthetic LFSR division: process data from the highest degree
        // (last byte of `data` = degree n−1) down.
        let f = &self.field;
        let g = self.generator.coeffs(); // g[r] == 1
        let mut reg_buf = [0u32; 255];
        let reg = &mut reg_buf[..self.r];
        for &byte in data.iter().rev() {
            let feedback = reg[self.r - 1] ^ byte as u32;
            for i in (1..self.r).rev() {
                reg[i] = reg[i - 1] ^ f.mul(feedback, g[i]);
            }
            reg[0] = f.mul(feedback, g[0]);
        }
        for (o, &v) in out.iter_mut().zip(reg.iter()) {
            *o = v as u8;
        }
    }

    /// Extracts the `k` data bytes from a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n`.
    pub fn extract_data(&self, cw: &[u8]) -> Vec<u8> {
        assert_eq!(cw.len(), self.len(), "codeword length mismatch");
        cw[self.r..].to_vec()
    }

    /// Whether `cw` is a valid codeword (all syndromes zero).
    /// Allocation-free, exiting early on the first nonzero syndrome.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n`.
    pub fn is_codeword(&self, cw: &[u8]) -> bool {
        assert_eq!(cw.len(), self.len(), "codeword length mismatch");
        self.rows.is_codeword(cw)
    }

    /// Computes the `r` syndromes `S_j = R(alpha^j)`, `j = 1..=r`,
    /// returned 0-indexed (`result[j-1] = S_j`).
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n`.
    pub fn syndromes(&self, cw: &[u8]) -> Vec<u32> {
        let mut s = vec![0u32; self.r];
        self.syndromes_into(cw, &mut s);
        s
    }

    /// Computes all `r` syndromes into `out` (`out[j-1] = S_j`) via the
    /// precomputed row tables, without allocating. Returns `true` when
    /// every syndrome is zero, i.e. `cw` is already a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n` or `out.len() != r`.
    pub fn syndromes_into(&self, cw: &[u8], out: &mut [u32]) -> bool {
        assert_eq!(cw.len(), self.len(), "codeword length mismatch");
        assert_eq!(out.len(), self.r, "syndrome buffer length mismatch");
        self.rows.syndromes_into(cw, out)
    }

    /// The underlying field GF(2^8).
    pub fn field(&self) -> &Gf2m {
        &self.field
    }

    /// The generator polynomial g(x).
    pub fn generator(&self) -> &FieldPoly {
        &self.generator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_block_geometry() {
        let code = RsCode::per_block();
        assert_eq!(code.len(), 72);
        assert_eq!(code.data_symbols(), 64);
        assert_eq!(code.min_distance(), 9);
        assert_eq!(code.max_random_errors(), 4);
        assert_eq!(code.max_erasures(), 8);
        assert_eq!(
            code.generator.degree(),
            Some(8),
            "generator degree equals r"
        );
    }

    #[test]
    fn invalid_parameters() {
        assert_eq!(
            RsCode::new(0, 8).unwrap_err(),
            RsError::DegenerateParameters
        );
        assert_eq!(
            RsCode::new(8, 0).unwrap_err(),
            RsError::DegenerateParameters
        );
        assert_eq!(
            RsCode::new(250, 6).unwrap_err(),
            RsError::CodeTooLong(250, 6)
        );
    }

    #[test]
    fn encode_yields_valid_codeword() {
        let code = RsCode::per_block();
        let data: Vec<u8> = (0..64).map(|i| (i * 37 + 11) as u8).collect();
        let cw = code.encode(&data);
        assert!(code.is_codeword(&cw));
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn zero_data_is_zero_codeword() {
        let code = RsCode::new(16, 4).unwrap();
        let cw = code.encode(&[0u8; 16]);
        assert!(cw.iter().all(|&b| b == 0));
    }

    #[test]
    fn parity_is_linear() {
        let code = RsCode::per_block();
        let a: Vec<u8> = (0..64).map(|i| (i * 7) as u8).collect();
        let b: Vec<u8> = (0..64).map(|i| (i * 13 + 5) as u8).collect();
        let ab: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let pa = code.parity(&a);
        let pb = code.parity(&b);
        let pab = code.parity(&ab);
        for i in 0..8 {
            assert_eq!(pa[i] ^ pb[i], pab[i]);
        }
    }

    #[test]
    fn any_single_byte_change_invalidates() {
        let code = RsCode::new(12, 4).unwrap();
        let data: Vec<u8> = (0..12).collect();
        let cw = code.encode(&data);
        for i in 0..cw.len() {
            let mut bad = cw.clone();
            bad[i] ^= 0x01;
            assert!(!code.is_codeword(&bad), "position {i}");
        }
    }

    #[test]
    fn generator_roots_are_alpha_powers() {
        let code = RsCode::new(32, 6).unwrap();
        let f = code.field();
        for j in 1..=6u64 {
            assert_eq!(code.generator().eval(f.alpha_pow(j)), 0, "alpha^{j}");
        }
        assert_ne!(code.generator().eval(f.alpha_pow(7)), 0);
    }
}
