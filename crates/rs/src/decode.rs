//! Errors-and-erasures RS decoding (Berlekamp–Massey with erasure
//! initialization, Chien search, Forney magnitudes).
//!
//! The decoder is allocation-free on the hot path: syndromes, the BM
//! polynomials, and the Chien/Forney results all live in a reusable
//! [`RsScratch`], and a zero-syndrome early exit serves the
//! overwhelmingly-common clean word before any locator machinery runs.
//! The `*_scratch` entry points take an explicit scratch and return
//! [`RsDecodeView`] slices into it; the classic entry points
//! ([`RsCode::decode`], [`RsCode::decode_with_erasures`]) borrow a
//! per-thread pooled scratch, so they too stop allocating once warm.

use std::cell::RefCell;

use crate::code::RsCode;
use crate::error::RsError;

/// Reusable decoder working memory, sized once for a given code
/// (`r = n − k` check symbols, length-`n` codewords) so that every
/// subsequent decode is heap-allocation-free.
///
/// A scratch built for one `(k, r)` geometry works for any [`RsCode`]
/// with the same geometry. Build one per decoding context (engine,
/// bench loop, test) and reuse it across calls.
#[derive(Debug, Clone)]
pub struct RsScratch {
    /// Syndromes `S_1..S_r` (`s[j-1] = S_j`).
    s: Vec<u32>,
    /// The combined error-and-erasure locator Ψ (degree ≤ r).
    lambda: Vec<u32>,
    /// BM correction polynomial B.
    b: Vec<u32>,
    /// BM save buffer (old Ψ during length changes).
    saved: Vec<u32>,
    /// Forney evaluator Ω = S·Ψ mod x^r.
    omega: Vec<u32>,
    /// Formal derivative Ψ′.
    deriv: Vec<u32>,
    /// Chien-search root positions.
    locations: Vec<usize>,
    /// Applied `(position, magnitude)` pairs, ascending by position.
    corrections: Vec<(usize, u8)>,
    /// Corrected positions that were *not* declared erasures.
    error_pos: Vec<usize>,
}

impl RsScratch {
    /// A scratch sized for `code`'s geometry.
    pub fn new(code: &RsCode) -> Self {
        Self::with_geometry(code.data_symbols(), code.check_symbols())
    }

    pub(crate) fn with_geometry(k: usize, r: usize) -> Self {
        let n = k + r;
        RsScratch {
            s: vec![0; r],
            lambda: vec![0; r + 1],
            b: vec![0; r + 1],
            saved: vec![0; r + 1],
            omega: vec![0; r],
            deriv: vec![0; r],
            locations: Vec::with_capacity(n),
            corrections: Vec::with_capacity(r),
            error_pos: Vec::with_capacity(r),
        }
    }
}

thread_local! {
    /// Per-thread scratch pool backing the classic (scratch-less) decode
    /// API, keyed by code geometry. Codes are tiny (r ≤ 255) and the few
    /// geometries in play per thread make a linear scan cheaper than any
    /// map.
    static SCRATCH_POOL: RefCell<Vec<(usize, usize, RsScratch)>> =
        const { RefCell::new(Vec::new()) };
}

/// A view of a successful decode, borrowing the scratch it ran in.
///
/// All accessors return slices into the scratch — no heap allocation.
/// Convert with [`RsDecodeView::to_outcome`] when the result must
/// outlive the scratch borrow.
#[derive(Debug, Clone, Copy)]
pub struct RsDecodeView<'s> {
    corrections: &'s [(usize, u8)],
    error_pos: &'s [usize],
}

impl RsDecodeView<'_> {
    /// `(position, magnitude)` pairs applied to the word, ascending by
    /// position. Includes erasure positions whose magnitude was nonzero.
    pub fn corrections(&self) -> &[(usize, u8)] {
        self.corrections
    }

    /// Positions corrected as *errors* (unknown locations) rather than
    /// declared erasures, ascending.
    pub fn error_positions(&self) -> &[usize] {
        self.error_pos
    }

    /// The number of positions whose value actually changed.
    pub fn num_corrections(&self) -> usize {
        self.corrections.len()
    }

    /// Whether the received word was already a valid codeword.
    pub fn was_clean(&self) -> bool {
        self.corrections.is_empty()
    }

    /// Copies the view into an owned [`RsDecodeOutcome`].
    pub fn to_outcome(&self) -> RsDecodeOutcome {
        RsDecodeOutcome {
            corrected: self.corrections.to_vec(),
            error_pos: self.error_pos.to_vec(),
        }
    }
}

/// The owned result of a successful RS decode (the scratch-less API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsDecodeOutcome {
    corrected: Vec<(usize, u8)>,
    error_pos: Vec<usize>,
}

impl RsDecodeOutcome {
    /// `(position, magnitude)` pairs applied to the word, ascending by
    /// position. Includes erasure positions whose magnitude was nonzero.
    pub fn corrections(&self) -> &[(usize, u8)] {
        &self.corrected
    }

    /// Positions corrected as *errors* (unknown locations) rather than
    /// declared erasures, ascending.
    pub fn error_positions(&self) -> &[usize] {
        &self.error_pos
    }

    /// The number of positions whose value actually changed.
    pub fn num_corrections(&self) -> usize {
        self.corrected.len()
    }

    /// Whether the received word was already a valid codeword.
    pub fn was_clean(&self) -> bool {
        self.corrected.is_empty()
    }
}

impl RsCode {
    /// Decodes `word` in place, correcting random symbol errors.
    /// Equivalent to [`RsCode::decode_with_erasures`] with no erasures:
    /// up to `⌊r/2⌋` errors are corrected.
    ///
    /// Borrows a per-thread pooled scratch; use
    /// [`RsCode::decode_scratch`] to control the scratch explicitly.
    ///
    /// # Errors
    ///
    /// * [`RsError::LengthMismatch`] if `word.len() != n`.
    /// * [`RsError::Uncorrectable`] if the pattern is detectably beyond
    ///   capability (word left unmodified). Overweight patterns may also
    ///   miscorrect silently, as with any bounded-distance decoder.
    pub fn decode(&self, word: &mut [u8]) -> Result<RsDecodeOutcome, RsError> {
        self.decode_with_erasures(word, &[])
    }

    /// As [`RsCode::decode`], but running in the caller's `scratch` and
    /// returning a slice view into it. Performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode`].
    pub fn decode_scratch<'s>(
        &self,
        word: &mut [u8],
        scratch: &'s mut RsScratch,
    ) -> Result<RsDecodeView<'s>, RsError> {
        self.decode_with_erasures_scratch(word, &[], scratch)
    }

    /// Decodes `word` in place given known-bad `erasures` positions.
    /// Corrects any combination of `e` errors and `ν` erasures with
    /// `2e + ν ≤ r`.
    ///
    /// The paper's chip-failure path declares the failed chip's byte
    /// positions as erasures (ν = 8 for RS(72, 64)), consuming the whole
    /// budget; its runtime path uses no erasures and bounds accepted
    /// corrections via [`RsCode::decode_with_threshold`].
    ///
    /// Borrows a per-thread pooled scratch; use
    /// [`RsCode::decode_with_erasures_scratch`] to control it explicitly.
    ///
    /// # Errors
    ///
    /// * [`RsError::LengthMismatch`] if `word.len() != n`.
    /// * [`RsError::BadErasure`] for out-of-range or duplicate positions.
    /// * [`RsError::TooManyErasures`] if `ν > r`.
    /// * [`RsError::Uncorrectable`] if decoding fails (word unmodified).
    pub fn decode_with_erasures(
        &self,
        word: &mut [u8],
        erasures: &[usize],
    ) -> Result<RsDecodeOutcome, RsError> {
        self.with_pooled_scratch(|code, scratch| {
            code.decode_with_erasures_scratch(word, erasures, scratch)
                .map(|view| view.to_outcome())
        })
    }

    /// As [`RsCode::decode_with_erasures`], but running in the caller's
    /// `scratch` and returning a slice view into it. Performs zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode_with_erasures`].
    pub fn decode_with_erasures_scratch<'s>(
        &self,
        word: &mut [u8],
        erasures: &[usize],
        scratch: &'s mut RsScratch,
    ) -> Result<RsDecodeView<'s>, RsError> {
        self.decode_core(word, erasures, scratch)?;
        Ok(RsDecodeView {
            corrections: &scratch.corrections,
            error_pos: &scratch.error_pos,
        })
    }

    /// Erasure-only decoding: all `erasures` positions are recomputed, and
    /// no unknown-location errors are tolerated (any residual error makes
    /// the decode fail rather than risk miscorrection).
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode_with_erasures`].
    pub fn decode_erasures(
        &self,
        word: &mut [u8],
        erasures: &[usize],
    ) -> Result<RsDecodeOutcome, RsError> {
        let out = self.decode_with_erasures(word, erasures)?;
        // Any correction outside the declared erasures means random errors
        // were present; the strict erasure path refuses that.
        if !out.error_positions().is_empty() {
            for &(p, m) in out.corrections() {
                word[p] ^= m;
            }
            return Err(RsError::Uncorrectable);
        }
        Ok(out)
    }

    /// Runs `f` with the pooled scratch for this code's geometry,
    /// creating it on the thread's first decode of this geometry.
    pub(crate) fn with_pooled_scratch<T>(&self, f: impl FnOnce(&RsCode, &mut RsScratch) -> T) -> T {
        let (k, r) = (self.k, self.r);
        SCRATCH_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            let idx = match pool.iter().position(|&(pk, pr, _)| pk == k && pr == r) {
                Some(i) => i,
                None => {
                    pool.push((k, r, RsScratch::with_geometry(k, r)));
                    pool.len() - 1
                }
            };
            f(self, &mut pool[idx].2)
        })
    }

    /// The decode engine. On `Ok(())` the word has been corrected and
    /// verified, `scratch.corrections` holds the applied pairs (ascending
    /// by position) and `scratch.error_pos` the non-erasure subset; on
    /// error the word is unmodified.
    fn decode_core(
        &self,
        word: &mut [u8],
        erasures: &[usize],
        scratch: &mut RsScratch,
    ) -> Result<(), RsError> {
        if word.len() != self.len() {
            return Err(RsError::LengthMismatch(word.len(), self.len()));
        }
        let nu = erasures.len();
        if nu > self.max_erasures() {
            return Err(RsError::TooManyErasures(nu));
        }
        for (i, &p) in erasures.iter().enumerate() {
            if p >= self.len() || erasures[..i].contains(&p) {
                return Err(RsError::BadErasure(p));
            }
        }

        scratch.corrections.clear();
        scratch.error_pos.clear();
        scratch.locations.clear();

        // Fast path: a clean word exits before any locator machinery.
        if self.syndromes_into(word, &mut scratch.s) {
            return Ok(());
        }

        let f = &self.field;
        let r = self.r;
        let order = f.order() as u64;

        // Erasure locator Γ(x) = prod (1 + X_l x), X_l = alpha^position,
        // built in place in the Ψ buffer (BM starts from Γ anyway).
        let lambda = &mut scratch.lambda;
        lambda.fill(0);
        lambda[0] = 1;
        for (deg, &p) in erasures.iter().enumerate() {
            let xl = f.alpha_pow(p as u64);
            for i in (1..=deg + 1).rev() {
                lambda[i] ^= f.mul(xl, lambda[i - 1]);
            }
        }

        // Berlekamp–Massey initialized with the erasure locator; iterates
        // over syndromes s[nu..r).
        self.berlekamp_massey_erasures(scratch, nu);
        let deg = (0..=r).rev().find(|&i| scratch.lambda[i] != 0).unwrap_or(0);
        let num_errors = deg - nu.min(deg);
        if 2 * num_errors + nu > r {
            return Err(RsError::Uncorrectable);
        }

        // Chien search over the shortened length.
        let psi = &scratch.lambda[..=deg];
        for p in 0..self.len() as u64 {
            let x_inv = f.alpha_pow(order - (p % order));
            if f.eval_poly(psi, x_inv) == 0 {
                scratch.locations.push(p as usize);
            }
        }
        if scratch.locations.len() != deg {
            return Err(RsError::Uncorrectable);
        }

        // Forney: Ω(x) = S(x)·Ψ(x) mod x^r; e_i = Ω(X_i⁻¹)/Ψ'(X_i⁻¹).
        for i in 0..r {
            let mut acc = 0u32;
            for j in 0..=deg.min(i) {
                let c = scratch.lambda[j];
                if c != 0 {
                    acc ^= f.mul(c, scratch.s[i - j]);
                }
            }
            scratch.omega[i] = acc;
        }
        // Ψ' over characteristic 2: only odd-degree terms survive.
        scratch.deriv.fill(0);
        for i in (1..=deg).step_by(2) {
            scratch.deriv[i - 1] = scratch.lambda[i];
        }
        for &p in &scratch.locations {
            let x_inv = f.alpha_pow(order - (p as u64 % order));
            let denom = f.eval_poly(&scratch.deriv[..deg.max(1)], x_inv);
            if denom == 0 {
                return Err(RsError::Uncorrectable);
            }
            let num = f.eval_poly(&scratch.omega, x_inv);
            let mag = f.div(num, denom).expect("denominator checked nonzero");
            if mag != 0 {
                scratch.corrections.push((p, mag as u8));
            }
        }

        // Apply, then verify; an off-codeword landing means decode failure.
        for &(p, m) in &scratch.corrections {
            word[p] ^= m;
        }
        if !self.is_codeword(word) {
            for &(p, m) in &scratch.corrections {
                word[p] ^= m;
            }
            scratch.corrections.clear();
            return Err(RsError::Uncorrectable);
        }
        scratch.corrections.sort_unstable_by_key(|&(p, _)| p);
        for &(p, _) in &scratch.corrections {
            if !erasures.contains(&p) {
                scratch.error_pos.push(p);
            }
        }
        Ok(())
    }

    /// Berlekamp–Massey with erasure initialization (Blahut): Ψ starts as
    /// Γ (already in `scratch.lambda`), the length starts at ν, and
    /// iteration runs over syndromes `s[ν..r)`. Leaves the combined
    /// error-and-erasure locator Ψ in `scratch.lambda`.
    fn berlekamp_massey_erasures(&self, scratch: &mut RsScratch, nu: usize) {
        let f = &self.field;
        let r = self.r;
        let RsScratch {
            s,
            lambda,
            b,
            saved,
            ..
        } = scratch;
        b.copy_from_slice(lambda);
        let mut l = nu;
        let mut m = 1usize;
        let mut bb = 1u32;
        for i in nu..r {
            let mut d = 0u32;
            for j in 0..=l.min(i) {
                if lambda[j] != 0 {
                    d ^= f.mul(lambda[j], s[i - j]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i + nu {
                saved.copy_from_slice(lambda);
                let coef = f.div(d, bb).expect("bb nonzero");
                for j in 0..=(r - m.min(r)) {
                    if b[j] != 0 && j + m <= r {
                        lambda[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                l = i + 1 + nu - l;
                std::mem::swap(b, saved);
                bb = d;
                m = 1;
            } else {
                let coef = f.div(d, bb).expect("bb nonzero");
                for j in 0..=(r - m.min(r)) {
                    if b[j] != 0 && j + m <= r {
                        lambda[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                m += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The seeded randomized properties (historical seeds 3, 11, 17, 23,
    // 31, 41) live in `tests/props.rs` on the harness runner with
    // shrinking and corpus replay; only deterministic checks remain.

    #[test]
    fn clean_word_no_corrections() {
        let code = RsCode::per_block();
        let data: Vec<u8> = (0..64).collect();
        let mut cw = code.encode(&data);
        let out = code.decode(&mut cw).unwrap();
        assert!(out.was_clean());
    }

    #[test]
    fn erasure_with_correct_value_is_fine() {
        // A declared erasure whose stored value happens to be correct must
        // decode cleanly with zero magnitude at that position.
        let code = RsCode::per_block();
        let data: Vec<u8> = (100..164).map(|x| x as u8).collect();
        let mut cw = code.encode(&data);
        let clean = cw.clone();
        let out = code
            .decode_erasures(&mut cw, &[0, 1, 2, 3, 4, 5, 6, 7])
            .unwrap();
        assert_eq!(cw, clean);
        assert_eq!(out.num_corrections(), 0);
    }

    #[test]
    fn erasure_validation() {
        let code = RsCode::per_block();
        let mut cw = vec![0u8; 72];
        assert_eq!(
            code.decode_with_erasures(&mut cw, &[72]).unwrap_err(),
            RsError::BadErasure(72)
        );
        assert_eq!(
            code.decode_with_erasures(&mut cw, &[1, 1]).unwrap_err(),
            RsError::BadErasure(1)
        );
        let nine: Vec<usize> = (0..9).collect();
        assert_eq!(
            code.decode_with_erasures(&mut cw, &nine).unwrap_err(),
            RsError::TooManyErasures(9)
        );
        let mut short = vec![0u8; 71];
        assert_eq!(
            code.decode(&mut short).unwrap_err(),
            RsError::LengthMismatch(71, 72)
        );
    }

    #[test]
    fn scratch_and_pooled_paths_agree() {
        let code = RsCode::per_block();
        let mut scratch = RsScratch::new(&code);
        let data: Vec<u8> = (0..64).map(|i| (i * 31 + 7) as u8).collect();
        let clean = code.encode(&data);
        for errs in 0..=4usize {
            let mut w1 = clean.clone();
            let mut w2 = clean.clone();
            for e in 0..errs {
                w1[e * 13 + 1] ^= 0x3C;
                w2[e * 13 + 1] ^= 0x3C;
            }
            let pooled = code.decode(&mut w1).unwrap();
            let view = code.decode_scratch(&mut w2, &mut scratch).unwrap();
            assert_eq!(pooled.corrections(), view.corrections(), "{errs} errors");
            assert_eq!(
                pooled.error_positions(),
                view.error_positions(),
                "{errs} errors"
            );
            assert_eq!(w1, w2);
            assert_eq!(w1, clean);
        }
    }

    #[test]
    fn error_positions_exclude_declared_erasures() {
        let code = RsCode::per_block();
        let data = [0x42u8; 64];
        let clean = code.encode(&data);
        let mut w = clean.clone();
        // Two erased symbols (one genuinely wrong) plus one random error.
        w[3] ^= 0xFF;
        w[40] ^= 0x55;
        let mut scratch = RsScratch::new(&code);
        let view = code
            .decode_with_erasures_scratch(&mut w, &[3, 4], &mut scratch)
            .unwrap();
        assert_eq!(w, clean);
        assert_eq!(view.error_positions(), &[40]);
        assert_eq!(view.corrections().len(), 2);
    }

    #[test]
    fn scratch_reuse_across_geometries_is_rejected_by_capacity() {
        // A scratch for a small code still decodes the geometry it was
        // built for after being used heavily.
        let code = RsCode::new(16, 4).unwrap();
        let mut scratch = RsScratch::new(&code);
        let data: Vec<u8> = (0..16).collect();
        let clean = code.encode(&data);
        for round in 0..10 {
            let mut w = clean.clone();
            w[(round * 3) % 20] ^= 0x11;
            let view = code.decode_scratch(&mut w, &mut scratch).unwrap();
            assert_eq!(view.num_corrections(), 1);
            assert_eq!(w, clean);
        }
    }
}
