//! Errors-and-erasures RS decoding (Berlekamp–Massey with erasure
//! initialization, Chien search, Forney magnitudes).

use pmck_gf::FieldPoly;

use crate::code::RsCode;
use crate::error::RsError;

/// The result of a successful RS decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsDecodeOutcome {
    corrected: Vec<(usize, u8)>,
    erasure_positions: Vec<usize>,
}

impl RsDecodeOutcome {
    /// `(position, magnitude)` pairs applied to the word, ascending by
    /// position. Includes erasure positions whose magnitude was nonzero.
    pub fn corrections(&self) -> &[(usize, u8)] {
        &self.corrected
    }

    /// Positions corrected as *errors* (unknown locations) rather than
    /// declared erasures.
    pub fn error_positions(&self) -> Vec<usize> {
        self.corrected
            .iter()
            .map(|&(p, _)| p)
            .filter(|p| !self.erasure_positions.contains(p))
            .collect()
    }

    /// The number of positions whose value actually changed.
    pub fn num_corrections(&self) -> usize {
        self.corrected.len()
    }

    /// Whether the received word was already a valid codeword.
    pub fn was_clean(&self) -> bool {
        self.corrected.is_empty()
    }
}

impl RsCode {
    /// Decodes `word` in place, correcting random symbol errors.
    /// Equivalent to [`RsCode::decode_with_erasures`] with no erasures:
    /// up to `⌊r/2⌋` errors are corrected.
    ///
    /// # Errors
    ///
    /// * [`RsError::LengthMismatch`] if `word.len() != n`.
    /// * [`RsError::Uncorrectable`] if the pattern is detectably beyond
    ///   capability (word left unmodified). Overweight patterns may also
    ///   miscorrect silently, as with any bounded-distance decoder.
    pub fn decode(&self, word: &mut [u8]) -> Result<RsDecodeOutcome, RsError> {
        self.decode_with_erasures(word, &[])
    }

    /// Decodes `word` in place given known-bad `erasures` positions.
    /// Corrects any combination of `e` errors and `ν` erasures with
    /// `2e + ν ≤ r`.
    ///
    /// The paper's chip-failure path declares the failed chip's byte
    /// positions as erasures (ν = 8 for RS(72, 64)), consuming the whole
    /// budget; its runtime path uses no erasures and bounds accepted
    /// corrections via [`RsCode::decode_with_threshold`].
    ///
    /// # Errors
    ///
    /// * [`RsError::LengthMismatch`] if `word.len() != n`.
    /// * [`RsError::BadErasure`] for out-of-range or duplicate positions.
    /// * [`RsError::TooManyErasures`] if `ν > r`.
    /// * [`RsError::Uncorrectable`] if decoding fails (word unmodified).
    pub fn decode_with_erasures(
        &self,
        word: &mut [u8],
        erasures: &[usize],
    ) -> Result<RsDecodeOutcome, RsError> {
        if word.len() != self.len() {
            return Err(RsError::LengthMismatch(word.len(), self.len()));
        }
        let nu = erasures.len();
        if nu > self.max_erasures() {
            return Err(RsError::TooManyErasures(nu));
        }
        let mut seen = vec![false; self.len()];
        for &p in erasures {
            if p >= self.len() || seen[p] {
                return Err(RsError::BadErasure(p));
            }
            seen[p] = true;
        }

        let f = &self.field;
        let s = self.syndromes(word);
        if s.iter().all(|&x| x == 0) {
            return Ok(RsDecodeOutcome {
                corrected: vec![],
                erasure_positions: erasures.to_vec(),
            });
        }

        // Erasure locator Γ(x) = prod (1 + X_l x), X_l = alpha^position.
        let mut gamma = FieldPoly::one(f);
        for &p in erasures {
            let xl = f.alpha_pow(p as u64);
            gamma = gamma.mul(&FieldPoly::from_coeffs(f, vec![1, xl]));
        }

        // Berlekamp–Massey initialized with the erasure locator; iterates
        // over syndromes s[nu..r).
        let psi = self.berlekamp_massey_erasures(&s, &gamma, nu);
        let deg = psi.degree().unwrap_or(0);
        let num_errors = deg - nu.min(deg);
        if 2 * num_errors + nu > self.r {
            return Err(RsError::Uncorrectable);
        }

        // Chien search over the shortened length.
        let locations = self.chien_search(&psi);
        if locations.len() != deg {
            return Err(RsError::Uncorrectable);
        }

        // Forney: Ω(x) = S(x)·Ψ(x) mod x^r; e_i = Ω(X_i⁻¹)/Ψ'(X_i⁻¹).
        let s_poly = FieldPoly::from_coeffs(f, s.clone());
        let omega = s_poly.mul(&psi).truncate(self.r);
        let psi_deriv = psi.derivative();
        let order = f.order() as u64;
        let mut corrections: Vec<(usize, u8)> = Vec::with_capacity(deg);
        for &p in &locations {
            let x_inv = f.alpha_pow(order - (p as u64 % order));
            let denom = psi_deriv.eval(x_inv);
            if denom == 0 {
                return Err(RsError::Uncorrectable);
            }
            let num = omega.eval(x_inv);
            let mag = f.div(num, denom).expect("denominator checked nonzero");
            if mag != 0 {
                corrections.push((p, mag as u8));
            }
        }

        // Apply, then verify; an off-codeword landing means decode failure.
        for &(p, m) in &corrections {
            word[p] ^= m;
        }
        if !self.is_codeword(word) {
            for &(p, m) in &corrections {
                word[p] ^= m;
            }
            return Err(RsError::Uncorrectable);
        }
        corrections.sort_unstable_by_key(|&(p, _)| p);
        Ok(RsDecodeOutcome {
            corrected: corrections,
            erasure_positions: erasures.to_vec(),
        })
    }

    /// Erasure-only decoding: all `erasures` positions are recomputed, and
    /// no unknown-location errors are tolerated (any residual error makes
    /// the decode fail rather than risk miscorrection).
    ///
    /// # Errors
    ///
    /// As [`RsCode::decode_with_erasures`].
    pub fn decode_erasures(
        &self,
        word: &mut [u8],
        erasures: &[usize],
    ) -> Result<RsDecodeOutcome, RsError> {
        let out = self.decode_with_erasures(word, erasures)?;
        // Any correction outside the declared erasures means random errors
        // were present; the strict erasure path refuses that.
        if out
            .corrections()
            .iter()
            .any(|&(p, _)| !erasures.contains(&p))
        {
            for &(p, m) in out.corrections() {
                word[p] ^= m;
            }
            return Err(RsError::Uncorrectable);
        }
        Ok(out)
    }

    /// Berlekamp–Massey with erasure initialization (Blahut): Ψ starts as
    /// Γ, the length starts at ν, and iteration runs over syndromes
    /// `s[ν..r)`. Returns the combined error-and-erasure locator Ψ.
    fn berlekamp_massey_erasures(&self, s: &[u32], gamma: &FieldPoly, nu: usize) -> FieldPoly {
        let f = &self.field;
        let r = self.r;
        let mut lambda: Vec<u32> = vec![0; r + 1];
        for (i, &c) in gamma.coeffs().iter().enumerate() {
            lambda[i] = c;
        }
        let mut b = lambda.clone();
        let mut l = nu;
        let mut m = 1usize;
        let mut bb = 1u32;
        for i in nu..r {
            let mut d = 0u32;
            for j in 0..=l.min(i) {
                if lambda[j] != 0 {
                    d ^= f.mul(lambda[j], s[i - j]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i + nu {
                let saved = lambda.clone();
                let coef = f.div(d, bb).expect("bb nonzero");
                for j in 0..=(r - m.min(r)) {
                    if b[j] != 0 && j + m <= r {
                        lambda[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                l = i + 1 + nu - l;
                b = saved;
                bb = d;
                m = 1;
            } else {
                let coef = f.div(d, bb).expect("bb nonzero");
                for j in 0..=(r - m.min(r)) {
                    if b[j] != 0 && j + m <= r {
                        lambda[j + m] ^= f.mul(coef, b[j]);
                    }
                }
                m += 1;
            }
        }
        FieldPoly::from_coeffs(f, lambda)
    }

    /// Finds codeword positions whose location value inverse is a root of
    /// `psi`.
    fn chien_search(&self, psi: &FieldPoly) -> Vec<usize> {
        let f = &self.field;
        let order = f.order() as u64;
        let mut out = Vec::new();
        for p in 0..self.len() as u64 {
            let x_inv = f.alpha_pow(order - (p % order));
            if psi.eval(x_inv) == 0 {
                out.push(p as usize);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The seeded randomized properties (historical seeds 3, 11, 17, 23,
    // 31, 41) live in `tests/props.rs` on the harness runner with
    // shrinking and corpus replay; only deterministic checks remain.

    #[test]
    fn clean_word_no_corrections() {
        let code = RsCode::per_block();
        let data: Vec<u8> = (0..64).collect();
        let mut cw = code.encode(&data);
        let out = code.decode(&mut cw).unwrap();
        assert!(out.was_clean());
    }

    #[test]
    fn erasure_with_correct_value_is_fine() {
        // A declared erasure whose stored value happens to be correct must
        // decode cleanly with zero magnitude at that position.
        let code = RsCode::per_block();
        let data: Vec<u8> = (100..164).map(|x| x as u8).collect();
        let mut cw = code.encode(&data);
        let clean = cw.clone();
        let out = code
            .decode_erasures(&mut cw, &[0, 1, 2, 3, 4, 5, 6, 7])
            .unwrap();
        assert_eq!(cw, clean);
        assert_eq!(out.num_corrections(), 0);
    }

    #[test]
    fn erasure_validation() {
        let code = RsCode::per_block();
        let mut cw = vec![0u8; 72];
        assert_eq!(
            code.decode_with_erasures(&mut cw, &[72]).unwrap_err(),
            RsError::BadErasure(72)
        );
        assert_eq!(
            code.decode_with_erasures(&mut cw, &[1, 1]).unwrap_err(),
            RsError::BadErasure(1)
        );
        let nine: Vec<usize> = (0..9).collect();
        assert_eq!(
            code.decode_with_erasures(&mut cw, &nine).unwrap_err(),
            RsError::TooManyErasures(9)
        );
        let mut short = vec![0u8; 71];
        assert_eq!(
            code.decode(&mut short).unwrap_err(),
            RsError::LengthMismatch(71, 72)
        );
    }
}
