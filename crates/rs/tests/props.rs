//! Seeded RS(72, 64) decode properties, migrated onto the harness
//! runner with their historical seeds (3, 11, 17, 23, 31, 41, 5, 13),
//! plus the negative-path threshold property whose crafted
//! counterexample is seeded into the checked-in corpus.

use pmck_harness::{ByteErrorCase, ErasureCase, Runner};
use pmck_rs::{RejectReason, RsCode, RsError, ThresholdOutcome};
use pmck_rt::rng::{Rng, StdRng};

fn gen_errors(rng: &mut StdRng, code: &RsCode, num_errors: usize) -> ByteErrorCase {
    let mut data = vec![0u8; code.data_symbols()];
    rng.fill_bytes(&mut data);
    let mut errors: Vec<(usize, u8)> = Vec::with_capacity(num_errors);
    while errors.len() < num_errors {
        let p = rng.gen_range(0usize..code.len());
        if !errors.iter().any(|&(q, _)| q == p) {
            errors.push((p, rng.gen_range(1u32..256) as u8));
        }
    }
    ByteErrorCase { data, errors }
}

/// Historical seed 3 (`corrects_up_to_four_errors`): 1..=4 random symbol
/// errors always decode back to the clean codeword.
#[test]
fn corrects_up_to_four_errors() {
    let code = RsCode::per_block();
    let mut trial = 0usize;
    Runner::new("rs:corrects-up-to-4").seed(3).cases(80).run(
        |rng| {
            let nerr = 1 + (trial % 4);
            trial += 1;
            gen_errors(rng, &code, nerr)
        },
        |case| {
            let clean = code.encode(&case.data);
            let mut cw = case.corrupted(&code);
            let out = code
                .decode(&mut cw)
                .map_err(|e| format!("{} errors must decode: {e}", case.errors.len()))?;
            if cw != clean {
                return Err("decode did not restore the clean word".into());
            }
            if out.num_corrections() != case.errors.len() {
                return Err(format!(
                    "corrected {} of {}",
                    out.num_corrections(),
                    case.errors.len()
                ));
            }
            Ok(())
        },
    );
}

/// Historical seed 11 (`corrects_eight_erasures_chip_failure`): a dead
/// chip's eight consecutive bytes, declared as erasures, always decode.
#[test]
fn corrects_eight_erasures_chip_failure() {
    let code = RsCode::per_block();
    Runner::new("rs:chip-failure-erasures")
        .seed(11)
        .cases(20)
        .run(
            |rng| {
                let mut data = vec![0u8; code.data_symbols()];
                rng.fill_bytes(&mut data);
                let chip = rng.gen_range(0usize..9);
                let mut fills = vec![0u8; 8];
                rng.fill_bytes(&mut fills);
                ErasureCase {
                    data,
                    erasures: (chip * 8..chip * 8 + 8).collect(),
                    fills,
                    errors: vec![],
                }
            },
            |case| {
                let clean = code.encode(&case.data);
                let mut cw = case.corrupted(&code);
                let out = code
                    .decode_erasures(&mut cw, &case.erasures)
                    .map_err(|e| format!("chip erasures must decode: {e}"))?;
                if cw != clean {
                    return Err("decode did not restore the clean word".into());
                }
                if out.num_corrections() > 8 {
                    return Err(format!("{} corrections > 8", out.num_corrections()));
                }
                Ok(())
            },
        );
}

/// Historical seed 17 (`corrects_mixed_errors_and_erasures`): 2 errors +
/// 4 erasures satisfy 2e + ν ≤ r and always decode.
#[test]
fn corrects_mixed_errors_and_erasures() {
    let code = RsCode::per_block();
    Runner::new("rs:mixed-errors-erasures")
        .seed(17)
        .cases(50)
        .run(
            |rng| {
                let mut data = vec![0u8; code.data_symbols()];
                rng.fill_bytes(&mut data);
                let mut positions: Vec<usize> = Vec::with_capacity(6);
                while positions.len() < 6 {
                    let p = rng.gen_range(0usize..code.len());
                    if !positions.contains(&p) {
                        positions.push(p);
                    }
                }
                positions.sort_unstable();
                let erasures: Vec<usize> = positions[..4].to_vec();
                let fills: Vec<u8> = (0..4).map(|_| rng.gen_range(0u32..256) as u8).collect();
                let errors: Vec<(usize, u8)> = positions[4..]
                    .iter()
                    .map(|&p| (p, rng.gen_range(1u32..256) as u8))
                    .collect();
                ErasureCase {
                    data,
                    erasures,
                    fills,
                    errors,
                }
            },
            |case| {
                let clean = code.encode(&case.data);
                let mut cw = case.corrupted(&code);
                code.decode_with_erasures(&mut cw, &case.erasures)
                    .map_err(|e| format!("2e+nu <= r must decode: {e}"))?;
                if cw != clean {
                    return Err("decode did not restore the clean word".into());
                }
                Ok(())
            },
        );
}

/// Historical seed 23 (`five_errors_never_returns_wrong_success...`):
/// five errors exceed capability; the decoder must flag or land on a
/// *valid* codeword, never succeed with an invalid word. The aggregate
/// flagged-rate check is preserved.
#[test]
fn five_errors_never_silently_wrong() {
    let code = RsCode::per_block();
    let mut flagged = 0u32;
    Runner::new("rs:five-errors-flagged")
        .seed(23)
        .cases(200)
        .run(
            |rng| gen_errors(rng, &code, 5),
            |case| {
                let mut cw = case.corrupted(&code);
                match code.decode(&mut cw) {
                    Ok(_) if code.is_codeword(&cw) => Ok(()),
                    Ok(_) => Err("success with an invalid word".into()),
                    Err(RsError::Uncorrectable) => {
                        flagged += 1;
                        Ok(())
                    }
                    Err(e) => Err(format!("unexpected error {e}")),
                }
            },
        );
    assert!(
        flagged > 150,
        "most 5-error patterns must be flagged, got {flagged}"
    );
}

/// Historical seed 31 (`uncorrectable_leaves_word_unmodified`): a
/// flagged decode must leave the word bit-identical (RS(16, 4) with six
/// spread errors, as in the original test).
#[test]
fn uncorrectable_leaves_word_unmodified() {
    let code = RsCode::new(16, 4).unwrap();
    let mut saw_uncorrectable = false;
    Runner::new("rs:uncorrectable-unmodified")
        .seed(31)
        .cases(100)
        .run(
            |rng| {
                let mut data = vec![0u8; 16];
                rng.fill_bytes(&mut data);
                let errors: Vec<(usize, u8)> = (0..6)
                    .map(|p| (p * 3, rng.gen_range(1u32..256) as u8))
                    .collect();
                ByteErrorCase { data, errors }
            },
            |case| {
                let mut cw = case.corrupted(&code);
                let before = cw.clone();
                if code.decode(&mut cw).is_err() {
                    saw_uncorrectable = true;
                    if cw != before {
                        return Err("flagged word was modified".into());
                    }
                }
                Ok(())
            },
        );
    assert!(saw_uncorrectable, "expected an uncorrectable pattern");
}

/// Historical seed 41 (`strict_erasure_decode_rejects_extra_errors`):
/// with 4 erasures plus one undeclared error, the strict erasure path
/// must refuse while the relaxed path fixes both.
#[test]
fn strict_erasure_decode_rejects_extra_errors() {
    let code = RsCode::per_block();
    Runner::new("rs:strict-erasure-rejects")
        .seed(41)
        .cases(20)
        .run(
            |rng| {
                let mut data = vec![0u8; code.data_symbols()];
                rng.fill_bytes(&mut data);
                let error_pos = rng.gen_range(4usize..code.len());
                ErasureCase {
                    data,
                    erasures: vec![0, 1, 2, 3],
                    fills: vec![0xff; 4],
                    errors: vec![(error_pos, 0x42)],
                }
            },
            |case| {
                let clean = code.encode(&case.data);
                // Fills of 0xff may coincide with the clean byte; the single
                // undeclared error is what strictness must catch.
                let corrupted = case.corrupted(&code);
                let mut strict = corrupted.clone();
                if code.decode_erasures(&mut strict, &case.erasures).is_ok() {
                    return Err("strict erasure decode accepted an undeclared error".into());
                }
                let mut relaxed = corrupted;
                let out = code
                    .decode_with_erasures(&mut relaxed, &case.erasures)
                    .map_err(|e| format!("relaxed decode must succeed: {e}"))?;
                if relaxed != clean {
                    return Err("relaxed decode did not restore the clean word".into());
                }
                if !out.error_positions().contains(&case.errors[0].0) {
                    return Err("relaxed decode missed the undeclared error".into());
                }
                Ok(())
            },
        );
}

/// Historical seed 5 (`uncorrectable_rejected`): scattering eight random
/// errors eventually produces an outright-uncorrectable rejection at the
/// threshold stage.
#[test]
fn threshold_uncorrectable_rejected() {
    let code = RsCode::per_block();
    let mut rejected_uncorrectable = false;
    Runner::new("rs:threshold-uncorrectable")
        .seed(5)
        .cases(100)
        .run(
            |rng| {
                let mut errors: Vec<(usize, u8)> = Vec::new();
                for _ in 0..8 {
                    let p = rng.gen_range(0usize..code.len());
                    let m = rng.gen_range(1u32..256) as u8;
                    if let Some(e) = errors.iter_mut().find(|e| e.0 == p) {
                        e.1 ^= m;
                    } else {
                        errors.push((p, m));
                    }
                }
                ByteErrorCase {
                    data: vec![9u8; code.data_symbols()],
                    errors,
                }
            },
            |case| {
                let mut cw = case.corrupted(&code);
                match code.decode_with_threshold(&mut cw, 2) {
                    Ok(ThresholdOutcome::Rejected(RejectReason::Uncorrectable)) => {
                        rejected_uncorrectable = true;
                        Ok(())
                    }
                    Ok(_) => Ok(()),
                    Err(e) => Err(format!("unexpected error {e}")),
                }
            },
        );
    assert!(
        rejected_uncorrectable,
        "expected an uncorrectable rejection"
    );
}

/// Historical seed 13 (`threshold_never_accepts_more_than_threshold`):
/// for every threshold 0..=4, an accepted decode never admits more
/// corrections than the threshold.
#[test]
fn threshold_never_accepts_more_than_threshold() {
    let code = RsCode::per_block();
    Runner::new("rs:threshold-bound").seed(13).cases(500).run(
        |rng| {
            let nerr = rng.gen_range(0usize..=6);
            gen_errors(rng, &code, nerr)
        },
        |case| {
            let cw = case.corrupted(&code);
            for threshold in 0..=4usize {
                let mut w = cw.clone();
                if let ThresholdOutcome::Accepted { corrections } = code
                    .decode_with_threshold(&mut w, threshold)
                    .map_err(|e| format!("unexpected error {e}"))?
                {
                    if corrections > threshold {
                        return Err(format!(
                            "accepted {corrections} corrections at threshold {threshold}"
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Negative path: exactly three errors always decode to three
/// corrections, which the paper's threshold of 2 must reject — rolled
/// back, with the reject reason carrying the true correction count. The
/// checked-in corpus seeds this property with a crafted 3-error word on
/// the zero codeword (`tests/corpus/rs-threshold-negative-crafted.json`),
/// replayed before the generated cases.
#[test]
fn threshold_rejects_crafted_three_error_patterns() {
    let code = RsCode::per_block();
    let report = Runner::new("rs:threshold:negative")
        .seed(0x101)
        .cases(200)
        .run(
            |rng| gen_errors(rng, &code, 3),
            |case| {
                let mut cw = case.corrupted(&code);
                let before = cw.clone();
                match code.decode_with_threshold(&mut cw, 2) {
                    Ok(ThresholdOutcome::Rejected(RejectReason::TooManyCorrections(3))) => {
                        if cw == before {
                            Ok(())
                        } else {
                            Err("rejected corrections must be rolled back".into())
                        }
                    }
                    Ok(other) => Err(format!("3-error word not rejected: {other:?}")),
                    Err(e) => Err(format!("unexpected error {e}")),
                }
            },
        );
    assert!(
        report.corpus_replayed >= 1,
        "the crafted corpus case must be present and replayed"
    );
}
