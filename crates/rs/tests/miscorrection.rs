//! The §V-C argument, demonstrated on the real decoder: patterns of five
//! byte errors *do* silently miscorrect a t=4 decoder (SDC), and the
//! paper's acceptance threshold of 2 rejects every such pattern.

use pmck_rs::{RejectReason, RsCode, ThresholdOutcome};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

/// Searches for an overweight (5-error) pattern that the full-strength
/// decoder miscorrects into a *wrong* codeword. Term B says ~2.4e-4 of
/// such patterns do, so a few thousand trials suffice.
fn find_miscorrecting_pattern(
    code: &RsCode,
    clean: &[u8],
    rng: &mut StdRng,
    max_trials: usize,
) -> Option<Vec<u8>> {
    for _ in 0..max_trials {
        let mut word = clean.to_vec();
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < 5 {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            word[p] ^= rng.gen_range(1..=255u8);
        }
        let mut attempt = word.clone();
        if let Ok(out) = code.decode(&mut attempt) {
            if attempt != clean && out.num_corrections() <= 4 {
                return Some(word); // genuine SDC under unrestricted decode
            }
        }
    }
    None
}

#[test]
fn five_error_sdc_exists_and_threshold_two_blocks_it() {
    let code = RsCode::per_block();
    let data: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
    let clean = code.encode(&data);
    let mut rng = StdRng::seed_from_u64(2018);

    let word = find_miscorrecting_pattern(&code, &clean, &mut rng, 120_000)
        .expect("Term B ≈ 2.4e-4: a miscorrecting 5-error pattern exists in 120k trials");

    // Unrestricted decoding silently corrupts: that is the SDC the paper
    // refuses to accept.
    let mut sdc = word.clone();
    let out = code.decode(&mut sdc).expect("miscorrects successfully");
    assert_ne!(sdc, clean, "the decoder landed on the wrong codeword");
    assert!(out.num_corrections() <= 4);
    // Minimum distance 9 with 5 injected errors: the wrong codeword is
    // at least 4 corrections away, so the miscorrection always *looks*
    // like a large correction…
    assert!(
        out.num_corrections() >= 3,
        "got {} corrections",
        out.num_corrections()
    );

    // …which is exactly why the threshold-2 rule catches it.
    let mut guarded = word.clone();
    match code
        .decode_with_threshold(&mut guarded, 2)
        .expect("length ok")
    {
        ThresholdOutcome::Rejected(RejectReason::TooManyCorrections(n)) => {
            assert!(n >= 3);
        }
        ThresholdOutcome::Rejected(RejectReason::Uncorrectable) => {}
        other => panic!("threshold 2 must reject the SDC pattern, got {other:?}"),
    }
    assert_eq!(guarded, word, "rejection leaves the word for VLEW fallback");
}

#[test]
fn threshold_two_never_accepts_wrong_data_across_campaign() {
    // A broad injection campaign: across error weights 0..=8, every
    // *accepted* threshold-2 decode must yield exactly the original
    // codeword. (Acceptance of wrong data would need a 7+-error pattern
    // landing within distance 2 of a wrong codeword: rate ~3e-22.)
    let code = RsCode::per_block();
    let mut rng = StdRng::seed_from_u64(77);
    let mut accepted = 0u64;
    for trial in 0..30_000u64 {
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut word = clean.clone();
        let weight = (trial % 9) as usize;
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < weight {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            word[p] ^= rng.gen_range(1..=255u8);
        }
        match code.decode_with_threshold(&mut word, 2).expect("length ok") {
            ThresholdOutcome::Clean | ThresholdOutcome::Accepted { .. } => {
                assert_eq!(word, clean, "trial {trial}: accepted wrong data (SDC!)");
                accepted += 1;
            }
            ThresholdOutcome::Rejected(_) => {}
        }
    }
    assert!(
        accepted > 9_000,
        "0..2-error patterns must be accepted: {accepted}"
    );
}
