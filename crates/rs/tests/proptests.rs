//! Randomized tests: RS round trips across the full `2e + ν ≤ r`
//! envelope, threshold-decode invariants, and linearity. Seeded
//! `pmck-rt` streams replace the former proptest strategies.

use pmck_rt::rng::{Rng, StdRng};

use pmck_rs::{RsCode, ThresholdOutcome};

#[test]
fn round_trip_full_envelope() {
    let mut rng = StdRng::seed_from_u64(0x4507_0001);
    for _ in 0..128 {
        let e = rng.gen_range(0usize..=4);
        // 2e + ν ≤ 8 → ν ≤ 8 − 2e.
        let nu = rng.gen_range(0usize..=8).min(8 - 2 * e);
        let code = RsCode::per_block();
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < e + nu {
            positions.insert(rng.gen_range(0..code.len()));
        }
        let all: Vec<usize> = positions.into_iter().collect();
        let erasures = &all[..nu];
        for &p in &all {
            cw[p] ^= rng.gen_range(1..=255u8);
        }
        code.decode_with_erasures(&mut cw, erasures).unwrap();
        assert_eq!(cw, clean);
    }
}

#[test]
fn threshold_invariant_accept_le_threshold() {
    let mut rng = StdRng::seed_from_u64(0x4507_0002);
    for _ in 0..128 {
        let nerr = rng.gen_range(0usize..=6);
        let thr = rng.gen_range(0usize..=4);
        let code = RsCode::per_block();
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < nerr {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            cw[p] ^= rng.gen_range(1..=255u8);
        }
        let before = cw.clone();
        match code.decode_with_threshold(&mut cw, thr).unwrap() {
            ThresholdOutcome::Clean => assert_eq!(nerr, 0),
            ThresholdOutcome::Accepted { corrections } => {
                assert!(corrections <= thr);
                assert!(code.is_codeword(&cw));
            }
            ThresholdOutcome::Rejected(_) => assert_eq!(&cw, &before),
        }
        // Within capability and threshold, correction must be exact.
        if nerr <= thr {
            assert_eq!(&cw, &clean);
        }
    }
}

#[test]
fn parity_linearity() {
    let mut rng = StdRng::seed_from_u64(0x4507_0003);
    for _ in 0..128 {
        let code = RsCode::per_block();
        let a: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let b: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let ab: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let pa = code.parity(&a);
        let pb = code.parity(&b);
        let pab = code.parity(&ab);
        for i in 0..8 {
            assert_eq!(pa[i] ^ pb[i], pab[i]);
        }
    }
}

#[test]
fn erasures_anywhere_including_check_bytes() {
    let mut rng = StdRng::seed_from_u64(0x4507_0004);
    for _ in 0..128 {
        // A dead chip can be the parity chip itself: erasing 8 consecutive
        // positions anywhere must be recoverable.
        let start = rng.gen_range(0usize..=64);
        let code = RsCode::per_block();
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let erasures: Vec<usize> = (start..start + 8).collect();
        for &p in &erasures {
            cw[p] = rng.gen();
        }
        code.decode_with_erasures(&mut cw, &erasures).unwrap();
        assert_eq!(cw, clean);
    }
}

#[test]
fn smaller_codes_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x4507_0005);
    for _ in 0..128 {
        let k = rng.gen_range(1usize..=32);
        let r_half = rng.gen_range(1usize..=4);
        let r = 2 * r_half;
        let code = RsCode::new(k, r).unwrap();
        let data: Vec<u8> = (0..k).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let nerr = rng.gen_range(0..=r_half);
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < nerr {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            cw[p] ^= rng.gen_range(1..=255u8);
        }
        code.decode(&mut cw).unwrap();
        assert_eq!(cw, clean);
    }
}
