//! Property-based tests: RS round trips across the full `2e + ν ≤ r`
//! envelope, threshold-decode invariants, and linearity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmck_rs::{RsCode, ThresholdOutcome};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_full_envelope(seed in any::<u64>(), e in 0usize..=4, extra in 0usize..=8) {
        // 2e + ν ≤ 8 → ν ≤ 8 − 2e.
        let nu = extra.min(8 - 2 * e);
        let code = RsCode::per_block();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < e + nu {
            positions.insert(rng.gen_range(0..code.len()));
        }
        let all: Vec<usize> = positions.into_iter().collect();
        let erasures = &all[..nu];
        for &p in &all {
            cw[p] ^= rng.gen_range(1..=255u8);
        }
        code.decode_with_erasures(&mut cw, erasures).unwrap();
        prop_assert_eq!(cw, clean);
    }

    #[test]
    fn threshold_invariant_accept_le_threshold(seed in any::<u64>(), nerr in 0usize..=6, thr in 0usize..=4) {
        let code = RsCode::per_block();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < nerr {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            cw[p] ^= rng.gen_range(1..=255u8);
        }
        let before = cw.clone();
        match code.decode_with_threshold(&mut cw, thr).unwrap() {
            ThresholdOutcome::Clean => prop_assert_eq!(nerr, 0),
            ThresholdOutcome::Accepted { corrections } => {
                prop_assert!(corrections <= thr);
                prop_assert!(code.is_codeword(&cw));
            }
            ThresholdOutcome::Rejected(_) => prop_assert_eq!(&cw, &before),
        }
        // Within capability and threshold, correction must be exact.
        if nerr <= thr {
            prop_assert_eq!(&cw, &clean);
        }
    }

    #[test]
    fn parity_linearity(seed in any::<u64>()) {
        let code = RsCode::per_block();
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let b: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let ab: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let pa = code.parity(&a);
        let pb = code.parity(&b);
        let pab = code.parity(&ab);
        for i in 0..8 {
            prop_assert_eq!(pa[i] ^ pb[i], pab[i]);
        }
    }

    #[test]
    fn erasures_anywhere_including_check_bytes(seed in any::<u64>(), start in 0usize..=64) {
        // A dead chip can be the parity chip itself: erasing 8 consecutive
        // positions anywhere must be recoverable.
        let code = RsCode::per_block();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let erasures: Vec<usize> = (start..start + 8).collect();
        for &p in &erasures {
            cw[p] = rng.gen();
        }
        code.decode_with_erasures(&mut cw, &erasures).unwrap();
        prop_assert_eq!(cw, clean);
    }

    #[test]
    fn smaller_codes_round_trip(k in 1usize..=32, r_half in 1usize..=4, seed in any::<u64>()) {
        let r = 2 * r_half;
        let code = RsCode::new(k, r).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..k).map(|_| rng.gen()).collect();
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        let nerr = rng.gen_range(0..=r_half);
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < nerr {
            positions.insert(rng.gen_range(0..code.len()));
        }
        for &p in &positions {
            cw[p] ^= rng.gen_range(1..=255u8);
        }
        code.decode(&mut cw).unwrap();
        prop_assert_eq!(cw, clean);
    }
}
