//! Randomized property tests for field and polynomial arithmetic,
//! driven by a seeded `pmck-rt` generator (many iterations per test,
//! reproducible by construction).

use pmck_gf::{BitPoly, FieldPoly, Gf256, Gf2m};
use pmck_rt::rng::{Rng, StdRng};

#[test]
fn gf256_field_axioms() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5601);
    for _ in 0..4096 {
        let (a, b, c) = (Gf256(rng.gen()), Gf256(rng.gen()), Gf256(rng.gen()));
        // Commutativity
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        // Associativity
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!((a * b) * c, a * (b * c));
        // Distributivity
        assert_eq!(a * (b + c), a * b + a * c);
        // Identities
        assert_eq!(a + Gf256::ZERO, a);
        assert_eq!(a * Gf256::ONE, a);
        // Inverses
        assert_eq!(a + a, Gf256::ZERO);
        if !b.is_zero() {
            assert_eq!((a * b) / b, a);
        }
    }
}

#[test]
fn gf2m_field_axioms() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5602);
    for _ in 0..512 {
        let m = rng.gen_range(3u32..=13);
        let f = Gf2m::new(m).unwrap();
        let mask = f.order();
        let seed: u64 = rng.gen();
        let a = (seed as u32) & mask;
        let b = ((seed >> 16) as u32) & mask;
        let c = ((seed >> 32) as u32) & mask;
        assert_eq!(f.mul(a, b), f.mul(b, a));
        assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        if a != 0 {
            assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
        }
    }
}

#[test]
fn gf2m_pow_laws() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5603);
    for _ in 0..256 {
        let m = rng.gen_range(3u32..=12);
        let e1 = rng.gen_range(0u64..10_000);
        let e2 = rng.gen_range(0u64..10_000);
        let f = Gf2m::new(m).unwrap();
        let a = f.alpha_pow(7);
        assert_eq!(f.mul(f.pow(a, e1), f.pow(a, e2)), f.pow(a, e1 + e2));
    }
}

#[test]
fn bitpoly_bytes_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5604);
    for _ in 0..512 {
        let len = rng.gen_range(0..64usize);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let p = BitPoly::from_bytes(&bytes);
        assert_eq!(p.to_bytes(), bytes);
    }
}

#[test]
fn bitpoly_rem_is_remainder() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5605);
    for _ in 0..1024 {
        let a = rng.gen_range(1u64..u64::MAX);
        let g = rng.gen_range(2u64..1 << 20);
        // rem(a, g) must differ from a by a multiple of g and have
        // degree < deg(g).
        let pa = BitPoly::from_u64(a, 0);
        let pg = BitPoly::from_u64(g | 1, 0); // ensure nonzero constant term
        let r = pa.rem(&pg);
        if let (Some(dr), Some(dg)) = (r.degree(), pg.degree()) {
            assert!(dr < dg);
        }
        // (a - r) mod g == 0
        let mut diff = BitPoly::zero(pa.len().max(r.len()).max(1));
        diff.xor_assign(&pa.slice(0, pa.len()));
        for i in r.iter_ones() {
            diff.flip(i);
        }
        assert!(diff.rem(&pg).is_zero());
    }
}

#[test]
fn bitpoly_clmul_degree_additive() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5606);
    for _ in 0..1024 {
        let a = rng.gen_range(1u64..u64::MAX);
        let b = rng.gen_range(1u64..u64::MAX);
        let pa = BitPoly::from_u64(a, 0);
        let pb = BitPoly::from_u64(b, 0);
        let prod = pa.clmul(&pb);
        assert_eq!(
            prod.degree(),
            Some(pa.degree().unwrap() + pb.degree().unwrap())
        );
    }
}

#[test]
fn fieldpoly_eval_linear() {
    let mut rng = StdRng::seed_from_u64(0x67F2_5607);
    for _ in 0..512 {
        let seed: u64 = rng.gen();
        let f = Gf2m::new(10).unwrap();
        let coeffs_a: Vec<u32> = (0..8)
            .map(|i| ((seed >> i) as u32 ^ i) & f.order())
            .collect();
        let coeffs_b: Vec<u32> = (0..8)
            .map(|i| ((seed >> (i + 8)) as u32) & f.order())
            .collect();
        let pa = FieldPoly::from_coeffs(&f, coeffs_a);
        let pb = FieldPoly::from_coeffs(&f, coeffs_b);
        let x = (seed as u32) & f.order();
        assert_eq!(pa.add(&pb).eval(x), pa.eval(x) ^ pb.eval(x));
        assert_eq!(pa.mul(&pb).eval(x), f.mul(pa.eval(x), pb.eval(x)));
    }
}
