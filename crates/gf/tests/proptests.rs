//! Property-based tests for field and polynomial arithmetic.

use pmck_gf::{BitPoly, FieldPoly, Gf256, Gf2m};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gf256_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        // Commutativity
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        // Associativity
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        // Distributivity
        prop_assert_eq!(a * (b + c), a * b + a * c);
        // Identities
        prop_assert_eq!(a + Gf256::ZERO, a);
        prop_assert_eq!(a * Gf256::ONE, a);
        // Inverses
        prop_assert_eq!(a + a, Gf256::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a * b) / b, a);
        }
    }

    #[test]
    fn gf2m_field_axioms(m in 3u32..=13, seed in any::<u64>()) {
        let f = Gf2m::new(m).unwrap();
        let mask = f.order();
        let a = (seed as u32) & mask;
        let b = ((seed >> 16) as u32) & mask;
        let c = ((seed >> 32) as u32) & mask;
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
        }
    }

    #[test]
    fn gf2m_pow_laws(m in 3u32..=12, e1 in 0u64..10_000, e2 in 0u64..10_000) {
        let f = Gf2m::new(m).unwrap();
        let a = f.alpha_pow(7);
        prop_assert_eq!(f.mul(f.pow(a, e1), f.pow(a, e2)), f.pow(a, e1 + e2));
    }

    #[test]
    fn bitpoly_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let p = BitPoly::from_bytes(&bytes);
        prop_assert_eq!(p.to_bytes(), bytes);
    }

    #[test]
    fn bitpoly_rem_is_remainder(a in 1u64..u64::MAX, g in 2u64..(1 << 20)) {
        // rem(a, g) must differ from a by a multiple of g and have
        // degree < deg(g).
        let pa = BitPoly::from_u64(a, 0);
        let pg = BitPoly::from_u64(g | 1, 0); // ensure nonzero constant term
        let r = pa.rem(&pg);
        if let (Some(dr), Some(dg)) = (r.degree(), pg.degree()) {
            prop_assert!(dr < dg);
        }
        // (a - r) mod g == 0
        let mut diff = BitPoly::zero(pa.len().max(r.len()).max(1));
        diff.xor_assign(&pa.slice(0, pa.len()));
        for i in r.iter_ones() {
            diff.flip(i);
        }
        prop_assert!(diff.rem(&pg).is_zero());
    }

    #[test]
    fn bitpoly_clmul_degree_additive(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let pa = BitPoly::from_u64(a, 0);
        let pb = BitPoly::from_u64(b, 0);
        let prod = pa.clmul(&pb);
        prop_assert_eq!(
            prod.degree(),
            Some(pa.degree().unwrap() + pb.degree().unwrap())
        );
    }

    #[test]
    fn fieldpoly_eval_linear(seed in any::<u64>()) {
        let f = Gf2m::new(10).unwrap();
        let coeffs_a: Vec<u32> = (0..8).map(|i| ((seed >> i) as u32 ^ i) & f.order()).collect();
        let coeffs_b: Vec<u32> = (0..8).map(|i| ((seed >> (i + 8)) as u32) & f.order()).collect();
        let pa = FieldPoly::from_coeffs(&f, coeffs_a);
        let pb = FieldPoly::from_coeffs(&f, coeffs_b);
        let x = (seed as u32) & f.order();
        prop_assert_eq!(pa.add(&pb).eval(x), pa.eval(x) ^ pb.eval(x));
        prop_assert_eq!(pa.mul(&pb).eval(x), f.mul(pa.eval(x), pb.eval(x)));
    }
}
