//! Seeded algebraic properties, migrated onto the harness runner.
//!
//! The Frobenius test previously lived inline in `field.rs` with a
//! hand-rolled LCG; it keeps its historical seed (`0x12345678`) here but
//! gains shrinking and corpus replay.

use pmck_gf::Gf2m;
use pmck_harness::{FieldPairCase, Runner};
use pmck_rt::Rng;

#[test]
fn frobenius_square_is_additive() {
    let f = Gf2m::new(13).unwrap();
    let mask = (1u32 << 13) - 1;
    Runner::new("gf:frobenius-additive")
        .seed(0x12345678)
        .cases(1000)
        .run(
            |rng| FieldPairCase {
                a: rng.gen_range(0u32..=mask),
                b: rng.gen_range(0u32..=mask),
            },
            |c| {
                let lhs = f.square(c.a ^ c.b);
                let rhs = f.square(c.a) ^ f.square(c.b);
                if lhs == rhs {
                    Ok(())
                } else {
                    Err(format!("(a+b)^2 = {lhs} but a^2+b^2 = {rhs}"))
                }
            },
        );
}

#[test]
fn multiplication_distributes_over_addition() {
    let f = Gf2m::new(12).unwrap();
    let mask = (1u32 << 12) - 1;
    Runner::new("gf:mul-distributive")
        .seed(0x12345678)
        .cases(1000)
        .run(
            |rng| FieldPairCase {
                a: rng.gen_range(0u32..=mask),
                b: rng.gen_range(0u32..=mask),
            },
            |c| {
                // c fixed per case via the pair itself: use a ^ b as the
                // third operand so the case stays two-dimensional.
                let third = c.a ^ c.b;
                let lhs = f.mul(c.a, c.b ^ third);
                let rhs = f.mul(c.a, c.b) ^ f.mul(c.a, third);
                if lhs == rhs {
                    Ok(())
                } else {
                    Err(format!("a*(b+c) = {lhs} but a*b+a*c = {rhs}"))
                }
            },
        );
}
