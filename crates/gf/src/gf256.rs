//! The byte field GF(2^8) with reduction polynomial `0x11D`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

const POLY: u32 = 0x11D;
const ORDER: usize = 255;

struct Tables {
    exp: [u8; 2 * ORDER],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 2 * ORDER];
        let mut log = [0u8; 256];
        let mut x = 1u32;
        for (i, e) in exp.iter_mut().take(ORDER).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        let (lo, hi) = exp.split_at_mut(ORDER);
        hi.copy_from_slice(lo);
        Tables { exp, log }
    })
}

/// An element of GF(2^8) with the `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`)
/// reduction polynomial — the field used by the per-block Reed-Solomon code.
///
/// Arithmetic is exposed through the standard operator traits. Addition and
/// subtraction coincide (both are XOR); division by zero panics, mirroring
/// integer division.
///
/// # Examples
///
/// ```
/// use pmck_gf::Gf256;
///
/// let a = Gf256::from(0x57u8);
/// let b = Gf256::from(0x13u8);
/// assert_eq!(a + b, Gf256::from(0x44u8));
/// assert_eq!((a * b) / b, a);
/// assert_eq!(a - a, Gf256::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The primitive element alpha (the class of `x`).
    pub const ALPHA: Gf256 = Gf256(2);

    /// `alpha^i`, with the exponent reduced modulo 255.
    pub fn alpha_pow(i: u64) -> Gf256 {
        Gf256(tables().exp[(i % ORDER as u64) as usize])
    }

    /// The discrete log base alpha of a nonzero element.
    ///
    /// Returns `None` for zero, which has no logarithm.
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(tables().log[self.0 as usize])
        }
    }

    /// The multiplicative inverse, or `None` for zero.
    pub fn inv(self) -> Option<Gf256> {
        if self.0 == 0 {
            return None;
        }
        let t = tables();
        Some(Gf256(t.exp[ORDER - t.log[self.0 as usize] as usize]))
    }

    /// `self` raised to the power `e`.
    pub fn pow(self, e: u64) -> Gf256 {
        if self.0 == 0 {
            return if e == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let t = tables();
        let l = t.log[self.0 as usize] as u64;
        Gf256(t.exp[((l * (e % ORDER as u64)) % ORDER as u64) as usize])
    }

    /// Whether this is the zero element.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The raw byte representation.
    pub fn to_byte(self) -> u8 {
        self.0
    }
}

impl From<u8> for Gf256 {
    fn from(b: u8) -> Self {
        Gf256(b)
    }
}

impl From<Gf256> for u8 {
    fn from(g: Gf256) -> Self {
        g.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // Addition in GF(2^8) IS carry-less XOR; clippy's "suspicious
    // arithmetic" heuristic does not apply to characteristic-2 fields.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self // characteristic 2: -x == x
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let t = tables();
        Gf256(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;

    /// # Panics
    ///
    /// Panics when dividing by zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inv().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            let ga = Gf256(a);
            assert_eq!(ga + ga, Gf256::ZERO);
            assert_eq!(ga - ga, Gf256::ZERO);
            assert_eq!(-ga, ga);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            let ga = Gf256(a);
            assert_eq!(ga * Gf256::ONE, ga);
            assert_eq!(ga * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let ga = Gf256(a);
            assert_eq!(ga * ga.inv().unwrap(), Gf256::ONE);
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    fn mul_is_commutative_and_associative_spot() {
        let xs = [0u8, 1, 2, 3, 0x1D, 0x80, 0xFF, 0x53, 0xCA];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
                for &c in &xs {
                    assert_eq!(
                        (Gf256(a) * Gf256(b)) * Gf256(c),
                        Gf256(a) * (Gf256(b) * Gf256(c))
                    );
                }
            }
        }
    }

    #[test]
    fn distributivity_exhaustive_slice() {
        for a in 0..=255u8 {
            let (b, c) = (Gf256(0x35), Gf256(0xA7));
            let ga = Gf256(a);
            assert_eq!(ga * (b + c), ga * b + ga * c);
        }
    }

    #[test]
    fn known_vector_aes_field_differs() {
        // 0x53 * 0xCA = 0x01 in the AES field (0x11B); in 0x11D it must not.
        // Known 0x11D vectors: alpha^8 = 0x1D.
        assert_eq!(Gf256::alpha_pow(8), Gf256(0x1D));
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Gf256(0x37);
        let mut acc = Gf256::ONE;
        for e in 0..600u64 {
            assert_eq!(g.pow(e), acc, "e={e}");
            acc *= g;
        }
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf256(5) / Gf256::ZERO;
    }

    #[test]
    fn formatting() {
        let g = Gf256(0x1D);
        assert_eq!(format!("{g}"), "0x1d");
        assert_eq!(format!("{g:x}"), "1d");
        assert_eq!(format!("{g:b}"), "11101");
        assert_eq!(format!("{g:?}"), "Gf256(0x1d)");
    }
}
