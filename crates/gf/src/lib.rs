//! Finite-field arithmetic for the pmck error-correction stack.
//!
//! This crate provides the algebraic substrate shared by the BCH and
//! Reed-Solomon codecs:
//!
//! * [`Gf2m`] — a runtime-parameterized binary extension field GF(2^m)
//!   (3 ≤ m ≤ 16) backed by log/antilog tables. The BCH codec uses
//!   GF(2^10), GF(2^12) and GF(2^13) instances.
//! * [`Gf256`] — the byte field GF(2^8) with the `0x11D` reduction
//!   polynomial, used by the per-block Reed-Solomon code. Elements are the
//!   newtype [`Gf256`] with the usual operator overloads.
//! * [`FieldPoly`] — dense polynomials with coefficients in a [`Gf2m`]
//!   field (error locators, evaluators, generator polynomials).
//! * [`BitPoly`] — bit-packed polynomials over GF(2) (codewords and
//!   generator polynomials of binary BCH codes).
//! * [`SyndromeRows`] — precomputed multiply-by-`alpha^j` row tables that
//!   turn syndrome evaluation over byte fields into branch-free table
//!   lookups (the RS hot-path kernel).
//!
//! # Examples
//!
//! ```
//! use pmck_gf::{Gf2m, Gf256};
//!
//! let field = Gf2m::new(12).unwrap();
//! let a = field.alpha_pow(5);
//! let b = field.inv(a).unwrap();
//! assert_eq!(field.mul(a, b), 1);
//!
//! let x = Gf256::from(0x53u8);
//! let y = Gf256::from(0xCAu8);
//! assert_eq!(x * y / y, x);
//! ```

mod binpoly;
mod field;
mod gf256;
mod poly;
mod primitive;
mod syndrome;

pub use binpoly::BitPoly;
pub use field::{Gf2m, GfError};
pub use gf256::Gf256;
pub use poly::FieldPoly;
pub use primitive::default_primitive_poly;
pub use syndrome::SyndromeRows;
