//! Dense polynomials with coefficients in a [`Gf2m`] field.

use std::fmt;

use crate::field::Gf2m;

/// A polynomial over a [`Gf2m`] field, stored dense with `coeffs[i]` the
/// coefficient of `x^i`. The zero polynomial has an empty coefficient vector.
///
/// Used by the BCH and RS decoders for error locator/evaluator polynomials
/// and generator-polynomial construction.
///
/// # Examples
///
/// ```
/// use pmck_gf::{FieldPoly, Gf2m};
///
/// let f = Gf2m::new(8).unwrap();
/// // (x + 1)(x + 2) = x^2 + 3x + 2 over GF(256)
/// let p = FieldPoly::from_coeffs(&f, vec![1, 1]);
/// let q = FieldPoly::from_coeffs(&f, vec![2, 1]);
/// let prod = p.mul(&q);
/// assert_eq!(prod.coeffs(), &[2, 3, 1]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct FieldPoly {
    field: Gf2m,
    coeffs: Vec<u32>,
}

impl fmt::Debug for FieldPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "FieldPoly(0)");
        }
        write!(f, "FieldPoly(")?;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if *c != 0 {
                write!(f, "{c}·x^{i} ")?;
            }
        }
        write!(f, ")")
    }
}

impl FieldPoly {
    /// The zero polynomial over `field`.
    pub fn zero(field: &Gf2m) -> Self {
        FieldPoly {
            field: field.clone(),
            coeffs: Vec::new(),
        }
    }

    /// The constant polynomial `1`.
    pub fn one(field: &Gf2m) -> Self {
        FieldPoly {
            field: field.clone(),
            coeffs: vec![1],
        }
    }

    /// Builds a polynomial from coefficients (`coeffs[i]` multiplies `x^i`),
    /// trimming leading zeros.
    pub fn from_coeffs(field: &Gf2m, mut coeffs: Vec<u32>) -> Self {
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        FieldPoly {
            field: field.clone(),
            coeffs,
        }
    }

    /// The monomial `c·x^d`.
    pub fn monomial(field: &Gf2m, c: u32, d: usize) -> Self {
        if c == 0 {
            return Self::zero(field);
        }
        let mut coeffs = vec![0; d + 1];
        coeffs[d] = c;
        FieldPoly {
            field: field.clone(),
            coeffs,
        }
    }

    /// The coefficient slice (index = degree). Empty for the zero polynomial.
    pub fn coeffs(&self) -> &[u32] {
        &self.coeffs
    }

    /// The coefficient of `x^i` (zero beyond the stored degree).
    pub fn coeff(&self, i: usize) -> u32 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The underlying field.
    pub fn field(&self) -> &Gf2m {
        &self.field
    }

    /// Polynomial addition (XOR of coefficients).
    pub fn add(&self, other: &FieldPoly) -> FieldPoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u32; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.coeff(i) ^ other.coeff(i);
        }
        FieldPoly::from_coeffs(&self.field, out)
    }

    /// Polynomial multiplication (schoolbook).
    pub fn mul(&self, other: &FieldPoly) -> FieldPoly {
        if self.is_zero() || other.is_zero() {
            return FieldPoly::zero(&self.field);
        }
        let mut out = vec![0u32; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] ^= self.field.mul(a, b);
            }
        }
        FieldPoly::from_coeffs(&self.field, out)
    }

    /// Multiplies every coefficient by the scalar `c`.
    pub fn scale(&self, c: u32) -> FieldPoly {
        let coeffs = self.coeffs.iter().map(|&a| self.field.mul(a, c)).collect();
        FieldPoly::from_coeffs(&self.field, coeffs)
    }

    /// Multiplies by `x^d` (degree shift).
    pub fn shift(&self, d: usize) -> FieldPoly {
        if self.is_zero() {
            return self.clone();
        }
        let mut coeffs = vec![0u32; d];
        coeffs.extend_from_slice(&self.coeffs);
        FieldPoly::from_coeffs(&self.field, coeffs)
    }

    /// Truncates to terms of degree `< n` (i.e. reduces modulo `x^n`).
    pub fn truncate(&self, n: usize) -> FieldPoly {
        let coeffs = self.coeffs.iter().take(n).copied().collect();
        FieldPoly::from_coeffs(&self.field, coeffs)
    }

    /// Evaluates the polynomial at `x` via Horner's rule.
    pub fn eval(&self, x: u32) -> u32 {
        self.field.eval_poly(&self.coeffs, x)
    }

    /// The formal derivative. Over GF(2^m) even-power terms vanish:
    /// `d/dx Σ c_i x^i = Σ_{i odd} c_i x^{i-1}`.
    pub fn derivative(&self) -> FieldPoly {
        if self.coeffs.len() <= 1 {
            return FieldPoly::zero(&self.field);
        }
        let mut out = vec![0u32; self.coeffs.len() - 1];
        for (i, o) in out.iter_mut().enumerate() {
            if i % 2 == 0 {
                *o = self.coeff(i + 1);
            }
        }
        FieldPoly::from_coeffs(&self.field, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Gf2m {
        Gf2m::new(8).unwrap()
    }

    #[test]
    fn zero_and_one() {
        let f = f();
        let z = FieldPoly::zero(&f);
        let o = FieldPoly::one(&f);
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(o.degree(), Some(0));
        assert_eq!(o.mul(&o).coeffs(), &[1]);
        assert_eq!(z.mul(&o), z);
        assert_eq!(z.add(&o), o);
    }

    #[test]
    fn trims_leading_zeros() {
        let f = f();
        let p = FieldPoly::from_coeffs(&f, vec![1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1, 2]);
    }

    #[test]
    fn add_is_self_inverse() {
        let f = f();
        let p = FieldPoly::from_coeffs(&f, vec![3, 1, 4, 1, 5]);
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn mul_roots_product() {
        let f = f();
        // prod (x - alpha^i) for i in 0..4 must vanish exactly at those roots.
        let mut g = FieldPoly::one(&f);
        for i in 0..4u64 {
            let root = f.alpha_pow(i);
            g = g.mul(&FieldPoly::from_coeffs(&f, vec![root, 1]));
        }
        assert_eq!(g.degree(), Some(4));
        for i in 0..8u64 {
            let v = g.eval(f.alpha_pow(i));
            if i < 4 {
                assert_eq!(v, 0, "root alpha^{i}");
            } else {
                assert_ne!(v, 0, "non-root alpha^{i}");
            }
        }
    }

    #[test]
    fn shift_and_truncate() {
        let f = f();
        let p = FieldPoly::from_coeffs(&f, vec![1, 2, 3]);
        let s = p.shift(2);
        assert_eq!(s.coeffs(), &[0, 0, 1, 2, 3]);
        assert_eq!(s.truncate(3).coeffs(), &[0, 0, 1]);
        assert!(s.truncate(0).is_zero());
    }

    #[test]
    fn derivative_drops_even_terms() {
        let f = f();
        // p = c0 + c1 x + c2 x^2 + c3 x^3 → p' = c1 + c3 x^2 (char 2).
        let p = FieldPoly::from_coeffs(&f, vec![7, 9, 11, 13]);
        assert_eq!(p.derivative().coeffs(), &[9, 0, 13]);
        assert!(FieldPoly::one(&f).derivative().is_zero());
    }

    #[test]
    fn scale_distributes() {
        let f = f();
        let p = FieldPoly::from_coeffs(&f, vec![1, 2, 3]);
        let q = FieldPoly::from_coeffs(&f, vec![5, 6]);
        let c = 0x35;
        let lhs = p.add(&q).scale(c);
        let rhs = p.scale(c).add(&q.scale(c));
        assert_eq!(lhs, rhs);
    }
}
