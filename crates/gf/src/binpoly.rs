//! Bit-packed polynomials over GF(2).
//!
//! [`BitPoly`] doubles as the codeword container for binary BCH codes: bit
//! `i` is the coefficient of `x^i`.

use std::fmt;

/// A polynomial over GF(2), bit-packed into `u64` limbs (bit `i` of the
/// logical bit string is the coefficient of `x^i`).
///
/// `BitPoly` is used both for BCH generator polynomials and as the
/// bit-addressable codeword buffer of BCH encode/decode operations.
///
/// # Examples
///
/// ```
/// use pmck_gf::BitPoly;
///
/// // x^3 + x + 1
/// let mut p = BitPoly::zero(4);
/// p.set(0, true);
/// p.set(1, true);
/// p.set(3, true);
/// assert_eq!(p.degree(), Some(3));
/// assert_eq!(p.count_ones(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitPoly {
    bits: Vec<u64>,
    len: usize,
}

impl fmt::Debug for BitPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitPoly(len={}, ones={})", self.len, self.count_ones())
    }
}

impl BitPoly {
    /// An all-zero bit string of logical length `len`.
    pub fn zero(len: usize) -> Self {
        BitPoly {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from an integer: bit `i` of `v` becomes the coefficient of
    /// `x^i`. Length is `max(len, 1)` where `len` covers all set bits.
    pub fn from_u64(v: u64, len: usize) -> Self {
        let needed = (64 - v.leading_zeros()) as usize;
        let len = len.max(needed).max(1);
        let mut p = BitPoly::zero(len);
        if !p.bits.is_empty() {
            p.bits[0] = v;
        }
        p
    }

    /// Builds from bytes in little-endian bit order: bit `j` of `bytes[i]`
    /// is the coefficient of `x^(8*i + j)`. Logical length is
    /// `8 * bytes.len()`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut p = BitPoly::zero(bytes.len() * 8);
        for (i, &b) in bytes.iter().enumerate() {
            let limb = i / 8;
            let shift = (i % 8) * 8;
            p.bits[limb] |= (b as u64) << shift;
        }
        p
    }

    /// Serializes to bytes (inverse of [`BitPoly::from_bytes`]); the length
    /// is rounded up to whole bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len.div_ceil(8);
        let mut out = vec![0u8; n];
        for (i, o) in out.iter_mut().enumerate() {
            let limb = i / 8;
            let shift = (i % 8) * 8;
            *o = (self.bits[limb] >> shift) as u8;
        }
        out
    }

    /// The logical length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The raw little-endian `u64` limbs (bit `i` of the polynomial is
    /// bit `i % 64` of `limbs()[i / 64]`). Bits at or beyond
    /// [`BitPoly::len`] in the last limb are always zero, so lane-sliced
    /// kernels may consume whole limbs without masking.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.bits
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Overwrites `self` with `src`'s bits without reallocating — the
    /// allocation-free counterpart of `clone_from` for hot loops that
    /// reuse one buffer across iterations.
    ///
    /// # Panics
    ///
    /// Panics if the logical lengths differ.
    #[inline]
    pub fn copy_from(&mut self, src: &BitPoly) {
        assert_eq!(self.len, src.len, "copy_from length mismatch");
        self.bits.copy_from_slice(&src.bits);
    }

    /// Overwrites the bit range `[offset, offset + 8·bytes.len())` with
    /// `bytes` in little-endian bit order (as [`BitPoly::from_bytes`])
    /// without allocating — the in-place counterpart of building a
    /// temporary `from_bytes` polynomial and [`BitPoly::splice`]-ing it in.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not byte-aligned or the range runs past the
    /// logical length.
    pub fn splice_bytes(&mut self, offset: usize, bytes: &[u8]) {
        assert_eq!(offset % 8, 0, "splice_bytes offset must be byte-aligned");
        assert!(
            offset + bytes.len() * 8 <= self.len,
            "splice_bytes range out of bounds"
        );
        for (i, &b) in bytes.iter().enumerate() {
            let bit = offset + i * 8;
            let limb = bit / 64;
            let shift = bit % 64;
            self.bits[limb] = (self.bits[limb] & !(0xFFu64 << shift)) | ((b as u64) << shift);
        }
    }

    /// Copies the bit range `[offset, offset + 8·out.len())` into `out` in
    /// little-endian bit order — the allocation-free inverse of
    /// [`BitPoly::splice_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not byte-aligned or the range runs past the
    /// logical length.
    pub fn extract_bytes(&self, offset: usize, out: &mut [u8]) {
        assert_eq!(offset % 8, 0, "extract_bytes offset must be byte-aligned");
        assert!(
            offset + out.len() * 8 <= self.len,
            "extract_bytes range out of bounds"
        );
        for (i, o) in out.iter_mut().enumerate() {
            let bit = offset + i * 8;
            *o = (self.bits[bit / 64] >> (bit % 64)) as u8;
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bits[i / 64] ^= 1u64 << (i % 64);
    }

    /// The number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// The degree (index of the highest set bit), or `None` if zero.
    pub fn degree(&self) -> Option<usize> {
        for (i, limb) in self.bits.iter().enumerate().rev() {
            if *limb != 0 {
                return Some(i * 64 + 63 - limb.leading_zeros() as usize);
            }
        }
        None
    }

    /// Whether all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&l| l == 0)
    }

    /// XORs `other` into `self` (lengths need not match; the shorter operand
    /// is implicitly zero-extended, and `self` keeps its length — callers
    /// must ensure `other` fits).
    ///
    /// # Panics
    ///
    /// Panics if `other` has set bits beyond `self.len()`.
    pub fn xor_assign(&mut self, other: &BitPoly) {
        if let Some(d) = other.degree() {
            assert!(d < self.len, "xor operand exceeds target length");
        }
        for (i, limb) in other.bits.iter().enumerate() {
            if i < self.bits.len() {
                self.bits[i] ^= limb;
            }
        }
    }

    /// XORs `other << shift_bits` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shifted operand would exceed `self.len()`.
    pub fn xor_shifted(&mut self, other: &BitPoly, shift_bits: usize) {
        if let Some(d) = other.degree() {
            assert!(
                d + shift_bits < self.len,
                "shifted xor operand exceeds target length"
            );
        } else {
            return;
        }
        let limb_shift = shift_bits / 64;
        let bit_shift = shift_bits % 64;
        for (i, &limb) in other.bits.iter().enumerate() {
            if limb == 0 {
                continue;
            }
            let lo = i + limb_shift;
            if lo < self.bits.len() {
                self.bits[lo] ^= limb << bit_shift;
            }
            if bit_shift != 0 {
                let hi = lo + 1;
                if hi < self.bits.len() {
                    self.bits[hi] ^= limb >> (64 - bit_shift);
                }
            }
        }
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(i, &limb)| {
            let mut l = limb;
            std::iter::from_fn(move || {
                if l == 0 {
                    return None;
                }
                let tz = l.trailing_zeros() as usize;
                l &= l - 1;
                Some(i * 64 + tz)
            })
        })
    }

    /// Carry-less (GF(2)) polynomial multiplication.
    pub fn clmul(&self, other: &BitPoly) -> BitPoly {
        let (da, db) = match (self.degree(), other.degree()) {
            (Some(a), Some(b)) => (a, b),
            _ => return BitPoly::zero(1),
        };
        let mut out = BitPoly::zero(da + db + 1);
        for i in self.iter_ones() {
            out.xor_shifted(other, i);
        }
        out
    }

    /// Remainder of `self` modulo `divisor` (GF(2) polynomial division).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn rem(&self, divisor: &BitPoly) -> BitPoly {
        let dd = divisor.degree().expect("division by zero polynomial");
        let mut r = self.clone();
        loop {
            let dr = match r.degree() {
                Some(d) if d >= dd => d,
                _ => break,
            };
            r.xor_shifted_unchecked(divisor, dr - dd);
        }
        let mut out = BitPoly::zero(dd.max(1));
        for i in r.iter_ones() {
            out.set(i, true);
        }
        out
    }

    fn xor_shifted_unchecked(&mut self, other: &BitPoly, shift_bits: usize) {
        let limb_shift = shift_bits / 64;
        let bit_shift = shift_bits % 64;
        for (i, &limb) in other.bits.iter().enumerate() {
            if limb == 0 {
                continue;
            }
            let lo = i + limb_shift;
            if lo < self.bits.len() {
                self.bits[lo] ^= limb << bit_shift;
            }
            if bit_shift != 0 {
                let hi = lo + 1;
                if hi < self.bits.len() {
                    self.bits[hi] ^= limb >> (64 - bit_shift);
                }
            }
        }
    }

    /// Extracts the bit range `[start, start+len)` as a new `BitPoly` of
    /// length `len`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `self.len()`.
    pub fn slice(&self, start: usize, len: usize) -> BitPoly {
        assert!(start + len <= self.len, "slice out of range");
        let mut out = BitPoly::zero(len.max(1));
        for i in 0..len {
            if self.get(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Copies `src` into the bit range starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `self.len()`.
    pub fn splice(&mut self, start: usize, src: &BitPoly) {
        assert!(start + src.len() <= self.len, "splice out of range");
        for i in 0..src.len() {
            self.set(start + i, src.get(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut p = BitPoly::zero(130);
        assert!(!p.get(0));
        p.set(0, true);
        p.set(64, true);
        p.set(129, true);
        assert!(p.get(0) && p.get(64) && p.get(129));
        assert_eq!(p.count_ones(), 3);
        p.flip(64);
        assert!(!p.get(64));
        assert_eq!(p.degree(), Some(129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = BitPoly::zero(8);
        let _ = p.get(8);
    }

    #[test]
    fn splice_and_extract_bytes_match_from_to_bytes() {
        // splice_bytes at a byte-aligned offset must agree with the
        // allocating splice(from_bytes(..)) path, and extract_bytes must
        // invert it.
        let mut p = BitPoly::from_bytes(&[0xFFu8; 9]); // 72 bits, all ones
        let payload = [0xDEu8, 0xAD, 0xBE, 0xEF];
        p.splice_bytes(24, &payload);
        let mut q = BitPoly::from_bytes(&[0xFFu8; 9]);
        q.splice(24, &BitPoly::from_bytes(&payload));
        assert_eq!(p.to_bytes(), q.to_bytes());
        let mut got = [0u8; 4];
        p.extract_bytes(24, &mut got);
        assert_eq!(got, payload);
        // Bits outside the spliced range are untouched.
        let mut edges = [0u8; 3];
        p.extract_bytes(0, &mut edges);
        assert_eq!(edges, [0xFF; 3]);
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let src = BitPoly::from_bytes(&[0x12u8, 0x34, 0x56]);
        let mut dst = BitPoly::zero(24);
        dst.copy_from(&src);
        assert_eq!(dst.to_bytes(), src.to_bytes());
    }

    #[test]
    #[should_panic(expected = "byte-aligned")]
    fn splice_bytes_rejects_unaligned_offset() {
        let mut p = BitPoly::zero(32);
        p.splice_bytes(3, &[0xAA]);
    }

    #[test]
    fn bytes_round_trip() {
        let bytes = [0xDEu8, 0xAD, 0xBE, 0xEF, 0x01];
        let p = BitPoly::from_bytes(&bytes);
        assert_eq!(p.len(), 40);
        assert_eq!(p.to_bytes(), bytes);
        // bit 1 of byte 0 (0xDE = 1101_1110): bit0=0, bit1=1
        assert!(!p.get(0));
        assert!(p.get(1));
    }

    #[test]
    fn from_u64_and_degree() {
        // 0x11D = x^8 + x^4 + x^3 + x^2 + 1: five terms.
        let p = BitPoly::from_u64(0x11D, 0);
        assert_eq!(p.degree(), Some(8));
        assert_eq!(p.count_ones(), 5);
        let z = BitPoly::from_u64(0, 0);
        assert_eq!(z.degree(), None);
        assert!(z.is_zero());
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut p = BitPoly::zero(200);
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idxs {
            p.set(i, true);
        }
        let got: Vec<usize> = p.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn clmul_known() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)
        let p = BitPoly::from_u64(0b11, 0);
        let sq = p.clmul(&p);
        assert_eq!(sq.degree(), Some(2));
        assert!(sq.get(0) && !sq.get(1) && sq.get(2));
    }

    #[test]
    fn rem_known() {
        // x^8 mod (x^8+x^4+x^3+x^2+1) = x^4+x^3+x^2+1 = 0x1D
        let x8 = BitPoly::from_u64(1 << 8, 0);
        let m = BitPoly::from_u64(0x11D, 0);
        let r = x8.rem(&m);
        let mut v = 0u64;
        for i in r.iter_ones() {
            v |= 1 << i;
        }
        assert_eq!(v, 0x1D);
    }

    #[test]
    fn rem_of_multiple_is_zero() {
        let g = BitPoly::from_u64(0b1011, 0); // x^3+x+1
        let q = BitPoly::from_u64(0b1101, 0);
        let prod = g.clmul(&q);
        assert!(prod.rem(&g).is_zero());
    }

    #[test]
    fn xor_shifted_cross_limb() {
        let mut a = BitPoly::zero(130);
        let b = BitPoly::from_u64(u64::MAX, 64);
        a.xor_shifted(&b, 60);
        let expected: Vec<usize> = (60..124).collect();
        let got: Vec<usize> = a.iter_ones().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn slice_splice_round_trip() {
        let mut p = BitPoly::zero(100);
        for i in (0..100).step_by(7) {
            p.set(i, true);
        }
        let s = p.slice(10, 50);
        let mut q = BitPoly::zero(100);
        q.splice(10, &s);
        for i in 10..60 {
            assert_eq!(p.get(i), q.get(i), "bit {i}");
        }
    }
}
