//! Precomputed multiplier row tables for syndrome evaluation over byte
//! fields (m ≤ 8).
//!
//! Horner evaluation of `R(alpha^j)` costs one field multiply per
//! codeword byte; through [`Gf2m::mul`] each multiply is two table
//! lookups plus two zero checks behind an `Arc` deref. For a fixed code
//! the Horner multiplier `alpha^j` never changes, so the whole multiply
//! collapses to a single 256-entry row lookup: `acc = row_j[acc] ^ byte`.
//! [`SyndromeRows`] builds one row per syndrome at construction time and
//! evaluates all `r` syndromes of a word with `r·n` branch-free lookups
//! and zero heap allocations.

use crate::field::Gf2m;
use crate::gf256::Gf256;

/// Per-syndrome multiply-by-`alpha^j` row tables for a code over a byte
/// field: `rows[j-1][v] = v · alpha^j` for `j = 1..=r`.
///
/// # Examples
///
/// ```
/// use pmck_gf::{Gf2m, SyndromeRows};
///
/// let f = Gf2m::new(8).unwrap();
/// let rows = SyndromeRows::new(&f, 4);
/// let word = [0x12u8, 0x34, 0x56];
/// let mut s = [0u32; 4];
/// rows.syndromes_into(&word, &mut s);
/// for j in 1..=4u64 {
///     assert_eq!(s[(j - 1) as usize], {
///         let x = f.alpha_pow(j);
///         let mut acc = 0;
///         for &b in word.iter().rev() {
///             acc = f.mul(acc, x) ^ b as u32;
///         }
///         acc
///     });
/// }
/// ```
#[derive(Clone)]
pub struct SyndromeRows {
    rows: Vec<[u8; 256]>,
}

impl std::fmt::Debug for SyndromeRows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyndromeRows")
            .field("r", &self.rows.len())
            .finish()
    }
}

impl SyndromeRows {
    /// Builds the `r` row tables for syndromes `S_1 .. S_r` of a code
    /// over `field`.
    ///
    /// # Panics
    ///
    /// Panics if the field degree exceeds 8 (symbols must be bytes).
    pub fn new(field: &Gf2m, r: usize) -> Self {
        assert!(
            field.degree() <= 8,
            "SyndromeRows requires a byte field (m <= 8), got m = {}",
            field.degree()
        );
        let size = field.size() as usize;
        let rows = (1..=r as u64)
            .map(|j| {
                let x = field.alpha_pow(j);
                let mut row = [0u8; 256];
                // Entries beyond the field size are unreachable from
                // valid symbols and stay zero.
                for (v, e) in row.iter_mut().enumerate().take(size) {
                    *e = field.mul(v as u32, x) as u8;
                }
                row
            })
            .collect();
        SyndromeRows { rows }
    }

    /// Builds the row tables for the fixed byte field [`Gf256`]
    /// (reduction polynomial `0x11D`, the per-block RS field).
    pub fn gf256(r: usize) -> Self {
        let rows = (1..=r as u64)
            .map(|j| {
                let x = Gf256::alpha_pow(j);
                let mut row = [0u8; 256];
                for (v, e) in row.iter_mut().enumerate() {
                    *e = (Gf256(v as u8) * x).to_byte();
                }
                row
            })
            .collect();
        SyndromeRows { rows }
    }

    /// The number of syndromes covered, `r`.
    pub fn count(&self) -> usize {
        self.rows.len()
    }

    /// The multiply-by-`alpha^j` row, `j = 1..=r` (1-indexed like the
    /// syndromes themselves).
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `1..=r`.
    pub fn row(&self, j: usize) -> &[u8; 256] {
        &self.rows[j - 1]
    }

    /// Evaluates `out[j-1] = word(alpha^j)` for `j = 1..=out.len()` via
    /// table-driven Horner. Returns `true` when every syndrome is zero
    /// (the word is a codeword), letting callers fast-path the clean
    /// case without a second scan.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() > r`.
    pub fn syndromes_into(&self, word: &[u8], out: &mut [u32]) -> bool {
        assert!(out.len() <= self.rows.len(), "more syndromes than rows");
        let mut nonzero = 0u32;
        for (j, slot) in out.iter_mut().enumerate() {
            let row = &self.rows[j];
            let mut acc = 0u8;
            for &b in word.iter().rev() {
                acc = row[acc as usize] ^ b;
            }
            *slot = acc as u32;
            nonzero |= acc as u32;
        }
        nonzero == 0
    }

    /// Whether every syndrome of `word` is zero, returning early on the
    /// first nonzero syndrome. Allocation-free.
    pub fn is_codeword(&self, word: &[u8]) -> bool {
        self.rows.iter().all(|row| {
            let mut acc = 0u8;
            for &b in word.iter().rev() {
                acc = row[acc as usize] ^ b;
            }
            acc == 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference Horner through the generic field multiply.
    fn slow_syndrome(f: &Gf2m, word: &[u8], j: u64) -> u32 {
        let x = f.alpha_pow(j);
        let mut acc = 0u32;
        for &b in word.iter().rev() {
            acc = f.mul(acc, x) ^ b as u32;
        }
        acc
    }

    #[test]
    fn rows_match_field_multiply() {
        let f = Gf2m::new(8).unwrap();
        let rows = SyndromeRows::new(&f, 8);
        for j in 1..=8usize {
            let x = f.alpha_pow(j as u64);
            let row = rows.row(j);
            for v in 0..256u32 {
                assert_eq!(row[v as usize] as u32, f.mul(v, x), "j={j} v={v}");
            }
        }
    }

    #[test]
    fn syndromes_match_generic_horner() {
        let f = Gf2m::new(8).unwrap();
        let rows = SyndromeRows::new(&f, 8);
        let word: Vec<u8> = (0..72).map(|i| (i * 37 + 5) as u8).collect();
        let mut s = [0u32; 8];
        let clean = rows.syndromes_into(&word, &mut s);
        assert!(!clean);
        for j in 1..=8u64 {
            assert_eq!(s[(j - 1) as usize], slow_syndrome(&f, &word, j), "j={j}");
        }
    }

    #[test]
    fn gf256_rows_agree_with_gf2m_default_poly() {
        // Gf256 and Gf2m::new(8) share the 0x11D reduction polynomial,
        // so their row tables must be identical.
        let f = Gf2m::new(8).unwrap();
        let a = SyndromeRows::new(&f, 6);
        let b = SyndromeRows::gf256(6);
        for j in 1..=6 {
            assert_eq!(a.row(j)[..], b.row(j)[..], "j={j}");
        }
    }

    #[test]
    fn zero_word_is_codeword() {
        let rows = SyndromeRows::gf256(8);
        let word = [0u8; 72];
        let mut s = [0u32; 8];
        assert!(rows.syndromes_into(&word, &mut s));
        assert_eq!(s, [0u32; 8]);
        assert!(rows.is_codeword(&word));
        let mut dirty = word;
        dirty[13] = 1;
        assert!(!rows.is_codeword(&dirty));
    }

    #[test]
    fn smaller_field_supported() {
        let f = Gf2m::new(4).unwrap();
        let rows = SyndromeRows::new(&f, 3);
        let word: Vec<u8> = vec![0x3, 0x7, 0xC, 0x1];
        let mut s = [0u32; 3];
        rows.syndromes_into(&word, &mut s);
        for j in 1..=3u64 {
            assert_eq!(s[(j - 1) as usize], slow_syndrome(&f, &word, j), "j={j}");
        }
    }

    #[test]
    #[should_panic(expected = "byte field")]
    fn wide_field_rejected() {
        let f = Gf2m::new(12).unwrap();
        let _ = SyndromeRows::new(&f, 2);
    }
}
