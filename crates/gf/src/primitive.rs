//! Default primitive polynomials for GF(2^m).

/// Returns a conventional primitive polynomial for GF(2^m), encoded with the
/// leading term included (e.g. `x^8 + x^4 + x^3 + x^2 + 1` is `0x11D`).
///
/// These are the polynomials used throughout the coding-theory literature
/// (Lin & Costello, Appendix B) and by commercial Flash/DRAM ECC engines.
///
/// Returns `None` if `m` is outside the supported range `3..=16`.
///
/// # Examples
///
/// ```
/// assert_eq!(pmck_gf::default_primitive_poly(8), Some(0x11D));
/// assert_eq!(pmck_gf::default_primitive_poly(2), None);
/// ```
pub fn default_primitive_poly(m: u32) -> Option<u32> {
    Some(match m {
        3 => 0b1011,   // x^3 + x + 1
        4 => 0x13,     // x^4 + x + 1
        5 => 0x25,     // x^5 + x^2 + 1
        6 => 0x43,     // x^6 + x + 1
        7 => 0x89,     // x^7 + x^3 + 1
        8 => 0x11D,    // x^8 + x^4 + x^3 + x^2 + 1
        9 => 0x211,    // x^9 + x^4 + 1
        10 => 0x409,   // x^10 + x^3 + 1
        11 => 0x805,   // x^11 + x^2 + 1
        12 => 0x1053,  // x^12 + x^6 + x^4 + x + 1
        13 => 0x201B,  // x^13 + x^4 + x^3 + x + 1
        14 => 0x4443,  // x^14 + x^10 + x^6 + x + 1
        15 => 0x8003,  // x^15 + x + 1
        16 => 0x1100B, // x^16 + x^12 + x^3 + x + 1
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_range() {
        for m in 3..=16 {
            let p = default_primitive_poly(m).expect("supported m");
            // Leading term must be x^m.
            assert_eq!(32 - p.leading_zeros() - 1, m, "degree for m={m}");
            // Constant term must be 1 for a primitive polynomial.
            assert_eq!(p & 1, 1, "constant term for m={m}");
        }
    }

    #[test]
    fn unsupported_range() {
        assert_eq!(default_primitive_poly(0), None);
        assert_eq!(default_primitive_poly(1), None);
        assert_eq!(default_primitive_poly(2), None);
        assert_eq!(default_primitive_poly(17), None);
    }
}
