//! Runtime-parameterized binary extension fields GF(2^m).

use std::fmt;
use std::sync::Arc;

use crate::primitive::default_primitive_poly;

/// Errors produced when constructing or operating on a [`Gf2m`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GfError {
    /// The requested extension degree is outside `3..=16`.
    UnsupportedDegree(u32),
    /// The supplied reduction polynomial is not primitive over GF(2^m)
    /// (its powers of `x` do not enumerate all nonzero field elements).
    NotPrimitive(u32),
    /// Division or inversion of the zero element was attempted.
    DivisionByZero,
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedDegree(m) => {
                write!(f, "unsupported extension degree m={m} (supported: 3..=16)")
            }
            GfError::NotPrimitive(p) => {
                write!(f, "polynomial {p:#x} is not primitive")
            }
            GfError::DivisionByZero => write!(f, "division by zero field element"),
        }
    }
}

impl std::error::Error for GfError {}

/// The finite field GF(2^m) for `3 <= m <= 16`.
///
/// Elements are represented as `u32` values in `0..2^m`, interpreted as
/// polynomials over GF(2) modulo a primitive polynomial. Multiplication and
/// inversion use log/antilog tables built at construction time, so a `Gf2m`
/// instance is cheap to clone (the tables live behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use pmck_gf::Gf2m;
///
/// let f = Gf2m::new(10).unwrap();
/// assert_eq!(f.size(), 1024);
/// assert_eq!(f.mul(0, 7), 0);
/// let a = f.alpha_pow(3);
/// assert_eq!(f.mul(a, f.alpha_pow(4)), f.alpha_pow(7));
/// ```
#[derive(Clone)]
pub struct Gf2m {
    m: u32,
    poly: u32,
    /// `exp[i] = alpha^i` for `i in 0..2*(q-1)` (doubled to skip a mod).
    exp: Arc<[u32]>,
    /// `log[x] = i` such that `alpha^i = x`; `log[0]` is unused (set to 0).
    log: Arc<[u32]>,
}

impl fmt::Debug for Gf2m {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gf2m")
            .field("m", &self.m)
            .field("poly", &format_args!("{:#x}", self.poly))
            .finish()
    }
}

impl PartialEq for Gf2m {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && self.poly == other.poly
    }
}

impl Eq for Gf2m {}

impl Gf2m {
    /// Constructs GF(2^m) using the conventional primitive polynomial for
    /// `m` (see [`default_primitive_poly`]).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedDegree`] when `m` is outside `3..=16`.
    pub fn new(m: u32) -> Result<Self, GfError> {
        let poly = default_primitive_poly(m).ok_or(GfError::UnsupportedDegree(m))?;
        Self::with_poly(m, poly)
    }

    /// Constructs GF(2^m) with an explicit reduction polynomial `poly`
    /// (leading term included).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedDegree`] for `m` outside `3..=16` and
    /// [`GfError::NotPrimitive`] if `poly` does not generate the full
    /// multiplicative group.
    pub fn with_poly(m: u32, poly: u32) -> Result<Self, GfError> {
        if !(3..=16).contains(&m) {
            return Err(GfError::UnsupportedDegree(m));
        }
        let q = 1u32 << m;
        let order = (q - 1) as usize;
        let mut exp = vec![0u32; 2 * order];
        let mut log = vec![0u32; q as usize];
        let mut x = 1u32;
        for (i, e) in exp.iter_mut().take(order).enumerate() {
            *e = x;
            if x == 1 && i != 0 {
                // Cycle shorter than q-1: not primitive.
                return Err(GfError::NotPrimitive(poly));
            }
            log[x as usize] = i as u32;
            x <<= 1;
            if x & q != 0 {
                x ^= poly;
            }
        }
        if x != 1 {
            return Err(GfError::NotPrimitive(poly));
        }
        for i in 0..order {
            exp[order + i] = exp[i];
        }
        Ok(Gf2m {
            m,
            poly,
            exp: exp.into(),
            log: log.into(),
        })
    }

    /// The extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// The reduction polynomial, leading term included.
    pub fn reduction_poly(&self) -> u32 {
        self.poly
    }

    /// The number of field elements, `2^m`.
    pub fn size(&self) -> u32 {
        1 << self.m
    }

    /// The multiplicative group order, `2^m - 1`.
    pub fn order(&self) -> u32 {
        (1 << self.m) - 1
    }

    /// `alpha^i` where `alpha` is the primitive element (the class of `x`).
    /// The exponent is reduced modulo `2^m - 1`.
    pub fn alpha_pow(&self, i: u64) -> u32 {
        self.exp[(i % self.order() as u64) as usize]
    }

    /// The discrete logarithm of a nonzero element `x` base `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero or not a field element.
    pub fn log(&self, x: u32) -> u32 {
        assert!(x != 0, "log of zero");
        self.log[x as usize]
    }

    /// Field addition (bitwise XOR).
    #[inline]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
        }
    }

    /// The multiplicative inverse of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] when `a == 0`.
    #[inline]
    pub fn inv(&self, a: u32) -> Result<u32, GfError> {
        if a == 0 {
            return Err(GfError::DivisionByZero);
        }
        let ord = self.order();
        Ok(self.exp[(ord - self.log[a as usize]) as usize])
    }

    /// Field division `a / b`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] when `b == 0`.
    #[inline]
    pub fn div(&self, a: u32, b: u32) -> Result<u32, GfError> {
        if b == 0 {
            return Err(GfError::DivisionByZero);
        }
        if a == 0 {
            return Ok(0);
        }
        let ord = self.order();
        Ok(self.exp[(self.log[a as usize] + ord - self.log[b as usize]) as usize])
    }

    /// `a` raised to the (possibly large) power `e`.
    pub fn pow(&self, a: u32, e: u64) -> u32 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let ord = self.order() as u64;
        let la = self.log[a as usize] as u64;
        self.exp[((la * (e % ord)) % ord) as usize]
    }

    /// Squares `a`. Squaring is a linear (Frobenius) map in GF(2^m) and is
    /// used to derive even-indexed BCH syndromes from odd ones.
    #[inline]
    pub fn square(&self, a: u32) -> u32 {
        self.mul(a, a)
    }

    /// Evaluates the polynomial with coefficients `coeffs` (index = degree)
    /// at the point `x`, via Horner's rule.
    pub fn eval_poly(&self, coeffs: &[u32], x: u32) -> u32 {
        let mut acc = 0u32;
        for &c in coeffs.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_all_supported_degrees() {
        for m in 3..=16 {
            let f = Gf2m::new(m).unwrap();
            assert_eq!(f.size(), 1 << m);
        }
    }

    #[test]
    fn rejects_bad_degree() {
        assert_eq!(Gf2m::new(2).unwrap_err(), GfError::UnsupportedDegree(2));
        assert_eq!(Gf2m::new(17).unwrap_err(), GfError::UnsupportedDegree(17));
    }

    #[test]
    fn rejects_non_primitive_poly() {
        // x^4 + 1 = (x+1)^4 is reducible, hence not primitive.
        assert!(matches!(
            Gf2m::with_poly(4, 0b10001),
            Err(GfError::NotPrimitive(_))
        ));
    }

    #[test]
    fn mul_matches_carryless_reduction_gf16() {
        let f = Gf2m::new(4).unwrap();
        // Reference: carry-less multiply then reduce mod x^4+x+1.
        let slow = |a: u32, b: u32| -> u32 {
            let mut acc = 0u32;
            for i in 0..4 {
                if b & (1 << i) != 0 {
                    acc ^= a << i;
                }
            }
            for d in (4..8).rev() {
                if acc & (1 << d) != 0 {
                    acc ^= 0x13 << (d - 4);
                }
            }
            acc & 0xF
        };
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(f.mul(a, b), slow(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        let f = Gf2m::new(12).unwrap();
        for a in 1..f.size() {
            let inv = f.inv(a).unwrap();
            assert_eq!(f.mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn zero_handling() {
        let f = Gf2m::new(8).unwrap();
        assert_eq!(f.mul(0, 123), 0);
        assert_eq!(f.mul(123, 0), 0);
        assert_eq!(f.inv(0), Err(GfError::DivisionByZero));
        assert_eq!(f.div(5, 0), Err(GfError::DivisionByZero));
        assert_eq!(f.div(0, 5), Ok(0));
    }

    #[test]
    fn pow_and_alpha_pow_agree() {
        let f = Gf2m::new(10).unwrap();
        let alpha = f.alpha_pow(1);
        for e in 0..2048u64 {
            assert_eq!(f.pow(alpha, e), f.alpha_pow(e), "e={e}");
        }
    }

    // The seeded Frobenius-additivity property lives in `tests/props.rs`
    // on the harness runner (same historical seed, plus shrinking and
    // corpus replay).

    #[test]
    fn eval_poly_horner() {
        let f = Gf2m::new(8).unwrap();
        // p(x) = 3 + 5x + x^2 at x=2 over GF(256): 3 ^ mul(5,2) ^ mul(2,2)
        let coeffs = [3, 5, 1];
        let manual = 3 ^ f.mul(5, 2) ^ f.square(2);
        assert_eq!(f.eval_poly(&coeffs, 2), manual);
        assert_eq!(f.eval_poly(&[], 7), 0);
        assert_eq!(f.eval_poly(&[9], 7), 9);
    }
}
