//! Cache configuration (paper Table I).

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: usize,
    /// Access latency in core cycles.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Table I L1: 64 KB, 2-way, 1 cycle.
    pub fn paper_l1() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 1,
        }
    }

    /// Table I shared LLC: 4 MB, 32-way, 14 cycles.
    pub fn paper_llc() -> Self {
        CacheConfig {
            capacity_bytes: 4 * 1024 * 1024,
            ways: 32,
            line_bytes: 64,
            latency_cycles: 14,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        assert_eq!(
            self.capacity_bytes % self.line_bytes,
            0,
            "capacity must be a multiple of the line size"
        );
        assert_eq!(lines % self.ways, 0, "lines must divide into ways");
        lines / self.ways
    }

    /// Total line count.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }
}

/// The full hierarchy: per-core L1s over a shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (= number of L1 caches). Table I: 4.
    pub cores: usize,
    /// L1 configuration.
    pub l1: CacheConfig,
    /// LLC configuration.
    pub llc: CacheConfig,
    /// Whether the SAM/OMV machinery is active (the proposal) or not
    /// (baseline / ablation).
    pub omv_enabled: bool,
}

impl HierarchyConfig {
    /// The paper's hierarchy: 4 cores, 64 KB 2-way L1s, 4 MB 32-way LLC.
    pub fn paper(omv_enabled: bool) -> Self {
        HierarchyConfig {
            cores: 4,
            l1: CacheConfig::paper_l1(),
            llc: CacheConfig::paper_llc(),
            omv_enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1().sets(), 512);
        assert_eq!(CacheConfig::paper_l1().lines(), 1024);
        assert_eq!(CacheConfig::paper_llc().sets(), 2048);
        assert_eq!(CacheConfig::paper_llc().lines(), 65536);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_geometry_panics() {
        let c = CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 3,
            line_bytes: 64,
            latency_cycles: 1,
        };
        let _ = c.sets();
    }

    #[test]
    fn hierarchy_default() {
        let h = HierarchyConfig::paper(true);
        assert_eq!(h.cores, 4);
        assert!(h.omv_enabled);
    }
}
