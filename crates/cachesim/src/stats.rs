//! Cache statistics.

/// Hit/miss and OMV counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// PM writes whose old memory value was served from the LLC.
    pub omv_hits: u64,
    /// PM writes that must fetch the old value from memory.
    pub omv_misses: u64,
}

impl CacheStats {
    pub(crate) fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    pub(crate) fn record_omv(&mut self, hit: bool) {
        if hit {
            self.omv_hits += 1;
        } else {
            self.omv_misses += 1;
        }
    }

    /// Demand hit rate (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// OMV service rate: the Figure 18 metric (0 when no PM writes).
    pub fn omv_hit_rate(&self) -> f64 {
        let total = self.omv_hits + self.omv_misses;
        if total == 0 {
            0.0
        } else {
            self.omv_hits as f64 / total as f64
        }
    }

    /// Publishes every counter (and the derived rates as gauges) into
    /// `reg` under `<prefix>.<name>`.
    pub fn publish_metrics(&self, reg: &pmck_rt::metrics::MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.hits"), self.hits);
        reg.set_counter(&format!("{prefix}.misses"), self.misses);
        reg.set_counter(&format!("{prefix}.omv_hits"), self.omv_hits);
        reg.set_counter(&format!("{prefix}.omv_misses"), self.omv_misses);
        reg.set_gauge(&format!("{prefix}.hit_rate"), self.hit_rate());
        reg.set_gauge(&format!("{prefix}.omv_hit_rate"), self.omv_hit_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.omv_hit_rate(), 0.0);
        s.record(true);
        s.record(true);
        s.record(false);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        s.record_omv(true);
        s.record_omv(false);
        assert_eq!(s.omv_hit_rate(), 0.5);
    }

    #[test]
    fn publishes_metrics() {
        let mut s = CacheStats::default();
        s.record(true);
        s.record(false);
        s.record_omv(true);
        let reg = pmck_rt::metrics::MetricsRegistry::new();
        s.publish_metrics(&reg, "llc");
        assert_eq!(reg.counter("llc.hits"), 1);
        assert_eq!(reg.counter("llc.misses"), 1);
        assert_eq!(reg.gauge("llc.omv_hit_rate"), Some(1.0));
    }
}
