//! Generic set-associative cache core with LRU replacement.

use crate::config::CacheConfig;

/// One cache line's tag state. `sam`/`omv` are meaningful only in the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Block address (line granularity) stored here.
    pub addr: u64,
    /// Whether the line holds valid data.
    pub valid: bool,
    /// Whether the line is modified relative to the next level.
    pub dirty: bool,
    /// "SameAsMem": line value equals off-chip memory (LLC only).
    pub sam: bool,
    /// "Old Memory Value": invisible preserved copy (LLC only).
    pub omv: bool,
    /// Whether the block belongs to a persistent-memory region.
    pub is_pm: bool,
    lru: u64,
}

impl Line {
    fn invalid() -> Self {
        Line {
            addr: 0,
            valid: false,
            dirty: false,
            sam: false,
            omv: false,
            is_pm: false,
            lru: 0,
        }
    }
}

/// A set-associative cache with LRU replacement over line *state*
/// (no data bytes).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    tick: u64,
}

impl SetAssocCache {
    /// An empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        SetAssocCache {
            cfg,
            sets,
            lines: vec![Line::invalid(); sets * cfg.ways],
            tick: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = (addr % self.sets as u64) as usize;
        set * self.cfg.ways..(set + 1) * self.cfg.ways
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.lines[idx].lru = self.tick;
    }

    /// Finds the *visible* (non-OMV) line holding `addr`, updating LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<&mut Line> {
        let range = self.set_range(addr);
        let idx = self.lines[range]
            .iter()
            .position(|l| l.valid && !l.omv && l.addr == addr)?;
        let abs = self.set_range(addr).start + idx;
        self.touch(abs);
        Some(&mut self.lines[abs])
    }

    /// Finds the line holding `addr` without updating LRU or filtering
    /// OMV lines.
    pub fn peek(&self, addr: u64) -> Option<&Line> {
        let range = self.set_range(addr);
        self.lines[range]
            .iter()
            .find(|l| l.valid && !l.omv && l.addr == addr)
    }

    /// Finds the OMV line for `addr`, if any.
    pub fn peek_omv(&self, addr: u64) -> Option<&Line> {
        let range = self.set_range(addr);
        self.lines[range]
            .iter()
            .find(|l| l.valid && l.omv && l.addr == addr)
    }

    /// Invalidates the OMV line for `addr`; returns whether one existed.
    pub fn take_omv(&mut self, addr: u64) -> bool {
        let range = self.set_range(addr);
        let start = range.start;
        if let Some(i) = self.lines[range]
            .iter()
            .position(|l| l.valid && l.omv && l.addr == addr)
        {
            self.lines[start + i] = Line::invalid();
            true
        } else {
            false
        }
    }

    /// Inserts a line for `addr`, evicting the LRU victim if the set is
    /// full. `init` configures the fresh line (dirty/sam/omv/is_pm).
    /// Returns the evicted valid line, if any.
    ///
    /// # Panics
    ///
    /// Panics if a visible line for `addr` already exists (callers must
    /// use [`SetAssocCache::lookup`] first).
    pub fn insert(&mut self, addr: u64, init: impl FnOnce(&mut Line)) -> Option<Line> {
        assert!(
            self.peek(addr).is_none(),
            "insert of already-present address {addr:#x}"
        );
        let range = self.set_range(addr);
        let start = range.start;
        // Prefer an invalid way; otherwise evict true-LRU.
        let victim_rel = self.lines[range.clone()]
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| {
                let (i, _) = self.lines[range]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .expect("ways > 0");
                i
            });
        let abs = start + victim_rel;
        let evicted = if self.lines[abs].valid {
            Some(self.lines[abs])
        } else {
            None
        };
        let mut fresh = Line::invalid();
        fresh.addr = addr;
        fresh.valid = true;
        init(&mut fresh);
        self.lines[abs] = fresh;
        self.touch(abs);
        evicted
    }

    /// Invalidates the visible line for `addr`, returning it if present.
    pub fn invalidate(&mut self, addr: u64) -> Option<Line> {
        let range = self.set_range(addr);
        let start = range.start;
        let idx = self.lines[range]
            .iter()
            .position(|l| l.valid && !l.omv && l.addr == addr)?;
        let line = self.lines[start + idx];
        self.lines[start + idx] = Line::invalid();
        Some(line)
    }

    /// Iterates over all valid lines.
    pub fn iter_valid(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.valid)
    }

    /// Total line slots.
    pub fn capacity_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of valid lines matching a predicate (occupancy sampling).
    pub fn count_valid(&self, pred: impl Fn(&Line) -> bool) -> usize {
        self.lines.iter().filter(|l| l.valid && pred(l)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways.
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 8 * 64,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(c.lookup(12).is_none());
        assert!(c.insert(12, |l| l.dirty = false).is_none());
        assert!(c.lookup(12).is_some());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Addresses 0, 4, 8 map to set 0 (4 sets).
        c.insert(0, |_| {});
        c.insert(4, |_| {});
        c.lookup(0); // 0 is now MRU; 4 is LRU.
        let evicted = c.insert(8, |_| {}).expect("set full");
        assert_eq!(evicted.addr, 4);
        assert!(c.peek(0).is_some());
        assert!(c.peek(4).is_none());
    }

    #[test]
    fn omv_lines_are_invisible_to_lookup() {
        let mut c = tiny();
        c.insert(0, |l| l.omv = true);
        assert!(c.lookup(0).is_none(), "OMV invisible");
        assert!(c.peek_omv(0).is_some());
        assert!(c.take_omv(0));
        assert!(!c.take_omv(0));
    }

    #[test]
    fn invalidate_returns_line_state() {
        let mut c = tiny();
        c.insert(3, |l| {
            l.dirty = true;
            l.is_pm = true;
        });
        let line = c.invalidate(3).unwrap();
        assert!(line.dirty && line.is_pm);
        assert!(c.peek(3).is_none());
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(5, |_| {});
        c.insert(5, |_| {});
    }

    #[test]
    fn count_valid_predicate() {
        let mut c = tiny();
        c.insert(0, |l| {
            l.dirty = true;
            l.is_pm = true;
        });
        c.insert(1, |l| l.dirty = true);
        c.insert(2, |_| {});
        assert_eq!(c.count_valid(|l| l.dirty && l.is_pm), 1);
        assert_eq!(c.count_valid(|l| l.dirty), 2);
        assert_eq!(c.capacity_lines(), 8);
    }
}
