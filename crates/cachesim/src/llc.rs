//! The last-level cache with SAM/OMV bits (paper §V-D).

use crate::cache::SetAssocCache;
use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// A persistent-memory block write leaving the LLC toward memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackOutcome {
    /// Block address.
    pub addr: u64,
    /// Whether the block belongs to persistent memory.
    pub is_pm: bool,
    /// For PM writes with OMV enabled: whether the old memory value was
    /// served from the LLC (`Some(true)`) or must be fetched from memory
    /// (`Some(false)`). `None` for DRAM writes or with OMV disabled.
    pub omv_served: Option<bool>,
}

/// The shared LLC with the proposal's SAM ("SameAsMem") and OMV ("Old
/// Memory Value") tag bits.
#[derive(Debug, Clone)]
pub struct Llc {
    cache: SetAssocCache,
    omv_enabled: bool,
    stats: CacheStats,
}

impl Llc {
    /// An empty LLC; `omv_enabled` selects the proposal's OMV machinery.
    pub fn new(cfg: CacheConfig, omv_enabled: bool) -> Self {
        Llc {
            cache: SetAssocCache::new(cfg),
            omv_enabled,
            stats: CacheStats::default(),
        }
    }

    /// Read lookup for a demand access. Returns whether it hit.
    pub fn read(&mut self, addr: u64) -> bool {
        let hit = self.cache.lookup(addr).is_some();
        self.stats.record(hit);
        hit
    }

    /// Fills `addr` after a memory fetch. The fresh line equals memory, so
    /// SAM is set. Dirty victims become writebacks.
    pub fn fill(&mut self, addr: u64, is_pm: bool) -> Vec<WritebackOutcome> {
        let mut out = Vec::new();
        if self.cache.peek(addr).is_some() {
            // Raced fill (e.g. two cores missed on the same block): the
            // line is already present; nothing to do.
            return out;
        }
        let evicted = self.cache.insert(addr, |l| {
            l.sam = true;
            l.is_pm = is_pm;
        });
        if let Some(v) = evicted {
            if v.dirty {
                out.push(self.memory_write(v.addr, v.is_pm));
            }
        }
        out
    }

    /// A dirty writeback from an upper-level cache lands in the LLC.
    /// If it hits a SAM line and OMV is enabled, the SAM line is preserved
    /// as the OMV and a different way receives the dirty data (§V-D).
    pub fn writeback_from_l1(&mut self, addr: u64, is_pm: bool) -> Vec<WritebackOutcome> {
        let mut out = Vec::new();
        let preserve = if let Some(line) = self.cache.lookup(addr) {
            if line.sam && self.omv_enabled && is_pm && self.cache.peek_omv(addr).is_none() {
                true
            } else {
                // Plain overwrite: the line no longer equals memory.
                let line = self.cache.lookup(addr).expect("line just found");
                line.dirty = true;
                line.sam = false;
                line.is_pm = is_pm;
                return out;
            }
        } else {
            false
        };
        if preserve {
            // Convert the SAM line into an invisible OMV line…
            let line = self.cache.lookup(addr).expect("line just found");
            line.omv = true;
            line.sam = false;
            line.dirty = false;
            // …and allocate a different way for the dirty data.
            let evicted = self.cache.insert(addr, |l| {
                l.dirty = true;
                l.is_pm = is_pm;
            });
            if let Some(v) = evicted {
                if v.dirty {
                    out.push(self.memory_write(v.addr, v.is_pm));
                }
            }
        } else {
            // No previous copy: allocate dirty.
            let evicted = self.cache.insert(addr, |l| {
                l.dirty = true;
                l.is_pm = is_pm;
            });
            if let Some(v) = evicted {
                if v.dirty {
                    out.push(self.memory_write(v.addr, v.is_pm));
                }
            }
        }
        out
    }

    /// Cleans `addr` (clwb semantics). `through` carries dirty data coming
    /// straight from an upper-level cache; otherwise the LLC's own line is
    /// cleaned if dirty. Returns the memory write, if one is needed.
    pub fn clean(&mut self, addr: u64, is_pm: bool, through: bool) -> Option<WritebackOutcome> {
        let line_state = self.cache.peek(addr).copied();
        match line_state {
            Some(line) => {
                if !line.dirty && !through {
                    return None; // already equals memory: no write needed
                }
                // The old value can come from an OMV line, or — for dirty
                // data passing through from an upper-level cache — from a
                // SAM line that still equals memory (§V-D).
                let omv_served = if is_pm && self.omv_enabled {
                    let hit = self.cache.take_omv(addr) || (through && line.sam);
                    self.stats.record_omv(hit);
                    Some(hit)
                } else {
                    None
                };
                let l = self.cache.lookup(addr).expect("line present");
                l.dirty = false;
                l.sam = true;
                l.is_pm = is_pm;
                Some(WritebackOutcome {
                    addr,
                    is_pm,
                    omv_served,
                })
            }
            None if through => {
                // Dirty block passing through without a visible LLC copy;
                // an invisible OMV line may still hold the old value.
                let omv_served = if is_pm && self.omv_enabled {
                    let hit = self.cache.take_omv(addr);
                    self.stats.record_omv(hit);
                    Some(hit)
                } else {
                    None
                };
                Some(WritebackOutcome {
                    addr,
                    is_pm,
                    omv_served,
                })
            }
            None => None,
        }
    }

    /// Accounts one block write to memory, resolving the OMV search for
    /// persistent-memory blocks (§V-D): a matching OMV line is consumed;
    /// with no OMV line the old value must be fetched from memory.
    fn memory_write(&mut self, addr: u64, is_pm: bool) -> WritebackOutcome {
        let omv_served = if is_pm && self.omv_enabled {
            let hit = self.cache.take_omv(addr);
            self.stats.record_omv(hit);
            Some(hit)
        } else {
            None
        };
        WritebackOutcome {
            addr,
            is_pm,
            omv_served,
        }
    }

    /// Whether a visible line for `addr` exists (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        self.cache.peek(addr).is_some()
    }

    /// Invalidates the visible line for `addr` (clflush); returns whether
    /// a line was dropped. The caller must have cleaned dirty data first.
    pub fn invalidate_visible(&mut self, addr: u64) -> bool {
        self.cache.invalidate(addr).is_some()
    }

    /// Statistics (hits/misses, OMV hits/misses).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the counters while keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The underlying cache array (occupancy sampling).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> Llc {
        // Small: 16 sets × 4 ways.
        Llc::new(
            CacheConfig {
                capacity_bytes: 64 * 64,
                ways: 4,
                line_bytes: 64,
                latency_cycles: 14,
            },
            true,
        )
    }

    #[test]
    fn fill_sets_sam() {
        let mut l = llc();
        assert!(!l.read(5));
        l.fill(5, true);
        assert!(l.read(5));
        assert!(l.cache.peek(5).unwrap().sam);
    }

    #[test]
    fn writeback_to_sam_line_preserves_omv() {
        let mut l = llc();
        l.fill(5, true);
        let wbs = l.writeback_from_l1(5, true);
        assert!(wbs.is_empty());
        // Visible line is dirty, OMV line exists.
        let vis = l.cache.peek(5).unwrap();
        assert!(vis.dirty && !vis.sam);
        assert!(l.cache.peek_omv(5).is_some());
    }

    #[test]
    fn clean_consumes_omv() {
        let mut l = llc();
        l.fill(5, true);
        l.writeback_from_l1(5, true);
        let wb = l.clean(5, true, false).expect("dirty line needs a write");
        assert_eq!(wb.omv_served, Some(true));
        assert!(l.cache.peek_omv(5).is_none(), "OMV consumed");
        // Line is clean and SAM again.
        let vis = l.cache.peek(5).unwrap();
        assert!(!vis.dirty && vis.sam);
        // Cleaning again: no memory write.
        assert!(l.clean(5, true, false).is_none());
    }

    #[test]
    fn clean_without_omv_misses() {
        let mut l = llc();
        // Dirty allocation with no prior SAM copy → no OMV to preserve.
        l.writeback_from_l1(9, true);
        let wb = l.clean(9, true, false).unwrap();
        assert_eq!(wb.omv_served, Some(false));
        assert_eq!(l.stats().omv_misses, 1);
    }

    #[test]
    fn dram_writes_have_no_omv_accounting() {
        let mut l = llc();
        l.writeback_from_l1(9, false);
        let wb = l.clean(9, false, false).unwrap();
        assert_eq!(wb.omv_served, None);
        assert_eq!(l.stats().omv_hits + l.stats().omv_misses, 0);
    }

    #[test]
    fn omv_disabled_baseline() {
        let mut l = Llc::new(
            CacheConfig {
                capacity_bytes: 64 * 64,
                ways: 4,
                line_bytes: 64,
                latency_cycles: 14,
            },
            false,
        );
        l.fill(5, true);
        l.writeback_from_l1(5, true);
        assert!(l.cache.peek_omv(5).is_none(), "no OMV machinery");
        let wb = l.clean(5, true, false).unwrap();
        assert_eq!(wb.omv_served, None);
    }

    #[test]
    fn second_writeback_does_not_duplicate_omv() {
        let mut l = llc();
        l.fill(5, true);
        l.writeback_from_l1(5, true);
        // The visible line is dirty now; another writeback just overwrites.
        l.writeback_from_l1(5, true);
        let omv_count = l
            .cache
            .iter_valid()
            .filter(|ln| ln.omv && ln.addr == 5)
            .count();
        assert_eq!(omv_count, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_with_omv_search() {
        let mut l = llc();
        // Fill set 0 (addresses ≡ 0 mod 16) with dirty PM lines.
        for i in 0..4u64 {
            l.writeback_from_l1(i * 16, true);
        }
        // One more forces a dirty eviction.
        let wbs = l.writeback_from_l1(4 * 16, true);
        assert_eq!(wbs.len(), 1);
        assert!(wbs[0].is_pm);
        assert_eq!(wbs[0].omv_served, Some(false), "no OMV was present");
    }

    #[test]
    fn clean_through_uses_sam_copy() {
        let mut l = llc();
        l.fill(7, true); // SAM line in LLC; dirty data lives in L1.
        let wb = l.clean(7, true, true).unwrap();
        // The SAM line provided the old value: the paper counts this as an
        // LLC-served OMV.
        assert_eq!(wb.omv_served, Some(true));
        let vis = l.cache.peek(7).unwrap();
        assert!(vis.sam && !vis.dirty);
    }

    #[test]
    fn clean_through_with_no_copy_misses() {
        let mut l = llc();
        let wb = l.clean(11, true, true).unwrap();
        assert_eq!(wb.omv_served, Some(false));
    }
}
