//! Cache-hierarchy simulator with the paper's SAM/OMV LLC extensions.
//!
//! The proposal (§V-D) adds two bits to every last-level-cache line tag:
//!
//! * **SAM** ("SameAsMem") — the line currently equals off-chip persistent
//!   memory. Set when the line is filled from memory or cleaned by a
//!   cache-line cleaning instruction; reset when a dirty writeback from an
//!   upper-level cache lands in it.
//! * **OMV** ("Old Memory Value") — the line *preserves the old memory
//!   value* of a dirty persistent-memory block and is invisible to memory
//!   instructions. Created when a dirty writeback hits a SAM line: the SAM
//!   line becomes an OMV line and a different way in the same set receives
//!   the dirty data.
//!
//! Before writing a dirty persistent-memory block back, the LLC searches
//! the set for a matching OMV (or SAM) line; on a hit the controller gets
//! `old ⊕ new` for free instead of fetching the old value from memory.
//! Figure 18 reports this hit rate (98.6% average); Figure 10 reports the
//! dirty-PM cache occupancy that makes preserving OMVs cheap (~4%).
//!
//! This crate models cache *state*, not data bytes (the functional XOR
//! path is exercised in `pmck-core`); the full-system simulator turns the
//! returned [`MemActions`] into timed memory traffic.
//!
//! # Examples
//!
//! ```
//! use pmck_cachesim::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::paper(true));
//! let addr = 0x100;
//! h.load(0, addr, true);       // miss; fills L1+LLC, SAM set
//! h.store(0, addr, true);      // dirty in L1
//! let acts = h.clwb(0, addr, true); // clean: OMV served from LLC
//! assert_eq!(acts.mem_writes.len(), 1);
//! assert_eq!(acts.mem_writes[0].omv_served, Some(true));
//! ```

mod cache;
mod config;
mod hierarchy;
mod llc;
mod stats;

pub use cache::{Line, SetAssocCache};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{Hierarchy, MemActions, MemWrite};
pub use llc::{Llc, WritebackOutcome};
pub use stats::CacheStats;
