//! The full cache hierarchy: per-core L1s over the shared SAM/OMV LLC.

use crate::cache::SetAssocCache;
use crate::config::HierarchyConfig;
use crate::llc::{Llc, WritebackOutcome};
use crate::stats::CacheStats;

/// A block write emitted toward the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWrite {
    /// Block address.
    pub addr: u64,
    /// Whether the block belongs to persistent memory.
    pub is_pm: bool,
    /// OMV resolution (see [`WritebackOutcome::omv_served`]). A PM write
    /// with `Some(false)` costs an extra memory read to fetch the old
    /// value before the write can carry `old ⊕ new`.
    pub omv_served: Option<bool>,
}

impl From<WritebackOutcome> for MemWrite {
    fn from(w: WritebackOutcome) -> Self {
        MemWrite {
            addr: w.addr,
            is_pm: w.is_pm,
            omv_served: w.omv_served,
        }
    }
}

/// What a cache operation requires of the memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemActions {
    /// The access hit in L1.
    pub l1_hit: bool,
    /// LLC lookup result, when one happened.
    pub llc_hit: Option<bool>,
    /// Demand block reads to issue `(addr, is_pm)`.
    pub mem_reads: Vec<(u64, bool)>,
    /// Block writes to issue.
    pub mem_writes: Vec<MemWrite>,
}

/// Per-core L1 caches over a shared LLC (paper Table I: 4 cores, 64 KB
/// 2-way L1s, one 4 MB 32-way LLC).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1s: Vec<SetAssocCache>,
    llc: Llc,
    l1_stats: Vec<CacheStats>,
}

impl Hierarchy {
    /// An empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            cfg,
            l1s: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            llc: Llc::new(cfg.llc, cfg.omv_enabled),
            l1_stats: vec![CacheStats::default(); cfg.cores],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// A load by `core` from block `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn load(&mut self, core: usize, addr: u64, is_pm: bool) -> MemActions {
        self.access(core, addr, is_pm, false)
    }

    /// A store by `core` to block `addr` (write-allocate, write-back).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn store(&mut self, core: usize, addr: u64, is_pm: bool) -> MemActions {
        self.access(core, addr, is_pm, true)
    }

    fn access(&mut self, core: usize, addr: u64, is_pm: bool, is_store: bool) -> MemActions {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let mut acts = MemActions::default();
        if let Some(line) = self.l1s[core].lookup(addr) {
            if is_store {
                line.dirty = true;
            }
            self.l1_stats[core].record(true);
            acts.l1_hit = true;
            return acts;
        }
        self.l1_stats[core].record(false);

        // L1 miss → LLC.
        let llc_hit = self.llc.read(addr);
        acts.llc_hit = Some(llc_hit);
        if !llc_hit {
            acts.mem_reads.push((addr, is_pm));
            for wb in self.llc.fill(addr, is_pm) {
                acts.mem_writes.push(wb.into());
            }
        }

        // Fill L1; a dirty victim writes back into the LLC.
        let evicted = self.l1s[core].insert(addr, |l| {
            l.dirty = is_store;
            l.is_pm = is_pm;
        });
        if let Some(v) = evicted {
            if v.dirty {
                for wb in self.llc.writeback_from_l1(v.addr, v.is_pm) {
                    acts.mem_writes.push(wb.into());
                }
            }
        }
        acts
    }

    /// A cache-line clean (`clwb`) by `core` of block `addr`: dirty data
    /// anywhere in the hierarchy is written to memory; copies stay valid
    /// and clean.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn clwb(&mut self, core: usize, addr: u64, is_pm: bool) -> MemActions {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let mut acts = MemActions::default();
        // Any core's L1 may hold the dirty copy; clwb is coherent.
        let mut l1_dirty = false;
        for l1 in &mut self.l1s {
            if let Some(line) = l1.lookup(addr) {
                if line.dirty {
                    l1_dirty = true;
                    line.dirty = false;
                }
            }
        }
        if l1_dirty {
            // Dirty block passes through the LLC on its way to memory.
            if let Some(wb) = self.llc.clean(addr, is_pm, true) {
                acts.mem_writes.push(wb.into());
            }
        } else if let Some(wb) = self.llc.clean(addr, is_pm, false) {
            acts.mem_writes.push(wb.into());
        }
        acts
    }

    /// A cache-line flush (`clflush`): like [`Hierarchy::clwb`] but also
    /// invalidates all copies.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn clflush(&mut self, core: usize, addr: u64, is_pm: bool) -> MemActions {
        let acts = self.clwb(core, addr, is_pm);
        for l1 in &mut self.l1s {
            l1.invalidate(addr);
        }
        // The LLC copy was cleaned by the clwb above, so dropping it
        // loses nothing.
        self.llc.invalidate_visible(addr);
        acts
    }

    /// Fraction of all cache lines (L1s + LLC) holding dirty
    /// persistent-memory blocks — the Figure 10 metric.
    pub fn dirty_pm_fraction(&self) -> f64 {
        let mut dirty = 0usize;
        let mut total = 0usize;
        for l1 in &self.l1s {
            dirty += l1.count_valid(|l| l.dirty && l.is_pm);
            total += l1.capacity_lines();
        }
        dirty += self.llc.cache().count_valid(|l| l.dirty && l.is_pm);
        total += self.llc.cache().capacity_lines();
        dirty as f64 / total as f64
    }

    /// The LLC statistics (including OMV hit/miss counts — Figure 18).
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// L1 statistics for one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        &self.l1_stats[core]
    }

    /// Direct access to the LLC (tests, occupancy probes).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Zeroes all hit/miss/OMV counters while keeping cache contents —
    /// called at the warmup/measurement boundary (paper §VI).
    pub fn reset_stats(&mut self) {
        for s in &mut self.l1_stats {
            *s = CacheStats::default();
        }
        self.llc.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn h() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::paper(true))
    }

    #[test]
    fn cold_load_misses_everywhere() {
        let mut hh = h();
        let acts = hh.load(0, 42, true);
        assert!(!acts.l1_hit);
        assert_eq!(acts.llc_hit, Some(false));
        assert_eq!(acts.mem_reads, vec![(42, true)]);
        // Warm now.
        let acts2 = hh.load(0, 42, true);
        assert!(acts2.l1_hit);
    }

    #[test]
    fn cross_core_shares_llc() {
        let mut hh = h();
        hh.load(0, 42, false);
        let acts = hh.load(1, 42, false);
        assert!(!acts.l1_hit);
        assert_eq!(acts.llc_hit, Some(true));
        assert!(acts.mem_reads.is_empty());
    }

    #[test]
    fn store_load_clwb_cycle_serves_omv() {
        let mut hh = h();
        hh.load(0, 7, true); // fill: LLC has SAM copy
        hh.store(0, 7, true); // dirty in L1
        let acts = hh.clwb(0, 7, true);
        assert_eq!(acts.mem_writes.len(), 1);
        let w = acts.mem_writes[0];
        assert_eq!((w.addr, w.is_pm, w.omv_served), (7, true, Some(true)));
        // Second clwb: nothing dirty anymore.
        let acts2 = hh.clwb(0, 7, true);
        assert!(acts2.mem_writes.is_empty());
    }

    #[test]
    fn store_without_prior_load_allocates() {
        let mut hh = h();
        let acts = hh.store(0, 9, true);
        // Write-allocate: fetch for ownership.
        assert_eq!(acts.mem_reads, vec![(9, true)]);
        let acts2 = hh.clwb(0, 9, true);
        assert_eq!(acts2.mem_writes.len(), 1);
        // The fill put a SAM copy in LLC, so the OMV is served.
        assert_eq!(acts2.mem_writes[0].omv_served, Some(true));
    }

    #[test]
    fn clflush_invalidates() {
        let mut hh = h();
        hh.load(0, 11, true);
        hh.store(0, 11, true);
        let acts = hh.clflush(0, 11, true);
        assert_eq!(acts.mem_writes.len(), 1);
        // Fully gone: the next load misses to memory.
        let acts2 = hh.load(0, 11, true);
        assert_eq!(acts2.llc_hit, Some(false));
        assert_eq!(acts2.mem_reads.len(), 1);
    }

    #[test]
    fn dirty_pm_fraction_tracks_stores() {
        let mut hh = h();
        assert_eq!(hh.dirty_pm_fraction(), 0.0);
        for a in 0..100 {
            hh.load(0, a, true);
            hh.store(0, a, true);
        }
        let f = hh.dirty_pm_fraction();
        assert!(f > 0.0);
        // 100 dirty lines out of 4*1024 + 65536.
        let expect = 100.0 / (4.0 * 1024.0 + 65536.0);
        assert!((f - expect).abs() < 3.0 * expect, "f={f}, expect≈{expect}");
        // Cleaning drops it to zero.
        for a in 0..100 {
            hh.clwb(0, a, true);
        }
        assert_eq!(hh.dirty_pm_fraction(), 0.0);
    }

    #[test]
    fn dram_stores_do_not_count_as_dirty_pm() {
        let mut hh = h();
        for a in 0..50 {
            hh.store(0, a, false);
        }
        assert_eq!(hh.dirty_pm_fraction(), 0.0);
    }

    #[test]
    fn omv_hit_rate_high_under_load_store_clean_pattern() {
        let mut hh = h();
        for round in 0..5u64 {
            for a in 0..200u64 {
                let addr = a + round * 7;
                hh.load(0, addr, true);
                hh.store(0, addr, true);
                hh.clwb(0, addr, true);
            }
        }
        let s = hh.llc_stats();
        assert!(s.omv_hit_rate() > 0.95, "rate {}", s.omv_hit_rate());
    }

    #[test]
    fn l1_eviction_writes_back_to_llc_preserving_omv() {
        let mut hh = h();
        // L1: 512 sets × 2 ways. Two addresses in the same L1 set:
        // a and a + 512.
        let a = 3u64;
        hh.load(0, a, true);
        hh.store(0, a, true);
        // Evict from L1 by loading two more lines in the same set.
        hh.load(0, a + 512, true);
        hh.load(0, a + 1024, true);
        // The dirty line was written back into the LLC; its OMV preserved.
        assert!(hh.llc().cache().peek_omv(a).is_some());
        // clwb of the LLC-dirty line finds the OMV.
        let acts = hh.clwb(0, a, true);
        assert_eq!(acts.mem_writes.len(), 1);
        assert_eq!(acts.mem_writes[0].omv_served, Some(true));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut hh = h();
        let _ = hh.load(9, 0, false);
    }
}
