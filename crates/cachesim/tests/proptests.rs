//! Randomized tests for the cache hierarchy and the SAM/OMV protocol,
//! driven by seeded `pmck-rt` streams.

use pmck_cachesim::{CacheConfig, Hierarchy, HierarchyConfig, Llc};
use pmck_rt::rng::{Rng, StdRng};

fn small_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        cores: 2,
        l1: CacheConfig {
            capacity_bytes: 2 * 1024,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 1,
        },
        llc: CacheConfig {
            capacity_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            latency_cycles: 14,
        },
        omv_enabled: true,
    })
}

#[test]
fn at_most_one_omv_line_per_address() {
    let mut rng = StdRng::seed_from_u64(0xCA5E_0001);
    for _ in 0..48 {
        let ops = rng.gen_range(50usize..400);
        let mut h = small_hierarchy();
        for _ in 0..ops {
            let addr = rng.gen_range(0..512u64);
            let core = rng.gen_range(0..2);
            match rng.gen_range(0..3) {
                0 => {
                    h.load(core, addr, true);
                }
                1 => {
                    h.store(core, addr, true);
                }
                _ => {
                    h.clwb(core, addr, true);
                }
            }
            // Invariant: never two OMV lines for one address, and an OMV
            // line never coexists without having had a dirty twin.
            for a in 0..512u64 {
                let omv_count = h
                    .llc()
                    .cache()
                    .iter_valid()
                    .filter(|l| l.omv && l.addr == a)
                    .count();
                assert!(omv_count <= 1, "addr {a}: {omv_count} OMV lines");
            }
        }
    }
}

#[test]
fn second_load_of_same_address_hits() {
    let mut rng = StdRng::seed_from_u64(0xCA5E_0002);
    for _ in 0..48 {
        let addr = rng.gen_range(0u64..100_000);
        let mut h = small_hierarchy();
        h.load(0, addr, true);
        let acts = h.load(0, addr, true);
        assert!(acts.l1_hit);
        assert!(acts.mem_reads.is_empty());
    }
}

#[test]
fn clean_hierarchy_emits_no_spurious_writes() {
    let mut rng = StdRng::seed_from_u64(0xCA5E_0003);
    for _ in 0..48 {
        // Loads alone (no stores) must never produce memory writes.
        let mut h = small_hierarchy();
        for _ in 0..500 {
            let addr = rng.gen_range(0..4096u64);
            let acts = h.load(rng.gen_range(0..2), addr, rng.gen_bool(0.5));
            assert!(
                acts.mem_writes.is_empty(),
                "clean line evictions are silent"
            );
        }
    }
}

#[test]
fn every_dirty_store_is_written_back_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0xCA5E_0004);
    for _ in 0..48 {
        let n = rng.gen_range(20usize..150);
        // Store n distinct PM addresses, then clean them all: the number
        // of PM memory writes equals the number of dirtied blocks.
        let mut h = small_hierarchy();
        let addrs: std::collections::BTreeSet<u64> =
            (0..n).map(|_| rng.gen_range(0..1024u64)).collect();
        let mut writes = 0usize;
        for &a in &addrs {
            let acts = h.store(0, a, true);
            writes += acts.mem_writes.iter().filter(|w| w.is_pm).count();
        }
        for &a in &addrs {
            let acts = h.clwb(0, a, true);
            writes += acts.mem_writes.iter().filter(|w| w.is_pm).count();
        }
        assert_eq!(writes, addrs.len());
        // Cleaning again produces nothing.
        for &a in &addrs {
            let acts = h.clwb(0, a, true);
            assert!(acts.mem_writes.is_empty());
        }
    }
}

#[test]
fn llc_eviction_pressure_never_leaks_omv_lines() {
    // Saturate one set far beyond its ways; OMV lines must be evictable
    // and the cache must stay internally consistent.
    let mut llc = Llc::new(
        CacheConfig {
            capacity_bytes: 8 * 64,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 1,
        },
        true,
    );
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..400u64 {
        let addr = (i % 40) * 4; // all map to set 0 (4 sets)
        match rng.gen_range(0..3) {
            0 => {
                llc.fill(addr, true);
            }
            1 => {
                llc.writeback_from_l1(addr, true);
            }
            _ => {
                llc.clean(addr, true, false);
            }
        }
        let valid = llc.cache().iter_valid().count();
        assert!(valid <= 8, "capacity respected, got {valid}");
    }
}
