//! The memory controller: FR-FCFS scheduling over per-bank state with
//! read priority, write-drain watermarks, and EUR bookkeeping.

use std::fmt;

use crate::bank::{AccessClass, BankState};
use crate::config::{MemConfig, RankKind};
use crate::eur::Eur;
use crate::request::{MemRequest, ReqId};
use crate::stats::MemStats;

/// A finished request: the echoed id and the completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The caller-chosen request id.
    pub id: ReqId,
    /// Whether the request was a write.
    pub is_write: bool,
    /// Completion time (data returned / write absorbed), picoseconds.
    pub finish_ps: u64,
}

/// Returned when a queue has no free entry; the caller must back off and
/// retry after advancing time (this is the back-pressure the paper's
/// 128-entry buffers exert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory controller queue is full")
    }
}

impl std::error::Error for QueueFull {}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    arrival_ps: u64,
}

/// A cycle-approximate memory controller for one channel with a DRAM rank
/// and an NVRAM rank (paper Table I).
///
/// Drive it with [`MemoryController::enqueue`] +
/// [`MemoryController::advance_to`]; collect results with
/// [`MemoryController::drain_completions`].
#[derive(Debug)]
pub struct MemoryController {
    cfg: MemConfig,
    banks: [Vec<BankState>; 2],
    bus_free_ps: u64,
    rq: Vec<Pending>,
    wq: Vec<Pending>,
    draining: bool,
    time_ps: u64,
    completions: Vec<Completion>,
    stats: MemStats,
    eur: Eur,
}

impl MemoryController {
    /// Creates a controller for `cfg` with all banks precharged and idle.
    pub fn new(cfg: MemConfig) -> Self {
        let banks_dram = (0..cfg.banks_per_rank).map(|_| BankState::new()).collect();
        let banks_nvram = (0..cfg.banks_per_rank).map(|_| BankState::new()).collect();
        let eur = Eur::new(cfg.eur_enabled);
        MemoryController {
            cfg,
            banks: [banks_dram, banks_nvram],
            bus_free_ps: 0,
            rq: Vec::new(),
            wq: Vec::new(),
            draining: false,
            time_ps: 0,
            completions: Vec::new(),
            stats: MemStats::default(),
            eur,
        }
    }

    fn rank_idx(rank: RankKind) -> usize {
        match rank {
            RankKind::Dram => 0,
            RankKind::Nvram => 1,
        }
    }

    /// Whether a read can currently be accepted.
    pub fn can_accept_read(&self) -> bool {
        self.rq.len() < self.cfg.read_queue
    }

    /// Whether a write can currently be accepted.
    pub fn can_accept_write(&self) -> bool {
        self.wq.len() < self.cfg.write_queue
    }

    /// Enqueues `req` at the controller's current time.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the respective queue is at capacity.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let p = Pending {
            req,
            arrival_ps: self.time_ps,
        };
        if req.is_write {
            if !self.can_accept_write() {
                return Err(QueueFull);
            }
            self.wq.push(p);
        } else {
            if !self.can_accept_read() {
                return Err(QueueFull);
            }
            self.rq.push(p);
        }
        Ok(())
    }

    /// Current simulator time in picoseconds.
    pub fn now_ps(&self) -> u64 {
        self.time_ps
    }

    /// Outstanding request count (both queues).
    pub fn pending(&self) -> usize {
        self.rq.len() + self.wq.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The EUR model (C-factor bookkeeping).
    pub fn eur(&self) -> &Eur {
        &self.eur
    }

    /// Drains all EUR registers (simulation end) so the C factor reflects
    /// rows that never closed.
    pub fn finalize_eur(&mut self) {
        self.eur.drain_all();
    }

    /// Takes the completions produced so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// The earliest time any queued request could issue, or `None` when
    /// both queues are empty. Drives event-driven callers: when all cores
    /// are blocked, advance the controller exactly this far.
    pub fn next_issue_time(&self) -> Option<u64> {
        if self.drain_active() {
            return self.pick_candidate(&self.wq).map(|(_, _, t)| t);
        }
        let a = self.pick_candidate(&self.rq).map(|(_, _, t)| t);
        let b = self
            .write_timeout_at()
            .and_then(|allow| self.pick_candidate(&self.wq).map(|(_, _, t)| t.max(allow)));
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// Whether the next scheduling decision will be in drain mode (the
    /// hysteresis of [`MemoryController::update_drain_mode`], evaluated
    /// without mutating state).
    fn drain_active(&self) -> bool {
        if self.draining {
            self.wq.len() > self.cfg.wq_low
        } else {
            self.wq.len() >= self.cfg.wq_high
                || (self.rq.is_empty() && self.wq.len() >= self.cfg.wq_min_drain)
        }
    }

    /// Processes all work schedulable up to time `t` (picoseconds),
    /// advancing the controller clock to `t`.
    pub fn advance_to(&mut self, t: u64) {
        loop {
            self.update_drain_mode();
            // Strict two-mode scheduling. Drain mode services writes
            // exclusively: an uninterrupted burst keeps each write row
            // open, which preserves row locality and lets the EUR
            // coalesce VLEW updates. Outside drain mode reads are
            // serviced; a lone write escapes only via the aging timeout.
            let candidate = if self.draining {
                self.pick_candidate(&self.wq)
            } else {
                let r = self.pick_candidate(&self.rq);
                let w = self.write_timeout_at().and_then(|allow| {
                    self.pick_candidate(&self.wq)
                        .map(|(i, q, issue)| (i, q, issue.max(allow)))
                });
                // Earliest wins; reads take ties. This matters for
                // liveness: a timed-out write must not starve behind a
                // read that cannot issue yet.
                match (r, w) {
                    (Some(r), Some(w)) => {
                        if r.2 <= w.2 {
                            Some(r)
                        } else {
                            Some(w)
                        }
                    }
                    (r, w) => r.or(w),
                }
            };
            let Some((qidx, from_wq, issue_ps)) = candidate else {
                break;
            };
            if issue_ps > t {
                break;
            }
            self.issue(qidx, from_wq);
        }
        self.time_ps = self.time_ps.max(t);
    }

    /// The aging bound for buffered writes outside drain mode: the oldest
    /// write may issue at `arrival + timeout`. `None` when the write
    /// queue is empty.
    fn write_timeout_at(&self) -> Option<u64> {
        self.wq
            .iter()
            .map(|p| p.arrival_ps)
            .min()
            .map(|oldest| oldest + self.cfg.write_timeout_ps)
    }

    fn update_drain_mode(&mut self) {
        if self.draining {
            if self.wq.len() <= self.cfg.wq_low {
                self.draining = false;
            }
        } else if self.wq.len() >= self.cfg.wq_high
            || (self.rq.is_empty() && self.wq.len() >= self.cfg.wq_min_drain)
        {
            self.draining = true;
            self.stats.drain_entries += 1;
        }
    }

    /// Plans every entry of `queue` and picks the FR-FCFS winner:
    /// earliest issue; among ties, row hits first, then oldest arrival.
    /// Returns `(index, is_write_queue, issue_ps)`; the flag reflects
    /// whether `queue` is this controller's write queue.
    fn pick_candidate(&self, queue: &[Pending]) -> Option<(usize, bool, u64)> {
        let mut best: Option<(usize, u64, bool, u64)> = None; // idx, issue, hit, arrival
        for (i, p) in queue.iter().enumerate() {
            let (bank_idx, row, _) = self.cfg.map_addr(p.req.block_addr);
            let rank = Self::rank_idx(p.req.rank);
            let timing = self.cfg.timing(p.req.rank);
            let plan = self.banks[rank][bank_idx].plan(
                row,
                p.req.is_write,
                p.arrival_ps.max(self.time_ps),
                &timing,
                self.cfg.row_idle_close_ps,
            );
            // Bus constraint: the data burst must start after bus_free.
            let burst_start = plan.complete_ps - timing.t_burst;
            let shift = self.bus_free_ps.saturating_sub(burst_start);
            let issue = plan.issue_ps + shift;
            let hit = plan.class == AccessClass::RowHit;
            let better = match &best {
                None => true,
                Some((_, b_issue, b_hit, b_arr)) => {
                    (issue, !hit, p.arrival_ps) < (*b_issue, !b_hit, *b_arr)
                }
            };
            if better {
                best = Some((i, issue, hit, p.arrival_ps));
            }
        }
        let is_wq = queue.as_ptr() == self.wq.as_ptr();
        best.map(|(i, issue, _, _)| (i, is_wq, issue))
    }

    fn issue(&mut self, qidx: usize, from_wq: bool) {
        let p = if from_wq {
            self.wq.remove(qidx)
        } else {
            self.rq.remove(qidx)
        };
        let (bank_idx, row, _) = self.cfg.map_addr(p.req.block_addr);
        let rank = Self::rank_idx(p.req.rank);
        let timing = self.cfg.timing(p.req.rank);
        let mut plan = self.banks[rank][bank_idx].plan(
            row,
            p.req.is_write,
            p.arrival_ps.max(self.time_ps),
            &timing,
            self.cfg.row_idle_close_ps,
        );
        // Re-apply the bus shift used during selection.
        let burst_start = plan.complete_ps - timing.t_burst;
        let shift = self.bus_free_ps.saturating_sub(burst_start);
        plan.issue_ps += shift;
        plan.complete_ps += shift;

        // EUR: a closing NVRAM row drains its coalesced code-bit updates.
        if p.req.rank == RankKind::Nvram {
            if let Some(closed) = plan.closed_row {
                self.eur.drain_row(bank_idx, closed);
            }
            if p.req.is_write {
                let vlew = self.cfg.vlew_index(p.req.block_addr);
                self.eur.record_write(bank_idx, row, vlew);
            }
        }

        if p.req.is_write {
            self.stats.write_issues += 1;
            if plan.class == AccessClass::RowHit {
                self.stats.write_row_hits += 1;
            }
        }
        match plan.class {
            AccessClass::RowHit => self.stats.row_hits += 1,
            AccessClass::RowClosed => self.stats.row_closed += 1,
            AccessClass::RowConflict => self.stats.row_conflicts += 1,
        }
        self.banks[rank][bank_idx].commit(row, p.req.is_write, &plan, &timing);
        self.bus_free_ps = plan.complete_ps;
        self.time_ps = self.time_ps.max(plan.issue_ps);
        self.stats.count_access(p.req.rank, p.req.is_write);
        if !p.req.is_write {
            self.stats.read_latency_sum_ps += plan.complete_ps - p.arrival_ps;
            self.stats.read_latency_samples += 1;
        }
        self.completions.push(Completion {
            id: p.req.id,
            is_write: p.req.is_write,
            finish_ps: plan.complete_ps,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NvramTiming, NS};

    fn cfg() -> MemConfig {
        MemConfig::paper_hybrid(NvramTiming::reram())
    }

    fn run_until_idle(mc: &mut MemoryController) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut t = mc.now_ps();
        while mc.pending() > 0 {
            t += 10_000 * NS;
            mc.advance_to(t);
            out.extend(mc.drain_completions());
        }
        out
    }

    #[test]
    fn single_dram_read_latency() {
        let mut mc = MemoryController::new(cfg());
        mc.enqueue(MemRequest::read(1, 0, RankKind::Dram)).unwrap();
        let done = run_until_idle(&mut mc);
        let t = cfg().timing(RankKind::Dram);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finish_ps, t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn nvram_read_slower_than_dram() {
        let mut mc = MemoryController::new(cfg());
        mc.enqueue(MemRequest::read(1, 0, RankKind::Dram)).unwrap();
        mc.enqueue(MemRequest::read(2, 1 << 20, RankKind::Nvram))
            .unwrap();
        let done = run_until_idle(&mut mc);
        let dram = done.iter().find(|c| c.id == 1).unwrap().finish_ps;
        let nvram = done.iter().find(|c| c.id == 2).unwrap().finish_ps;
        assert!(nvram > dram + 90 * NS, "dram={dram} nvram={nvram}");
    }

    #[test]
    fn row_hits_are_faster() {
        let mut mc = MemoryController::new(cfg());
        // Two reads in the same row.
        mc.enqueue(MemRequest::read(1, 0, RankKind::Dram)).unwrap();
        mc.enqueue(MemRequest::read(2, 1, RankKind::Dram)).unwrap();
        let done = run_until_idle(&mut mc);
        assert_eq!(mc.stats().row_hits, 1);
        let t = cfg().timing(RankKind::Dram);
        let first = done.iter().map(|c| c.finish_ps).min().unwrap();
        let second = done.iter().map(|c| c.finish_ps).max().unwrap();
        // The second access pays only CAS+burst beyond bus serialization.
        assert!(second - first <= t.t_cas + t.t_burst);
    }

    #[test]
    fn bank_parallelism_overlaps() {
        let mut mc = MemoryController::new(cfg());
        // Same rank, different banks (128 blocks apart).
        mc.enqueue(MemRequest::read(1, 0, RankKind::Dram)).unwrap();
        mc.enqueue(MemRequest::read(2, 128, RankKind::Dram))
            .unwrap();
        let done = run_until_idle(&mut mc);
        let t = cfg().timing(RankKind::Dram);
        let single = t.t_rcd + t.t_cas + t.t_burst;
        let last = done.iter().map(|c| c.finish_ps).max().unwrap();
        // Overlapped: far less than 2x serial latency.
        assert!(
            last < single + t.t_burst + NS,
            "last={last}, single={single}"
        );
    }

    #[test]
    fn queue_full_rejects() {
        let mut mc = MemoryController::new(cfg());
        for i in 0..128 {
            mc.enqueue(MemRequest::read(i, i, RankKind::Dram)).unwrap();
        }
        assert!(!mc.can_accept_read());
        assert_eq!(
            mc.enqueue(MemRequest::read(999, 0, RankKind::Dram)),
            Err(QueueFull)
        );
        // Writes still accepted.
        assert!(mc.can_accept_write());
    }

    #[test]
    fn reads_prioritized_over_writes_until_watermark() {
        let mut mc = MemoryController::new(cfg());
        for i in 0..10 {
            mc.enqueue(MemRequest::write(1000 + i, 4096 + i, RankKind::Dram))
                .unwrap();
        }
        mc.enqueue(MemRequest::read(1, 0, RankKind::Dram)).unwrap();
        mc.advance_to(200 * NS);
        let done = mc.drain_completions();
        let read_done = done.iter().find(|c| c.id == 1);
        assert!(read_done.is_some(), "read must be served promptly");
        assert_eq!(mc.stats().drain_entries, 0);
    }

    #[test]
    fn write_drain_mode_triggers_at_watermark() {
        let mut mc = MemoryController::new(cfg());
        for i in 0..100 {
            mc.enqueue(MemRequest::write(i, i * 7, RankKind::Dram))
                .unwrap();
        }
        let _ = run_until_idle(&mut mc);
        assert!(mc.stats().drain_entries >= 1);
        assert_eq!(mc.stats().writes_for(RankKind::Dram), 100);
    }

    #[test]
    fn nvram_write_recovery_delays_row_conflict_read() {
        let mut mc = MemoryController::new(cfg());
        // Write to NVRAM bank 0, row 0.
        mc.enqueue(MemRequest::write(1, 0, RankKind::Nvram))
            .unwrap();
        let done1 = run_until_idle(&mut mc);
        let w_done = done1[0].finish_ps;
        // Read a different row in the same bank: must wait out tWR=300ns.
        mc.enqueue(MemRequest::read(2, 128 * 16, RankKind::Nvram))
            .unwrap();
        let done2 = run_until_idle(&mut mc);
        let t = cfg().timing(RankKind::Nvram);
        assert!(
            done2[0].finish_ps >= w_done + t.t_wr,
            "read at {} vs write recovery {}",
            done2[0].finish_ps,
            w_done + t.t_wr
        );
    }

    #[test]
    fn eur_counts_c_factor() {
        let mut mc = MemoryController::new(cfg());
        // 32 sequential writes, all in VLEW 0 of row 0.
        for i in 0..32 {
            mc.enqueue(MemRequest::write(i, i, RankKind::Nvram))
                .unwrap();
        }
        let _ = run_until_idle(&mut mc);
        mc.finalize_eur();
        assert_eq!(mc.eur().pm_writes(), 32);
        assert_eq!(mc.eur().drains(), 1, "all 32 coalesce into one register");
        assert!((mc.eur().c_factor() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn eur_drains_on_row_conflict() {
        let mut mc = MemoryController::new(cfg());
        mc.enqueue(MemRequest::write(1, 0, RankKind::Nvram))
            .unwrap();
        let _ = run_until_idle(&mut mc);
        assert_eq!(mc.eur().occupancy(), 1);
        // A conflicting row in the same bank forces the close + drain.
        mc.enqueue(MemRequest::read(2, 128 * 16, RankKind::Nvram))
            .unwrap();
        let _ = run_until_idle(&mut mc);
        assert_eq!(mc.eur().occupancy(), 0);
        assert_eq!(mc.eur().drains(), 1);
    }

    #[test]
    fn proposal_write_slowing_increases_write_impact() {
        // Same request stream; proposal config has slower NVRAM writes, so
        // the total completion time must grow.
        let stream: Vec<MemRequest> = (0..64)
            .map(|i| MemRequest::write(i, i * 129, RankKind::Nvram))
            .collect();
        let run = |cfg: MemConfig| {
            let mut mc = MemoryController::new(cfg);
            for r in &stream {
                mc.enqueue(*r).unwrap();
            }
            run_until_idle(&mut mc)
                .iter()
                .map(|c| c.finish_ps)
                .max()
                .unwrap()
        };
        let base = run(cfg());
        let slowed = run(cfg().with_proposal_write_slowing(0.5));
        assert!(slowed > base, "base={base} slowed={slowed}");
    }

    #[test]
    fn latency_stats_accumulate() {
        let mut mc = MemoryController::new(cfg());
        mc.enqueue(MemRequest::read(1, 0, RankKind::Dram)).unwrap();
        mc.enqueue(MemRequest::read(2, 500_000, RankKind::Dram))
            .unwrap();
        let _ = run_until_idle(&mut mc);
        assert_eq!(mc.stats().read_latency_samples, 2);
        assert!(mc.stats().avg_read_latency_ps() > 0.0);
    }
}
