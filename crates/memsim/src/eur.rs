//! The ECC Update Registerfile (EUR): per-chip coalescing of VLEW
//! code-bit updates within an open row (paper §V-D, Figure 11).
//!
//! Each register accumulates the bitwise sum of all code-bit updates for
//! one VLEW of an open row; when the row closes, every nonempty register
//! is drained (one internal read-modify-write of the 33 B code area per
//! register). The ratio of drains to persistent-memory writes is the
//! paper's **C factor** (Figure 15), which governs the iso-lifetime write
//! slowing.
//!
//! Timing-wise the registerfile is free (updates happen during the write
//! burst); lifetime-wise each drain writes 33 extra bytes per chip. This
//! model tracks drain counts; bytes-written accounting is the caller's.

use std::collections::HashSet;

/// EUR occupancy tracker for one rank.
///
/// Registers are keyed by `(bank, row, vlew_index)`. With the EUR
/// disabled (ablation), every write drains immediately: C approaches 1.
#[derive(Debug, Clone, Default)]
pub struct Eur {
    dirty: HashSet<(usize, u64, usize)>,
    enabled: bool,
    pm_writes: u64,
    drains: u64,
}

impl Eur {
    /// Creates an EUR model; `enabled == false` gives the no-coalescing
    /// ablation in which every write costs one code-bit update.
    pub fn new(enabled: bool) -> Self {
        Eur {
            dirty: HashSet::new(),
            enabled,
            pm_writes: 0,
            drains: 0,
        }
    }

    /// Records a persistent-memory write to `(bank, row, vlew_index)`.
    pub fn record_write(&mut self, bank: usize, row: u64, vlew_index: usize) {
        self.pm_writes += 1;
        if self.enabled {
            self.dirty.insert((bank, row, vlew_index));
        } else {
            self.drains += 1;
        }
    }

    /// Drains all registers belonging to `(bank, row)` (the row is
    /// closing); returns how many registers were drained.
    pub fn drain_row(&mut self, bank: usize, row: u64) -> usize {
        if !self.enabled {
            return 0;
        }
        let before = self.dirty.len();
        self.dirty.retain(|&(b, r, _)| !(b == bank && r == row));
        let n = before - self.dirty.len();
        self.drains += n as u64;
        n
    }

    /// Drains everything (e.g. at simulation end), returning the count.
    pub fn drain_all(&mut self) -> usize {
        let n = self.dirty.len();
        self.dirty.clear();
        self.drains += n as u64;
        n
    }

    /// Registers currently dirty.
    pub fn occupancy(&self) -> usize {
        self.dirty.len()
    }

    /// Total persistent-memory writes observed.
    pub fn pm_writes(&self) -> u64 {
        self.pm_writes
    }

    /// Total code-bit drains performed.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// The measured C factor: code-bit writes per PM write request
    /// (Figure 15). Zero when no writes were observed. Callers measuring
    /// C at simulation end should [`Eur::drain_all`] first.
    pub fn c_factor(&self) -> f64 {
        if self.pm_writes == 0 {
            0.0
        } else {
            self.drains as f64 / self.pm_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_writes_to_same_vlew() {
        let mut eur = Eur::new(true);
        for _ in 0..32 {
            eur.record_write(0, 7, 2);
        }
        assert_eq!(eur.occupancy(), 1);
        assert_eq!(eur.drain_row(0, 7), 1);
        assert_eq!(eur.c_factor(), 1.0 / 32.0);
    }

    #[test]
    fn separate_vlews_drain_separately() {
        let mut eur = Eur::new(true);
        eur.record_write(0, 7, 0);
        eur.record_write(0, 7, 1);
        eur.record_write(0, 8, 0);
        assert_eq!(eur.drain_row(0, 7), 2);
        assert_eq!(eur.occupancy(), 1);
        assert_eq!(eur.drain_all(), 1);
        assert_eq!(eur.drains(), 3);
        assert_eq!(eur.c_factor(), 1.0);
    }

    #[test]
    fn disabled_eur_counts_every_write() {
        let mut eur = Eur::new(false);
        for _ in 0..10 {
            eur.record_write(1, 1, 1);
        }
        assert_eq!(eur.occupancy(), 0);
        assert_eq!(eur.drain_row(1, 1), 0);
        assert_eq!(eur.c_factor(), 1.0);
    }

    #[test]
    fn c_factor_zero_without_writes() {
        assert_eq!(Eur::new(true).c_factor(), 0.0);
    }

    #[test]
    fn spatial_locality_lowers_c() {
        // Sequential writes across a row's 4 VLEWs: C = 4/128.
        let mut eur = Eur::new(true);
        for blk in 0..128usize {
            eur.record_write(0, 0, blk / 32);
        }
        eur.drain_all();
        assert!((eur.c_factor() - 4.0 / 128.0).abs() < 1e-12);

        // Scattered single writes to distinct rows: C = 1.
        let mut eur2 = Eur::new(true);
        for row in 0..100u64 {
            eur2.record_write(0, row, 0);
        }
        eur2.drain_all();
        assert_eq!(eur2.c_factor(), 1.0);
    }
}
