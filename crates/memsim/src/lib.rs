//! Bank/row-accurate memory-system timing simulator for hybrid
//! DRAM + NVRAM channels.
//!
//! Reproduces the memory substrate the paper evaluates on (Ramulator-in-
//! gem5, §VI): one 2400 MT/s channel with one DRAM rank and one persistent
//! memory (NVRAM) rank, 16 banks per rank, FR-FCFS scheduling, 128-entry
//! read/write queues, and a closed-page policy that closes a row after
//! 50 ns of inactivity. NVRAM ranks override `tRCD`/`tWR` with
//! technology-specific read/write latencies (ReRAM 120/300 ns, PCM
//! 250/600 ns), as the paper does.
//!
//! The proposal's hardware hooks are modeled where the paper puts them:
//!
//! * a per-chip **ECC Update Registerfile** ([`Eur`]) coalescing VLEW
//!   code-bit updates per open row, drained when the row closes — its
//!   drain count yields the per-workload **C factor** of Figure 15;
//! * a `tWR` multiplier for iso-lifetime write slowing (§V-E/§VI);
//! * per-request force-fetch hooks for VLEW fallback reads (§VI).
//!
//! # Examples
//!
//! ```
//! use pmck_memsim::{MemConfig, MemoryController, MemRequest, RankKind, NS};
//!
//! let cfg = MemConfig::paper_hybrid(pmck_memsim::NvramTiming::reram());
//! let mut mc = MemoryController::new(cfg);
//! mc.enqueue(MemRequest::read(0, 42, RankKind::Nvram)).unwrap();
//! mc.advance_to(2_000 * NS);
//! let done = mc.drain_completions();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].finish_ps > 0);
//! ```

mod bank;
mod config;
mod controller;
mod eur;
mod faults;
mod request;
mod stats;

pub use bank::BankState;
pub use config::{MemConfig, NvramTiming, RankKind, Timing, NS, PS_PER_NS};
pub use controller::{Completion, MemoryController, QueueFull};
pub use eur::Eur;
pub use faults::{FaultTimeline, STRIPE_BLOCKS};
pub use request::{MemRequest, ReqId};
pub use stats::MemStats;
