//! Memory-system configuration (paper Table I and §VI).

/// Picoseconds per nanosecond; all simulator times are `u64` picoseconds.
pub const PS_PER_NS: u64 = 1000;

/// One nanosecond in simulator time units.
pub const NS: u64 = PS_PER_NS;

/// Which rank a request targets in the paper's hybrid channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankKind {
    /// The volatile DRAM rank.
    Dram,
    /// The persistent-memory NVRAM rank.
    Nvram,
}

/// Core DDR-style timing parameters, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Activate-to-read delay (row open). NVRAM ranks carry the
    /// technology read latency here, as in the paper.
    pub t_rcd: u64,
    /// Column access (CAS) latency.
    pub t_cas: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Data burst duration on the bus (BL8 at 2400 MT/s ≈ 3.33 ns).
    pub t_burst: u64,
    /// Write recovery: delay after a write burst before the row may be
    /// precharged. NVRAM ranks carry the technology write latency here.
    pub t_wr: u64,
}

impl Timing {
    /// DDR4-2400-class DRAM timing (CL17-equivalent, ~14.2 ns phases).
    pub fn ddr4_2400() -> Self {
        Timing {
            t_rcd: 14_160,
            t_cas: 14_160,
            t_rp: 14_160,
            t_burst: 3_330,
            t_wr: 15_000,
        }
    }
}

/// NVRAM read/write latencies, applied as `tRCD`/`tWR` overrides
/// (the paper's §VI modeling, following Lee et al. \[42\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvramTiming {
    /// Array read latency, used as `tRCD` (picoseconds).
    pub read_ps: u64,
    /// Array write latency, used as `tWR` (picoseconds).
    pub write_ps: u64,
}

impl NvramTiming {
    /// ReRAM: 120 ns read, 300 ns write (paper §VI, following \[89\]).
    pub fn reram() -> Self {
        NvramTiming {
            read_ps: 120 * NS,
            write_ps: 300 * NS,
        }
    }

    /// PCM: 250 ns read, 600 ns write (paper §VI, following \[60\]).
    pub fn pcm() -> Self {
        NvramTiming {
            read_ps: 250 * NS,
            write_ps: 600 * NS,
        }
    }

    /// The timing for an NVRAM rank: DDR4 structure with `tRCD`/`tWR`
    /// replaced by the technology latencies.
    pub fn as_timing(self) -> Timing {
        Timing {
            t_rcd: self.read_ps,
            t_wr: self.write_ps,
            ..Timing::ddr4_2400()
        }
    }
}

/// Full memory-controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// DRAM-rank timing.
    pub dram: Timing,
    /// NVRAM-rank timing.
    pub nvram: Timing,
    /// Banks per rank (Table I: 16).
    pub banks_per_rank: usize,
    /// 64 B blocks per row per rank (8 KB rank row = 128 blocks).
    pub row_blocks: usize,
    /// Read queue capacity (Table I: 128).
    pub read_queue: usize,
    /// Write queue capacity (Table I: 128).
    pub write_queue: usize,
    /// Write-drain high watermark (start draining writes).
    pub wq_high: usize,
    /// Write-drain low watermark (stop draining).
    pub wq_low: usize,
    /// Minimum buffered writes before opportunistic (non-drain) write
    /// issue is allowed — batching writes preserves their row locality,
    /// which both reduces read interference and lets the EUR coalesce
    /// VLEW updates.
    pub wq_min_drain: usize,
    /// Forward-progress bound: a write older than this issues regardless
    /// of batch size.
    pub write_timeout_ps: u64,
    /// Idle time after which an open row is closed (50 ns, Ramulator's
    /// default timeout policy used in §VI).
    pub row_idle_close_ps: u64,
    /// `tWR` multiplier on the NVRAM rank (×1000, fixed point) for the
    /// proposal's iso-lifetime write slowing: `1 + (33/8)·C`, plus the
    /// 20 ns encoder/internal-read adder below.
    pub nvram_twr_mult_milli: u64,
    /// Flat addition to NVRAM `tWR` in ps (the paper's pessimistic 20 ns
    /// for BCH encoding and internal old-data read).
    pub nvram_twr_add_ps: u64,
    /// Whether the EUR (per-row VLEW code-bit update coalescing) is
    /// modeled; when off, every PM write counts one VLEW code write
    /// (the no-coalescing ablation).
    pub eur_enabled: bool,
    /// Blocks covered by one VLEW within a row (256 B / 8 B = 32).
    pub vlew_blocks: usize,
}

impl MemConfig {
    /// The paper's hybrid channel: DDR4-2400 DRAM rank + NVRAM rank with
    /// the given technology timing, 16 banks each, 128-entry queues,
    /// closed-page after 50 ns.
    pub fn paper_hybrid(nvram: NvramTiming) -> Self {
        MemConfig {
            dram: Timing::ddr4_2400(),
            nvram: nvram.as_timing(),
            banks_per_rank: 16,
            row_blocks: 128,
            read_queue: 128,
            write_queue: 128,
            wq_high: 100,
            wq_low: 32,
            wq_min_drain: 48,
            write_timeout_ps: 10_000 * NS,
            row_idle_close_ps: 50 * NS,
            nvram_twr_mult_milli: 1000,
            nvram_twr_add_ps: 0,
            eur_enabled: true,
            vlew_blocks: 32,
        }
    }

    /// Applies the proposal's iso-lifetime write slowing for a measured C
    /// factor: `tWR ← tWR · (1 + (33/8)·C) + 20 ns` (§V-E, §VI).
    pub fn with_proposal_write_slowing(mut self, c_factor: f64) -> Self {
        assert!(c_factor >= 0.0, "C factor must be nonnegative");
        self.nvram_twr_mult_milli = ((1.0 + 33.0 / 8.0 * c_factor) * 1000.0).round() as u64;
        self.nvram_twr_add_ps = 20 * NS;
        self
    }

    /// The effective timing for a rank, with NVRAM write slowing applied.
    pub fn timing(&self, rank: RankKind) -> Timing {
        match rank {
            RankKind::Dram => self.dram,
            RankKind::Nvram => {
                let mut t = self.nvram;
                t.t_wr = t.t_wr * self.nvram_twr_mult_milli / 1000 + self.nvram_twr_add_ps;
                t
            }
        }
    }

    /// Decomposes a block address into `(bank, row, block-in-row)`.
    /// Sequential blocks fill a row (row-buffer locality), rows interleave
    /// across banks.
    pub fn map_addr(&self, block_addr: u64) -> (usize, u64, usize) {
        let col = (block_addr % self.row_blocks as u64) as usize;
        let bank = ((block_addr / self.row_blocks as u64) % self.banks_per_rank as u64) as usize;
        let row = block_addr / (self.row_blocks as u64 * self.banks_per_rank as u64);
        (bank, row, col)
    }

    /// The VLEW index of a block within its row (`col / 32`).
    pub fn vlew_index(&self, block_addr: u64) -> usize {
        let (_, _, col) = self.map_addr(block_addr);
        col / self.vlew_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let cfg = MemConfig::paper_hybrid(NvramTiming::reram());
        assert_eq!(cfg.banks_per_rank, 16);
        assert_eq!(cfg.read_queue, 128);
        assert_eq!(cfg.timing(RankKind::Nvram).t_rcd, 120 * NS);
        assert_eq!(cfg.timing(RankKind::Nvram).t_wr, 300 * NS);
        assert_eq!(cfg.row_idle_close_ps, 50 * NS);
    }

    #[test]
    fn pcm_timing() {
        let t = NvramTiming::pcm().as_timing();
        assert_eq!(t.t_rcd, 250 * NS);
        assert_eq!(t.t_wr, 600 * NS);
        assert_eq!(t.t_cas, Timing::ddr4_2400().t_cas);
    }

    #[test]
    fn write_slowing_math() {
        // C = 0.2 → multiplier 1.825, +20 ns.
        let cfg = MemConfig::paper_hybrid(NvramTiming::reram()).with_proposal_write_slowing(0.2);
        let t = cfg.timing(RankKind::Nvram);
        assert_eq!(t.t_wr, 300 * NS * 1825 / 1000 + 20 * NS);
        // DRAM unaffected.
        assert_eq!(cfg.timing(RankKind::Dram).t_wr, 15 * NS);
    }

    #[test]
    fn address_mapping_row_locality() {
        let cfg = MemConfig::paper_hybrid(NvramTiming::reram());
        let (b0, r0, c0) = cfg.map_addr(0);
        let (b1, r1, c1) = cfg.map_addr(1);
        assert_eq!((b0, r0), (b1, r1), "adjacent blocks share a row");
        assert_eq!(c1, c0 + 1);
        let (b2, r2, _) = cfg.map_addr(128);
        assert_eq!(r2, r0);
        assert_eq!(b2, b0 + 1, "next row chunk goes to the next bank");
        let (_, r3, _) = cfg.map_addr(128 * 16);
        assert_eq!(r3, r0 + 1);
    }

    #[test]
    fn vlew_index_spans_32_blocks() {
        let cfg = MemConfig::paper_hybrid(NvramTiming::reram());
        assert_eq!(cfg.vlew_index(0), 0);
        assert_eq!(cfg.vlew_index(31), 0);
        assert_eq!(cfg.vlew_index(32), 1);
        assert_eq!(cfg.vlew_index(127), 3);
    }
}
