//! Memory-controller statistics.

use crate::config::RankKind;

/// Counters accumulated by the memory controller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// Completed reads per rank `[dram, nvram]`.
    pub reads: [u64; 2],
    /// Completed writes per rank `[dram, nvram]`.
    pub writes: [u64; 2],
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_closed: u64,
    /// Row conflicts (explicit precharge needed).
    pub row_conflicts: u64,
    /// Sum of read latencies (enqueue → data) in ps, for averages.
    pub read_latency_sum_ps: u64,
    /// Number of read latency samples.
    pub read_latency_samples: u64,
    /// Times the controller entered write-drain mode.
    pub drain_entries: u64,
    /// Row-buffer hits among writes only (write-batching diagnostic).
    pub write_row_hits: u64,
    /// Issued writes (write-batching diagnostic).
    pub write_issues: u64,
}

impl MemStats {
    fn rank_idx(rank: RankKind) -> usize {
        match rank {
            RankKind::Dram => 0,
            RankKind::Nvram => 1,
        }
    }

    pub(crate) fn count_access(&mut self, rank: RankKind, is_write: bool) {
        let i = Self::rank_idx(rank);
        if is_write {
            self.writes[i] += 1;
        } else {
            self.reads[i] += 1;
        }
    }

    /// Completed reads for a rank.
    pub fn reads_for(&self, rank: RankKind) -> u64 {
        self.reads[Self::rank_idx(rank)]
    }

    /// Completed writes for a rank.
    pub fn writes_for(&self, rank: RankKind) -> u64 {
        self.writes[Self::rank_idx(rank)]
    }

    /// Average read latency in picoseconds (0 if no samples).
    pub fn avg_read_latency_ps(&self) -> f64 {
        if self.read_latency_samples == 0 {
            0.0
        } else {
            self.read_latency_sum_ps as f64 / self.read_latency_samples as f64
        }
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Publishes every counter (and the derived rates as gauges) into
    /// `reg` under `<prefix>.<name>`.
    pub fn publish_metrics(&self, reg: &pmck_rt::metrics::MetricsRegistry, prefix: &str) {
        let c = |name: &str, v: u64| reg.set_counter(&format!("{prefix}.{name}"), v);
        c("dram_reads", self.reads[0]);
        c("pm_reads", self.reads[1]);
        c("dram_writes", self.writes[0]);
        c("pm_writes", self.writes[1]);
        c("row_hits", self.row_hits);
        c("row_closed", self.row_closed);
        c("row_conflicts", self.row_conflicts);
        c("drain_entries", self.drain_entries);
        c("write_row_hits", self.write_row_hits);
        c("write_issues", self.write_issues);
        reg.set_gauge(&format!("{prefix}.row_hit_rate"), self.row_hit_rate());
        reg.set_gauge(
            &format!("{prefix}.avg_read_latency_ps"),
            self.avg_read_latency_ps(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_rates() {
        let mut s = MemStats::default();
        s.count_access(RankKind::Dram, false);
        s.count_access(RankKind::Nvram, true);
        s.count_access(RankKind::Nvram, true);
        assert_eq!(s.reads_for(RankKind::Dram), 1);
        assert_eq!(s.writes_for(RankKind::Nvram), 2);
        assert_eq!(s.avg_read_latency_ps(), 0.0);
        s.row_hits = 3;
        s.row_closed = 1;
        assert_eq!(s.row_hit_rate(), 0.75);
    }

    #[test]
    fn publishes_metrics() {
        let mut s = MemStats::default();
        s.count_access(RankKind::Nvram, true);
        s.row_hits = 3;
        s.row_closed = 1;
        let reg = pmck_rt::metrics::MetricsRegistry::new();
        s.publish_metrics(&reg, "mem");
        assert_eq!(reg.counter("mem.pm_writes"), 1);
        assert_eq!(reg.gauge("mem.row_hit_rate"), Some(0.75));
    }
}
