//! Memory request descriptors.

use crate::config::RankKind;

/// An opaque request identifier chosen by the caller, echoed back in the
/// matching [`crate::Completion`].
pub type ReqId = u64;

/// A 64 B block request presented to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier, echoed in the completion.
    pub id: ReqId,
    /// Block address (64 B granularity) within the target rank.
    pub block_addr: u64,
    /// Whether this is a write.
    pub is_write: bool,
    /// Target rank.
    pub rank: RankKind,
}

impl MemRequest {
    /// A block read.
    pub fn read(id: ReqId, block_addr: u64, rank: RankKind) -> Self {
        MemRequest {
            id,
            block_addr,
            is_write: false,
            rank,
        }
    }

    /// A block write.
    pub fn write(id: ReqId, block_addr: u64, rank: RankKind) -> Self {
        MemRequest {
            id,
            block_addr,
            is_write: true,
            rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemRequest::read(7, 100, RankKind::Dram);
        assert!(!r.is_write);
        assert_eq!(r.id, 7);
        let w = MemRequest::write(8, 200, RankKind::Nvram);
        assert!(w.is_write);
        assert_eq!(w.rank, RankKind::Nvram);
    }
}
