//! Per-bank row-buffer state machine with timeout-based row closure.

use crate::config::Timing;

/// How an access found the bank's row buffer.
// "Row hit / row closed / row conflict" is the standard DRAM vocabulary;
// stripping the prefix would lose the domain terms.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// The target row was open: column access only.
    RowHit,
    /// The bank was precharged (row closed): activate + column access.
    RowClosed,
    /// A different row was open: precharge + activate + column access.
    RowConflict,
}

/// State of one bank: the open row (if any), when the bank is next able
/// to accept a command, and the bookkeeping for timeout-based closure.
#[derive(Debug, Clone, Default)]
pub struct BankState {
    /// Currently open row, if the row buffer is valid.
    open_row: Option<u64>,
    /// Earliest time the bank can issue the next column command.
    busy_until_ps: u64,
    /// Earliest time the row may be precharged (write recovery).
    precharge_ok_ps: u64,
    /// Last column-command completion (starts the idle-close timer).
    last_activity_ps: u64,
}

/// The outcome of planning an access on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPlan {
    /// When the column command can issue.
    pub issue_ps: u64,
    /// When the data burst completes (read data available / write data
    /// absorbed into the row buffer).
    pub complete_ps: u64,
    /// How the row buffer was found.
    pub class: AccessClass,
    /// Whether this access implicitly closed a previously open row (by
    /// timeout or by conflict precharge) — the EUR drains at that point.
    pub closed_row: Option<u64>,
}

impl BankState {
    /// A fresh bank: precharged, idle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any (after applying the idle-close
    /// timeout at time `now`).
    pub fn open_row_at(&self, now_ps: u64, idle_close_ps: u64) -> Option<u64> {
        let row = self.open_row?;
        let close_at = self.close_time(idle_close_ps)?;
        if now_ps >= close_at {
            None
        } else {
            Some(row)
        }
    }

    /// When the open row will be closed by the idle timer (respecting
    /// write recovery), or `None` if no row is open.
    pub fn close_time(&self, idle_close_ps: u64) -> Option<u64> {
        self.open_row?;
        Some((self.last_activity_ps + idle_close_ps).max(self.precharge_ok_ps))
    }

    /// Plans an access to `row` no earlier than `earliest_ps`, without
    /// committing it. `is_write` selects write recovery accounting.
    pub fn plan(
        &self,
        row: u64,
        is_write: bool,
        earliest_ps: u64,
        timing: &Timing,
        idle_close_ps: u64,
    ) -> AccessPlan {
        let _ = is_write;
        let t0 = earliest_ps.max(self.busy_until_ps);
        let (class, issue_ps, closed_row) = match self.open_row {
            Some(open) => {
                let close_at = self
                    .close_time(idle_close_ps)
                    .expect("row open implies close time");
                if t0 >= close_at {
                    // Closed in the background by the idle timer.
                    (AccessClass::RowClosed, t0, Some(open))
                } else if open == row {
                    (AccessClass::RowHit, t0, None)
                } else {
                    // Explicit precharge: must respect write recovery.
                    let pre_start = t0.max(self.precharge_ok_ps);
                    (AccessClass::RowConflict, pre_start, Some(open))
                }
            }
            None => (AccessClass::RowClosed, t0, None),
        };
        let access = match class {
            AccessClass::RowHit => timing.t_cas + timing.t_burst,
            AccessClass::RowClosed => timing.t_rcd + timing.t_cas + timing.t_burst,
            AccessClass::RowConflict => timing.t_rp + timing.t_rcd + timing.t_cas + timing.t_burst,
        };
        AccessPlan {
            issue_ps,
            complete_ps: issue_ps + access,
            class,
            closed_row,
        }
    }

    /// Commits a previously planned access: updates the open row, busy
    /// time, write-recovery window, and idle timer.
    pub fn commit(&mut self, row: u64, is_write: bool, plan: &AccessPlan, timing: &Timing) {
        self.open_row = Some(row);
        self.busy_until_ps = plan.complete_ps;
        self.last_activity_ps = plan.complete_ps;
        if is_write {
            // The row may not be precharged until write recovery elapses.
            self.precharge_ok_ps = plan.complete_ps + timing.t_wr;
            // The next *activate-requiring* command is also blocked, which
            // `plan` realizes through precharge_ok on conflict and the
            // close_time floor on timeout closure.
        } else {
            self.precharge_ok_ps = self.precharge_ok_ps.max(plan.complete_ps);
        }
    }

    /// Forces the row closed at `time_ps` (used when draining the EUR
    /// requires a deterministic close, or when retiring a rank).
    pub fn force_close(&mut self, time_ps: u64) {
        self.open_row = None;
        self.busy_until_ps = self.busy_until_ps.max(time_ps);
    }

    /// Earliest time the bank can accept any command.
    pub fn busy_until(&self) -> u64 {
        self.busy_until_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Timing, NS};

    fn t() -> Timing {
        Timing::ddr4_2400()
    }

    const IDLE: u64 = 50 * NS;

    #[test]
    fn first_access_is_row_closed() {
        let b = BankState::new();
        let plan = b.plan(5, false, 0, &t(), IDLE);
        assert_eq!(plan.class, AccessClass::RowClosed);
        assert_eq!(plan.issue_ps, 0);
        assert_eq!(plan.complete_ps, t().t_rcd + t().t_cas + t().t_burst);
    }

    #[test]
    fn back_to_back_same_row_hits() {
        let mut b = BankState::new();
        let p1 = b.plan(5, false, 0, &t(), IDLE);
        b.commit(5, false, &p1, &t());
        let p2 = b.plan(5, false, p1.complete_ps, &t(), IDLE);
        assert_eq!(p2.class, AccessClass::RowHit);
        assert_eq!(p2.complete_ps - p2.issue_ps, t().t_cas + t().t_burst);
    }

    #[test]
    fn different_row_conflicts_when_open() {
        let mut b = BankState::new();
        let p1 = b.plan(5, false, 0, &t(), IDLE);
        b.commit(5, false, &p1, &t());
        let p2 = b.plan(9, false, p1.complete_ps + NS, &t(), IDLE);
        assert_eq!(p2.class, AccessClass::RowConflict);
        assert_eq!(p2.closed_row, Some(5));
    }

    #[test]
    fn idle_timeout_closes_row() {
        let mut b = BankState::new();
        let p1 = b.plan(5, false, 0, &t(), IDLE);
        b.commit(5, false, &p1, &t());
        // Long after the idle window: the row closed in the background.
        let later = p1.complete_ps + IDLE + NS;
        assert_eq!(b.open_row_at(later, IDLE), None);
        let p2 = b.plan(9, false, later, &t(), IDLE);
        assert_eq!(p2.class, AccessClass::RowClosed);
        assert_eq!(p2.closed_row, Some(5), "timeout closure reported");
    }

    #[test]
    fn write_recovery_delays_conflict_precharge() {
        let nvram = Timing {
            t_wr: 300 * NS,
            ..t()
        };
        let mut b = BankState::new();
        let pw = b.plan(5, true, 0, &nvram, IDLE);
        b.commit(5, true, &pw, &nvram);
        // Immediately after the write, a conflicting access must wait out
        // write recovery before precharging.
        let pc = b.plan(9, false, pw.complete_ps, &nvram, IDLE);
        assert_eq!(pc.class, AccessClass::RowConflict);
        assert!(pc.issue_ps >= pw.complete_ps + 300 * NS);
        // But a row hit right after the burst does not wait for tWR.
        let ph = b.plan(5, false, pw.complete_ps, &nvram, IDLE);
        assert_eq!(ph.class, AccessClass::RowHit);
        assert_eq!(ph.issue_ps, pw.complete_ps);
    }

    #[test]
    fn write_recovery_extends_idle_close() {
        let nvram = Timing {
            t_wr: 300 * NS,
            ..t()
        };
        let mut b = BankState::new();
        let pw = b.plan(5, true, 0, &nvram, IDLE);
        b.commit(5, true, &pw, &nvram);
        let close = b.close_time(IDLE).unwrap();
        assert!(close >= pw.complete_ps + 300 * NS);
    }

    #[test]
    fn hit_latency_lt_closed_lt_conflict() {
        let timing = t();
        let hit = timing.t_cas + timing.t_burst;
        let closed = timing.t_rcd + hit;
        let conflict = timing.t_rp + closed;
        assert!(hit < closed && closed < conflict);
    }
}
