//! Fault-timeline adapter: scheduled faults seen through the memory
//! controller's clock.
//!
//! The campaign DSL ([`FaultSchedule`]) speaks abstract cycles; the
//! timing simulator speaks picoseconds. [`FaultTimeline`] bridges the
//! two and derives the *timing-visible* consequences of a fault history:
//!
//! * the background RBER in effect at a wall-clock instant;
//! * the probability that a 72 B chipkill read at that instant rejects at
//!   the RS acceptance threshold and pays the VLEW-fallback stripe fetch
//!   (the paper's §V-C fallback storm under an RBER ramp);
//! * whether a chip-kill has occurred, after which *every* read runs in
//!   degraded (erasure) mode and fetches its whole stripe.
//!
//! The `soak` driver uses these to enqueue the extra block fetches into
//! the [`crate::MemoryController`], so fallback storms show up as real
//! queueing pressure rather than a bookkeeping footnote.

use pmck_nvram::{FaultKind, FaultSchedule};
use pmck_rt::rng::Rng;

/// Blocks in one VLEW stripe (a fallback or erasure read fetches them
/// all; the demand block itself is one of them).
pub const STRIPE_BLOCKS: u32 = 32;

/// A [`FaultSchedule`] projected onto the controller's picosecond clock.
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    schedule: FaultSchedule,
    ps_per_cycle: u64,
    threshold: usize,
}

impl FaultTimeline {
    /// Wraps `schedule` with a clock mapping of `ps_per_cycle`
    /// picoseconds per campaign cycle and the paper's RS acceptance
    /// threshold of 2 corrections.
    ///
    /// # Panics
    ///
    /// Panics if `ps_per_cycle == 0`.
    pub fn new(schedule: FaultSchedule, ps_per_cycle: u64) -> Self {
        assert!(ps_per_cycle > 0, "ps_per_cycle must be positive");
        FaultTimeline {
            schedule,
            ps_per_cycle,
            threshold: 2,
        }
    }

    /// Overrides the RS acceptance threshold used for fallback-rate
    /// estimation.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The campaign cycle containing instant `t_ps`.
    pub fn cycle_at(&self, t_ps: u64) -> u64 {
        t_ps / self.ps_per_cycle
    }

    /// The background RBER in effect at instant `t_ps`.
    pub fn rber_at_ps(&self, t_ps: u64) -> f64 {
        self.schedule.rber_at(self.cycle_at(t_ps))
    }

    /// Whether a chip-kill has fired at or before instant `t_ps`
    /// (degraded mode: every read erasure-corrects and fetches its whole
    /// stripe).
    pub fn degraded_at_ps(&self, t_ps: u64) -> bool {
        let cycle = self.cycle_at(t_ps);
        self.schedule
            .events()
            .iter()
            .take_while(|e| e.at_cycle <= cycle)
            .any(|e| matches!(e.kind, FaultKind::ChipKill { .. }))
    }

    /// The probability that a 72 B (576-bit) chipkill read at instant
    /// `t_ps` is rejected at the RS acceptance threshold and falls back
    /// to VLEW decoding: `P(byte errors > threshold)` with per-byte
    /// error probability `1 − (1 − rber)^8` over 72 independent bytes.
    pub fn fallback_probability(&self, t_ps: u64) -> f64 {
        let rber = self.rber_at_ps(t_ps);
        if rber <= 0.0 {
            return 0.0;
        }
        let q = 1.0 - (1.0 - rber).powi(8); // per-byte error probability
        let n = 72u32;
        // P(X <= threshold) for X ~ Binomial(72, q), summed directly.
        let mut p_le = 0.0;
        let mut coeff = 1.0; // C(n, k)
        for k in 0..=self.threshold as u32 {
            if k > 0 {
                coeff = coeff * (n - k + 1) as f64 / k as f64;
            }
            p_le += coeff * q.powi(k as i32) * (1.0 - q).powi((n - k) as i32);
        }
        (1.0 - p_le).max(0.0)
    }

    /// The number of *extra* block fetches a demand read issued at
    /// instant `t_ps` costs beyond itself: `STRIPE_BLOCKS − 1` when the
    /// rank is degraded or when the Bernoulli fallback fires, else 0.
    pub fn sample_extra_fetches<R: Rng + ?Sized>(&self, t_ps: u64, rng: &mut R) -> u32 {
        if self.degraded_at_ps(t_ps) || rng.gen_bool(self.fallback_probability(t_ps)) {
            STRIPE_BLOCKS - 1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    fn ramp_schedule() -> FaultSchedule {
        FaultSchedule::parse(
            "at 0 rber 2e-4\nramp 1000..2000 rber 2e-4..1e-2\nat 3000 chipkill 3 garbage",
        )
        .unwrap()
    }

    #[test]
    fn clock_mapping() {
        let t = FaultTimeline::new(ramp_schedule(), 1000);
        assert_eq!(t.cycle_at(0), 0);
        assert_eq!(t.cycle_at(999), 0);
        assert_eq!(t.cycle_at(1_500_000), 1500);
        assert_eq!(t.rber_at_ps(500_000), 2e-4);
        assert!(t.rber_at_ps(1_500_000) > 2e-4);
    }

    #[test]
    fn degradation_starts_at_chipkill() {
        let t = FaultTimeline::new(ramp_schedule(), 1000);
        assert!(!t.degraded_at_ps(2_999_999));
        assert!(t.degraded_at_ps(3_000_000));
        assert!(t.degraded_at_ps(u64::MAX / 2));
    }

    #[test]
    fn fallback_probability_tracks_the_ramp() {
        let t = FaultTimeline::new(ramp_schedule(), 1000);
        let at_base = t.fallback_probability(0);
        let mid_ramp = t.fallback_probability(1_500_000);
        let post_ramp = t.fallback_probability(2_500_000);
        // Paper Figure 7: at 2e-4 essentially every access has <=2 byte
        // errors; at 1e-2 fallbacks are common.
        assert!(at_base < 1e-3, "base fallback {at_base}");
        assert!(mid_ramp > at_base);
        assert!(post_ramp > 0.01, "post-ramp fallback {post_ramp}");
        assert!(post_ramp < 1.0);
    }

    #[test]
    fn zero_rber_never_falls_back() {
        let t = FaultTimeline::new(FaultSchedule::new(), 1000);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.fallback_probability(123), 0.0);
        assert_eq!(t.sample_extra_fetches(123, &mut rng), 0);
    }

    #[test]
    fn degraded_mode_always_fetches_the_stripe() {
        let t = FaultTimeline::new(ramp_schedule(), 1000);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(
                t.sample_extra_fetches(3_000_000, &mut rng),
                STRIPE_BLOCKS - 1
            );
        }
    }

    #[test]
    fn fallback_sampling_rate_matches_probability() {
        let s = FaultSchedule::new().with(0, pmck_nvram::FaultKind::Rber { rber: 5e-3 });
        let t = FaultTimeline::new(s, 1000);
        let p = t.fallback_probability(0);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 40_000;
        let hits = (0..trials)
            .filter(|_| t.sample_extra_fetches(0, &mut rng) > 0)
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate} vs p {p}");
    }
}
