//! Randomized tests for the memory controller: conservation, causality,
//! and scheduling invariants under random request streams, driven by
//! seeded `pmck-rt` streams.

use pmck_memsim::{Completion, MemConfig, MemRequest, MemoryController, NvramTiming, RankKind, NS};
use pmck_rt::rng::{Rng, StdRng};

fn drive(seed: u64, n: usize, gap_ns: u64) -> (Vec<Completion>, MemoryController) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mc = MemoryController::new(MemConfig::paper_hybrid(NvramTiming::reram()));
    let mut out = Vec::new();
    let mut t = 0u64;
    for i in 0..n {
        let req = {
            let addr = rng.gen_range(0..1u64 << 18);
            let rank = if rng.gen_bool(0.5) {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            if rng.gen_bool(0.4) {
                MemRequest::write(i as u64, addr, rank)
            } else {
                MemRequest::read(i as u64, addr, rank)
            }
        };
        while mc.enqueue(req).is_err() {
            t += 500 * NS;
            mc.advance_to(t);
            out.extend(mc.drain_completions());
        }
        t += gap_ns * NS;
        mc.advance_to(t);
        out.extend(mc.drain_completions());
    }
    while mc.pending() > 0 {
        t += 50_000 * NS;
        mc.advance_to(t);
        out.extend(mc.drain_completions());
    }
    (out, mc)
}

#[test]
fn every_request_completes_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0x3E35_0001);
    for _ in 0..24 {
        let seed: u64 = rng.gen();
        let n = rng.gen_range(10usize..400);
        let gap = rng.gen_range(0u64..200);
        let (completions, mc) = drive(seed, n, gap);
        assert_eq!(completions.len(), n);
        let mut ids: Vec<u64> = completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "no duplicate completions");
        let s = mc.stats();
        let counted = s.reads[0] + s.reads[1] + s.writes[0] + s.writes[1];
        assert_eq!(counted as usize, n);
    }
}

#[test]
fn completions_have_positive_latency() {
    let mut rng = StdRng::seed_from_u64(0x3E35_0002);
    for _ in 0..24 {
        let seed: u64 = rng.gen();
        let n = rng.gen_range(10usize..200);
        let (completions, _) = drive(seed, n, 50);
        for c in &completions {
            assert!(c.finish_ps > 0);
        }
    }
}

#[test]
fn row_class_counts_partition_accesses() {
    let mut rng = StdRng::seed_from_u64(0x3E35_0003);
    for _ in 0..24 {
        let seed: u64 = rng.gen();
        let n = rng.gen_range(10usize..300);
        let (_, mc) = drive(seed, n, 20);
        let s = mc.stats();
        assert_eq!(
            s.row_hits + s.row_closed + s.row_conflicts,
            n as u64,
            "every access classified exactly once"
        );
    }
}

#[test]
fn eur_drains_never_exceed_pm_writes() {
    let mut rng = StdRng::seed_from_u64(0x3E35_0004);
    for _ in 0..24 {
        let seed: u64 = rng.gen();
        let n = rng.gen_range(10usize..300);
        let (_, mut mc) = drive(seed, n, 20);
        mc.finalize_eur();
        assert!(mc.eur().drains() <= mc.eur().pm_writes());
        let c = mc.eur().c_factor();
        assert!((0.0..=1.0).contains(&c), "C = {c}");
    }
}

#[test]
fn denser_traffic_is_never_faster_per_request() {
    let mut rng = StdRng::seed_from_u64(0x3E35_0005);
    for _ in 0..24 {
        let seed: u64 = rng.gen();
        // Average read latency with zero think time must be >= with
        // generous spacing (queueing can only hurt).
        let (_, mc_dense) = drive(seed, 200, 0);
        let (_, mc_sparse) = drive(seed, 200, 500);
        assert!(
            mc_dense.stats().avg_read_latency_ps()
                >= mc_sparse.stats().avg_read_latency_ps() * 0.99
        );
    }
}
