//! Property tests for the memory controller: conservation, causality,
//! and scheduling invariants under random request streams.

use pmck_memsim::{Completion, MemConfig, MemRequest, MemoryController, NvramTiming, RankKind, NS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn drive(seed: u64, n: usize, gap_ns: u64) -> (Vec<Completion>, MemoryController) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mc = MemoryController::new(MemConfig::paper_hybrid(NvramTiming::reram()));
    let mut out = Vec::new();
    let mut t = 0u64;
    for i in 0..n {
        let req = {
            let addr = rng.gen_range(0..1u64 << 18);
            let rank = if rng.gen_bool(0.5) {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            if rng.gen_bool(0.4) {
                MemRequest::write(i as u64, addr, rank)
            } else {
                MemRequest::read(i as u64, addr, rank)
            }
        };
        while mc.enqueue(req).is_err() {
            t += 500 * NS;
            mc.advance_to(t);
            out.extend(mc.drain_completions());
        }
        t += gap_ns * NS;
        mc.advance_to(t);
        out.extend(mc.drain_completions());
    }
    while mc.pending() > 0 {
        t += 50_000 * NS;
        mc.advance_to(t);
        out.extend(mc.drain_completions());
    }
    (out, mc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_completes_exactly_once(seed in any::<u64>(), n in 10usize..400, gap in 0u64..200) {
        let (completions, mc) = drive(seed, n, gap);
        prop_assert_eq!(completions.len(), n);
        let mut ids: Vec<u64> = completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "no duplicate completions");
        let s = mc.stats();
        let counted = s.reads[0] + s.reads[1] + s.writes[0] + s.writes[1];
        prop_assert_eq!(counted as usize, n);
    }

    #[test]
    fn completions_have_positive_latency(seed in any::<u64>(), n in 10usize..200) {
        let (completions, _) = drive(seed, n, 50);
        for c in &completions {
            prop_assert!(c.finish_ps > 0);
        }
    }

    #[test]
    fn row_class_counts_partition_accesses(seed in any::<u64>(), n in 10usize..300) {
        let (_, mc) = drive(seed, n, 20);
        let s = mc.stats();
        prop_assert_eq!(
            s.row_hits + s.row_closed + s.row_conflicts,
            n as u64,
            "every access classified exactly once"
        );
    }

    #[test]
    fn eur_drains_never_exceed_pm_writes(seed in any::<u64>(), n in 10usize..300) {
        let (_, mut mc) = drive(seed, n, 20);
        mc.finalize_eur();
        prop_assert!(mc.eur().drains() <= mc.eur().pm_writes());
        let c = mc.eur().c_factor();
        prop_assert!((0.0..=1.0).contains(&c), "C = {c}");
    }

    #[test]
    fn denser_traffic_is_never_faster_per_request(seed in any::<u64>()) {
        // Average read latency with zero think time must be >= with
        // generous spacing (queueing can only hurt).
        let (_, mc_dense) = drive(seed, 200, 0);
        let (_, mc_sparse) = drive(seed, 200, 500);
        prop_assert!(
            mc_dense.stats().avg_read_latency_ps()
                >= mc_sparse.stats().avg_read_latency_ps() * 0.99
        );
    }
}
